//! COI analysis + the peak-power optimization loop of paper §5.1 on a
//! multiplier-heavy application.
//!
//! ```text
//! cargo run --release --example optimize_app
//! ```

use xbound::core::optimize::{optimize_program, OptimizeOptions};
use xbound::core::{CoAnalysis, ExploreConfig, UlpSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = UlpSystem::openmsp430_class()?;
    let bench = xbound::benchsuite::by_name("mult").expect("suite benchmark");

    // Where does the peak come from? (COI = cycles of interest)
    let config = ExploreConfig {
        widen_threshold: bench.widen_threshold(),
        ..ExploreConfig::default()
    };
    let analysis = CoAnalysis::new(&system)
        .config(config)
        .energy_rounds(bench.energy_rounds())
        .run(&bench.program()?)?;
    println!("== cycles of interest ==");
    print!(
        "{}",
        xbound::core::coi::format_report(&analysis.cycles_of_interest(3))
    );

    // Apply OPT1/2/3; keep only transforms that reduce the bound.
    let opts = OptimizeOptions {
        scratch_reg: Some(14),
        iss_inputs: vec![3, 5, 7, 11, 13, 17, 19, 23],
        ..OptimizeOptions::default()
    };
    let report = optimize_program(
        &system,
        bench.source(),
        config,
        bench.energy_rounds(),
        &opts,
    )?;
    println!("\n== optimization report ==");
    println!(
        "peak: {:.4} -> {:.4} mW ({:.2}% reduction)",
        report.original_peak_mw, report.optimized_peak_mw, report.peak_reduction_pct
    );
    println!(
        "accepted: {:?}",
        report.accepted.iter().map(|k| k.name()).collect::<Vec<_>>()
    );
    println!(
        "performance cost: {:+.1}%, energy cost: {:+.1}%",
        report.performance_degradation_pct, report.energy_overhead_pct
    );
    if report.accepted.is_empty() {
        println!("(no transform reduced the bound on this core — the advisor\n rejects anything that does not help, per the paper's accept policy)");
    }
    Ok(())
}
