//! Quickstart: bound the peak power and energy of a small program.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use xbound::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the system: the gate-level MSP430-class core mapped to the
    //    65 nm-class library at 100 MHz (the paper's openMSP430 target).
    let system = UlpSystem::openmsp430_class()?;
    println!(
        "core: {} standard cells, {} nets",
        system.cpu().netlist().gate_count(),
        system.cpu().netlist().net_count()
    );

    // 2. Assemble an application. Reads from the input-port region
    //    (0x0020..) are unknown (X) during the analysis.
    let program = assemble(
        r#"
        ; average two sensor readings, threshold the result
        main:
            mov &0x0020, r4
            mov &0x0022, r5
            add r5, r4
            rra r4
            cmp #100, r4
            jl low
            mov #1, &0x0200
            jmp done
        low:
            mov #0, &0x0200
        done:
            jmp $
        "#,
    )?;

    // 3. Run the co-analysis: symbolic simulation (Algorithm 1) plus the
    //    even/odd peak-power computation (Algorithm 2).
    let analysis = CoAnalysis::new(&system).run(&program)?;
    let stats = analysis.stats();
    println!(
        "explored {} cycles, {} forks, {} merges",
        stats.cycles, stats.forks, stats.merges
    );

    let peak = analysis.peak_power();
    println!(
        "peak power bound: {:.4} mW (at cycle {})",
        peak.peak_mw, peak.peak_cycle
    );
    let energy = analysis.peak_energy();
    println!(
        "peak energy bound: {:.3e} J over {} cycles ({:.3e} J/cycle)",
        energy.peak_energy_j, energy.cycles, energy.npe_j_per_cycle
    );

    // 4. The bounds hold for every input — spot-check a few.
    for inputs in [[0u16, 0], [500, 500], [99, 101]] {
        let (frames, measured) = system.profile_concrete(&program, &inputs, 10_000)?;
        assert!(measured.peak_mw() <= peak.peak_mw + 1e-9);
        assert!(analysis.check_superset(&frames).is_sound());
        println!(
            "inputs {:?}: measured peak {:.4} mW <= bound {:.4} mW",
            inputs,
            measured.peak_mw(),
            peak.peak_mw
        );
    }
    Ok(())
}
