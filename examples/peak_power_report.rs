//! Fig 16-style report: X-based bounds vs conventional techniques for the
//! whole benchmark suite.
//!
//! ```text
//! cargo run --release --example peak_power_report
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use xbound::baselines::{design_tool, profiling, GUARDBAND};
use xbound::core::{CoAnalysis, ExploreConfig, UlpSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = UlpSystem::openmsp430_class()?;
    let rated = design_tool::rated_chip_mw(&system);
    let dt = design_tool::design_tool_rating(&system);
    println!("rated chip power : {rated:.4} mW");
    println!("design-tool bound: {:.4} mW", dt.peak_mw);
    println!();
    println!(
        "{:<10} {:>14} {:>12} {:>12} {:>9}",
        "benchmark", "observed [mW]", "GB-in [mW]", "X-based", "sound"
    );
    let mut rng = StdRng::seed_from_u64(7);
    for bench in xbound::benchsuite::all() {
        let prof = profiling::profile(&system, bench, 4, &mut rng)?;
        let config = ExploreConfig {
            widen_threshold: bench.widen_threshold(),
            max_total_cycles: 5_000_000,
            ..ExploreConfig::default()
        };
        let analysis = CoAnalysis::new(&system)
            .config(config)
            .energy_rounds(bench.energy_rounds())
            .run(&bench.program()?)?;
        let x = analysis.peak_power().peak_mw;
        println!(
            "{:<10} {:>14.4} {:>12.4} {:>12.4} {:>9}",
            bench.name(),
            prof.observed_peak_mw,
            prof.observed_peak_mw * GUARDBAND,
            x,
            x >= prof.observed_peak_mw - 1e-9
        );
    }
    println!("\n(`sound` = the input-independent bound dominates every observed run)");
    Ok(())
}
