//! Size the energy harvester and battery of a sensor node from the
//! analysis bounds (paper Chapter 1 / Tables 5.1–5.2).
//!
//! ```text
//! cargo run --release --example size_my_node
//! ```

use xbound::baselines::{design_tool, GUARDBAND};
use xbound::core::{CoAnalysis, ExploreConfig, UlpSystem};
use xbound::sizing::{batteries, harvesters, savings, SystemType};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = UlpSystem::openmsp430_class()?;
    let bench = xbound::benchsuite::by_name("tHold").expect("suite benchmark");

    // Bound the application.
    let analysis = CoAnalysis::new(&system)
        .config(ExploreConfig {
            widen_threshold: bench.widen_threshold(),
            ..ExploreConfig::default()
        })
        .energy_rounds(bench.energy_rounds())
        .run(&bench.program()?)?;
    let x_peak = analysis.peak_power().peak_mw;
    let dt_peak = design_tool::design_tool_rating(&system).peak_mw;
    println!("tHold peak power: X-based {x_peak:.4} mW vs design-tool {dt_peak:.4} mW");

    // Type-1 node (direct harvesting): the harvester covers peak power.
    assert_eq!(
        SystemType::Type1.harvester_driver(),
        Some(xbound::sizing::Requirement::PeakPower)
    );
    let pv = harvesters::by_name("Photovoltaic (indoor)").expect("in Table 1.2");
    println!(
        "indoor-PV harvester area: {:.1} cm^2 (X-based) vs {:.1} cm^2 (design tool)",
        pv.area_cm2_for_mw(x_peak),
        pv.area_cm2_for_mw(dt_peak)
    );
    println!(
        "area reduction at 100%/50% processor contribution: {:.1}% / {:.1}%",
        savings::reduction_pct(1.0, dt_peak, x_peak),
        savings::reduction_pct(0.5, dt_peak, x_peak)
    );

    // Type-3 node (battery only): one year of duty-cycled operation,
    // waking once per second for one run of tHold.
    let energy = analysis.peak_energy();
    let runs_per_year = 365.0 * 24.0 * 3600.0;
    let budget_j = energy.peak_energy_j * runs_per_year * GUARDBAND;
    let li = batteries::by_name("Li-ion").expect("in Table 1.1");
    println!(
        "1-year active-energy budget: {budget_j:.3} J -> Li-ion {:.3} mm^3, {:.4} g",
        li.volume_l_for_joules(budget_j) * 1e6,
        li.mass_g_for_joules(budget_j)
    );
    Ok(())
}
