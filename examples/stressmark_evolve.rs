//! Evolve a power-virus stressmark with the GA baseline (paper §4.2) and
//! compare it with the benchmark suite's observed peaks.
//!
//! ```text
//! cargo run --release --example stressmark_evolve
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use xbound::baselines::stressmark::{evolve, GaConfig, StressTarget};
use xbound::baselines::GUARDBAND;
use xbound::core::UlpSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = UlpSystem::openmsp430_class()?;
    let mut rng = StdRng::seed_from_u64(2017);
    let result = evolve(
        &system,
        StressTarget::PeakPower,
        &GaConfig::default(),
        &mut rng,
    )?;
    println!("GA fitness per generation (peak mW): {:?}", result.history);
    println!(
        "champion: peak {:.4} mW, average {:.4} mW -> guardbanded rating {:.4} mW",
        result.peak_mw,
        result.avg_mw,
        result.peak_mw * GUARDBAND
    );
    println!("\n== champion stressmark ==\n{}", result.source);
    Ok(())
}
