//! Workspace smoke test — a fast canary that the whole pipeline (assembler
//! -> gate-level core -> symbolic co-analysis -> peak power/energy) is
//! wired together. Kept to a tiny program so it runs in seconds.

use xbound::prelude::*;

#[test]
fn tiny_program_gets_positive_bounds() {
    let system = UlpSystem::openmsp430_class().expect("system builds");
    // Nine instructions: read two input words, combine, store, halt.
    let program = assemble(
        r#"
        main:
            mov &0x0020, r4
            mov &0x0022, r5
            add r5, r4
            xor r5, r4
            add r4, r4
            mov r4, &0x0200
            jmp $
        "#,
    )
    .expect("assembles");

    let analysis = CoAnalysis::new(&system).run(&program).expect("analyzes");
    let peak = analysis.peak_power();
    assert!(peak.peak_mw > 0.0, "peak power bound must be positive");
    let energy = analysis.peak_energy();
    assert!(
        energy.peak_energy_j > 0.0,
        "peak energy bound must be positive"
    );
    // The bound must dominate an arbitrary concrete run of the same program.
    let (_, measured) = system
        .profile_concrete(&program, &[0xFFFF, 0x1234], 10_000)
        .expect("profiles");
    assert!(measured.peak_mw() <= peak.peak_mw + 1e-9);
}
