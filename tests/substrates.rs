//! Workspace integration tests across the substrate crates: the gate-level
//! core round-trips through the Verilog writer/parser, VCD export matches
//! simulation, and the golden-model ISS agrees with the gates on every
//! suite benchmark.

use xbound::cpu::Cpu;
use xbound::msp430::iss::Iss;
use xbound::netlist::verilog;
use xbound::power::vcd;

/// The full ~5.6k-cell core survives a Verilog round trip.
#[test]
fn cpu_netlist_verilog_round_trip() {
    let cpu = Cpu::build().expect("builds");
    let text = verilog::write(cpu.netlist());
    assert!(text.len() > 100_000, "netlist text is substantial");
    let back = verilog::parse(&text).expect("parses back");
    assert_eq!(back.gate_count(), cpu.netlist().gate_count());
    assert_eq!(back.net_count(), cpu.netlist().net_count());
    assert_eq!(
        back.sequential_gates().len(),
        cpu.netlist().sequential_gates().len()
    );
    // Hierarchy survives.
    let mods: Vec<&str> = back.modules().iter().map(|s| s.as_str()).collect();
    for m in ["frontend", "exec_unit", "multiplier", "mem_backbone"] {
        assert!(mods.contains(&m), "missing module {m}");
    }
}

/// A simulated trace of the core survives a VCD round trip.
#[test]
fn cpu_trace_vcd_round_trip() {
    let cpu = Cpu::build().expect("builds");
    let bench = xbound::benchsuite::by_name("intAVG").expect("exists");
    let program = bench.program().expect("assembles");
    let mut sim = cpu.new_sim();
    Cpu::load_program(&mut sim, &program, true);
    let mut frames = Vec::new();
    for _ in 0..64 {
        frames.push(sim.eval().expect("settles").clone());
        sim.commit();
    }
    let text = vcd::write(cpu.netlist(), &frames, 10_000);
    let (names, back) = vcd::parse(&text).expect("parses");
    assert_eq!(names.len(), cpu.netlist().net_count());
    assert_eq!(back, frames);
}

/// Gate-level core and the behavioral ISS agree on the final architectural
/// state and total cycles for every benchmark in the suite.
#[test]
fn iss_and_gates_agree_on_every_benchmark() {
    let cpu = Cpu::build().expect("builds");
    for bench in xbound::benchsuite::all() {
        let program = bench.program().expect("assembles");
        let inputs = bench.stress_inputs().into_iter().next().unwrap_or_default();

        // Golden model.
        let mut iss = Iss::new(&program);
        iss.set_inputs(&inputs);
        let outcome = iss.run(1_000_000).expect("iss runs");
        assert!(outcome.halted, "{}: ISS did not halt", bench.name());

        // Gate level: run the same number of machine cycles + reset/fetch
        // overhead, then compare.
        let mut sim = cpu.new_sim();
        Cpu::load_program(&mut sim, &program, true);
        Cpu::set_inputs(&mut sim, &inputs);
        // 2 reset cycles + 1 vector-load cycle + program cycles.
        for _ in 0..(3 + outcome.cycles) {
            sim.step();
        }
        sim.eval().expect("settles");
        let arch = cpu.arch_state(&sim);
        assert_eq!(
            arch.pc.to_u16(),
            Some(iss.pc()),
            "{}: PC mismatch after {} cycles",
            bench.name(),
            outcome.cycles
        );
        for rn in [1usize, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15] {
            assert_eq!(
                arch.regs[rn].to_u16(),
                Some(iss.reg(rn as u8)),
                "{}: r{rn} mismatch",
                bench.name()
            );
        }
        let dmem = sim.mem("dmem").expect("dmem");
        for (i, w) in dmem.data().iter().enumerate() {
            assert_eq!(
                w.to_u16(),
                Some(iss.dmem()[i]),
                "{}: dmem[{i}] mismatch",
                bench.name()
            );
        }
    }
}

/// The embedded Liberty libraries drive a full power analysis of the core.
#[test]
fn library_to_power_pipeline() {
    let cpu = Cpu::build().expect("builds");
    for lib in [
        xbound::cells::CellLibrary::ulp65(),
        xbound::cells::CellLibrary::ulp130(),
    ] {
        let analyzer = xbound::power::PowerAnalyzer::new(cpu.netlist(), &lib, 1.0e6);
        assert!(analyzer.rated_peak_mw() > 0.0);
        assert!(analyzer.leakage_mw() > 0.0);
        assert!(analyzer.clock_mw() > 0.0);
    }
}
