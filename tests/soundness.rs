//! Workspace integration tests: the paper's soundness invariants on real
//! suite benchmarks, across all crates.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xbound::core::{CoAnalysis, ExploreConfig, UlpSystem};

fn analysis_for<'s>(
    system: &'s UlpSystem,
    name: &str,
) -> (
    xbound::core::Analysis<'s>,
    &'static xbound::benchsuite::Benchmark,
) {
    let bench = xbound::benchsuite::by_name(name).expect("benchmark exists");
    let config = ExploreConfig {
        widen_threshold: bench.widen_threshold(),
        max_total_cycles: 5_000_000,
        ..ExploreConfig::default()
    };
    let analysis = CoAnalysis::new(system)
        .config(config)
        .energy_rounds(bench.energy_rounds())
        .run(&bench.program().expect("assembles"))
        .expect("analysis succeeds");
    (analysis, bench)
}

/// Superset + dominance over random and extremal inputs for a benchmark
/// with input-dependent control flow and one without.
#[test]
fn bounds_dominate_concrete_runs() {
    let system = UlpSystem::openmsp430_class().expect("builds");
    let mut rng = StdRng::seed_from_u64(1234);
    for name in ["tHold", "intAVG", "div"] {
        let (analysis, bench) = analysis_for(&system, name);
        let program = bench.program().expect("assembles");
        let mut input_sets = bench.stress_inputs();
        for _ in 0..3 {
            input_sets.push(bench.gen_inputs(&mut rng));
        }
        for inputs in input_sets {
            let (frames, measured) = system
                .profile_concrete(&program, &inputs, bench.max_concrete_cycles())
                .expect("halts");
            assert!(
                measured.peak_mw() <= analysis.peak_power().peak_mw + 1e-9,
                "{name}: measured {} exceeds bound {} for {inputs:?}",
                measured.peak_mw(),
                analysis.peak_power().peak_mw
            );
            let sup = analysis.check_superset(&frames);
            assert!(
                sup.is_sound(),
                "{name}: {} superset violations for {inputs:?}",
                sup.violations.len()
            );
            let dom = analysis
                .check_dominance(&frames, &measured)
                .expect("path stays inside the explored tree");
            assert!(
                dom.is_sound(),
                "{name}: dominance violations at {:?} for {inputs:?}",
                &dom.violations[..dom.violations.len().min(4)]
            );
        }
    }
}

/// NPE bound dominates observed NPE (the Fig 17 soundness column).
#[test]
fn energy_bound_dominates_observed() {
    let system = UlpSystem::openmsp430_class().expect("builds");
    let mut rng = StdRng::seed_from_u64(77);
    for name in ["intAVG", "ConvEn"] {
        let (analysis, bench) = analysis_for(&system, name);
        let program = bench.program().expect("assembles");
        let bound_npe = analysis.peak_energy().npe_j_per_cycle;
        for _ in 0..3 {
            let inputs = bench.gen_inputs(&mut rng);
            let (_, measured) = system
                .profile_concrete(&program, &inputs, bench.max_concrete_cycles())
                .expect("halts");
            assert!(
                measured.energy_per_cycle_j() <= bound_npe + 1e-18,
                "{name}: observed NPE exceeds bound"
            );
        }
    }
}

/// The analysis is deterministic: same program, same tree, same bound.
#[test]
fn analysis_is_deterministic() {
    let system = UlpSystem::openmsp430_class().expect("builds");
    let (a1, _) = analysis_for(&system, "binSearch");
    let (a2, _) = analysis_for(&system, "binSearch");
    assert_eq!(a1.peak_power().peak_mw, a2.peak_power().peak_mw);
    assert_eq!(a1.tree().segments().len(), a2.tree().segments().len());
    // Batch telemetry varies with worker timing at threads > 1; the
    // determinism contract covers the exploration core.
    assert_eq!(a1.stats().deterministic(), a2.stats().deterministic());
}

/// Bounds are application-specific: different applications, different peaks
/// (the paper's core motivation, Fig 5/7).
#[test]
fn bounds_are_application_specific() {
    let system = UlpSystem::openmsp430_class().expect("builds");
    let (tea8, _) = analysis_for(&system, "tea8");
    let (mult, _) = analysis_for(&system, "mult");
    // The multiplier-heavy kernel needs strictly more peak power than the
    // ALU-only cipher.
    assert!(
        mult.peak_power().peak_mw > tea8.peak_power().peak_mw * 1.2,
        "mult {} vs tea8 {}",
        mult.peak_power().peak_mw,
        tea8.peak_power().peak_mw
    );
}
