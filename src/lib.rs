//! # xbound — application-specific peak power & energy bounds for ULP processors
//!
//! `xbound` reproduces the ASPLOS 2017 technique *Determining
//! Application-specific Peak Power and Energy Requirements for Ultra-low
//! Power Processors*: a hardware–software co-analysis that symbolically
//! simulates an application binary on the gate-level netlist of an
//! ultra-low-power processor, propagating unknown values (X) for all inputs,
//! and derives peak power and peak energy bounds that hold for **every**
//! possible input.
//!
//! This facade crate re-exports the workspace crates; see each module for
//! the subsystem documentation:
//!
//! * [`logic`] — three-valued (0/1/X) logic primitives.
//! * [`netlist`] — gate-level netlist, Verilog-subset IO, RTL builder.
//! * [`cells`] — Liberty-subset standard-cell libraries with power data.
//! * [`sim`] — levelized three-valued cycle simulator with X-capable memories.
//! * [`msp430`] — MSP430 ISA, assembler, and behavioral golden-model ISS.
//! * [`cpu`] — the gate-level MSP430-class core under analysis.
//! * [`power`] — VCD IO and activity-based power analysis.
//! * [`core`] — the paper's contribution: symbolic co-analysis (Algorithm 1),
//!   input-independent peak power (Algorithm 2), peak energy, COI analysis,
//!   and the peak-power software optimizations.
//! * [`benchsuite`] — the 14 paper benchmarks.
//! * [`baselines`] — design-tool, GA-stressmark, and guardbanded-profiling
//!   baselines.
//! * [`sizing`] — harvester/battery sizing models.
//! * [`service`] — the co-analysis daemon (`xbound-serve` /
//!   `xbound-client`): content-addressed bound cache, single-flight job
//!   scheduler, line-delimited JSON protocol.
//!
//! # Quickstart
//!
//! ```
//! use xbound::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The processor under analysis and its cell library.
//! let system = UlpSystem::openmsp430_class()?;
//!
//! // A tiny program: read an input (symbolic X at analysis time), triple it.
//! let program = assemble(
//!     r#"
//!     main:
//!         mov &0x0020, r4   ; input port read
//!         mov r4, r5
//!         add r4, r5
//!         add r4, r5
//!         mov r5, &0x0200
//!         jmp $
//!     "#,
//! )?;
//!
//! // Application-specific, input-independent bounds.
//! let analysis = CoAnalysis::new(&system).run(&program)?;
//! let peak = analysis.peak_power();
//! assert!(peak.peak_mw > 0.0);
//! let energy = analysis.peak_energy();
//! assert!(energy.peak_energy_j > 0.0);
//!
//! // The bound is guaranteed over all inputs:
//! let (_, measured) = system.profile_concrete(&program, &[0xFFFF], 10_000)?;
//! assert!(measured.peak_mw() <= peak.peak_mw + 1e-9);
//! # Ok(())
//! # }
//! ```

pub use xbound_baselines as baselines;
pub use xbound_benchsuite as benchsuite;
pub use xbound_cells as cells;
pub use xbound_core as core;
pub use xbound_cpu as cpu;
pub use xbound_logic as logic;
pub use xbound_msp430 as msp430;
pub use xbound_netlist as netlist;
pub use xbound_power as power;
pub use xbound_service as service;
pub use xbound_sim as sim;
pub use xbound_sizing as sizing;

/// Commonly used items, re-exported for one-line imports.
pub mod prelude {
    pub use crate::core::{Analysis, CoAnalysis, ExploreConfig, UlpSystem};
    pub use crate::logic::{Frame, Lv, XWord};
    pub use crate::msp430::{assemble, Program};
    pub use crate::netlist::{CellKind, Netlist};
    pub use crate::power::PowerAnalyzer;
}
