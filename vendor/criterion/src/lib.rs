//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `sample_size`, `throughput`,
//! `BenchmarkId`, `Throughput`) with plain wall-clock measurement: a short
//! warm-up, then `sample_size` timed samples, reporting min/median/mean per
//! iteration and throughput when configured. No statistics, plots, or
//! baseline comparisons — enough to watch hot paths move release-to-release.

use std::fmt;
use std::time::Instant;

/// Benchmark throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` samples after warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~50ms or 3 iterations, whichever is first.
        let warm = Instant::now();
        let mut warm_iters = 0u32;
        while warm_iters < 3 && warm.elapsed().as_millis() < 50 {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed().as_secs_f64());
        }
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        let sample_size = self.default_sample_size;
        run_one(name, sample_size, None, f);
        self
    }
}

/// A named group sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates benchmarks with work-per-iteration for throughput output.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Finishes the group (reporting is per-benchmark; this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let mut sorted = b.samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / median)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 / median)
        }
        None => String::new(),
    };
    println!(
        "{name:<48} min {} / med {} / mean {}{extra}",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
