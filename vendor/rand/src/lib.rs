//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no network access to a crates
//! registry, so the handful of `rand` APIs the workspace uses are provided
//! here as a small, deterministic, dependency-free implementation. The
//! surface intentionally mirrors the real crate (`rngs::StdRng`,
//! [`SeedableRng`], and a [`RngExt`] extension trait with `random_range`), so
//! swapping the real `rand` back in is a one-line change in the workspace
//! manifest.
//!
//! Randomness quality: `StdRng` is a SplitMix64 generator. That is far weaker
//! than the real `StdRng` (ChaCha12) but statistically more than adequate for
//! what the workspace needs it for — seeding benchmark input campaigns and
//! driving a genetic-algorithm baseline — and it is fully reproducible from a
//! `u64` seed on every platform.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
///
/// Implemented for `Range`/`RangeInclusive` over the integer types the
/// workspace samples, and `Range<f64>` for mutation probabilities.
pub trait SampleRange<T> {
    /// Samples one value uniformly from `self`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniformly distributed mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait RngExt: RngCore {
    /// Samples a value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Samples a bool that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (0.0f64..1.0).sample(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014): passes BigCrush when
            // used as a 64-bit stream; one add + two xor-shift-multiplies.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..u64::MAX), b.random_range(0..u64::MAX));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3u16..=9);
            assert!((3..=9).contains(&v));
            let w = rng.random_range(0..11u32);
            assert!(w < 11);
            let f = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let s = rng.random_range(1usize..2);
            assert_eq!(s, 1);
        }
    }

    #[test]
    fn full_u16_range_hits_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen_hi = false;
        for _ in 0..200_000 {
            let v = rng.random_range(0..=u16::MAX);
            if v > 0xFF00 {
                seen_hi = true;
            }
        }
        assert!(seen_hi);
    }
}
