//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive-exclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy generating `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo).max(1);
        let len = self.size.lo + (rng.next_u64() as usize) % span;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
