//! Test configuration, RNG, and failure type for the `proptest!` harness.

use std::fmt;

/// Per-test configuration. Only `cases` is supported.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate and run for each property.
    pub cases: u32,
}

/// Default number of cases when neither `with_cases` nor `PROPTEST_CASES`
/// says otherwise. The real proptest default is 256; 64 keeps the gate-level
/// simulation properties fast in CI.
pub const DEFAULT_CASES: u32 = 64;

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    /// The case count actually used: `PROPTEST_CASES` (if set and parseable)
    /// acts as a global ceiling over the configured count so CI can bound
    /// suite runtime without inflating cheap tests.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(s) => s.parse().map_or(self.cases, |cap: u32| self.cases.min(cap)),
            Err(_) => self.cases,
        }
    }
}

/// A failed property case (carried out of the test body by `prop_assert*`).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-test RNG (SplitMix64 seeded from the test name, XORed
/// with `PROPTEST_SEED` when set, so soak runs can explore new cases).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the RNG for the named test.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the test name gives a stable, well-mixed base seed.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let env = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        TestRng { state: h ^ env }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
