//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type from the test RNG.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred` (retries, up to a bound).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

/// Strategy yielding clones of one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates", self.whence);
    }
}

/// Strategy choosing uniformly among sub-strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() as usize) % self.arms.len();
        self.arms[i].new_value(rng)
    }
}

/// Types with a canonical strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (`any::<u16>()` etc.).
pub struct Any<T>(PhantomData<T>);

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                // Bias toward boundary values the way real proptest's edge
                // cases do: all-zero, all-one, and small values show up often.
                match rng.next_u64() % 8 {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => (rng.next_u64() % 4) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A / 0);
impl_strategy_tuple!(A / 0, B / 1);
impl_strategy_tuple!(A / 0, B / 1, C / 2);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
