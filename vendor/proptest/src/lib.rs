//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this workspace has no network access to a crates
//! registry, so this crate implements the subset of proptest the workspace's
//! property tests use: the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! `any::<T>()`, ranges and tuples as strategies, `prop_oneof!`, `Just`,
//! `collection::vec`, `ProptestConfig::with_cases`, and the `prop_assert*`
//! macros. Test cases are generated from a deterministic per-test RNG, so
//! failures are reproducible run-to-run.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the case number and message but
//!   is not minimized.
//! * **Case counts** default to 64 (the real default is 256) and are capped
//!   globally by the `PROPTEST_CASES` environment variable, which acts as a
//!   ceiling over per-test `ProptestConfig::with_cases` values so CI can
//!   bound suite runtime. `PROPTEST_SEED` perturbs the deterministic
//!   per-test seed for soak testing.

pub mod strategy;

pub mod arbitrary {
    pub use crate::strategy::{any, Arbitrary};
}

pub mod test_runner;

pub mod collection;

/// One-line import for tests: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares property tests. See the crate docs for supported syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in any::<u16>(), v in proptest::collection::vec(0u8..4, 1..10)) {
///         prop_assert!(x as usize + v.len() > 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let cases = config.effective_cases();
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        ::std::panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Strategy choosing uniformly among the listed sub-strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// Like `assert!`, but fails the surrounding property case instead of
/// panicking, so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Like `assert_eq!`, but fails the surrounding property case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)*),
                    l,
                    r
                ),
            ));
        }
    }};
}

/// Like `assert_ne!`, but fails the surrounding property case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}
