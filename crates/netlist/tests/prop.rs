//! Property tests: randomly generated netlists survive the Verilog round
//! trip structurally intact.

use proptest::prelude::*;
use xbound_netlist::{verilog, CellKind, Netlist};

/// Strategy: a random DAG netlist over `n` gates.
fn arb_netlist(max_gates: usize) -> impl Strategy<Value = Netlist> {
    (2usize..=max_gates, any::<u64>()).prop_map(|(n, seed)| {
        let mut nl = Netlist::new("rand");
        let mut rng = seed;
        let mut next = move || {
            // xorshift64
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let a = nl.add_input("in_a");
        let b = nl.add_input("in_b");
        let mut nets = vec![a, b];
        let comb = [
            CellKind::Buf,
            CellKind::Inv,
            CellKind::And2,
            CellKind::Or2,
            CellKind::Nand2,
            CellKind::Nor2,
            CellKind::Xor2,
            CellKind::Xnor2,
            CellKind::Mux2,
            CellKind::Aoi21,
            CellKind::Oai21,
            CellKind::Dff,
            CellKind::Dffe,
        ];
        let m = nl.add_module("blob");
        for gi in 0..n {
            let kind = comb[(next() as usize) % comb.len()];
            let ins: Vec<_> = (0..kind.input_count())
                .map(|_| nets[(next() as usize) % nets.len()])
                .collect();
            let y = nl.add_net(format!("n{gi}"));
            nl.add_gate_in(kind, format!("g{gi}"), &ins, y, m)
                .expect("valid gate");
            nets.push(y);
        }
        nl.add_output("out", *nets.last().expect("nonempty"));
        nl.finalize().expect("random DAG is acyclic")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn verilog_round_trip_preserves_structure(nl in arb_netlist(60)) {
        let text = verilog::write(&nl);
        let back = verilog::parse(&text).expect("parses back");
        prop_assert_eq!(back.gate_count(), nl.gate_count());
        prop_assert_eq!(back.net_count(), nl.net_count());
        prop_assert_eq!(back.inputs().len(), nl.inputs().len());
        prop_assert_eq!(back.sequential_gates().len(), nl.sequential_gates().len());
        // Per-gate kinds survive (matched by instance name).
        for g in nl.gates() {
            let other = back
                .gates()
                .iter()
                .find(|og| og.name() == g.name())
                .expect("instance preserved");
            prop_assert_eq!(other.kind(), g.kind());
            prop_assert_eq!(other.inputs().len(), g.inputs().len());
        }
        // Topological evaluation order has the same length (same comb set).
        prop_assert_eq!(back.topo_order().len(), nl.topo_order().len());
    }

    /// Writing is deterministic and parse(write(parse(write(x)))) is stable.
    #[test]
    fn verilog_write_is_idempotent(nl in arb_netlist(30)) {
        let t1 = verilog::write(&nl);
        let p1 = verilog::parse(&t1).expect("parses");
        let t2 = verilog::write(&p1);
        let p2 = verilog::parse(&t2).expect("parses");
        prop_assert_eq!(verilog::write(&p2), t2);
    }
}
