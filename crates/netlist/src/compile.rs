//! One-time compilation of a finalized netlist into a flat, structurally
//! deduplicated SoA program for the simulator's compiled backend.
//!
//! The builder walks the combinational gates in topological order and
//! hash-conses every gate into a **value class**: two gates land in the same
//! class exactly when they have the same [`CellKind`] and (canonicalized)
//! operand classes — i.e. when their input cones are structurally identical
//! all the way down to the *same* leaf nets. Leaves (primary inputs,
//! flip-flop outputs, and any other net without a combinational driver) each
//! get a unique class salted by their [`NetId`], so cones that differ only in
//! which flip-flop or which bus/input net feeds them are **never** merged —
//! dedup is common-subexpression elimination over the netlist, not code
//! sharing across distinct data.
//!
//! The output is a flat program over a dense slot array (one slot per
//! class):
//!
//! * a **gather** list mapping leaf nets to slots (filled from the frame
//!   before execution),
//! * **steps** — contiguous [`OpRun`]s of a single cell kind, emitted
//!   level-major (kind-grouped within each logic level, so the executor
//!   dispatches once per run, not once per gate), interleaved with
//!   [`Step::ForceFixup`] markers for *cut* slots (see below),
//! * SoA operand index arrays (`out`/`a`/`b`/`c`, one `u32` per op), and
//! * a **scatter** list mapping every combinationally driven net to the slot
//!   holding its value (written back to the frame after execution).
//!
//! This crate knows nothing about lane values; the executor over
//! `LaneVal` slots lives in the simulator crate.
//!
//! # Force cuts
//!
//! Class sharing assumes a net's value is a pure function of its cone. A
//! simulator *force* on a combinationally driven net breaks that: the forced
//! net must diverge from structurally identical siblings, and downstream
//! readers must see the forced value. Callers pass such nets as `cuts`: a
//! cut net always gets a fresh, unshared class (its op is excluded from
//! hash-consing, and a `Buf`/`Tie` driving it is materialized instead of
//! folded), and the program records a [`Step::ForceFixup`] after the level
//! that computes it so the executor can overwrite the slot before any
//! higher-level op reads it (readers are always at a strictly higher level).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::{CellKind, NetId, Netlist};

/// A contiguous run of ops of one cell kind (indices into [`OpArrays`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRun {
    /// The cell kind every op in the run evaluates.
    pub kind: CellKind,
    /// First op index (inclusive).
    pub start: u32,
    /// Number of ops in the run.
    pub len: u32,
}

/// One step of the compiled program, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Evaluate a kind-homogeneous run of ops.
    Run(OpRun),
    /// Apply the engine's per-net force to a cut slot before any
    /// higher-level op reads it.
    ForceFixup {
        /// The forced (cut) net.
        net: NetId,
        /// The slot holding its value.
        slot: u32,
    },
}

/// Structure-of-arrays operand indices, one entry per op.
///
/// Unused operand positions hold `0`; `out[i]` is always the op's
/// destination slot.
#[derive(Debug, Clone, Default)]
pub struct OpArrays {
    /// Destination slot per op.
    pub out: Vec<u32>,
    /// First operand slot per op.
    pub a: Vec<u32>,
    /// Second operand slot per op.
    pub b: Vec<u32>,
    /// Third operand slot per op.
    pub c: Vec<u32>,
}

/// Compilation statistics (dedup effectiveness, program shape).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Combinational gates in the source netlist.
    pub comb_gates: usize,
    /// Ops in the compiled program (after dedup and folding).
    pub ops: usize,
    /// Gates that reused an existing class (structural duplicates).
    pub deduped: usize,
    /// `Buf`/`Tie` gates folded into their operand / a shared constant.
    pub folded: usize,
    /// Leaf slots gathered from the frame.
    pub leaves: usize,
    /// Logic levels in the program.
    pub levels: usize,
    /// Force-cut slots.
    pub cuts: usize,
}

/// A netlist compiled to a flat, deduplicated slot program.
///
/// Built once per (netlist, cut set) by [`compile`]; executed every cycle by
/// the simulator's compiled backend.
#[derive(Debug, Clone)]
pub struct CompiledNetlist {
    slot_count: u32,
    gather: Vec<(NetId, u32)>,
    steps: Vec<Step>,
    ops: OpArrays,
    scatter: Vec<(NetId, u32)>,
    stats: CompileStats,
}

impl CompiledNetlist {
    /// Number of value slots (classes) the executor must allocate.
    pub fn slot_count(&self) -> usize {
        self.slot_count as usize
    }

    /// Leaf `(net, slot)` pairs to gather from the frame before execution.
    pub fn gather(&self) -> &[(NetId, u32)] {
        &self.gather
    }

    /// The program steps, in execution order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// The SoA operand arrays indexed by [`OpRun`] ranges.
    pub fn ops(&self) -> &OpArrays {
        &self.ops
    }

    /// `(net, slot)` pairs to scatter back into the frame after execution —
    /// every combinationally driven net, in ascending net order.
    pub fn scatter(&self) -> &[(NetId, u32)] {
        &self.scatter
    }

    /// Compilation statistics.
    pub fn stats(&self) -> CompileStats {
        self.stats
    }

    /// Total op count (sum over all runs).
    pub fn op_count(&self) -> usize {
        self.ops.out.len()
    }

    /// Restricts the program to the cone transitively reachable from the
    /// given leaf nets — the sub-program that must re-run when only those
    /// leaves changed since the last full execution.
    ///
    /// The returned program shares this program's slot numbering (run it
    /// over the same slot array, whose untouched slots still hold valid
    /// values from the full pass): its gather list is the subset of leaf
    /// slots fed by `leaves`, its steps re-evaluate exactly the tainted
    /// classes (force fixups of untainted cut slots are dropped — their
    /// slots are not rewritten), and its scatter writes back only nets
    /// whose class is tainted. Leaves the program never reads are ignored.
    ///
    /// The simulator uses this for bus read-data settling: after a full
    /// pass, each settle iteration rewrites only the read-data nets, so
    /// only their cone needs re-evaluating.
    pub fn cone_from_leaves(&self, leaves: &[NetId]) -> CompiledNetlist {
        let want: BTreeSet<NetId> = leaves.iter().copied().collect();
        let mut tainted = vec![false; self.slot_count as usize];
        let mut gather = Vec::new();
        for &(net, slot) in &self.gather {
            if want.contains(&net) {
                tainted[slot as usize] = true;
                gather.push((net, slot));
            }
        }
        let mut ops = OpArrays::default();
        let mut steps = Vec::new();
        let mut levels = 0usize;
        let mut cuts = 0usize;
        for step in &self.steps {
            match *step {
                Step::Run(r) => {
                    let start = ops.out.len() as u32;
                    for i in r.start..r.start + r.len {
                        let i = i as usize;
                        let k = r.kind.input_count();
                        let hit = (k >= 1 && tainted[self.ops.a[i] as usize])
                            || (k >= 2 && tainted[self.ops.b[i] as usize])
                            || (k >= 3 && tainted[self.ops.c[i] as usize]);
                        if !hit {
                            continue;
                        }
                        tainted[self.ops.out[i] as usize] = true;
                        ops.out.push(self.ops.out[i]);
                        ops.a.push(self.ops.a[i]);
                        ops.b.push(self.ops.b[i]);
                        ops.c.push(self.ops.c[i]);
                    }
                    let len = ops.out.len() as u32 - start;
                    if len > 0 {
                        steps.push(Step::Run(OpRun {
                            kind: r.kind,
                            start,
                            len,
                        }));
                    }
                }
                Step::ForceFixup { net, slot } => {
                    // Only re-forced when its op re-ran; otherwise the slot
                    // still holds the forced value from the full pass.
                    if tainted[slot as usize] {
                        steps.push(Step::ForceFixup { net, slot });
                        cuts += 1;
                    }
                }
            }
        }
        let scatter: Vec<(NetId, u32)> = self
            .scatter
            .iter()
            .copied()
            .filter(|&(_, slot)| tainted[slot as usize])
            .collect();
        for step in &steps {
            if let Step::Run(_) = step {
                levels += 1; // runs per (level, kind); an upper bound is fine
            }
        }
        let stats = CompileStats {
            comb_gates: self.stats.comb_gates,
            ops: ops.out.len(),
            deduped: 0,
            folded: 0,
            leaves: gather.len(),
            levels,
            cuts,
        };
        CompiledNetlist {
            slot_count: self.slot_count,
            gather,
            steps,
            ops,
            scatter,
            stats,
        }
    }
}

/// `a`/`b` operands that commute (including the AND/OR pair inside
/// AOI21/OAI21; the `c` leg and the mux select/data legs do not commute).
fn ab_commutes(kind: CellKind) -> bool {
    matches!(
        kind,
        CellKind::And2
            | CellKind::Or2
            | CellKind::Nand2
            | CellKind::Nor2
            | CellKind::Xor2
            | CellKind::Xnor2
            | CellKind::Aoi21
            | CellKind::Oai21
    )
}

/// Compiles a finalized netlist into a deduplicated slot program.
///
/// `cuts` names combinationally driven nets that must keep an unshared slot
/// (because the simulator may force them); pass an empty set when no
/// interior net is forced.
///
/// # Panics
///
/// Panics if the netlist has not been finalized.
pub fn compile(nl: &Netlist, cuts: &BTreeSet<NetId>) -> CompiledNetlist {
    assert!(nl.is_finalized(), "netlist not finalized");
    let _span = xbound_obs::trace::span_args("compile_netlist", || {
        vec![("comb_gates".to_string(), nl.topo_order().len().to_string())]
    });
    let mut stats = CompileStats {
        comb_gates: nl.topo_order().len(),
        ..CompileStats::default()
    };

    // class id -> logic level (leaves and constants are level 0).
    let mut class_level: Vec<u32> = Vec::new();
    // net -> class holding its settled value (combinational outputs + leaves).
    let mut class_of_net: Vec<Option<u32>> = vec![None; nl.net_count()];
    let mut gather: Vec<(NetId, u32)> = Vec::new();
    // Hash-cons table: (kind, canonical operand classes) -> class.
    let mut cse: HashMap<(CellKind, [u32; 3]), u32> = HashMap::new();
    // Pending ops bucketed by (level, kind) for level-major, kind-grouped
    // emission: [out, a, b, c] per op.
    let mut pending: Vec<BTreeMap<CellKind, Vec<[u32; 4]>>> = Vec::new();
    let mut fixups: Vec<Vec<(NetId, u32)>> = Vec::new();

    let new_class = |class_level: &mut Vec<u32>, level: u32| -> u32 {
        let c = class_level.len() as u32;
        class_level.push(level);
        c
    };

    for &gid in nl.topo_order() {
        let gate = nl.gate(gid);
        let kind = gate.kind();
        // Resolve operand classes; nets without a combinational driver are
        // leaves, salted by net id (never shared between distinct nets).
        let mut operands = [0u32; 3];
        let mut op_level = 0u32;
        for (i, &inp) in gate.inputs().iter().enumerate() {
            let class = match class_of_net[inp.index()] {
                Some(c) => c,
                None => {
                    let c = new_class(&mut class_level, 0);
                    class_of_net[inp.index()] = Some(c);
                    gather.push((inp, c));
                    c
                }
            };
            operands[i] = class;
            op_level = op_level.max(class_level[class as usize] + 1);
        }
        if kind.input_count() == 0 {
            // Constants sit at level 0.
            op_level = 0;
        }
        let out = gate.output();
        let is_cut = cuts.contains(&out);

        if !is_cut {
            // Folding and hash-consing only apply to uncut gates.
            if kind == CellKind::Buf {
                class_of_net[out.index()] = Some(operands[0]);
                stats.folded += 1;
                continue;
            }
            let mut key_ops = operands;
            if ab_commutes(kind) && key_ops[0] > key_ops[1] {
                key_ops.swap(0, 1);
            }
            if let Some(&c) = cse.get(&(kind, key_ops)) {
                class_of_net[out.index()] = Some(c);
                if matches!(kind, CellKind::Tie0 | CellKind::Tie1) {
                    stats.folded += 1;
                } else {
                    stats.deduped += 1;
                }
                continue;
            }
            let c = new_class(&mut class_level, op_level);
            cse.insert((kind, key_ops), c);
            class_of_net[out.index()] = Some(c);
            push_op(
                &mut pending,
                op_level,
                kind,
                [c, operands[0], operands[1], operands[2]],
            );
        } else {
            // Cut: fresh unshared class, op materialized (even Buf/Tie),
            // excluded from the cse table, force applied after its level.
            let c = new_class(&mut class_level, op_level);
            class_of_net[out.index()] = Some(c);
            push_op(
                &mut pending,
                op_level,
                kind,
                [c, operands[0], operands[1], operands[2]],
            );
            if fixups.len() <= op_level as usize {
                fixups.resize(op_level as usize + 1, Vec::new());
            }
            fixups[op_level as usize].push((out, c));
            stats.cuts += 1;
        }
    }

    // Emit: level-major, kind-grouped runs, with each level's force fixups
    // after its runs (readers of a net are always at a strictly higher
    // level than its driver, so the fixed-up value is what they see).
    let mut ops = OpArrays::default();
    let mut steps = Vec::new();
    for (level, buckets) in pending.iter().enumerate() {
        for (&kind, items) in buckets {
            let start = ops.out.len() as u32;
            for &[o, a, b, c] in items {
                ops.out.push(o);
                ops.a.push(a);
                ops.b.push(b);
                ops.c.push(c);
            }
            steps.push(Step::Run(OpRun {
                kind,
                start,
                len: items.len() as u32,
            }));
        }
        if let Some(fx) = fixups.get(level) {
            for &(net, slot) in fx {
                steps.push(Step::ForceFixup { net, slot });
            }
        }
    }

    // Scatter every combinationally driven net, ascending net order.
    let mut scatter = Vec::new();
    for (i, class) in class_of_net.iter().enumerate() {
        let net = NetId(i as u32);
        let comb_driven = nl
            .driver_of(net)
            .is_some_and(|g| !nl.gate(g).kind().is_sequential());
        if comb_driven {
            scatter.push((net, class.expect("comb net has a class")));
        }
    }

    stats.ops = ops.out.len();
    stats.leaves = gather.len();
    stats.levels = pending.len();
    CompiledNetlist {
        slot_count: class_level.len() as u32,
        gather,
        steps,
        ops,
        scatter,
        stats,
    }
}

fn push_op(
    pending: &mut Vec<BTreeMap<CellKind, Vec<[u32; 4]>>>,
    level: u32,
    kind: CellKind,
    op: [u32; 4],
) {
    if pending.len() <= level as usize {
        pending.resize(level as usize + 1, BTreeMap::new());
    }
    pending[level as usize].entry(kind).or_default().push(op);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two structurally identical AND-OR cones over the *same* leaf nets
    /// share one op block; a third cone over different leaves does not.
    #[test]
    fn identical_cones_share_one_block() {
        let mut nl = Netlist::new("dedup");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let t1 = nl.add_net("t1");
        let t2 = nl.add_net("t2");
        let y1 = nl.add_net("y1");
        let y2 = nl.add_net("y2");
        // Cone 1 and cone 2: (a & b) | c — identical structure, same leaves.
        nl.add_gate(CellKind::And2, "g1", &[a, b], t1).unwrap();
        nl.add_gate(CellKind::Or2, "g2", &[t1, c], y1).unwrap();
        nl.add_gate(CellKind::And2, "g3", &[b, a], t2).unwrap();
        nl.add_gate(CellKind::Or2, "g4", &[t2, c], y2).unwrap();
        nl.add_output("y1", y1);
        nl.add_output("y2", y2);
        let nl = nl.finalize().unwrap();
        let p = compile(&nl, &BTreeSet::new());
        // One AND op + one OR op — the second cone dedups entirely (note the
        // commuted AND operands still merge).
        assert_eq!(p.op_count(), 2, "identical cones must share one block");
        assert_eq!(p.stats().deduped, 2);
        // Both outputs scatter from the same slot.
        let slot_of = |net: NetId| {
            p.scatter()
                .iter()
                .find(|(n, _)| *n == net)
                .map(|&(_, s)| s)
                .unwrap()
        };
        assert_eq!(slot_of(y1), slot_of(y2));
        // All four comb nets are scattered (t1/t2 share, y1/y2 share).
        assert_eq!(p.scatter().len(), 4);
    }

    /// Cones that differ only in which flip-flop feeds them never merge:
    /// leaves are salted by net id.
    #[test]
    fn cones_on_distinct_ff_outputs_do_not_merge() {
        let mut nl = Netlist::new("ff");
        let d = nl.add_input("d");
        let en = nl.add_input("en");
        let q1 = nl.add_net("q1");
        let q2 = nl.add_net("q2");
        let y1 = nl.add_net("y1");
        let y2 = nl.add_net("y2");
        // Two flip-flops with identical input cones (same d, same en) but
        // distinct outputs — e.g. they could be initialized differently.
        nl.add_gate(CellKind::Dffe, "f1", &[d, en], q1).unwrap();
        nl.add_gate(CellKind::Dffe, "f2", &[d, en], q2).unwrap();
        // Structurally identical inverters hanging off each FF.
        nl.add_gate(CellKind::Inv, "i1", &[q1], y1).unwrap();
        nl.add_gate(CellKind::Inv, "i2", &[q2], y2).unwrap();
        nl.add_output("y1", y1);
        nl.add_output("y2", y2);
        let nl = nl.finalize().unwrap();
        let p = compile(&nl, &BTreeSet::new());
        assert_eq!(p.op_count(), 2, "distinct FF leaves must not merge");
        assert_eq!(p.stats().deduped, 0);
        assert_eq!(p.stats().leaves, 2, "q1 and q2 gather separately");
    }

    /// Cones that differ only in which primary input (e.g. a bus read-data
    /// net vs a plain port net) feeds them never merge.
    #[test]
    fn cones_on_distinct_inputs_do_not_merge() {
        let mut nl = Netlist::new("inp");
        let rdata = nl.add_input("rdata0"); // bus-owned in the simulator
        let port = nl.add_input("port0"); // plain input
        let shared = nl.add_input("shared");
        let y1 = nl.add_net("y1");
        let y2 = nl.add_net("y2");
        nl.add_gate(CellKind::Xor2, "x1", &[rdata, shared], y1)
            .unwrap();
        nl.add_gate(CellKind::Xor2, "x2", &[port, shared], y2)
            .unwrap();
        nl.add_output("y1", y1);
        nl.add_output("y2", y2);
        let nl = nl.finalize().unwrap();
        let p = compile(&nl, &BTreeSet::new());
        assert_eq!(p.op_count(), 2, "distinct input leaves must not merge");
        assert_eq!(p.stats().deduped, 0);
    }

    /// Buf gates fold into their operand's class; Tie constants share one
    /// class per polarity.
    #[test]
    fn buf_and_tie_fold() {
        let mut nl = Netlist::new("fold");
        let a = nl.add_input("a");
        let b1 = nl.add_net("b1");
        let b2 = nl.add_net("b2");
        let z1 = nl.add_net("z1");
        let z2 = nl.add_net("z2");
        let y = nl.add_net("y");
        nl.add_gate(CellKind::Buf, "u1", &[a], b1).unwrap();
        nl.add_gate(CellKind::Buf, "u2", &[b1], b2).unwrap();
        nl.add_gate(CellKind::Tie0, "t1", &[], z1).unwrap();
        nl.add_gate(CellKind::Tie0, "t2", &[], z2).unwrap();
        nl.add_gate(CellKind::Or2, "o", &[b2, z1], y).unwrap();
        nl.add_output("y", y);
        nl.add_output("z2", z2);
        let nl = nl.finalize().unwrap();
        let p = compile(&nl, &BTreeSet::new());
        // One Tie0 op + one Or2 op; both Bufs and the second Tie0 fold.
        assert_eq!(p.op_count(), 2);
        assert_eq!(p.stats().folded, 3);
        // b1/b2 scatter from a's leaf slot; z1/z2 from the shared constant.
        let slot_of = |net: NetId| {
            p.scatter()
                .iter()
                .find(|(n, _)| *n == net)
                .map(|&(_, s)| s)
                .unwrap()
        };
        assert_eq!(slot_of(b1), slot_of(b2));
        assert_eq!(slot_of(z1), slot_of(z2));
    }

    /// A cut net gets a fresh, unshared class even when an identical
    /// sibling exists, and the program records its force fixup.
    #[test]
    fn cut_nets_never_share_and_emit_fixups() {
        let mut nl = Netlist::new("cut");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y1 = nl.add_net("y1");
        let y2 = nl.add_net("y2");
        let z = nl.add_net("z");
        nl.add_gate(CellKind::And2, "g1", &[a, b], y1).unwrap();
        nl.add_gate(CellKind::And2, "g2", &[a, b], y2).unwrap();
        nl.add_gate(CellKind::Inv, "g3", &[y2], z).unwrap();
        nl.add_output("y1", y1);
        nl.add_output("z", z);
        let nl = nl.finalize().unwrap();

        let uncut = compile(&nl, &BTreeSet::new());
        assert_eq!(uncut.op_count(), 2, "AND dedups, plus the inverter");

        let cuts: BTreeSet<NetId> = [y2].into_iter().collect();
        let cut = compile(&nl, &cuts);
        assert_eq!(cut.op_count(), 3, "cut AND must not share");
        assert_eq!(cut.stats().cuts, 1);
        let fixup = cut
            .steps()
            .iter()
            .find_map(|s| match s {
                Step::ForceFixup { net, slot } => Some((*net, *slot)),
                _ => None,
            })
            .expect("cut emits a fixup");
        assert_eq!(fixup.0, y2);
        // The fixup must precede the inverter's run (its only reader).
        let fixup_pos = cut
            .steps()
            .iter()
            .position(|s| matches!(s, Step::ForceFixup { .. }))
            .unwrap();
        let inv_pos = cut
            .steps()
            .iter()
            .position(|s| matches!(s, Step::Run(r) if r.kind == CellKind::Inv))
            .unwrap();
        assert!(fixup_pos < inv_pos, "fixup must run before readers");
        // The cut slot is the inverter's operand.
        let inv_run = cut
            .steps()
            .iter()
            .find_map(|s| match s {
                Step::Run(r) if r.kind == CellKind::Inv => Some(*r),
                _ => None,
            })
            .unwrap();
        assert_eq!(cut.ops().a[inv_run.start as usize], fixup.1);
    }

    /// The cone restriction keeps exactly the ops transitively reachable
    /// from the requested leaves, and scatters only their nets.
    #[test]
    fn cone_from_leaves_restricts_to_reachable_ops() {
        let mut nl = Netlist::new("cone");
        let rd = nl.add_input("rdata0");
        let other = nl.add_input("other");
        let t = nl.add_net("t");
        let u = nl.add_net("u");
        let v = nl.add_net("v");
        // rd feeds t feeds u; `other` feeds v independently.
        nl.add_gate(CellKind::Inv, "g1", &[rd], t).unwrap();
        nl.add_gate(CellKind::And2, "g2", &[t, other], u).unwrap();
        nl.add_gate(CellKind::Inv, "g3", &[other], v).unwrap();
        nl.add_output("u", u);
        nl.add_output("v", v);
        let nl = nl.finalize().unwrap();
        let p = compile(&nl, &BTreeSet::new());
        assert_eq!(p.op_count(), 3);

        let cone = p.cone_from_leaves(&[rd]);
        // g3 is outside the cone; g1 and g2 re-run.
        assert_eq!(cone.op_count(), 2, "only rd's cone re-runs");
        assert_eq!(cone.gather().len(), 1, "only rd's leaf slot re-gathers");
        assert_eq!(cone.gather()[0].0, rd);
        let cone_nets: Vec<NetId> = cone.scatter().iter().map(|&(n, _)| n).collect();
        assert_eq!(cone_nets, vec![t, u], "v's slot is untouched");
        // Same slot numbering as the full program.
        assert_eq!(cone.slot_count(), p.slot_count());

        // A net that is not a leaf of the program yields an empty cone.
        let empty = p.cone_from_leaves(&[u]);
        assert_eq!(empty.op_count(), 0);
        assert!(empty.scatter().is_empty());
    }

    /// Runs are kind-homogeneous and level-major: no op reads a slot written
    /// by a later op.
    #[test]
    fn program_is_topologically_ordered() {
        let mut nl = Netlist::new("order");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let mut prev = a;
        for i in 0..6 {
            let t = nl.add_net(format!("t{i}"));
            let kind = if i % 2 == 0 {
                CellKind::Nand2
            } else {
                CellKind::Xor2
            };
            nl.add_gate(kind, format!("g{i}"), &[prev, b], t).unwrap();
            prev = t;
        }
        nl.add_output("y", prev);
        let nl = nl.finalize().unwrap();
        let p = compile(&nl, &BTreeSet::new());
        let mut written: Vec<bool> = vec![false; p.slot_count()];
        for &(_, slot) in p.gather() {
            written[slot as usize] = true;
        }
        for step in p.steps() {
            if let Step::Run(r) = step {
                for i in r.start..r.start + r.len {
                    let i = i as usize;
                    let k = r.kind.input_count();
                    let used: &[u32] = match k {
                        0 => &[],
                        1 => std::slice::from_ref(&p.ops().a[i]),
                        2 => &[p.ops().a[i], p.ops().b[i]][..],
                        _ => &[p.ops().a[i], p.ops().b[i], p.ops().c[i]][..],
                    };
                    for &s in used {
                        assert!(written[s as usize], "op reads unwritten slot");
                    }
                    written[p.ops().out[i] as usize] = true;
                }
            }
        }
        assert!(written.iter().all(|&w| w), "every slot is written");
    }
}
