//! Gate-level netlist model for `xbound`.
//!
//! A [`Netlist`] is a flat sea of gates over single-bit nets, with a light
//! module hierarchy (every gate belongs to a named module such as
//! `exec_unit` or `multiplier`) used for the per-module power breakdowns the
//! paper reports. Netlists are built either by the word-level RTL builder in
//! [`rtl`] or by parsing the structural-Verilog subset in [`verilog`].
//!
//! # Example
//!
//! ```
//! use xbound_netlist::{CellKind, Netlist};
//!
//! let mut nl = Netlist::new("toy");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let y = nl.add_net("y");
//! nl.add_gate(CellKind::Nand2, "g0", &[a, b], y).unwrap();
//! nl.add_output("y", y);
//! let nl = nl.finalize().unwrap();
//! assert_eq!(nl.gate_count(), 1);
//! ```

#![warn(missing_docs)]

pub mod compile;
pub mod rtl;
pub mod verilog;

use std::collections::HashMap;
use std::fmt;

/// Identifier of a single-bit net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// Identifier of a gate instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub u32);

/// Identifier of a hierarchy module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModuleId(pub u16);

impl NetId {
    /// Index into dense per-net arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl GateId {
    /// Index into dense per-gate arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ModuleId {
    /// Index into dense per-module arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The standard-cell kinds understood by the simulator and power engine.
///
/// This is the complete cell vocabulary of the synthetic libraries in
/// `xbound-cells`; the Verilog writer/parser uses the canonical names returned
/// by [`CellKind::name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellKind {
    /// Constant logic 0 driver (no inputs).
    Tie0,
    /// Constant logic 1 driver (no inputs).
    Tie1,
    /// Buffer.
    Buf,
    /// Inverter.
    Inv,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 mux; inputs `[d0, d1, s]`, output `s ? d1 : d0`.
    Mux2,
    /// AND-OR-INVERT 21; inputs `[a, b, c]`, output `!((a & b) | c)`.
    Aoi21,
    /// OR-AND-INVERT 21; inputs `[a, b, c]`, output `!((a | b) & c)`.
    Oai21,
    /// D flip-flop; inputs `[d]`.
    Dff,
    /// D flip-flop with enable; inputs `[d, en]`.
    Dffe,
    /// D flip-flop with synchronous active-low reset; inputs `[d, rstn]`.
    Dffr,
    /// D flip-flop with enable and synchronous active-low reset;
    /// inputs `[d, en, rstn]`.
    Dffre,
}

impl CellKind {
    /// All kinds, in a stable order.
    pub const ALL: [CellKind; 17] = [
        CellKind::Tie0,
        CellKind::Tie1,
        CellKind::Buf,
        CellKind::Inv,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Mux2,
        CellKind::Aoi21,
        CellKind::Oai21,
        CellKind::Dff,
        CellKind::Dffe,
        CellKind::Dffr,
        CellKind::Dffre,
    ];

    /// Canonical library cell name (used in Verilog and Liberty files).
    pub fn name(self) -> &'static str {
        match self {
            CellKind::Tie0 => "TIE0",
            CellKind::Tie1 => "TIE1",
            CellKind::Buf => "BUF",
            CellKind::Inv => "INV",
            CellKind::And2 => "AND2",
            CellKind::Or2 => "OR2",
            CellKind::Nand2 => "NAND2",
            CellKind::Nor2 => "NOR2",
            CellKind::Xor2 => "XOR2",
            CellKind::Xnor2 => "XNOR2",
            CellKind::Mux2 => "MUX2",
            CellKind::Aoi21 => "AOI21",
            CellKind::Oai21 => "OAI21",
            CellKind::Dff => "DFF",
            CellKind::Dffe => "DFFE",
            CellKind::Dffr => "DFFR",
            CellKind::Dffre => "DFFRE",
        }
    }

    /// Looks a kind up by its canonical name.
    pub fn from_name(name: &str) -> Option<CellKind> {
        CellKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// Number of input pins.
    pub fn input_count(self) -> usize {
        match self {
            CellKind::Tie0 | CellKind::Tie1 => 0,
            CellKind::Buf | CellKind::Inv | CellKind::Dff => 1,
            CellKind::And2
            | CellKind::Or2
            | CellKind::Nand2
            | CellKind::Nor2
            | CellKind::Xor2
            | CellKind::Xnor2
            | CellKind::Dffe
            | CellKind::Dffr => 2,
            CellKind::Mux2 | CellKind::Aoi21 | CellKind::Oai21 | CellKind::Dffre => 3,
        }
    }

    /// `true` for flip-flops.
    pub fn is_sequential(self) -> bool {
        matches!(
            self,
            CellKind::Dff | CellKind::Dffe | CellKind::Dffr | CellKind::Dffre
        )
    }

    /// Input pin names, in input order (used by the Verilog writer).
    pub fn pin_names(self) -> &'static [&'static str] {
        match self {
            CellKind::Tie0 | CellKind::Tie1 => &[],
            CellKind::Buf | CellKind::Inv => &["A"],
            CellKind::And2
            | CellKind::Or2
            | CellKind::Nand2
            | CellKind::Nor2
            | CellKind::Xor2
            | CellKind::Xnor2 => &["A", "B"],
            CellKind::Mux2 => &["D0", "D1", "S"],
            CellKind::Aoi21 | CellKind::Oai21 => &["A", "B", "C"],
            CellKind::Dff => &["D"],
            CellKind::Dffe => &["D", "EN"],
            CellKind::Dffr => &["D", "RSTN"],
            CellKind::Dffre => &["D", "EN", "RSTN"],
        }
    }

    /// Output pin name.
    pub fn output_pin(self) -> &'static str {
        if self.is_sequential() {
            "Q"
        } else {
            "Y"
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One gate instance.
#[derive(Debug, Clone)]
pub struct Gate {
    kind: CellKind,
    name: String,
    inputs: [NetId; 3],
    input_len: u8,
    output: NetId,
    module: ModuleId,
}

impl Gate {
    /// Cell kind.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Instance name (unique within the netlist).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input nets, in pin order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs[..self.input_len as usize]
    }

    /// Output net.
    pub fn output(&self) -> NetId {
        self.output
    }

    /// Hierarchy module this gate belongs to.
    pub fn module(&self) -> ModuleId {
        self.module
    }
}

/// Errors produced while building or validating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate was given the wrong number of inputs.
    ArityMismatch {
        /// Offending cell kind.
        kind: CellKind,
        /// Inputs supplied.
        got: usize,
    },
    /// Two drivers contend for one net.
    MultipleDrivers {
        /// The doubly-driven net.
        net: String,
    },
    /// A net has no driver and is not a primary input.
    Undriven {
        /// The floating net.
        net: String,
    },
    /// The combinational logic contains a cycle.
    CombinationalCycle {
        /// A net on the cycle.
        net: String,
    },
    /// A name was reused.
    DuplicateName {
        /// The clashing name.
        name: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ArityMismatch { kind, got } => write!(
                f,
                "cell {kind} expects {} inputs, got {got}",
                kind.input_count()
            ),
            NetlistError::MultipleDrivers { net } => {
                write!(f, "net `{net}` has multiple drivers")
            }
            NetlistError::Undriven { net } => {
                write!(f, "net `{net}` has no driver and is not an input")
            }
            NetlistError::CombinationalCycle { net } => {
                write!(f, "combinational cycle through net `{net}`")
            }
            NetlistError::DuplicateName { name } => {
                write!(f, "duplicate name `{name}`")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// A flat gate-level netlist under construction or finalized.
///
/// Build with [`Netlist::new`] + [`Netlist::add_gate`] (or the [`rtl`]
/// builder), then call [`Netlist::finalize`] to validate and levelize.
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    net_names: Vec<String>,
    gates: Vec<Gate>,
    inputs: Vec<NetId>,
    input_names: Vec<String>,
    outputs: Vec<(String, NetId)>,
    modules: Vec<String>,
    driver: Vec<Option<GateId>>,
    name_set: HashMap<String, ()>,
    // Populated by finalize():
    topo: Vec<GateId>,
    seq_gates: Vec<GateId>,
    fanout: Vec<Vec<GateId>>,
    fanout_comb: Vec<Vec<GateId>>,
    comb_level: Vec<u32>,
    level_count: u32,
    finalized: bool,
}

impl Netlist {
    /// Creates an empty netlist with a design name and a root module.
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            net_names: Vec::new(),
            gates: Vec::new(),
            inputs: Vec::new(),
            input_names: Vec::new(),
            outputs: Vec::new(),
            modules: vec!["top".to_string()],
            driver: Vec::new(),
            name_set: HashMap::new(),
            topo: Vec::new(),
            seq_gates: Vec::new(),
            fanout: Vec::new(),
            fanout_comb: Vec::new(),
            comb_level: Vec::new(),
            level_count: 0,
            finalized: false,
        }
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers a hierarchy module and returns its id.
    ///
    /// Registering the same name twice returns the existing id.
    pub fn add_module(&mut self, name: impl Into<String>) -> ModuleId {
        let name = name.into();
        if let Some(i) = self.modules.iter().position(|m| *m == name) {
            return ModuleId(i as u16);
        }
        self.modules.push(name);
        ModuleId((self.modules.len() - 1) as u16)
    }

    /// Module names, indexed by [`ModuleId`].
    pub fn modules(&self) -> &[String] {
        &self.modules
    }

    /// Name of a module.
    pub fn module_name(&self, m: ModuleId) -> &str {
        &self.modules[m.index()]
    }

    /// Creates a fresh net.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId(self.net_names.len() as u32);
        self.net_names.push(name.into());
        self.driver.push(None);
        id
    }

    /// Creates a fresh net that is a primary input.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let name = name.into();
        let id = self.add_net(name.clone());
        self.inputs.push(id);
        self.input_names.push(name);
        id
    }

    /// Declares `net` a primary output under `name`.
    pub fn add_output(&mut self, name: impl Into<String>, net: NetId) {
        self.outputs.push((name.into(), net));
    }

    /// Adds a gate driving a fresh or existing undriven net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] for a wrong input count,
    /// [`NetlistError::MultipleDrivers`] if `output` already has a driver, and
    /// [`NetlistError::DuplicateName`] if the instance name is taken.
    pub fn add_gate(
        &mut self,
        kind: CellKind,
        name: impl Into<String>,
        inputs: &[NetId],
        output: NetId,
    ) -> Result<GateId, NetlistError> {
        self.add_gate_in(kind, name, inputs, output, ModuleId(0))
    }

    /// Like [`Netlist::add_gate`], assigning the gate to a hierarchy module.
    pub fn add_gate_in(
        &mut self,
        kind: CellKind,
        name: impl Into<String>,
        inputs: &[NetId],
        output: NetId,
        module: ModuleId,
    ) -> Result<GateId, NetlistError> {
        if inputs.len() != kind.input_count() {
            return Err(NetlistError::ArityMismatch {
                kind,
                got: inputs.len(),
            });
        }
        if self.driver[output.index()].is_some() || self.inputs.contains(&output) {
            return Err(NetlistError::MultipleDrivers {
                net: self.net_names[output.index()].clone(),
            });
        }
        let name = name.into();
        if self.name_set.insert(name.clone(), ()).is_some() {
            return Err(NetlistError::DuplicateName { name });
        }
        let mut ins = [NetId(0); 3];
        ins[..inputs.len()].copy_from_slice(inputs);
        let id = GateId(self.gates.len() as u32);
        self.gates.push(Gate {
            kind,
            name,
            inputs: ins,
            input_len: inputs.len() as u8,
            output,
            module,
        });
        self.driver[output.index()] = Some(id);
        Ok(id)
    }

    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// All gates, indexed by [`GateId`].
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// One gate.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Primary inputs.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs as `(name, net)` pairs.
    pub fn outputs(&self) -> &[(String, NetId)] {
        &self.outputs
    }

    /// Name of a net.
    pub fn net_name(&self, id: NetId) -> &str {
        &self.net_names[id.index()]
    }

    /// Finds a net by exact name (linear scan; intended for tests/tools).
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_names
            .iter()
            .position(|n| n == name)
            .map(|i| NetId(i as u32))
    }

    /// The gate driving `net`, if any.
    pub fn driver_of(&self, net: NetId) -> Option<GateId> {
        self.driver[net.index()]
    }

    /// Validates the netlist and computes the evaluation order.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Undriven`] for floating nets and
    /// [`NetlistError::CombinationalCycle`] if the combinational gates cannot
    /// be topologically ordered.
    pub fn finalize(mut self) -> Result<Netlist, NetlistError> {
        // Every net must be driven or be a primary input.
        for (i, drv) in self.driver.iter().enumerate() {
            let id = NetId(i as u32);
            if drv.is_none() && !self.inputs.contains(&id) {
                return Err(NetlistError::Undriven {
                    net: self.net_names[i].clone(),
                });
            }
        }
        // Kahn levelization over combinational gates. Sequential outputs and
        // primary inputs are sources.
        let mut indeg = vec![0usize; self.gates.len()];
        let mut fanout: Vec<Vec<GateId>> = vec![Vec::new(); self.net_names.len()];
        for (gi, g) in self.gates.iter().enumerate() {
            for &inp in g.inputs() {
                fanout[inp.index()].push(GateId(gi as u32));
            }
        }
        let mut ready: Vec<GateId> = Vec::new();
        for (gi, g) in self.gates.iter().enumerate() {
            if g.kind.is_sequential() {
                continue;
            }
            let mut d = 0;
            for &inp in g.inputs() {
                if let Some(drv) = self.driver[inp.index()] {
                    if !self.gates[drv.index()].kind.is_sequential() {
                        d += 1;
                    }
                }
            }
            indeg[gi] = d;
            if d == 0 {
                ready.push(GateId(gi as u32));
            }
        }
        let mut topo = Vec::with_capacity(self.gates.len());
        let mut head = 0;
        while head < ready.len() {
            let g = ready[head];
            head += 1;
            topo.push(g);
            let out = self.gates[g.index()].output;
            for &succ in &fanout[out.index()] {
                let sg = &self.gates[succ.index()];
                if sg.kind.is_sequential() {
                    continue;
                }
                indeg[succ.index()] -= 1;
                if indeg[succ.index()] == 0 {
                    ready.push(succ);
                }
            }
        }
        let comb_count = self
            .gates
            .iter()
            .filter(|g| !g.kind.is_sequential())
            .count();
        if topo.len() != comb_count {
            // Find a gate still blocked to name the cycle.
            let blocked = self
                .gates
                .iter()
                .enumerate()
                .find(|(i, g)| !g.kind.is_sequential() && indeg[*i] > 0)
                .map(|(_, g)| self.net_names[g.output.index()].clone())
                .unwrap_or_default();
            return Err(NetlistError::CombinationalCycle { net: blocked });
        }
        self.seq_gates = self
            .gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.kind.is_sequential())
            .map(|(i, _)| GateId(i as u32))
            .collect();
        // Fanout/cone index for event-driven evaluation: per-net
        // combinational readers, and per-gate logic levels (a combinational
        // gate's level is 1 + the max level of its combinational drivers;
        // flip-flops and primary inputs are level-0 sources). The levels
        // give the incremental simulator a bucket queue that processes a
        // dirty cone in dependency order.
        self.fanout_comb = fanout
            .iter()
            .map(|gs| {
                gs.iter()
                    .copied()
                    .filter(|&g| !self.gates[g.index()].kind.is_sequential())
                    .collect()
            })
            .collect();
        self.comb_level = vec![0u32; self.gates.len()];
        let mut max_level = 0u32;
        for &g in &topo {
            let mut lvl = 0u32;
            for &inp in self.gates[g.index()].inputs() {
                if let Some(drv) = self.driver[inp.index()] {
                    if !self.gates[drv.index()].kind.is_sequential() {
                        lvl = lvl.max(self.comb_level[drv.index()] + 1);
                    }
                }
            }
            self.comb_level[g.index()] = lvl;
            max_level = max_level.max(lvl);
        }
        self.level_count = if topo.is_empty() { 0 } else { max_level + 1 };
        self.topo = topo;
        self.fanout = fanout;
        self.finalized = true;
        Ok(self)
    }

    /// `true` once [`Netlist::finalize`] has succeeded.
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    /// Combinational gates in evaluation order.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has not been finalized.
    pub fn topo_order(&self) -> &[GateId] {
        assert!(self.finalized, "netlist not finalized");
        &self.topo
    }

    /// Sequential gates (flip-flops).
    ///
    /// # Panics
    ///
    /// Panics if the netlist has not been finalized.
    pub fn sequential_gates(&self) -> &[GateId] {
        assert!(self.finalized, "netlist not finalized");
        &self.seq_gates
    }

    /// Gates reading `net`.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has not been finalized.
    pub fn fanout_of(&self, net: NetId) -> &[GateId] {
        assert!(self.finalized, "netlist not finalized");
        &self.fanout[net.index()]
    }

    /// Combinational gates reading `net` (flip-flop readers excluded).
    ///
    /// This is the edge set the event-driven simulator follows when a net
    /// changes value: only combinational readers must re-evaluate within
    /// the cycle (flip-flops sample at the clock edge).
    ///
    /// # Panics
    ///
    /// Panics if the netlist has not been finalized.
    pub fn fanout_comb_of(&self, net: NetId) -> &[GateId] {
        assert!(self.finalized, "netlist not finalized");
        &self.fanout_comb[net.index()]
    }

    /// Logic level of a gate: combinational gates are `1 +` the maximum
    /// level of their combinational drivers; flip-flops (and gates fed only
    /// by flip-flops or primary inputs) are level 0.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has not been finalized.
    pub fn comb_level(&self, g: GateId) -> u32 {
        assert!(self.finalized, "netlist not finalized");
        self.comb_level[g.index()]
    }

    /// Number of distinct combinational logic levels (0 for a purely
    /// sequential netlist).
    ///
    /// # Panics
    ///
    /// Panics if the netlist has not been finalized.
    pub fn comb_level_count(&self) -> usize {
        assert!(self.finalized, "netlist not finalized");
        self.level_count as usize
    }

    /// Per-module gate counts (index by [`ModuleId`]).
    pub fn module_gate_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.modules.len()];
        for g in &self.gates {
            counts[g.module.index()] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Netlist {
        let mut nl = Netlist::new("tiny");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let n1 = nl.add_net("n1");
        let q = nl.add_net("q");
        nl.add_gate(CellKind::Nand2, "u1", &[a, b], n1).unwrap();
        nl.add_gate(CellKind::Dff, "ff", &[n1], q).unwrap();
        nl.add_output("q", q);
        nl
    }

    #[test]
    fn build_and_finalize() {
        let nl = tiny().finalize().unwrap();
        assert_eq!(nl.gate_count(), 2);
        assert_eq!(nl.topo_order().len(), 1);
        assert_eq!(nl.sequential_gates().len(), 1);
        assert_eq!(nl.net_name(NetId(2)), "n1");
    }

    #[test]
    fn arity_checked() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.add_net("y");
        let err = nl.add_gate(CellKind::Nand2, "u", &[a], y).unwrap_err();
        assert!(matches!(err, NetlistError::ArityMismatch { .. }));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.add_net("y");
        nl.add_gate(CellKind::Buf, "u1", &[a], y).unwrap();
        let err = nl.add_gate(CellKind::Inv, "u2", &[a], y).unwrap_err();
        assert!(matches!(err, NetlistError::MultipleDrivers { .. }));
    }

    #[test]
    fn driving_primary_input_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let err = nl.add_gate(CellKind::Buf, "u1", &[b], a).unwrap_err();
        assert!(matches!(err, NetlistError::MultipleDrivers { .. }));
    }

    #[test]
    fn undriven_net_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let float = nl.add_net("float");
        let y = nl.add_net("y");
        nl.add_gate(CellKind::And2, "u1", &[a, float], y).unwrap();
        let err = nl.finalize().unwrap_err();
        assert!(matches!(err, NetlistError::Undriven { .. }));
    }

    #[test]
    fn combinational_cycle_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let n1 = nl.add_net("n1");
        let n2 = nl.add_net("n2");
        nl.add_gate(CellKind::And2, "u1", &[a, n2], n1).unwrap();
        nl.add_gate(CellKind::Buf, "u2", &[n1], n2).unwrap();
        let err = nl.finalize().unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalCycle { .. }));
    }

    #[test]
    fn dff_breaks_cycles() {
        let mut nl = Netlist::new("t");
        let q = nl.add_net("q");
        let d = nl.add_net("d");
        nl.add_gate(CellKind::Inv, "u1", &[q], d).unwrap();
        nl.add_gate(CellKind::Dff, "ff", &[d], q).unwrap();
        let nl = nl.finalize().unwrap();
        assert_eq!(nl.topo_order().len(), 1);
    }

    #[test]
    fn duplicate_instance_name_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y1 = nl.add_net("y1");
        let y2 = nl.add_net("y2");
        nl.add_gate(CellKind::Buf, "u", &[a], y1).unwrap();
        let err = nl.add_gate(CellKind::Buf, "u", &[a], y2).unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateName { .. }));
    }

    #[test]
    fn modules_deduplicate() {
        let mut nl = Netlist::new("t");
        let m1 = nl.add_module("frontend");
        let m2 = nl.add_module("frontend");
        assert_eq!(m1, m2);
        assert_eq!(nl.module_name(m1), "frontend");
        assert_eq!(nl.modules().len(), 2); // top + frontend
    }

    #[test]
    fn cell_kind_name_round_trip() {
        for k in CellKind::ALL {
            assert_eq!(CellKind::from_name(k.name()), Some(k));
            assert_eq!(k.pin_names().len(), k.input_count());
        }
        assert_eq!(CellKind::from_name("BOGUS"), None);
    }

    #[test]
    fn fanout_computed() {
        let nl = tiny().finalize().unwrap();
        let a = nl.find_net("a").unwrap();
        assert_eq!(nl.fanout_of(a).len(), 1);
        let n1 = nl.find_net("n1").unwrap();
        assert_eq!(nl.fanout_of(n1).len(), 1);
    }

    #[test]
    fn comb_fanout_excludes_flip_flops() {
        let nl = tiny().finalize().unwrap();
        let n1 = nl.find_net("n1").unwrap();
        assert_eq!(nl.fanout_of(n1).len(), 1, "DFF reads n1");
        assert!(nl.fanout_comb_of(n1).is_empty(), "no combinational readers");
        let a = nl.find_net("a").unwrap();
        assert_eq!(nl.fanout_comb_of(a).len(), 1, "NAND reads a");
    }

    #[test]
    fn levels_follow_dependencies() {
        // a -> inv -> and(b) -> dff; and is one level above inv.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let n1 = nl.add_net("n1");
        let n2 = nl.add_net("n2");
        let q = nl.add_net("q");
        let g_inv = nl.add_gate(CellKind::Inv, "u1", &[a], n1).unwrap();
        let g_and = nl.add_gate(CellKind::And2, "u2", &[n1, b], n2).unwrap();
        nl.add_gate(CellKind::Dff, "ff", &[n2], q).unwrap();
        let nl = nl.finalize().unwrap();
        assert_eq!(nl.comb_level(g_inv), 0);
        assert_eq!(nl.comb_level(g_and), 1);
        assert_eq!(nl.comb_level_count(), 2);
        assert_eq!(nl.fanout_comb_of(a), &[g_inv]);
        assert_eq!(nl.fanout_comb_of(n1), &[g_and]);
        // Levels strictly increase along combinational edges.
        for &g in nl.topo_order() {
            for &inp in nl.gate(g).inputs() {
                if let Some(drv) = nl.driver_of(inp) {
                    if !nl.gate(drv).kind().is_sequential() {
                        assert!(nl.comb_level(g) > nl.comb_level(drv));
                    }
                }
            }
        }
    }
}
