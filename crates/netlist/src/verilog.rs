//! Structural-Verilog subset writer and parser.
//!
//! The paper's flow consumes a post-synthesis gate-level netlist (`.v`).
//! This module emits and re-reads the flat structural subset used by
//! `xbound`: one `module`, `input`/`output`/`wire` declarations, and
//! standard-cell instances with named pin connections. Hierarchy membership
//! is preserved through `(* module = "name" *)` attributes on instances.
//!
//! ```text
//! module cpu (rstn, ...);
//!   input rstn;
//!   wire \frontend/pc_q[0] ;
//!   (* module = "frontend" *)
//!   NAND2 g12_nand2 (.A(n1), .B(n2), .Y(n3));
//! endmodule
//! ```
//!
//! # Example
//!
//! ```
//! use xbound_netlist::{CellKind, Netlist, verilog};
//!
//! let mut nl = Netlist::new("toy");
//! let a = nl.add_input("a");
//! let y = nl.add_net("y");
//! nl.add_gate(CellKind::Inv, "u1", &[a], y).unwrap();
//! nl.add_output("y", y);
//! let nl = nl.finalize().unwrap();
//! let text = verilog::write(&nl);
//! let back = verilog::parse(&text).unwrap();
//! assert_eq!(back.gate_count(), 1);
//! ```

use crate::{CellKind, Netlist, NetlistError};
use std::collections::HashMap;
use std::fmt;

/// Errors from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerilogError {
    /// Lexical or syntactic problem at a line.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A cell name is not part of the supported vocabulary.
    UnknownCell {
        /// The unresolved cell name.
        cell: String,
    },
    /// A pin name does not belong to the cell.
    UnknownPin {
        /// Cell kind.
        cell: String,
        /// Offending pin.
        pin: String,
    },
    /// Netlist-level validation failed after parsing.
    Netlist(NetlistError),
}

impl fmt::Display for VerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerilogError::Syntax { line, message } => {
                write!(f, "syntax error at line {line}: {message}")
            }
            VerilogError::UnknownCell { cell } => write!(f, "unknown cell `{cell}`"),
            VerilogError::UnknownPin { cell, pin } => {
                write!(f, "unknown pin `{pin}` on cell `{cell}`")
            }
            VerilogError::Netlist(e) => write!(f, "netlist validation: {e}"),
        }
    }
}

impl std::error::Error for VerilogError {}

impl From<NetlistError> for VerilogError {
    fn from(e: NetlistError) -> VerilogError {
        VerilogError::Netlist(e)
    }
}

fn ident_needs_escape(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return true,
    }
    !name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$')
}

fn emit_ident(name: &str) -> String {
    if ident_needs_escape(name) {
        format!("\\{name} ")
    } else {
        name.to_string()
    }
}

/// Serializes a netlist to the structural-Verilog subset.
pub fn write(nl: &Netlist) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "// xbound structural netlist\nmodule {} (",
        nl.name()
    ));
    // Output ports are emitted under their *net* names; alias names used at
    // the API level (`add_output`) are recorded as comments. Round-tripping
    // therefore preserves structure and hierarchy, not output aliases.
    let mut ports: Vec<String> = nl
        .inputs()
        .iter()
        .map(|&n| emit_ident(nl.net_name(n)))
        .collect();
    let mut seen_out = std::collections::HashSet::new();
    for (_, net) in nl.outputs() {
        if seen_out.insert(*net) {
            ports.push(emit_ident(nl.net_name(*net)));
        }
    }
    out.push_str(&ports.join(", "));
    out.push_str(");\n");
    for &n in nl.inputs() {
        out.push_str(&format!("  input {};\n", emit_ident(nl.net_name(n))));
    }
    for (name, net) in nl.outputs() {
        out.push_str(&format!(
            "  output {};{}\n",
            emit_ident(nl.net_name(*net)),
            if name != nl.net_name(*net) {
                format!(" // alias: {name}")
            } else {
                String::new()
            }
        ));
    }
    // Wires: every net that is not a primary input or an output port.
    let input_set: std::collections::HashSet<_> = nl.inputs().iter().copied().collect();
    for i in 0..nl.net_count() {
        let id = crate::NetId(i as u32);
        if !input_set.contains(&id) && !seen_out.contains(&id) {
            out.push_str(&format!("  wire {};\n", emit_ident(nl.net_name(id))));
        }
    }
    for g in nl.gates() {
        let module = nl.module_name(g.module());
        if module != "top" {
            out.push_str(&format!("  (* module = \"{module}\" *)\n"));
        }
        let mut pins: Vec<String> = g
            .kind()
            .pin_names()
            .iter()
            .zip(g.inputs())
            .map(|(pin, &net)| format!(".{pin}({})", emit_ident(nl.net_name(net))))
            .collect();
        pins.push(format!(
            ".{}({})",
            g.kind().output_pin(),
            emit_ident(nl.net_name(g.output()))
        ));
        out.push_str(&format!(
            "  {} {} ({});\n",
            g.kind().name(),
            emit_ident(g.name()),
            pins.join(", ")
        ));
    }
    out.push_str("endmodule\n");
    out
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Sym(char),
    Str(String),
    AttrStart, // (*
    AttrEnd,   // *)
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src,
            pos: 0,
            line: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> VerilogError {
        VerilogError::Syntax {
            line: self.line,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.src[self.pos..].chars().next()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn next_tok(&mut self) -> Result<Option<(Tok, usize)>, VerilogError> {
        loop {
            // Skip whitespace and comments.
            match self.peek() {
                None => return Ok(None),
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.src[self.pos..].starts_with("//") => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
        let line = self.line;
        let c = self.peek().expect("non-empty");
        if self.src[self.pos..].starts_with("(*") {
            self.bump();
            self.bump();
            return Ok(Some((Tok::AttrStart, line)));
        }
        if self.src[self.pos..].starts_with("*)") {
            self.bump();
            self.bump();
            return Ok(Some((Tok::AttrEnd, line)));
        }
        match c {
            '\\' => {
                self.bump();
                let mut s = String::new();
                while let Some(c) = self.peek() {
                    if c.is_whitespace() {
                        break;
                    }
                    s.push(c);
                    self.bump();
                }
                if s.is_empty() {
                    return Err(self.error("empty escaped identifier"));
                }
                Ok(Some((Tok::Ident(s), line)))
            }
            '"' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        None => return Err(self.error("unterminated string")),
                        Some('"') => break,
                        Some(c) => s.push(c),
                    }
                }
                Ok(Some((Tok::Str(s), line)))
            }
            c if c.is_ascii_alphanumeric() || c == '_' || c == '$' => {
                let mut s = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '$' || c == '[' || c == ']' {
                        s.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Ok(Some((Tok::Ident(s), line)))
            }
            '(' | ')' | ';' | ',' | '.' | '=' => {
                self.bump();
                Ok(Some((Tok::Sym(c), line)))
            }
            other => Err(self.error(format!("unexpected character `{other}`"))),
        }
    }
}

/// Parses the structural-Verilog subset emitted by [`write()`].
///
/// # Errors
///
/// Returns [`VerilogError`] on lexical/syntactic problems, unknown cells or
/// pins, and netlist validation failures (the result is finalized).
pub fn parse(src: &str) -> Result<Netlist, VerilogError> {
    let mut lx = Lexer::new(src);
    let mut toks: Vec<(Tok, usize)> = Vec::new();
    while let Some(t) = lx.next_tok()? {
        toks.push(t);
    }
    let mut i = 0usize;
    let err_at = |i: usize, toks: &[(Tok, usize)], msg: &str| -> VerilogError {
        let line = toks.get(i).map(|t| t.1).unwrap_or(0);
        VerilogError::Syntax {
            line,
            message: msg.to_string(),
        }
    };
    macro_rules! expect_sym {
        ($c:expr, $msg:expr) => {{
            match toks.get(i) {
                Some((Tok::Sym(c), _)) if *c == $c => i += 1,
                _ => return Err(err_at(i, &toks, $msg)),
            }
        }};
    }
    macro_rules! ident {
        ($msg:expr) => {{
            match toks.get(i) {
                Some((Tok::Ident(s), _)) => {
                    i += 1;
                    s.clone()
                }
                _ => return Err(err_at(i, &toks, $msg)),
            }
        }};
    }

    let kw = ident!("expected `module`");
    if kw != "module" {
        return Err(err_at(i - 1, &toks, "expected `module`"));
    }
    let name = ident!("expected module name");
    let mut nl = Netlist::new(name);
    expect_sym!('(', "expected `(` after module name");
    // Port list (names only).
    let mut port_order: Vec<String> = Vec::new();
    loop {
        match toks.get(i) {
            Some((Tok::Sym(')'), _)) => {
                i += 1;
                break;
            }
            Some((Tok::Ident(s), _)) => {
                port_order.push(s.clone());
                i += 1;
                if let Some((Tok::Sym(','), _)) = toks.get(i) {
                    i += 1;
                }
            }
            _ => return Err(err_at(i, &toks, "malformed port list")),
        }
    }
    expect_sym!(';', "expected `;` after port list");

    let mut nets: HashMap<String, crate::NetId> = HashMap::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut pending_module: Option<String> = None;
    loop {
        match toks.get(i) {
            None => return Err(err_at(i, &toks, "missing `endmodule`")),
            Some((Tok::Ident(s), _)) if s == "endmodule" => break,
            Some((Tok::AttrStart, _)) => {
                i += 1;
                let key = ident!("expected attribute name");
                expect_sym!('=', "expected `=` in attribute");
                let val = match toks.get(i) {
                    Some((Tok::Str(s), _)) => {
                        i += 1;
                        s.clone()
                    }
                    _ => return Err(err_at(i, &toks, "expected attribute string value")),
                };
                match toks.get(i) {
                    Some((Tok::AttrEnd, _)) => i += 1,
                    _ => return Err(err_at(i, &toks, "expected `*)`")),
                }
                if key == "module" {
                    pending_module = Some(val);
                }
            }
            Some((Tok::Ident(s), _)) if s == "input" || s == "output" || s == "wire" => {
                let decl = s.clone();
                i += 1;
                loop {
                    let n = ident!("expected net name");
                    match decl.as_str() {
                        "input" => {
                            let id = nl.add_input(n.clone());
                            nets.insert(n, id);
                        }
                        "output" => outputs.push(n),
                        _ => {
                            let id = nl.add_net(n.clone());
                            nets.insert(n, id);
                        }
                    }
                    match toks.get(i) {
                        Some((Tok::Sym(','), _)) => i += 1,
                        Some((Tok::Sym(';'), _)) => {
                            i += 1;
                            break;
                        }
                        _ => return Err(err_at(i, &toks, "expected `,` or `;` in declaration")),
                    }
                }
            }
            Some((Tok::Ident(cell), _)) => {
                let cell = cell.clone();
                i += 1;
                let kind = CellKind::from_name(&cell)
                    .ok_or_else(|| VerilogError::UnknownCell { cell: cell.clone() })?;
                let inst = ident!("expected instance name");
                expect_sym!('(', "expected `(` after instance name");
                let mut conns: HashMap<String, String> = HashMap::new();
                loop {
                    match toks.get(i) {
                        Some((Tok::Sym(')'), _)) => {
                            i += 1;
                            break;
                        }
                        Some((Tok::Sym('.'), _)) => {
                            i += 1;
                            let pin = ident!("expected pin name");
                            expect_sym!('(', "expected `(` after pin name");
                            let net = ident!("expected net in pin connection");
                            expect_sym!(')', "expected `)` after net");
                            conns.insert(pin, net);
                            if let Some((Tok::Sym(','), _)) = toks.get(i) {
                                i += 1;
                            }
                        }
                        _ => return Err(err_at(i, &toks, "malformed pin connection")),
                    }
                }
                expect_sym!(';', "expected `;` after instance");
                let module = match pending_module.take() {
                    Some(m) => nl.add_module(m),
                    None => crate::ModuleId(0),
                };
                let mut inputs = Vec::with_capacity(kind.input_count());
                for pin in kind.pin_names() {
                    let net_name = conns.remove(*pin).ok_or_else(|| VerilogError::UnknownPin {
                        cell: cell.clone(),
                        pin: format!("{pin} (missing)"),
                    })?;
                    let id = *nets
                        .entry(net_name.clone())
                        .or_insert_with(|| nl.add_net(net_name.clone()));
                    inputs.push(id);
                }
                let out_name =
                    conns
                        .remove(kind.output_pin())
                        .ok_or_else(|| VerilogError::UnknownPin {
                            cell: cell.clone(),
                            pin: format!("{} (missing)", kind.output_pin()),
                        })?;
                if let Some((pin, _)) = conns.into_iter().next() {
                    return Err(VerilogError::UnknownPin { cell, pin });
                }
                let out_id = *nets
                    .entry(out_name.clone())
                    .or_insert_with(|| nl.add_net(out_name.clone()));
                nl.add_gate_in(kind, inst, &inputs, out_id, module)?;
            }
            _ => return Err(err_at(i, &toks, "unexpected token")),
        }
    }
    for name in outputs {
        let id = *nets
            .entry(name.clone())
            .or_insert_with(|| nl.add_net(name.clone()));
        nl.add_output(name, id);
    }
    Ok(nl.finalize()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtl::Rtl;

    #[test]
    fn round_trip_tiny() {
        let mut nl = Netlist::new("toy");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let m = nl.add_module("alu");
        let y = nl.add_net("alu/y");
        nl.add_gate_in(CellKind::Nand2, "u1", &[a, b], y, m)
            .unwrap();
        nl.add_output("alu/y", y);
        let nl = nl.finalize().unwrap();
        let text = write(&nl);
        let back = parse(&text).unwrap();
        assert_eq!(back.gate_count(), 1);
        assert_eq!(back.inputs().len(), 2);
        assert_eq!(back.gates()[0].kind(), CellKind::Nand2);
        assert_eq!(back.module_name(back.gates()[0].module()), "alu");
    }

    #[test]
    fn round_trip_rtl_design() {
        let mut r = Rtl::new("cnt");
        let en = r.input_bit("en");
        r.set_module("datapath");
        let (h, q) = r.reg("c", 6);
        let one = r.one();
        let (nx, _) = r.inc(&q, one);
        r.reg_next_en(h, &nx, en);
        r.output("q", &q);
        let nl = r.finish().unwrap();
        let text = write(&nl);
        let back = parse(&text).unwrap();
        assert_eq!(back.gate_count(), nl.gate_count());
        assert_eq!(back.sequential_gates().len(), 6);
        // Hierarchy preserved.
        let counts = back.module_gate_counts();
        assert!(counts.iter().sum::<usize>() == back.gate_count());
    }

    #[test]
    fn escaped_identifiers_survive() {
        let mut nl = Netlist::new("esc");
        let a = nl.add_input("weird/name[3]");
        let y = nl.add_net("out.net");
        nl.add_gate(CellKind::Buf, "u1", &[a], y).unwrap();
        nl.add_output("out.net", y);
        let nl = nl.finalize().unwrap();
        let text = write(&nl);
        let back = parse(&text).unwrap();
        assert!(back.find_net("weird/name[3]").is_some());
        assert!(back.find_net("out.net").is_some());
    }

    #[test]
    fn unknown_cell_rejected() {
        let src = "module m (a, y);\n input a;\n wire y;\n BOGUS u1 (.A(a), .Y(y));\nendmodule\n";
        let err = parse(src).unwrap_err();
        assert!(matches!(err, VerilogError::UnknownCell { .. }));
    }

    #[test]
    fn unknown_pin_rejected() {
        let src = "module m (a, y);\n input a;\n wire y;\n INV u1 (.Q(a), .Y(y));\nendmodule\n";
        let err = parse(src).unwrap_err();
        assert!(matches!(err, VerilogError::UnknownPin { .. }));
    }

    #[test]
    fn syntax_error_has_line() {
        let src = "module m (a;\nendmodule\n";
        match parse(src).unwrap_err() {
            VerilogError::Syntax { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn undriven_wire_fails_validation() {
        let src =
            "module m (a, y);\n input a;\n wire y;\n wire fl;\n AND2 u1 (.A(a), .B(fl), .Y(y));\nendmodule\n";
        let err = parse(src).unwrap_err();
        assert!(matches!(
            err,
            VerilogError::Netlist(NetlistError::Undriven { .. })
        ));
    }

    #[test]
    fn comments_and_whitespace_ignored() {
        let src = "// header\nmodule m (a, y); // ports\n input a;\n wire y;\n INV u1 (.A(a), .Y(y));\nendmodule\n";
        let nl = parse(src).unwrap();
        assert_eq!(nl.gate_count(), 1);
    }
}
