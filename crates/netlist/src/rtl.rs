//! Word-level RTL builder that lowers to gates.
//!
//! [`Rtl`] wraps a [`Netlist`] under construction and provides word-level
//! operators (adders, muxes, comparators, registers, a 16×16 multiplier…)
//! that are lowered to the standard-cell vocabulary of [`CellKind`]. The
//! gate-level CPU in `xbound-cpu` is constructed entirely through this
//! builder, which plays the role the logic-synthesis tool plays in the
//! paper's flow.
//!
//! # Example
//!
//! ```
//! use xbound_netlist::rtl::Rtl;
//!
//! let mut r = Rtl::new("accum");
//! let en = r.input_bit("en");
//! let d = r.input("d", 8);
//! let (acc, q) = r.reg("acc", 8);
//! let (sum, _c) = r.add(&q, &d, None);
//! r.reg_next_en(acc, &sum, en);
//! r.output("q", &q);
//! let nl = r.finish().unwrap();
//! assert!(nl.gate_count() > 8);
//! ```

use crate::{CellKind, ModuleId, NetId, Netlist, NetlistError};

/// A bus: little-endian vector of nets (index 0 = LSB).
pub type Bus = Vec<NetId>;

/// Handle to a register created by [`Rtl::reg`]; pass to
/// [`Rtl::reg_next`] / [`Rtl::reg_next_en`] to close the feedback loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegHandle(usize);

#[derive(Debug)]
struct PendingReg {
    name: String,
    q: Bus,
    next: Option<(Bus, Option<NetId>)>,
    module: ModuleId,
}

/// Word-level builder over a flat [`Netlist`].
///
/// All state elements share one implicit clock and one synchronous,
/// active-low reset (primary input `rstn`) that clears every register to 0.
#[derive(Debug)]
pub struct Rtl {
    nl: Netlist,
    module: ModuleId,
    gensym: u64,
    rstn: NetId,
    tie0: Option<NetId>,
    tie1: Option<NetId>,
    regs: Vec<PendingReg>,
}

impl Rtl {
    /// Creates a builder for a design called `name`.
    ///
    /// The primary input `rstn` (synchronous active-low reset) is created
    /// automatically.
    pub fn new(name: impl Into<String>) -> Rtl {
        let mut nl = Netlist::new(name);
        let rstn = nl.add_input("rstn");
        Rtl {
            nl,
            module: ModuleId(0),
            gensym: 0,
            rstn,
            tie0: None,
            tie1: None,
            regs: Vec::new(),
        }
    }

    /// The shared reset net (`rstn`, active low).
    pub fn rstn(&self) -> NetId {
        self.rstn
    }

    /// Switches the current hierarchy module; gates created afterwards belong
    /// to it. Returns the module id.
    pub fn set_module(&mut self, name: &str) -> ModuleId {
        self.module = self.nl.add_module(name);
        self.module
    }

    fn fresh_net(&mut self, hint: &str) -> NetId {
        self.gensym += 1;
        let m = self.nl.module_name(self.module).to_string();
        self.nl.add_net(format!("{m}/{hint}_{}", self.gensym))
    }

    fn fresh_gate_name(&mut self, kind: CellKind) -> String {
        self.gensym += 1;
        format!("g{}_{}", self.gensym, kind.name().to_lowercase())
    }

    fn emit(&mut self, kind: CellKind, inputs: &[NetId], hint: &str) -> NetId {
        let y = self.fresh_net(hint);
        let name = self.fresh_gate_name(kind);
        self.nl
            .add_gate_in(kind, name, inputs, y, self.module)
            .expect("rtl builder emits well-formed gates");
        y
    }

    /// Declares a multi-bit primary input.
    pub fn input(&mut self, name: &str, width: usize) -> Bus {
        (0..width)
            .map(|i| self.nl.add_input(format!("{name}[{i}]")))
            .collect()
    }

    /// Declares a single-bit primary input.
    pub fn input_bit(&mut self, name: &str) -> NetId {
        self.nl.add_input(name)
    }

    /// Declares a bus as a primary output.
    pub fn output(&mut self, name: &str, bus: &Bus) {
        for (i, &n) in bus.iter().enumerate() {
            self.nl.add_output(format!("{name}[{i}]"), n);
        }
    }

    /// Declares a single net as a primary output.
    pub fn output_bit(&mut self, name: &str, net: NetId) {
        self.nl.add_output(name.to_string(), net);
    }

    /// Shared constant-0 net.
    pub fn zero(&mut self) -> NetId {
        if let Some(n) = self.tie0 {
            return n;
        }
        let y = self.nl.add_net("tie0");
        self.nl
            .add_gate_in(CellKind::Tie0, "u_tie0", &[], y, ModuleId(0))
            .expect("tie");
        self.tie0 = Some(y);
        y
    }

    /// Shared constant-1 net.
    pub fn one(&mut self) -> NetId {
        if let Some(n) = self.tie1 {
            return n;
        }
        let y = self.nl.add_net("tie1");
        self.nl
            .add_gate_in(CellKind::Tie1, "u_tie1", &[], y, ModuleId(0))
            .expect("tie");
        self.tie1 = Some(y);
        y
    }

    /// Constant bus of `width` bits holding `value`.
    pub fn lit(&mut self, value: u64, width: usize) -> Bus {
        (0..width)
            .map(|i| {
                if (value >> i) & 1 == 1 {
                    self.one()
                } else {
                    self.zero()
                }
            })
            .collect()
    }

    /// Names a signal by inserting a BUF driving a net with exactly `name`.
    ///
    /// Used to give analysis-relevant nets (e.g. `frontend/branch_taken`)
    /// stable, discoverable names.
    pub fn probe(&mut self, name: &str, net: NetId) -> NetId {
        let y = self.nl.add_net(name.to_string());
        let gname = self.fresh_gate_name(CellKind::Buf);
        self.nl
            .add_gate_in(CellKind::Buf, gname, &[net], y, self.module)
            .expect("probe buf");
        y
    }

    // ---- single-bit primitives -------------------------------------------

    /// Inverter.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.emit(CellKind::Inv, &[a], "inv")
    }

    /// 2-input AND.
    pub fn and(&mut self, a: NetId, b: NetId) -> NetId {
        self.emit(CellKind::And2, &[a, b], "and")
    }

    /// 2-input OR.
    pub fn or(&mut self, a: NetId, b: NetId) -> NetId {
        self.emit(CellKind::Or2, &[a, b], "or")
    }

    /// 2-input XOR.
    pub fn xor(&mut self, a: NetId, b: NetId) -> NetId {
        self.emit(CellKind::Xor2, &[a, b], "xor")
    }

    /// 2-input NAND.
    pub fn nand(&mut self, a: NetId, b: NetId) -> NetId {
        self.emit(CellKind::Nand2, &[a, b], "nand")
    }

    /// 2-input NOR.
    pub fn nor(&mut self, a: NetId, b: NetId) -> NetId {
        self.emit(CellKind::Nor2, &[a, b], "nor")
    }

    /// 2-input XNOR.
    pub fn xnor(&mut self, a: NetId, b: NetId) -> NetId {
        self.emit(CellKind::Xnor2, &[a, b], "xnor")
    }

    /// 2:1 mux (`s ? d1 : d0`).
    pub fn mux(&mut self, s: NetId, d0: NetId, d1: NetId) -> NetId {
        self.emit(CellKind::Mux2, &[d0, d1, s], "mux")
    }

    /// AND of an arbitrary set of nets (balanced tree).
    pub fn and_all(&mut self, nets: &[NetId]) -> NetId {
        self.tree(nets, CellKind::And2)
    }

    /// OR of an arbitrary set of nets (balanced tree).
    pub fn or_all(&mut self, nets: &[NetId]) -> NetId {
        self.tree(nets, CellKind::Or2)
    }

    fn tree(&mut self, nets: &[NetId], kind: CellKind) -> NetId {
        assert!(!nets.is_empty(), "reduction over empty set");
        let mut layer: Vec<NetId> = nets.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(self.emit(kind, &[pair[0], pair[1]], "tree"));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        layer[0]
    }

    // ---- bus operations ---------------------------------------------------

    /// Bitwise NOT of a bus.
    pub fn not_bus(&mut self, a: &Bus) -> Bus {
        a.iter().map(|&n| self.not(n)).collect()
    }

    /// Bitwise AND of two equal-width buses.
    ///
    /// # Panics
    ///
    /// Panics if widths differ (applies to all two-bus operations).
    pub fn and_bus(&mut self, a: &Bus, b: &Bus) -> Bus {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        a.iter().zip(b).map(|(&x, &y)| self.and(x, y)).collect()
    }

    /// Bitwise OR of two equal-width buses.
    pub fn or_bus(&mut self, a: &Bus, b: &Bus) -> Bus {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        a.iter().zip(b).map(|(&x, &y)| self.or(x, y)).collect()
    }

    /// Bitwise XOR of two equal-width buses.
    pub fn xor_bus(&mut self, a: &Bus, b: &Bus) -> Bus {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        a.iter().zip(b).map(|(&x, &y)| self.xor(x, y)).collect()
    }

    /// AND of every bus bit with one scalar net (masking).
    pub fn mask_bus(&mut self, a: &Bus, en: NetId) -> Bus {
        a.iter().map(|&x| self.and(x, en)).collect()
    }

    /// Per-bit 2:1 mux over two buses (`s ? d1 : d0`).
    pub fn mux_bus(&mut self, s: NetId, d0: &Bus, d1: &Bus) -> Bus {
        assert_eq!(d0.len(), d1.len(), "bus width mismatch");
        d0.iter()
            .zip(d1)
            .map(|(&a, &b)| self.mux(s, a, b))
            .collect()
    }

    /// One-hot selection: OR over `choices[i] AND sel[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `sel` and `choices` lengths differ or choices are not all
    /// the same width.
    pub fn onehot_mux(&mut self, sel: &[NetId], choices: &[Bus]) -> Bus {
        assert_eq!(sel.len(), choices.len(), "selector count mismatch");
        assert!(!choices.is_empty(), "onehot_mux needs at least one choice");
        let width = choices[0].len();
        let mut acc: Option<Bus> = None;
        for (&s, c) in sel.iter().zip(choices) {
            assert_eq!(c.len(), width, "choice width mismatch");
            let masked = self.mask_bus(c, s);
            acc = Some(match acc {
                None => masked,
                Some(a) => self.or_bus(&a, &masked),
            });
        }
        acc.expect("non-empty")
    }

    /// OR-reduction of a bus.
    pub fn reduce_or(&mut self, a: &Bus) -> NetId {
        self.or_all(a)
    }

    /// AND-reduction of a bus.
    pub fn reduce_and(&mut self, a: &Bus) -> NetId {
        self.and_all(a)
    }

    /// `1` when the bus is all zero.
    pub fn is_zero(&mut self, a: &Bus) -> NetId {
        let any = self.reduce_or(a);
        self.not(any)
    }

    /// Equality of two buses.
    pub fn eq(&mut self, a: &Bus, b: &Bus) -> NetId {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        let bits: Vec<NetId> = a.iter().zip(b).map(|(&x, &y)| self.xnor(x, y)).collect();
        self.and_all(&bits)
    }

    /// Equality of a bus with a constant (no tie cells; uses inverters).
    pub fn eq_const(&mut self, a: &Bus, value: u64) -> NetId {
        let bits: Vec<NetId> = a
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                if (value >> i) & 1 == 1 {
                    n
                } else {
                    self.not(n)
                }
            })
            .collect();
        self.and_all(&bits)
    }

    /// Ripple-carry adder. Returns `(sum, carry_out)`.
    ///
    /// `cin` defaults to constant 0 when `None`.
    pub fn add(&mut self, a: &Bus, b: &Bus, cin: Option<NetId>) -> (Bus, NetId) {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        let mut carry = match cin {
            Some(c) => c,
            None => self.zero(),
        };
        let mut sum = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let p = self.xor(x, y);
            let s = self.xor(p, carry);
            let g = self.and(x, y);
            let t = self.and(p, carry);
            carry = self.or(g, t);
            sum.push(s);
        }
        (sum, carry)
    }

    /// Subtractor `a - b` via `a + !b + 1`. Returns `(diff, carry_out)`;
    /// carry-out follows the MSP430 convention (`1` = no borrow).
    pub fn sub(&mut self, a: &Bus, b: &Bus) -> (Bus, NetId) {
        let nb = self.not_bus(b);
        let one = self.one();
        self.add(a, &nb, Some(one))
    }

    /// Incrementer `a + cin` (half-adder chain). Returns `(sum, carry_out)`.
    pub fn inc(&mut self, a: &Bus, cin: NetId) -> (Bus, NetId) {
        let mut carry = cin;
        let mut sum = Vec::with_capacity(a.len());
        for &x in a {
            let s = self.xor(x, carry);
            carry = self.and(x, carry);
            sum.push(s);
        }
        (sum, carry)
    }

    /// Adds a small constant to a bus (lowered to an incrementer cascade).
    pub fn add_const(&mut self, a: &Bus, k: u64) -> Bus {
        let b = self.lit(k, a.len());
        self.add(a, &b, None).0
    }

    /// Binary decoder: `sel` (n bits) → `2^n` one-hot outputs.
    pub fn decode(&mut self, sel: &Bus) -> Vec<NetId> {
        let n = sel.len();
        let inv: Vec<NetId> = sel.iter().map(|&s| self.not(s)).collect();
        (0..(1usize << n))
            .map(|v| {
                let terms: Vec<NetId> = (0..n)
                    .map(|i| if (v >> i) & 1 == 1 { sel[i] } else { inv[i] })
                    .collect();
                self.and_all(&terms)
            })
            .collect()
    }

    /// Combinational array multiplier (`a.len() × b.len()` →
    /// `a.len() + b.len()` bits), built from AND partial products and
    /// ripple-carry rows — the high-power datapath block of the paper's core.
    pub fn mul(&mut self, a: &Bus, b: &Bus) -> Bus {
        let (wa, wb) = (a.len(), b.len());
        assert!(wa > 0 && wb > 0, "multiplier operands must be non-empty");
        let zero = self.zero();
        // Row 0.
        let mut acc: Bus = a.iter().map(|&x| self.and(x, b[0])).collect();
        acc.resize(wa + wb, zero);
        for (i, &bi) in b.iter().enumerate().skip(1) {
            let pp: Bus = a.iter().map(|&x| self.and(x, bi)).collect();
            // Add pp shifted left by i into acc[i .. i+wa+1].
            let window: Bus = acc[i..i + wa].to_vec();
            let (sum, cout) = self.add(&window, &pp, None);
            acc.splice(i..i + wa, sum);
            if i + wa < wa + wb {
                // Propagate carry into the remaining high bits.
                let high: Bus = acc[i + wa..].to_vec();
                let (hsum, _) = self.inc(&high, cout);
                acc.splice(i + wa.., hsum);
            }
        }
        acc
    }

    // ---- registers ----------------------------------------------------------

    /// Declares a `width`-bit register named `name`, reset to 0.
    ///
    /// Returns the handle (to assign the next value) and the output bus `q`.
    pub fn reg(&mut self, name: &str, width: usize) -> (RegHandle, Bus) {
        let m = self.module;
        let mname = self.nl.module_name(m).to_string();
        let q: Bus = (0..width)
            .map(|i| self.nl.add_net(format!("{mname}/{name}_q[{i}]")))
            .collect();
        self.regs.push(PendingReg {
            name: name.to_string(),
            q: q.clone(),
            next: None,
            module: m,
        });
        (RegHandle(self.regs.len() - 1), q)
    }

    /// Sets the next-state function of a register (updates every cycle).
    ///
    /// # Panics
    ///
    /// Panics if the next value was already assigned or widths differ.
    pub fn reg_next(&mut self, handle: RegHandle, d: &Bus) {
        let r = &mut self.regs[handle.0];
        assert!(r.next.is_none(), "register `{}` assigned twice", r.name);
        assert_eq!(r.q.len(), d.len(), "register width mismatch");
        r.next = Some((d.clone(), None));
    }

    /// Sets the next-state function of a register, gated by `en`.
    pub fn reg_next_en(&mut self, handle: RegHandle, d: &Bus, en: NetId) {
        let r = &mut self.regs[handle.0];
        assert!(r.next.is_none(), "register `{}` assigned twice", r.name);
        assert_eq!(r.q.len(), d.len(), "register width mismatch");
        r.next = Some((d.clone(), Some(en)));
    }

    /// Read-only view of the wrapped netlist (for inspection before finish).
    pub fn netlist(&self) -> &Netlist {
        &self.nl
    }

    /// Materializes all registers as flip-flop cells, validates, levelizes.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from validation (undriven nets,
    /// combinational cycles, …). Registers whose next value was never
    /// assigned hold their value.
    pub fn finish(mut self) -> Result<Netlist, NetlistError> {
        let rstn = self.rstn;
        let regs = std::mem::take(&mut self.regs);
        for r in regs {
            let (d, en) = match r.next {
                Some((d, en)) => (d, en),
                None => (r.q.clone(), None), // hold forever
            };
            for (i, (&q, &db)) in r.q.iter().zip(&d).enumerate() {
                let gname = format!("ff_{}_{}_{}", r.name, i, r.module.0);
                match en {
                    None => {
                        self.nl
                            .add_gate_in(CellKind::Dffr, gname, &[db, rstn], q, r.module)?;
                    }
                    Some(e) => {
                        self.nl
                            .add_gate_in(CellKind::Dffre, gname, &[db, e, rstn], q, r.module)?;
                    }
                }
            }
        }
        self.nl.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_structure() {
        let mut r = Rtl::new("t");
        let a = r.input("a", 4);
        let b = r.input("b", 4);
        let (s, c) = r.add(&a, &b, None);
        r.output("s", &s);
        r.output_bit("c", c);
        let nl = r.finish().unwrap();
        // 5 gates per bit + tie0.
        assert_eq!(nl.gate_count(), 4 * 5 + 1);
    }

    #[test]
    fn counter_with_enable() {
        let mut r = Rtl::new("t");
        let en = r.input_bit("en");
        let (h, q) = r.reg("cnt", 8);
        let one = r.one();
        let (next, _) = r.inc(&q, one);
        r.reg_next_en(h, &next, en);
        r.output("q", &q);
        let nl = r.finish().unwrap();
        assert_eq!(nl.sequential_gates().len(), 8);
    }

    #[test]
    fn decoder_is_onehot_shape() {
        let mut r = Rtl::new("t");
        let s = r.input("s", 3);
        let hot = r.decode(&s);
        assert_eq!(hot.len(), 8);
        for (i, &h) in hot.iter().enumerate() {
            r.output_bit(&format!("h{i}"), h);
        }
        r.finish().unwrap();
    }

    #[test]
    fn onehot_mux_width_checked() {
        let mut r = Rtl::new("t");
        let s0 = r.input_bit("s0");
        let s1 = r.input_bit("s1");
        let a = r.input("a", 4);
        let b = r.input("b", 4);
        let y = r.onehot_mux(&[s0, s1], &[a, b]);
        assert_eq!(y.len(), 4);
    }

    #[test]
    fn unassigned_register_holds() {
        let mut r = Rtl::new("t");
        let (_h, q) = r.reg("keep", 2);
        r.output("q", &q);
        let nl = r.finish().unwrap();
        assert_eq!(nl.sequential_gates().len(), 2);
    }

    #[test]
    fn double_assignment_panics() {
        let mut r = Rtl::new("t");
        let d = r.input("d", 2);
        let (h, _q) = r.reg("r", 2);
        r.reg_next(h, &d);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.reg_next(h, &d);
        }));
        assert!(res.is_err());
    }

    #[test]
    fn module_scoping_applies_to_gates() {
        let mut r = Rtl::new("t");
        let a = r.input_bit("a");
        r.set_module("alu");
        let y = r.not(a);
        r.output_bit("y", y);
        let nl = r.finish().unwrap();
        let g = &nl.gates()[0];
        assert_eq!(nl.module_name(g.module()), "alu");
    }

    #[test]
    fn probe_names_are_stable() {
        let mut r = Rtl::new("t");
        let a = r.input_bit("a");
        let p = r.probe("frontend/branch_taken", a);
        r.output_bit("p", p);
        let nl = r.finish().unwrap();
        assert!(nl.find_net("frontend/branch_taken").is_some());
    }
}
