//! Property-based tests for the three-valued logic lattice.

use proptest::prelude::*;
use xbound_logic::{Frame, Lv, XWord};

fn arb_lv() -> impl Strategy<Value = Lv> {
    prop_oneof![Just(Lv::Zero), Just(Lv::One), Just(Lv::X)]
}

fn arb_xword() -> impl Strategy<Value = XWord> {
    (any::<u16>(), any::<u16>()).prop_map(|(v, u)| XWord::from_planes(v, u))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// X-pessimism: a gate output computed with X inputs must cover the output
    /// computed with any concrete refinement of those inputs.
    #[test]
    fn gate_monotone_under_refinement(a in arb_lv(), b in arb_lv(),
                                      ca in any::<bool>(), cb in any::<bool>()) {
        // Refine X inputs to arbitrary concrete values.
        let ra = a.to_bool().unwrap_or(ca);
        let rb = b.to_bool().unwrap_or(cb);
        let (ra, rb) = (Lv::from_bool(ra), Lv::from_bool(rb));
        prop_assert!(a.and(b).covers(ra.and(rb)));
        prop_assert!(a.or(b).covers(ra.or(rb)));
        prop_assert!(a.xor(b).covers(ra.xor(rb)));
        prop_assert!(a.nand(b).covers(ra.nand(rb)));
        prop_assert!(a.not().covers(ra.not()));
    }

    /// Mux is monotone under refinement of the select and both data inputs.
    #[test]
    fn mux_monotone_under_refinement(s in arb_lv(), a in arb_lv(), b in arb_lv(),
                                     cs in any::<bool>(), ca in any::<bool>(), cb in any::<bool>()) {
        let rs = Lv::from_bool(s.to_bool().unwrap_or(cs));
        let ra = Lv::from_bool(a.to_bool().unwrap_or(ca));
        let rb = Lv::from_bool(b.to_bool().unwrap_or(cb));
        prop_assert!(Lv::mux(s, a, b).covers(Lv::mux(rs, ra, rb)));
    }

    /// Join is commutative, associative, idempotent, and an upper bound.
    #[test]
    fn join_lattice_laws(a in arb_lv(), b in arb_lv(), c in arb_lv()) {
        prop_assert_eq!(a.join(b), b.join(a));
        prop_assert_eq!(a.join(b).join(c), a.join(b.join(c)));
        prop_assert_eq!(a.join(a), a);
        prop_assert!(a.join(b).covers(a));
    }

    /// XWord::covers matches per-bit Lv::covers; join matches per-bit join.
    #[test]
    fn xword_matches_bitwise_semantics(a in arb_xword(), b in arb_xword()) {
        let bitwise_covers = (0..16).all(|i| a.bit(i).covers(b.bit(i)));
        prop_assert_eq!(a.covers(b), bitwise_covers);
        let j = a.join(b);
        for i in 0..16 {
            prop_assert_eq!(j.bit(i), a.bit(i).join(b.bit(i)));
        }
    }

    /// Frame set/get round-trips and diff_indices finds exactly the changed nets.
    #[test]
    fn frame_roundtrip_and_diff(vals in proptest::collection::vec(arb_lv(), 1..300),
                                edits in proptest::collection::vec((any::<usize>(), arb_lv()), 0..20)) {
        let mut a: Frame = vals.clone().into_iter().collect();
        for (i, v) in vals.iter().enumerate() {
            prop_assert_eq!(a.get(i), *v);
        }
        let b = a.clone();
        let mut touched = std::collections::BTreeSet::new();
        for (idx, v) in edits {
            let i = idx % a.len();
            a.set(i, v);
            if a.get(i) != b.get(i) {
                touched.insert(i);
            } else {
                touched.remove(&i);
            }
        }
        prop_assert_eq!(a.diff_indices(&b), touched.into_iter().collect::<Vec<_>>());
    }

    /// Frame join produces a frame covering both operands.
    #[test]
    fn frame_join_covers(vals_a in proptest::collection::vec(arb_lv(), 1..100),
                         vals_b in proptest::collection::vec(arb_lv(), 1..100)) {
        let n = vals_a.len().min(vals_b.len());
        let a: Frame = vals_a[..n].iter().copied().collect();
        let b: Frame = vals_b[..n].iter().copied().collect();
        let mut j = a.clone();
        j.join_in_place(&b);
        prop_assert!(j.covers(&a));
        prop_assert!(j.covers(&b));
    }
}
