//! Lane-parallel (batched) three-valued values and frames.
//!
//! The concrete runs behind validation, profiling, and stressmark search
//! all simulate the same netlist under different stimuli. Packing one bit
//! per *lane* into a pair of `u64` planes lets a single word-wise gate
//! evaluation compute up to [`MAX_LANES`] independent concrete runs at
//! once: [`LaneVal`] is the batched counterpart of [`crate::Lv`], and
//! [`BatchFrame`] the batched counterpart of [`crate::Frame`] (which is
//! the 1-lane special case of the same 2-bit-per-value encoding).
//!
//! Every kernel below is the word-wise transliteration of the scalar
//! [`crate::Lv`] truth table: for all lanes `l`,
//! `a.op(b).get(l) == a.get(l).op(b.get(l))` — asserted exhaustively by
//! the tests in this module.

use crate::{Frame, Lv};

/// Maximum number of lanes a [`LaneVal`]/[`BatchFrame`] can hold (one bit
/// per lane in a `u64` plane pair).
pub const MAX_LANES: usize = 64;

/// Up to 64 independent three-valued values, one per lane.
///
/// Two bit-planes are kept: `val` holds the value of known lanes, `unk`
/// marks unknown (`X`) lanes. The invariant `val & unk == 0` is maintained
/// by every constructor and kernel so equal lane sets compare equal
/// structurally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LaneVal {
    /// Value plane: lane `l` is known-1 iff bit `l` is set (and `unk` clear).
    pub val: u64,
    /// Unknown plane: lane `l` is `X` iff bit `l` is set.
    pub unk: u64,
}

impl LaneVal {
    /// All lanes known-0.
    pub const ZERO: LaneVal = LaneVal { val: 0, unk: 0 };

    /// Builds from raw planes, re-establishing the `val & unk == 0`
    /// invariant (`unk` wins).
    #[inline]
    pub fn from_planes(val: u64, unk: u64) -> LaneVal {
        LaneVal {
            val: val & !unk,
            unk,
        }
    }

    /// The same scalar value in every lane of `mask`.
    #[inline]
    pub fn splat(v: Lv, mask: u64) -> LaneVal {
        match v {
            Lv::Zero => LaneVal::ZERO,
            Lv::One => LaneVal { val: mask, unk: 0 },
            Lv::X => LaneVal { val: 0, unk: mask },
        }
    }

    /// Reads lane `l`.
    #[inline]
    pub fn get(self, l: usize) -> Lv {
        debug_assert!(l < MAX_LANES);
        if (self.unk >> l) & 1 == 1 {
            Lv::X
        } else if (self.val >> l) & 1 == 1 {
            Lv::One
        } else {
            Lv::Zero
        }
    }

    /// Writes lane `l`.
    #[inline]
    pub fn set(&mut self, l: usize, v: Lv) {
        debug_assert!(l < MAX_LANES);
        let m = 1u64 << l;
        match v {
            Lv::Zero => {
                self.val &= !m;
                self.unk &= !m;
            }
            Lv::One => {
                self.val |= m;
                self.unk &= !m;
            }
            Lv::X => {
                self.val &= !m;
                self.unk |= m;
            }
        }
    }

    /// Lanes that are known-0 (helper for the kernels below).
    #[inline]
    fn known0(self) -> u64 {
        !self.val & !self.unk
    }

    /// Lane-wise negation; `X` stays `X`.
    #[inline]
    pub fn not(self, mask: u64) -> LaneVal {
        LaneVal {
            val: !self.val & !self.unk & mask,
            unk: self.unk,
        }
    }

    /// Lane-wise pessimistic AND: a controlling 0 forces the output to 0.
    #[inline]
    pub fn and(self, b: LaneVal) -> LaneVal {
        let val = self.val & b.val;
        LaneVal {
            val,
            unk: (self.unk | b.unk) & !self.known0() & !b.known0(),
        }
    }

    /// Lane-wise pessimistic OR: a controlling 1 forces the output to 1.
    #[inline]
    pub fn or(self, b: LaneVal) -> LaneVal {
        let val = self.val | b.val;
        LaneVal {
            val,
            unk: (self.unk | b.unk) & !val,
        }
    }

    /// Lane-wise XOR: unknown whenever either input is unknown.
    #[inline]
    pub fn xor(self, b: LaneVal) -> LaneVal {
        let unk = self.unk | b.unk;
        LaneVal {
            val: (self.val ^ b.val) & !unk,
            unk,
        }
    }

    /// Lane-wise NAND.
    #[inline]
    pub fn nand(self, b: LaneVal, mask: u64) -> LaneVal {
        self.and(b).not(mask)
    }

    /// Lane-wise NOR.
    #[inline]
    pub fn nor(self, b: LaneVal, mask: u64) -> LaneVal {
        self.or(b).not(mask)
    }

    /// Lane-wise XNOR.
    #[inline]
    pub fn xnor(self, b: LaneVal, mask: u64) -> LaneVal {
        self.xor(b).not(mask)
    }

    /// Lane-wise two-input multiplexer: `sel == 0 → a`, `sel == 1 → b`;
    /// an `X` select is known only where both data inputs agree and are
    /// known (standard X-pessimistic mux semantics).
    #[inline]
    pub fn mux(sel: LaneVal, a: LaneVal, b: LaneVal) -> LaneVal {
        let sel0 = sel.known0();
        let sel1 = sel.val;
        let selx = sel.unk;
        let agree_known = !a.unk & !b.unk & !(a.val ^ b.val);
        LaneVal {
            val: (sel0 & a.val) | (sel1 & b.val) | (selx & agree_known & a.val),
            unk: (sel0 & a.unk) | (sel1 & b.unk) | (selx & !agree_known),
        }
    }

    /// Lane-wise AOI21: `!((a & b) | c)`.
    #[inline]
    pub fn aoi21(a: LaneVal, b: LaneVal, c: LaneVal, mask: u64) -> LaneVal {
        a.and(b).or(c).not(mask)
    }

    /// Lane-wise OAI21: `!((a | b) & c)`.
    #[inline]
    pub fn oai21(a: LaneVal, b: LaneVal, c: LaneVal, mask: u64) -> LaneVal {
        a.or(b).and(c).not(mask)
    }

    /// Lane-wise lattice join: the least value covering both inputs.
    #[inline]
    pub fn join(self, b: LaneVal) -> LaneVal {
        let unk = self.unk | b.unk | (self.val ^ b.val);
        LaneVal {
            val: self.val & !unk,
            unk,
        }
    }

    /// Lane-wise three-way select on a three-valued control:
    /// `ctrl == 0 → when0`, `ctrl == 1 → when1`, `ctrl == X → whenx`.
    ///
    /// This is the batched form of a per-lane `match` on the control value
    /// — the flip-flop update rules (enable, reset) are built from it.
    #[inline]
    pub fn select(ctrl: LaneVal, when0: LaneVal, when1: LaneVal, whenx: LaneVal) -> LaneVal {
        let c0 = ctrl.known0();
        let c1 = ctrl.val;
        let cx = ctrl.unk;
        LaneVal::from_planes(
            (c0 & when0.val) | (c1 & when1.val) | (cx & whenx.val),
            (c0 & when0.unk) | (c1 & when1.unk) | (cx & whenx.unk),
        )
    }
}

/// The value of every net in a netlist for up to [`MAX_LANES`] independent
/// runs at one instant.
///
/// Where [`Frame`] packs one 2-bit value per net across machine words, a
/// `BatchFrame` stores one [`LaneVal`] (a `u64` plane pair) per net: bit
/// `l` of each plane belongs to lane `l`. Bits at and above
/// [`BatchFrame::lanes`] are kept zero so frames with equal active lanes
/// compare equal structurally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchFrame {
    len: usize,
    lanes: usize,
    val: Vec<u64>,
    unk: Vec<u64>,
}

impl BatchFrame {
    /// Creates a frame of `len` nets × `lanes` lanes, all `0`.
    ///
    /// # Panics
    ///
    /// Panics when `lanes` is 0 or exceeds [`MAX_LANES`].
    pub fn new(len: usize, lanes: usize) -> BatchFrame {
        assert!(
            (1..=MAX_LANES).contains(&lanes),
            "lane count {lanes} outside 1..={MAX_LANES}"
        );
        BatchFrame {
            len,
            lanes,
            val: vec![0; len],
            unk: vec![0; len],
        }
    }

    /// Number of nets.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the frame holds no nets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of active lanes.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Bitmask with one set bit per active lane.
    #[inline]
    pub fn lane_mask(&self) -> u64 {
        if self.lanes == MAX_LANES {
            u64::MAX
        } else {
            (1u64 << self.lanes) - 1
        }
    }

    /// Reads all lanes of net `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> LaneVal {
        LaneVal {
            val: self.val[i],
            unk: self.unk[i],
        }
    }

    /// Writes all lanes of net `i` (bits above the lane count are masked).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, v: LaneVal) {
        let mask = self.lane_mask();
        self.val[i] = v.val & !v.unk & mask;
        self.unk[i] = v.unk & mask;
    }

    /// Writes all lanes of net `i` and returns whether any lane changed.
    ///
    /// The batched event-driven simulator uses this to decide whether a
    /// gate's fanout must re-evaluate: a gate is dirty when *any* lane of
    /// one of its inputs changed.
    #[inline]
    pub fn replace(&mut self, i: usize, v: LaneVal) -> bool {
        let mask = self.lane_mask();
        let (val, unk) = (v.val & !v.unk & mask, v.unk & mask);
        let changed = self.val[i] != val || self.unk[i] != unk;
        self.val[i] = val;
        self.unk[i] = unk;
        changed
    }

    /// Reads lane `l` of net `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()` or `l >= lanes()`.
    #[inline]
    pub fn get_lane(&self, i: usize, l: usize) -> Lv {
        assert!(l < self.lanes, "lane {l} out of range {}", self.lanes);
        self.get(i).get(l)
    }

    /// Writes lane `l` of net `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()` or `l >= lanes()`.
    #[inline]
    pub fn set_lane(&mut self, i: usize, l: usize, v: Lv) {
        assert!(l < self.lanes, "lane {l} out of range {}", self.lanes);
        let mut lv = self.get(i);
        lv.set(l, v);
        self.set(i, lv);
    }

    /// Writes the same value into every lane of net `i`.
    #[inline]
    pub fn set_all_lanes(&mut self, i: usize, v: Lv) {
        self.set(i, LaneVal::splat(v, self.lane_mask()));
    }

    /// Extracts one lane as a scalar [`Frame`] (the shape every scalar
    /// consumer — power analysis, validation — already understands).
    ///
    /// # Panics
    ///
    /// Panics if `l >= lanes()`.
    pub fn lane_frame(&self, l: usize) -> Frame {
        assert!(l < self.lanes, "lane {l} out of range {}", self.lanes);
        // Word-packed transpose: gather bit `l` of every net's plane pair
        // into the scalar frame's 64-net words (no per-net branches; this
        // runs once per lane per stored cycle on the profiling hot path).
        let words = self.len.div_ceil(64);
        let mut val = vec![0u64; words];
        let mut unk = vec![0u64; words];
        for i in 0..self.len {
            let (w, b) = (i / 64, i % 64);
            val[w] |= ((self.val[i] >> l) & 1) << b;
            unk[w] |= ((self.unk[i] >> l) & 1) << b;
        }
        Frame::from_bitplanes(self.len, val, unk)
    }

    /// Broadcasts a scalar [`Frame`] into every lane.
    ///
    /// # Panics
    ///
    /// Panics if the frame lengths differ.
    pub fn broadcast_from(&mut self, f: &Frame) {
        assert_eq!(self.len, f.len(), "frame length mismatch");
        for i in 0..self.len {
            self.set_all_lanes(i, f.get(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense enumeration of all 9 (or 27) input combinations across lanes.
    fn all_pairs() -> (LaneVal, LaneVal, u64) {
        // 9 lanes: a cycles per-lane through ALL, b through ALL³.
        let mut a = LaneVal::ZERO;
        let mut b = LaneVal::ZERO;
        for l in 0..9 {
            a.set(l, Lv::ALL[l % 3]);
            b.set(l, Lv::ALL[l / 3]);
        }
        (a, b, (1u64 << 9) - 1)
    }

    #[test]
    fn splat_and_get_round_trip() {
        for v in Lv::ALL {
            let lv = LaneVal::splat(v, u64::MAX);
            for l in [0, 31, 63] {
                assert_eq!(lv.get(l), v);
            }
        }
    }

    #[test]
    fn two_input_kernels_match_scalar_truth_tables() {
        let (a, b, mask) = all_pairs();
        for l in 0..9 {
            let (x, y) = (a.get(l), b.get(l));
            assert_eq!(a.and(b).get(l), x.and(y), "{x} AND {y}");
            assert_eq!(a.or(b).get(l), x.or(y), "{x} OR {y}");
            assert_eq!(a.xor(b).get(l), x.xor(y), "{x} XOR {y}");
            assert_eq!(a.nand(b, mask).get(l), x.nand(y), "{x} NAND {y}");
            assert_eq!(a.nor(b, mask).get(l), x.nor(y), "{x} NOR {y}");
            assert_eq!(a.xnor(b, mask).get(l), x.xnor(y), "{x} XNOR {y}");
            assert_eq!(a.join(b).get(l), x.join(y), "{x} JOIN {y}");
        }
    }

    #[test]
    fn not_matches_scalar() {
        let mut a = LaneVal::ZERO;
        for l in 0..3 {
            a.set(l, Lv::ALL[l]);
        }
        let n = a.not((1 << 3) - 1);
        for l in 0..3 {
            assert_eq!(n.get(l), a.get(l).not());
        }
    }

    #[test]
    fn three_input_kernels_match_scalar() {
        // 27 lanes enumerate ALL³ for (a, b, c).
        let mut a = LaneVal::ZERO;
        let mut b = LaneVal::ZERO;
        let mut c = LaneVal::ZERO;
        for l in 0..27 {
            a.set(l, Lv::ALL[l % 3]);
            b.set(l, Lv::ALL[(l / 3) % 3]);
            c.set(l, Lv::ALL[l / 9]);
        }
        let mask = (1u64 << 27) - 1;
        for l in 0..27 {
            let (x, y, s) = (a.get(l), b.get(l), c.get(l));
            assert_eq!(
                LaneVal::mux(c, a, b).get(l),
                Lv::mux(s, x, y),
                "mux({s},{x},{y})"
            );
            assert_eq!(
                LaneVal::aoi21(a, b, c, mask).get(l),
                x.and(y).or(s).not(),
                "aoi21({x},{y},{s})"
            );
            assert_eq!(
                LaneVal::oai21(a, b, c, mask).get(l),
                x.or(y).and(s).not(),
                "oai21({x},{y},{s})"
            );
        }
    }

    #[test]
    fn select_matches_per_lane_match() {
        // 27 lanes enumerate ALL³ for (ctrl, a, b); whenx = join(a, b).
        let mut c = LaneVal::ZERO;
        let mut a = LaneVal::ZERO;
        let mut b = LaneVal::ZERO;
        for l in 0..27 {
            c.set(l, Lv::ALL[l % 3]);
            a.set(l, Lv::ALL[(l / 3) % 3]);
            b.set(l, Lv::ALL[l / 9]);
        }
        let r = LaneVal::select(c, a, b, a.join(b));
        for l in 0..27 {
            let expect = match c.get(l) {
                Lv::Zero => a.get(l),
                Lv::One => b.get(l),
                Lv::X => a.get(l).join(b.get(l)),
            };
            assert_eq!(r.get(l), expect, "lane {l}");
        }
    }

    #[test]
    fn kernels_preserve_plane_invariant() {
        let (a, b, mask) = all_pairs();
        for r in [
            a.and(b),
            a.or(b),
            a.xor(b),
            a.nand(b, mask),
            a.join(b),
            LaneVal::mux(a, b, a),
            a.not(mask),
        ] {
            assert_eq!(r.val & r.unk, 0, "val/unk planes overlap");
        }
    }

    #[test]
    fn batch_frame_lane_round_trip() {
        let mut f = BatchFrame::new(10, 32);
        f.set_lane(3, 0, Lv::One);
        f.set_lane(3, 31, Lv::X);
        assert_eq!(f.get_lane(3, 0), Lv::One);
        assert_eq!(f.get_lane(3, 31), Lv::X);
        assert_eq!(f.get_lane(3, 1), Lv::Zero);
        assert_eq!(f.lanes(), 32);
        assert_eq!(f.lane_mask(), u32::MAX as u64);
    }

    #[test]
    fn set_masks_inactive_lanes() {
        let mut f = BatchFrame::new(4, 8);
        f.set(0, LaneVal::splat(Lv::One, u64::MAX));
        assert_eq!(f.get(0).val, 0xFF, "bits above lane count stay clear");
        f.set(1, LaneVal::splat(Lv::X, u64::MAX));
        assert_eq!(f.get(1).unk, 0xFF);
    }

    #[test]
    fn replace_reports_any_lane_change() {
        let mut f = BatchFrame::new(2, 4);
        let mut v = LaneVal::ZERO;
        v.set(2, Lv::One);
        assert!(f.replace(0, v));
        assert!(!f.replace(0, v), "idempotent write is not a change");
        v.set(2, Lv::X);
        assert!(f.replace(0, v), "value→X is a change");
    }

    #[test]
    fn lane_frame_and_broadcast_round_trip() {
        let mut bf = BatchFrame::new(70, 3);
        bf.set_lane(0, 1, Lv::One);
        bf.set_lane(69, 1, Lv::X);
        let f = bf.lane_frame(1);
        assert_eq!(f.get(0), Lv::One);
        assert_eq!(f.get(69), Lv::X);
        assert_eq!(bf.lane_frame(0).x_count(), 0);

        let mut bf2 = BatchFrame::new(70, 3);
        bf2.broadcast_from(&f);
        for l in 0..3 {
            assert_eq!(bf2.lane_frame(l), f);
        }
    }

    #[test]
    #[should_panic(expected = "lane count")]
    fn zero_lanes_rejected() {
        let _ = BatchFrame::new(4, 0);
    }

    #[test]
    fn max_lanes_mask_is_full() {
        let f = BatchFrame::new(1, MAX_LANES);
        assert_eq!(f.lane_mask(), u64::MAX);
    }
}
