//! Packed per-cycle value frames.

use crate::Lv;
use std::hash::{Hash, Hasher};

/// The value of every net in a netlist at one instant, packed 2 bits per net.
///
/// Frames are the unit of storage for simulation traces: the symbolic
/// execution tree of Algorithm 1 stores one frame per simulated cycle, and
/// Algorithm 2's even/odd X-assignment reads pairs of consecutive frames.
///
/// Two bit-planes are kept (`val`, `unk`) so that common operations — toggle
/// counting, subsumption checks, hashing — reduce to word-wide bit math.
///
/// # Example
///
/// ```
/// use xbound_logic::{Frame, Lv};
///
/// let mut f = Frame::new(70);
/// f.set(3, Lv::One);
/// f.set(69, Lv::X);
/// assert_eq!(f.get(3), Lv::One);
/// assert_eq!(f.get(69), Lv::X);
/// assert_eq!(f.get(0), Lv::Zero);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Frame {
    len: usize,
    val: Vec<u64>,
    unk: Vec<u64>,
}

impl Frame {
    /// Creates a frame of `len` nets, all `0`.
    pub fn new(len: usize) -> Frame {
        let words = len.div_ceil(64);
        Frame {
            len,
            val: vec![0; words],
            unk: vec![0; words],
        }
    }

    /// Creates a frame of `len` nets, all `X`.
    pub fn new_all_x(len: usize) -> Frame {
        let words = len.div_ceil(64);
        let mut unk = vec![u64::MAX; words];
        if let Some(last) = unk.last_mut() {
            let tail = len % 64;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
            if len == 0 {
                *last = 0;
            }
        }
        Frame {
            len,
            val: vec![0; words],
            unk,
        }
    }

    /// Number of nets in the frame.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the frame holds no nets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads net `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> Lv {
        assert!(i < self.len, "net index {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        if (self.unk[w] >> b) & 1 == 1 {
            Lv::X
        } else if (self.val[w] >> b) & 1 == 1 {
            Lv::One
        } else {
            Lv::Zero
        }
    }

    /// Writes net `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, v: Lv) {
        assert!(i < self.len, "net index {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let m = 1u64 << b;
        match v {
            Lv::Zero => {
                self.val[w] &= !m;
                self.unk[w] &= !m;
            }
            Lv::One => {
                self.val[w] |= m;
                self.unk[w] &= !m;
            }
            Lv::X => {
                self.val[w] &= !m;
                self.unk[w] |= m;
            }
        }
    }

    /// Number of nets whose value differs between the two frames.
    ///
    /// # Panics
    ///
    /// Panics if the frames have different lengths.
    pub fn diff_count(&self, other: &Frame) -> usize {
        assert_eq!(self.len, other.len, "frame length mismatch");
        let mut n = 0usize;
        for w in 0..self.val.len() {
            let differs = (self.val[w] ^ other.val[w]) | (self.unk[w] ^ other.unk[w]);
            n += differs.count_ones() as usize;
        }
        n
    }

    /// Indices of nets whose value differs between the two frames.
    pub fn diff_indices(&self, other: &Frame) -> Vec<usize> {
        assert_eq!(self.len, other.len, "frame length mismatch");
        let mut out = Vec::new();
        for w in 0..self.val.len() {
            let mut differs = (self.val[w] ^ other.val[w]) | (self.unk[w] ^ other.unk[w]);
            while differs != 0 {
                let b = differs.trailing_zeros() as usize;
                out.push(w * 64 + b);
                differs &= differs - 1;
            }
        }
        out
    }

    /// Number of `X` nets in the frame.
    pub fn x_count(&self) -> usize {
        self.unk.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Lattice subsumption: every net of `self` covers the matching net of
    /// `other` (see [`Lv::covers`]).
    pub fn covers(&self, other: &Frame) -> bool {
        assert_eq!(self.len, other.len, "frame length mismatch");
        for w in 0..self.val.len() {
            let both_known_diff = !self.unk[w] & !other.unk[w] & (self.val[w] ^ other.val[w]);
            let other_x_self_known = other.unk[w] & !self.unk[w];
            if both_known_diff != 0 || other_x_self_known != 0 {
                return false;
            }
        }
        true
    }

    /// In-place lattice join with `other` (bitwise least upper bound).
    pub fn join_in_place(&mut self, other: &Frame) {
        assert_eq!(self.len, other.len, "frame length mismatch");
        for w in 0..self.val.len() {
            let unk = self.unk[w] | other.unk[w] | (self.val[w] ^ other.val[w]);
            self.unk[w] = unk;
            self.val[w] &= !unk;
        }
    }

    /// A 64-bit content hash (FNV-1a over both planes).
    pub fn content_hash(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut mix = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        mix(self.len as u64);
        for &w in &self.val {
            mix(w);
        }
        for &w in &self.unk {
            mix(w);
        }
        h
    }
}

impl Hash for Frame {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.content_hash());
    }
}

impl FromIterator<Lv> for Frame {
    fn from_iter<T: IntoIterator<Item = Lv>>(iter: T) -> Frame {
        let vals: Vec<Lv> = iter.into_iter().collect();
        let mut f = Frame::new(vals.len());
        for (i, v) in vals.into_iter().enumerate() {
            f.set(i, v);
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_zero() {
        let f = Frame::new(100);
        assert_eq!(f.len(), 100);
        assert!((0..100).all(|i| f.get(i) == Lv::Zero));
        assert_eq!(f.x_count(), 0);
    }

    #[test]
    fn new_all_x_tail_is_exact() {
        let f = Frame::new_all_x(65);
        assert_eq!(f.x_count(), 65);
        assert!((0..65).all(|i| f.get(i) == Lv::X));
        let g = Frame::new_all_x(64);
        assert_eq!(g.x_count(), 64);
    }

    #[test]
    fn set_get_round_trip_across_word_boundary() {
        let mut f = Frame::new(130);
        f.set(63, Lv::One);
        f.set(64, Lv::X);
        f.set(129, Lv::One);
        assert_eq!(f.get(63), Lv::One);
        assert_eq!(f.get(64), Lv::X);
        assert_eq!(f.get(129), Lv::One);
        f.set(64, Lv::Zero);
        assert_eq!(f.get(64), Lv::Zero);
        assert_eq!(f.x_count(), 0);
    }

    #[test]
    fn diff_count_and_indices_agree() {
        let mut a = Frame::new(200);
        let mut b = Frame::new(200);
        a.set(0, Lv::One);
        a.set(100, Lv::X);
        b.set(150, Lv::One);
        assert_eq!(a.diff_count(&b), 3);
        assert_eq!(a.diff_indices(&b), vec![0, 100, 150]);
    }

    #[test]
    fn x_to_known_counts_as_difference() {
        let mut a = Frame::new(8);
        let mut b = Frame::new(8);
        a.set(2, Lv::X);
        b.set(2, Lv::Zero);
        assert_eq!(a.diff_count(&b), 1);
        b.set(2, Lv::One);
        assert_eq!(a.diff_count(&b), 1);
        assert_eq!(a.diff_indices(&b), vec![2]);
    }

    #[test]
    fn covers_and_join() {
        let mut a = Frame::new(10);
        let mut b = Frame::new(10);
        a.set(1, Lv::One);
        b.set(1, Lv::Zero);
        assert!(!a.covers(&b));
        let mut j = a.clone();
        j.join_in_place(&b);
        assert!(j.covers(&a) && j.covers(&b));
        assert_eq!(j.get(1), Lv::X);
        assert_eq!(j.get(0), Lv::Zero);
    }

    #[test]
    fn content_hash_differs_for_x_vs_one() {
        let mut a = Frame::new(10);
        let mut b = Frame::new(10);
        a.set(5, Lv::X);
        b.set(5, Lv::One);
        assert_ne!(a.content_hash(), b.content_hash());
        let c = a.clone();
        assert_eq!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn from_iterator_builds_frame() {
        let f: Frame = [Lv::One, Lv::X, Lv::Zero].into_iter().collect();
        assert_eq!(f.len(), 3);
        assert_eq!(f.get(0), Lv::One);
        assert_eq!(f.get(1), Lv::X);
        assert_eq!(f.get(2), Lv::Zero);
    }
}
