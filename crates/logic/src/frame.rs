//! Packed per-cycle value frames.

use crate::Lv;
use std::hash::{Hash, Hasher};

/// The value of every net in a netlist at one instant, packed 2 bits per net.
///
/// Frames are the unit of storage for simulation traces: the symbolic
/// execution tree of Algorithm 1 stores one frame per simulated cycle, and
/// Algorithm 2's even/odd X-assignment reads pairs of consecutive frames.
///
/// Two bit-planes are kept (`val`, `unk`) so that common operations — toggle
/// counting, subsumption checks, hashing — reduce to word-wide bit math.
///
/// # Example
///
/// ```
/// use xbound_logic::{Frame, Lv};
///
/// let mut f = Frame::new(70);
/// f.set(3, Lv::One);
/// f.set(69, Lv::X);
/// assert_eq!(f.get(3), Lv::One);
/// assert_eq!(f.get(69), Lv::X);
/// assert_eq!(f.get(0), Lv::Zero);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Frame {
    len: usize,
    val: Vec<u64>,
    unk: Vec<u64>,
}

impl Frame {
    /// Builds a frame directly from its packed bit-planes (one bit per
    /// net). Used by the batched-frame lane extraction; callers must
    /// uphold the `val & unk == 0` invariant and zero tail bits.
    pub(crate) fn from_bitplanes(len: usize, val: Vec<u64>, unk: Vec<u64>) -> Frame {
        debug_assert_eq!(val.len(), len.div_ceil(64));
        debug_assert_eq!(unk.len(), len.div_ceil(64));
        Frame { len, val, unk }
    }

    /// Creates a frame of `len` nets, all `0`.
    pub fn new(len: usize) -> Frame {
        let words = len.div_ceil(64);
        Frame {
            len,
            val: vec![0; words],
            unk: vec![0; words],
        }
    }

    /// Creates a frame of `len` nets, all `X`.
    pub fn new_all_x(len: usize) -> Frame {
        let words = len.div_ceil(64);
        let mut unk = vec![u64::MAX; words];
        if let Some(last) = unk.last_mut() {
            let tail = len % 64;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
            if len == 0 {
                *last = 0;
            }
        }
        Frame {
            len,
            val: vec![0; words],
            unk,
        }
    }

    /// Number of nets in the frame.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the frame holds no nets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads net `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> Lv {
        assert!(i < self.len, "net index {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        if (self.unk[w] >> b) & 1 == 1 {
            Lv::X
        } else if (self.val[w] >> b) & 1 == 1 {
            Lv::One
        } else {
            Lv::Zero
        }
    }

    /// Writes net `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, v: Lv) {
        assert!(i < self.len, "net index {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let m = 1u64 << b;
        match v {
            Lv::Zero => {
                self.val[w] &= !m;
                self.unk[w] &= !m;
            }
            Lv::One => {
                self.val[w] |= m;
                self.unk[w] &= !m;
            }
            Lv::X => {
                self.val[w] &= !m;
                self.unk[w] |= m;
            }
        }
    }

    /// Writes net `i` and returns the previous value.
    ///
    /// The event-driven simulator uses this to decide whether a gate output
    /// actually changed (and therefore whether its fanout must re-evaluate)
    /// with a single locate.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn replace(&mut self, i: usize, v: Lv) -> Lv {
        let old = self.get(i);
        if old != v {
            self.set(i, v);
        }
        old
    }

    /// Number of 64-bit storage words per plane.
    #[inline]
    pub fn word_count(&self) -> usize {
        self.val.len()
    }

    /// Fills `out` with one bit per net: set when the net is **known and
    /// equal** in both frames (the word-wise base case of the stability
    /// analysis). `out` is resized to [`Frame::word_count`] words.
    ///
    /// # Panics
    ///
    /// Panics if the frames have different lengths.
    pub fn known_equal_words_into(&self, other: &Frame, out: &mut Vec<u64>) {
        assert_eq!(self.len, other.len, "frame length mismatch");
        out.clear();
        out.extend(
            (0..self.val.len())
                .map(|w| !self.unk[w] & !other.unk[w] & !(self.val[w] ^ other.val[w])),
        );
        // Mask the tail so out-of-range bits never read as "stable".
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = out.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Word-parallel X-assignment of one consecutive frame pair — the
    /// resolve kernel of Algorithm 2, applied to every net at once:
    ///
    /// * `(X, X)`: stable nets hold `0` in both frames; unstable nets take
    ///   the per-net maximum-energy transition `(tr_first, tr_second)`;
    /// * `(X, v)`: `prev` becomes `v` when stable, `!v` otherwise;
    /// * `(v, X)`: `cur` becomes `v` when stable, `!v` otherwise;
    /// * fully-known positions are untouched.
    ///
    /// `stable`, `tr_first` and `tr_second` are bitsets of
    /// [`Frame::word_count`] words (one bit per net).
    ///
    /// # Panics
    ///
    /// Panics if the frames have different lengths or a bitset is shorter
    /// than [`Frame::word_count`].
    pub fn assign_x_pair(
        prev: &mut Frame,
        cur: &mut Frame,
        stable: &[u64],
        tr_first: &[u64],
        tr_second: &[u64],
    ) {
        assert_eq!(prev.len, cur.len, "frame length mismatch");
        for w in 0..prev.val.len() {
            let (pu, cu) = (prev.unk[w], cur.unk[w]);
            if pu | cu == 0 {
                continue;
            }
            let s = stable[w];
            let xx = pu & cu;
            let xv = pu & !cu;
            let vx = !pu & cu;
            // The value plane is zero wherever the unknown plane is set, so
            // "assign" is OR-in the chosen bits and clear the unknown bits.
            // `prev.val` is only written at prev-X positions, which are
            // disjoint from the `vx` bits the `cur` update reads back.
            prev.val[w] |= (tr_first[w] & xx & !s) | ((cur.val[w] ^ !s) & xv);
            cur.val[w] |= (tr_second[w] & xx & !s) | ((prev.val[w] ^ !s) & vx);
            prev.unk[w] &= !(xx | xv);
            cur.unk[w] &= !(xx | vx);
        }
    }

    /// Resolves every `X` net to `0`, word-wise.
    ///
    /// Algorithm 2 uses this for the leftover Xs at off-parity positions:
    /// the packed representation keeps the value plane zero wherever the
    /// unknown plane is set, so clearing the unknown plane is the whole
    /// operation.
    pub fn resolve_x_to_zero(&mut self) {
        self.unk.fill(0);
    }

    /// Number of nets whose value differs between the two frames.
    ///
    /// # Panics
    ///
    /// Panics if the frames have different lengths.
    pub fn diff_count(&self, other: &Frame) -> usize {
        assert_eq!(self.len, other.len, "frame length mismatch");
        let mut n = 0usize;
        for w in 0..self.val.len() {
            let differs = (self.val[w] ^ other.val[w]) | (self.unk[w] ^ other.unk[w]);
            n += differs.count_ones() as usize;
        }
        n
    }

    /// Indices of nets whose value differs between the two frames.
    pub fn diff_indices(&self, other: &Frame) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_diff(other, |i| out.push(i));
        out
    }

    /// Calls `f` with the index of every net whose value differs between
    /// the two frames, ascending — [`Frame::diff_indices`] without the
    /// allocation, for per-cycle hot loops (power analysis, activity
    /// annotation).
    ///
    /// # Panics
    ///
    /// Panics if the frames have different lengths.
    pub fn for_each_diff(&self, other: &Frame, mut f: impl FnMut(usize)) {
        assert_eq!(self.len, other.len, "frame length mismatch");
        for w in 0..self.val.len() {
            let mut differs = (self.val[w] ^ other.val[w]) | (self.unk[w] ^ other.unk[w]);
            while differs != 0 {
                let b = differs.trailing_zeros() as usize;
                f(w * 64 + b);
                differs &= differs - 1;
            }
        }
    }

    /// Number of `X` nets in the frame.
    pub fn x_count(&self) -> usize {
        self.unk.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Lattice subsumption: every net of `self` covers the matching net of
    /// `other` (see [`Lv::covers`]).
    pub fn covers(&self, other: &Frame) -> bool {
        assert_eq!(self.len, other.len, "frame length mismatch");
        for w in 0..self.val.len() {
            let both_known_diff = !self.unk[w] & !other.unk[w] & (self.val[w] ^ other.val[w]);
            let other_x_self_known = other.unk[w] & !self.unk[w];
            if both_known_diff != 0 || other_x_self_known != 0 {
                return false;
            }
        }
        true
    }

    /// In-place lattice join with `other` (bitwise least upper bound).
    pub fn join_in_place(&mut self, other: &Frame) {
        assert_eq!(self.len, other.len, "frame length mismatch");
        for w in 0..self.val.len() {
            let unk = self.unk[w] | other.unk[w] | (self.val[w] ^ other.val[w]);
            self.unk[w] = unk;
            self.val[w] &= !unk;
        }
    }

    /// A 64-bit content hash (FNV-1a over both planes).
    pub fn content_hash(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut mix = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        mix(self.len as u64);
        for &w in &self.val {
            mix(w);
        }
        for &w in &self.unk {
            mix(w);
        }
        h
    }
}

impl Hash for Frame {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.content_hash());
    }
}

impl FromIterator<Lv> for Frame {
    fn from_iter<T: IntoIterator<Item = Lv>>(iter: T) -> Frame {
        let vals: Vec<Lv> = iter.into_iter().collect();
        let mut f = Frame::new(vals.len());
        for (i, v) in vals.into_iter().enumerate() {
            f.set(i, v);
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_zero() {
        let f = Frame::new(100);
        assert_eq!(f.len(), 100);
        assert!((0..100).all(|i| f.get(i) == Lv::Zero));
        assert_eq!(f.x_count(), 0);
    }

    #[test]
    fn new_all_x_tail_is_exact() {
        let f = Frame::new_all_x(65);
        assert_eq!(f.x_count(), 65);
        assert!((0..65).all(|i| f.get(i) == Lv::X));
        let g = Frame::new_all_x(64);
        assert_eq!(g.x_count(), 64);
    }

    #[test]
    fn set_get_round_trip_across_word_boundary() {
        let mut f = Frame::new(130);
        f.set(63, Lv::One);
        f.set(64, Lv::X);
        f.set(129, Lv::One);
        assert_eq!(f.get(63), Lv::One);
        assert_eq!(f.get(64), Lv::X);
        assert_eq!(f.get(129), Lv::One);
        f.set(64, Lv::Zero);
        assert_eq!(f.get(64), Lv::Zero);
        assert_eq!(f.x_count(), 0);
    }

    #[test]
    fn diff_count_and_indices_agree() {
        let mut a = Frame::new(200);
        let mut b = Frame::new(200);
        a.set(0, Lv::One);
        a.set(100, Lv::X);
        b.set(150, Lv::One);
        assert_eq!(a.diff_count(&b), 3);
        assert_eq!(a.diff_indices(&b), vec![0, 100, 150]);
    }

    #[test]
    fn x_to_known_counts_as_difference() {
        let mut a = Frame::new(8);
        let mut b = Frame::new(8);
        a.set(2, Lv::X);
        b.set(2, Lv::Zero);
        assert_eq!(a.diff_count(&b), 1);
        b.set(2, Lv::One);
        assert_eq!(a.diff_count(&b), 1);
        assert_eq!(a.diff_indices(&b), vec![2]);
    }

    #[test]
    fn covers_and_join() {
        let mut a = Frame::new(10);
        let mut b = Frame::new(10);
        a.set(1, Lv::One);
        b.set(1, Lv::Zero);
        assert!(!a.covers(&b));
        let mut j = a.clone();
        j.join_in_place(&b);
        assert!(j.covers(&a) && j.covers(&b));
        assert_eq!(j.get(1), Lv::X);
        assert_eq!(j.get(0), Lv::Zero);
    }

    #[test]
    fn content_hash_differs_for_x_vs_one() {
        let mut a = Frame::new(10);
        let mut b = Frame::new(10);
        a.set(5, Lv::X);
        b.set(5, Lv::One);
        assert_ne!(a.content_hash(), b.content_hash());
        let c = a.clone();
        assert_eq!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn replace_returns_old_value() {
        let mut f = Frame::new(70);
        assert_eq!(f.replace(69, Lv::X), Lv::Zero);
        assert_eq!(f.replace(69, Lv::One), Lv::X);
        assert_eq!(f.replace(69, Lv::One), Lv::One);
        assert_eq!(f.get(69), Lv::One);
    }

    #[test]
    fn known_equal_words_mask_tail() {
        let mut a = Frame::new(70);
        let mut b = Frame::new(70);
        a.set(0, Lv::One);
        b.set(0, Lv::One); // known equal
        a.set(1, Lv::One); // known different
        a.set(65, Lv::X); // X in one frame
        let mut words = Vec::new();
        a.known_equal_words_into(&b, &mut words);
        assert_eq!(words.len(), a.word_count());
        assert_eq!(words[0] & 1, 1);
        assert_eq!((words[0] >> 1) & 1, 0);
        assert_eq!((words[1] >> 1) & 1, 0);
        // Bits past len() are never "stable".
        assert_eq!(words[1] >> 6, 0);
    }

    #[test]
    fn assign_x_pair_matches_per_bit_rules() {
        let n = 200;
        let mut rng = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for _ in 0..50 {
            let mut prev = Frame::new(n);
            let mut cur = Frame::new(n);
            let mut stable = vec![0u64; prev.word_count()];
            let mut tr_first = vec![0u64; prev.word_count()];
            let mut tr_second = vec![0u64; prev.word_count()];
            let lv = |x: u64| match x % 3 {
                0 => Lv::Zero,
                1 => Lv::One,
                _ => Lv::X,
            };
            for i in 0..n {
                prev.set(i, lv(next()));
                cur.set(i, lv(next()));
                if next() % 2 == 0 {
                    stable[i / 64] |= 1 << (i % 64);
                }
                if next() % 2 == 0 {
                    tr_first[i / 64] |= 1 << (i % 64);
                }
                if next() % 2 == 0 {
                    tr_second[i / 64] |= 1 << (i % 64);
                }
            }
            // Per-bit reference.
            let (mut rp, mut rc) = (prev.clone(), cur.clone());
            for i in 0..n {
                let s = (stable[i / 64] >> (i % 64)) & 1 == 1;
                let a = (tr_first[i / 64] >> (i % 64)) & 1 == 1;
                let b = (tr_second[i / 64] >> (i % 64)) & 1 == 1;
                match (rp.get(i), rc.get(i)) {
                    (Lv::X, Lv::X) => {
                        if s {
                            rp.set(i, Lv::Zero);
                            rc.set(i, Lv::Zero);
                        } else {
                            rp.set(i, Lv::from_bool(a));
                            rc.set(i, Lv::from_bool(b));
                        }
                    }
                    (Lv::X, v) => rp.set(i, if s { v } else { v.not() }),
                    (v, Lv::X) => rc.set(i, if s { v } else { v.not() }),
                    _ => {}
                }
            }
            Frame::assign_x_pair(&mut prev, &mut cur, &stable, &tr_first, &tr_second);
            assert_eq!(prev, rp, "prev plane diverges from per-bit rules");
            assert_eq!(cur, rc, "cur plane diverges from per-bit rules");
        }
    }

    #[test]
    fn resolve_x_to_zero_only_touches_x() {
        let mut f = Frame::new(70);
        f.set(1, Lv::One);
        f.set(69, Lv::X);
        f.resolve_x_to_zero();
        assert_eq!(f.get(1), Lv::One);
        assert_eq!(f.get(69), Lv::Zero);
        assert_eq!(f.x_count(), 0);
    }

    #[test]
    fn from_iterator_builds_frame() {
        let f: Frame = [Lv::One, Lv::X, Lv::Zero].into_iter().collect();
        assert_eq!(f.len(), 3);
        assert_eq!(f.get(0), Lv::One);
        assert_eq!(f.get(1), Lv::X);
        assert_eq!(f.get(2), Lv::Zero);
    }
}
