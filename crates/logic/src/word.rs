//! 16-bit words of three-valued logic.

use crate::Lv;

/// A 16-bit word whose bits are three-valued [`Lv`]s.
///
/// Internally two bit-planes are kept: `val` holds the value of known bits and
/// `unk` marks unknown (`X`) bits. Bits marked unknown always have a zero
/// `val` bit so that equal words compare equal structurally.
///
/// # Example
///
/// ```
/// use xbound_logic::{Lv, XWord};
///
/// let w = XWord::from_u16(0xBEEF);
/// assert_eq!(w.to_u16(), Some(0xBEEF));
/// let mut w = w;
/// w.set_bit(0, Lv::X);
/// assert_eq!(w.to_u16(), None);
/// assert!(w.bit(0).is_x());
/// assert_eq!(w.bit(1), Lv::One);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct XWord {
    val: u16,
    unk: u16,
}

impl XWord {
    /// The fully unknown word (all 16 bits `X`).
    pub const ALL_X: XWord = XWord {
        val: 0,
        unk: 0xFFFF,
    };

    /// The all-zero word.
    pub const ZERO: XWord = XWord { val: 0, unk: 0 };

    /// Builds a fully known word from a `u16`.
    #[inline]
    pub fn from_u16(v: u16) -> XWord {
        XWord { val: v, unk: 0 }
    }

    /// Builds a word from raw bit-planes. `unk` bits override `val` bits.
    #[inline]
    pub fn from_planes(val: u16, unk: u16) -> XWord {
        XWord {
            val: val & !unk,
            unk,
        }
    }

    /// Value bit-plane (unknown bits read as 0).
    #[inline]
    pub fn val_plane(self) -> u16 {
        self.val
    }

    /// Unknown-mask bit-plane.
    #[inline]
    pub fn unk_plane(self) -> u16 {
        self.unk
    }

    /// Returns the concrete value if every bit is known.
    #[inline]
    pub fn to_u16(self) -> Option<u16> {
        if self.unk == 0 {
            Some(self.val)
        } else {
            None
        }
    }

    /// `true` if every bit is known.
    #[inline]
    pub fn is_fully_known(self) -> bool {
        self.unk == 0
    }

    /// `true` if at least one bit is unknown.
    #[inline]
    pub fn has_x(self) -> bool {
        self.unk != 0
    }

    /// Number of unknown bits.
    #[inline]
    pub fn x_count(self) -> u32 {
        self.unk.count_ones()
    }

    /// Reads bit `i` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 16`.
    #[inline]
    pub fn bit(self, i: usize) -> Lv {
        assert!(i < 16, "bit index {i} out of range");
        if (self.unk >> i) & 1 == 1 {
            Lv::X
        } else if (self.val >> i) & 1 == 1 {
            Lv::One
        } else {
            Lv::Zero
        }
    }

    /// Writes bit `i` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 16`.
    #[inline]
    pub fn set_bit(&mut self, i: usize, v: Lv) {
        assert!(i < 16, "bit index {i} out of range");
        let m = 1u16 << i;
        match v {
            Lv::Zero => {
                self.val &= !m;
                self.unk &= !m;
            }
            Lv::One => {
                self.val |= m;
                self.unk &= !m;
            }
            Lv::X => {
                self.val &= !m;
                self.unk |= m;
            }
        }
    }

    /// Iterator over the 16 bits, LSB first.
    pub fn bits(self) -> impl Iterator<Item = Lv> {
        (0..16).map(move |i| self.bit(i))
    }

    /// Lattice subsumption: every bit of `self` covers the matching bit of
    /// `other` (see [`Lv::covers`]).
    #[inline]
    pub fn covers(self, other: XWord) -> bool {
        // self covers other iff for each bit: self is X, or both known equal.
        let both_known_diff = !self.unk & !other.unk & (self.val ^ other.val);
        let other_x_self_known = other.unk & !self.unk;
        both_known_diff == 0 && other_x_self_known == 0
    }

    /// Lattice join: bitwise least upper bound.
    #[inline]
    pub fn join(self, other: XWord) -> XWord {
        let unk = self.unk | other.unk | (self.val ^ other.val);
        XWord::from_planes(self.val, unk)
    }

    /// Low byte as a new word with the high byte zeroed.
    #[inline]
    pub fn low_byte(self) -> XWord {
        XWord {
            val: self.val & 0xFF,
            unk: self.unk & 0xFF,
        }
    }
}

impl From<u16> for XWord {
    fn from(v: u16) -> XWord {
        XWord::from_u16(v)
    }
}

impl std::fmt::Display for XWord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in (0..16).rev() {
            write!(f, "{}", self.bit(i).to_char())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_u16_round_trip() {
        for v in [0u16, 1, 0xFFFF, 0xBEEF, 0x8000] {
            assert_eq!(XWord::from_u16(v).to_u16(), Some(v));
        }
    }

    #[test]
    fn all_x_has_no_concrete_value() {
        assert_eq!(XWord::ALL_X.to_u16(), None);
        assert_eq!(XWord::ALL_X.x_count(), 16);
        for i in 0..16 {
            assert_eq!(XWord::ALL_X.bit(i), Lv::X);
        }
    }

    #[test]
    fn set_bit_each_value() {
        let mut w = XWord::from_u16(0);
        w.set_bit(3, Lv::One);
        assert_eq!(w.bit(3), Lv::One);
        w.set_bit(3, Lv::X);
        assert_eq!(w.bit(3), Lv::X);
        assert!(w.has_x());
        w.set_bit(3, Lv::Zero);
        assert_eq!(w, XWord::ZERO);
    }

    #[test]
    fn planes_normalize_unknown_bits() {
        let w = XWord::from_planes(0xFFFF, 0x00FF);
        assert_eq!(w.val_plane(), 0xFF00, "X bits must zero their val bits");
        assert_eq!(w.unk_plane(), 0x00FF);
    }

    #[test]
    fn covers_reflexive_and_top() {
        let w = XWord::from_u16(0x1234);
        assert!(w.covers(w));
        assert!(XWord::ALL_X.covers(w));
        assert!(!w.covers(XWord::ALL_X));
    }

    #[test]
    fn covers_detects_known_mismatch() {
        let a = XWord::from_u16(0x0001);
        let b = XWord::from_u16(0x0000);
        assert!(!a.covers(b));
        assert!(!b.covers(a));
        let mut ax = a;
        ax.set_bit(0, Lv::X);
        assert!(ax.covers(a));
        assert!(ax.covers(b));
    }

    #[test]
    fn join_matches_bitwise_join() {
        let a = XWord::from_u16(0b1010);
        let b = XWord::from_u16(0b1100);
        let j = a.join(b);
        for i in 0..16 {
            assert_eq!(j.bit(i), a.bit(i).join(b.bit(i)), "bit {i}");
        }
        assert!(j.covers(a) && j.covers(b));
    }

    #[test]
    fn display_is_msb_first() {
        let mut w = XWord::from_u16(0x8001);
        w.set_bit(4, Lv::X);
        assert_eq!(w.to_string(), "10000000000x0001");
    }
}
