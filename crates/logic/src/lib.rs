//! Three-valued (0/1/X) logic primitives used throughout `xbound`.
//!
//! The symbolic simulation at the heart of the ASPLOS'17 technique propagates
//! *unknown* logic values (`X`) for every signal that cannot be constrained by
//! the application binary. This crate provides:
//!
//! * [`Lv`] — a single three-valued logic value with pessimistic gate
//!   semantics (`X AND 0 = 0`, `X AND 1 = X`, …),
//! * [`XWord`] — a 16-bit word of [`Lv`]s with word-level helpers used by the
//!   behavioral memory models and the symbolic machine state,
//! * [`Frame`] — a densely packed vector of [`Lv`]s holding the value of every
//!   net in a netlist for one clock cycle.
//!
//! # Example
//!
//! ```
//! use xbound_logic::Lv;
//!
//! assert_eq!(Lv::X.and(Lv::Zero), Lv::Zero); // controlling value wins
//! assert_eq!(Lv::X.and(Lv::One), Lv::X);     // X propagates otherwise
//! assert_eq!(Lv::X.xor(Lv::One), Lv::X);
//! ```
//!
//! There is exactly one implementation of the three-valued gate algebra:
//! the word-wise [`LaneVal`] kernels in [`batch`]. The scalar [`Lv`]
//! operations below are the 1-lane instantiation of those kernels (splat
//! into lane 0, apply the word kernel, read lane 0 back), so the scalar
//! and batched engines cannot diverge. The truth tables live in this
//! crate's tests as the executable specification.

#![warn(missing_docs)]

pub mod batch;
mod frame;
pub mod kernels;
mod word;

pub use batch::{BatchFrame, LaneVal, MAX_LANES};
pub use frame::Frame;
pub use word::XWord;

/// A three-valued logic level: `0`, `1`, or unknown (`X`).
///
/// High-impedance (`Z`) values of real designs are conservatively folded into
/// `X`; this only widens the activity superset computed by the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
#[repr(u8)]
pub enum Lv {
    /// Logic zero.
    #[default]
    Zero = 0,
    /// Logic one.
    One = 1,
    /// Unknown value (symbolic input or uninitialized state).
    X = 2,
}

impl Lv {
    /// All three values, in encoding order.
    pub const ALL: [Lv; 3] = [Lv::Zero, Lv::One, Lv::X];

    /// Converts a `bool` into a known logic level.
    #[inline]
    pub fn from_bool(b: bool) -> Lv {
        if b {
            Lv::One
        } else {
            Lv::Zero
        }
    }

    /// Decodes the raw encoding produced by [`Lv::code`].
    ///
    /// Any value other than `0` or `1` decodes to [`Lv::X`].
    #[inline]
    pub fn from_code(code: u8) -> Lv {
        match code {
            0 => Lv::Zero,
            1 => Lv::One,
            _ => Lv::X,
        }
    }

    /// Raw 2-bit encoding (`0`, `1`, `2`).
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Returns the concrete boolean if the value is known.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Lv::Zero => Some(false),
            Lv::One => Some(true),
            Lv::X => None,
        }
    }

    /// `true` for `0` and `1`, `false` for `X`.
    #[inline]
    pub fn is_known(self) -> bool {
        !matches!(self, Lv::X)
    }

    /// `true` only for `X`.
    #[inline]
    pub fn is_x(self) -> bool {
        matches!(self, Lv::X)
    }

    /// Applies a unary [`LaneVal`] kernel at width 1 (lane 0).
    #[inline]
    fn via_lane1(self, f: impl FnOnce(LaneVal) -> LaneVal) -> Lv {
        f(LaneVal::splat(self, 1)).get(0)
    }

    /// Applies a binary [`LaneVal`] kernel at width 1 (lane 0).
    #[inline]
    fn via_lane2(self, rhs: Lv, f: impl FnOnce(LaneVal, LaneVal) -> LaneVal) -> Lv {
        f(LaneVal::splat(self, 1), LaneVal::splat(rhs, 1)).get(0)
    }

    /// Logical negation; `X` stays `X`.
    // An inherent `not` (like `and`/`or`) keeps the three-valued gate
    // algebra in one naming scheme; `!lv` via `ops::Not` also works.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn not(self) -> Lv {
        self.via_lane1(|a| a.not(1))
    }

    /// Pessimistic AND: a controlling `0` forces the output to `0`.
    #[inline]
    pub fn and(self, rhs: Lv) -> Lv {
        self.via_lane2(rhs, LaneVal::and)
    }

    /// Pessimistic OR: a controlling `1` forces the output to `1`.
    #[inline]
    pub fn or(self, rhs: Lv) -> Lv {
        self.via_lane2(rhs, LaneVal::or)
    }

    /// XOR: unknown whenever either input is unknown.
    #[inline]
    pub fn xor(self, rhs: Lv) -> Lv {
        self.via_lane2(rhs, LaneVal::xor)
    }

    /// NAND, NOR, XNOR in terms of the primitives above.
    #[inline]
    pub fn nand(self, rhs: Lv) -> Lv {
        self.and(rhs).not()
    }

    /// See [`Lv::nand`].
    #[inline]
    pub fn nor(self, rhs: Lv) -> Lv {
        self.or(rhs).not()
    }

    /// See [`Lv::nand`].
    #[inline]
    pub fn xnor(self, rhs: Lv) -> Lv {
        self.xor(rhs).not()
    }

    /// Two-input multiplexer: `sel == 0 → a`, `sel == 1 → b`.
    ///
    /// When `sel` is `X` the output is known only if both data inputs agree
    /// (standard X-pessimistic mux semantics).
    #[inline]
    pub fn mux(sel: Lv, a: Lv, b: Lv) -> Lv {
        LaneVal::mux(
            LaneVal::splat(sel, 1),
            LaneVal::splat(a, 1),
            LaneVal::splat(b, 1),
        )
        .get(0)
    }

    /// Lattice subsumption: `self` covers `other` if it is `X` or equal.
    ///
    /// Used by the state memoization of Algorithm 1: re-simulating a state
    /// covered by an already-explored state cannot add activity.
    #[inline]
    pub fn covers(self, other: Lv) -> bool {
        self == Lv::X || self == other
    }

    /// Lattice join: returns the least value covering both inputs.
    #[inline]
    pub fn join(self, other: Lv) -> Lv {
        self.via_lane2(other, LaneVal::join)
    }

    /// ASCII character used in traces and VCD files (`'0'`, `'1'`, `'x'`).
    #[inline]
    pub fn to_char(self) -> char {
        match self {
            Lv::Zero => '0',
            Lv::One => '1',
            Lv::X => 'x',
        }
    }

    /// Parses `'0' | '1' | 'x' | 'X' | 'z' | 'Z'` (Z folds into X).
    pub fn from_char(c: char) -> Option<Lv> {
        match c {
            '0' => Some(Lv::Zero),
            '1' => Some(Lv::One),
            'x' | 'X' | 'z' | 'Z' => Some(Lv::X),
            _ => None,
        }
    }
}

impl std::fmt::Display for Lv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl From<bool> for Lv {
    fn from(b: bool) -> Lv {
        Lv::from_bool(b)
    }
}

impl std::ops::Not for Lv {
    type Output = Lv;

    fn not(self) -> Lv {
        Lv::not(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_truth_table() {
        use Lv::*;
        let expect = [
            (Zero, Zero, Zero),
            (Zero, One, Zero),
            (Zero, X, Zero),
            (One, Zero, Zero),
            (One, One, One),
            (One, X, X),
            (X, Zero, Zero),
            (X, One, X),
            (X, X, X),
        ];
        for (a, b, r) in expect {
            assert_eq!(a.and(b), r, "{a} AND {b}");
        }
    }

    #[test]
    fn or_truth_table() {
        use Lv::*;
        let expect = [
            (Zero, Zero, Zero),
            (Zero, One, One),
            (Zero, X, X),
            (One, Zero, One),
            (One, One, One),
            (One, X, One),
            (X, Zero, X),
            (X, One, One),
            (X, X, X),
        ];
        for (a, b, r) in expect {
            assert_eq!(a.or(b), r, "{a} OR {b}");
        }
    }

    #[test]
    fn xor_truth_table() {
        use Lv::{One, Zero, X};
        assert_eq!(Zero.xor(Zero), Zero);
        assert_eq!(Zero.xor(One), One);
        assert_eq!(One.xor(One), Zero);
        assert_eq!(One.xor(X), X);
        assert_eq!(X.xor(X), X);
    }

    #[test]
    fn not_involution_on_known() {
        for v in [Lv::Zero, Lv::One] {
            assert_eq!(v.not().not(), v);
        }
        assert_eq!(Lv::X.not(), Lv::X);
    }

    #[test]
    fn mux_select_known() {
        use Lv::*;
        assert_eq!(Lv::mux(Zero, One, Zero), One);
        assert_eq!(Lv::mux(One, One, Zero), Zero);
    }

    #[test]
    fn mux_select_x_agreeing_inputs() {
        use Lv::*;
        assert_eq!(Lv::mux(X, One, One), One);
        assert_eq!(Lv::mux(X, Zero, Zero), Zero);
        assert_eq!(Lv::mux(X, One, Zero), X);
        assert_eq!(Lv::mux(X, X, X), X);
    }

    #[test]
    fn covers_is_a_partial_order() {
        use Lv::*;
        for v in Lv::ALL {
            assert!(v.covers(v));
            assert!(X.covers(v));
        }
        assert!(!Zero.covers(One));
        assert!(!One.covers(X));
    }

    #[test]
    fn join_is_least_upper_bound() {
        for a in Lv::ALL {
            for b in Lv::ALL {
                let j = a.join(b);
                assert!(j.covers(a) && j.covers(b));
                if a == b {
                    assert_eq!(j, a);
                }
            }
        }
    }

    #[test]
    fn char_round_trip() {
        for v in Lv::ALL {
            assert_eq!(Lv::from_char(v.to_char()), Some(v));
        }
        assert_eq!(Lv::from_char('z'), Some(Lv::X));
        assert_eq!(Lv::from_char('q'), None);
    }

    #[test]
    fn demorgan_holds_in_three_valued_logic() {
        for a in Lv::ALL {
            for b in Lv::ALL {
                assert_eq!(a.nand(b), a.not().or(b.not()));
                assert_eq!(a.nor(b), a.not().and(b.not()));
            }
        }
    }

    #[test]
    fn code_round_trip() {
        for v in Lv::ALL {
            assert_eq!(Lv::from_code(v.code()), v);
        }
    }
}
