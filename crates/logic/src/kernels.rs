//! Word-wise run kernels for the compiled simulation backend.
//!
//! Each kernel evaluates one contiguous run of same-kind ops over a dense
//! [`LaneVal`] slot array, driven by SoA operand-index slices (`out`/`a`/
//! `b`/`c`, one `u32` per op). The caller dispatches **once per run**, not
//! once per gate — inside a kernel there is no per-gate branching and no
//! fanout-index chasing, just indexed loads, one word-wise [`LaneVal`]
//! operation, and an indexed store.
//!
//! These are the same three-valued gate kernels the interpreting engines
//! use ([`LaneVal::and`] & co.); a kernel is merely their batched,
//! slot-indexed form, so the two backends cannot implement different gate
//! algebra. `mask` is the caller's lane mask (kernels producing `1` bits
//! must not set bits above the live lanes — same contract as
//! [`LaneVal::not`]).

use crate::batch::LaneVal;
use crate::Lv;

#[inline]
fn s(x: u32) -> usize {
    x as usize
}

/// `out[i] = 0` (three-valued constant zero).
pub fn run_tie0(slots: &mut [LaneVal], out: &[u32]) {
    for &o in out {
        slots[s(o)] = LaneVal::ZERO;
    }
}

/// `out[i] = 1` in every live lane.
pub fn run_tie1(slots: &mut [LaneVal], out: &[u32], mask: u64) {
    let one = LaneVal::splat(Lv::One, mask);
    for &o in out {
        slots[s(o)] = one;
    }
}

/// `out[i] = a[i]` (buffer copy; emitted only for force-cut slots — plain
/// buffers fold away at compile time).
pub fn run_buf(slots: &mut [LaneVal], out: &[u32], a: &[u32]) {
    for i in 0..out.len() {
        slots[s(out[i])] = slots[s(a[i])];
    }
}

/// `out[i] = !a[i]`.
pub fn run_inv(slots: &mut [LaneVal], out: &[u32], a: &[u32], mask: u64) {
    for i in 0..out.len() {
        slots[s(out[i])] = slots[s(a[i])].not(mask);
    }
}

/// `out[i] = a[i] & b[i]`.
pub fn run_and2(slots: &mut [LaneVal], out: &[u32], a: &[u32], b: &[u32]) {
    for i in 0..out.len() {
        slots[s(out[i])] = slots[s(a[i])].and(slots[s(b[i])]);
    }
}

/// `out[i] = a[i] | b[i]`.
pub fn run_or2(slots: &mut [LaneVal], out: &[u32], a: &[u32], b: &[u32]) {
    for i in 0..out.len() {
        slots[s(out[i])] = slots[s(a[i])].or(slots[s(b[i])]);
    }
}

/// `out[i] = !(a[i] & b[i])`.
pub fn run_nand2(slots: &mut [LaneVal], out: &[u32], a: &[u32], b: &[u32], mask: u64) {
    for i in 0..out.len() {
        slots[s(out[i])] = slots[s(a[i])].nand(slots[s(b[i])], mask);
    }
}

/// `out[i] = !(a[i] | b[i])`.
pub fn run_nor2(slots: &mut [LaneVal], out: &[u32], a: &[u32], b: &[u32], mask: u64) {
    for i in 0..out.len() {
        slots[s(out[i])] = slots[s(a[i])].nor(slots[s(b[i])], mask);
    }
}

/// `out[i] = a[i] ^ b[i]`.
pub fn run_xor2(slots: &mut [LaneVal], out: &[u32], a: &[u32], b: &[u32]) {
    for i in 0..out.len() {
        slots[s(out[i])] = slots[s(a[i])].xor(slots[s(b[i])]);
    }
}

/// `out[i] = !(a[i] ^ b[i])`.
pub fn run_xnor2(slots: &mut [LaneVal], out: &[u32], a: &[u32], b: &[u32], mask: u64) {
    for i in 0..out.len() {
        slots[s(out[i])] = slots[s(a[i])].xnor(slots[s(b[i])], mask);
    }
}

/// `out[i] = c[i] ? b[i] : a[i]` (2:1 mux; `c` is the select).
pub fn run_mux2(slots: &mut [LaneVal], out: &[u32], a: &[u32], b: &[u32], c: &[u32]) {
    for i in 0..out.len() {
        slots[s(out[i])] = LaneVal::mux(slots[s(c[i])], slots[s(a[i])], slots[s(b[i])]);
    }
}

/// `out[i] = !((a[i] & b[i]) | c[i])`.
pub fn run_aoi21(slots: &mut [LaneVal], out: &[u32], a: &[u32], b: &[u32], c: &[u32], mask: u64) {
    for i in 0..out.len() {
        slots[s(out[i])] = LaneVal::aoi21(slots[s(a[i])], slots[s(b[i])], slots[s(c[i])], mask);
    }
}

/// `out[i] = !((a[i] | b[i]) & c[i])`.
pub fn run_oai21(slots: &mut [LaneVal], out: &[u32], a: &[u32], b: &[u32], c: &[u32], mask: u64) {
    for i in 0..out.len() {
        slots[s(out[i])] = LaneVal::oai21(slots[s(a[i])], slots[s(b[i])], slots[s(c[i])], mask);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Lv; 3] = [Lv::Zero, Lv::One, Lv::X];

    /// Every (a, b) lane combination packed into one LaneVal pair.
    fn pairs() -> (LaneVal, LaneVal, u64) {
        let mut a = LaneVal::ZERO;
        let mut b = LaneVal::ZERO;
        let mut l = 0;
        for &va in &ALL {
            for &vb in &ALL {
                a.set(l, va);
                b.set(l, vb);
                l += 1;
            }
        }
        (a, b, (1u64 << l) - 1)
    }

    /// Each run kernel must agree with the word-wise `LaneVal` op it wraps,
    /// through an out-of-order index map.
    #[test]
    fn kernels_match_word_ops() {
        let (a, b, mask) = pairs();
        let c = a.xor(b);
        // Slots: [a, b, c, out0, out1]; two ops with swapped operand order.
        let base = [a, b, c, LaneVal::ZERO, LaneVal::ZERO];
        let out = [3u32, 4];
        let ia = [0u32, 1];
        let ib = [1u32, 0];
        let ic = [2u32, 2];

        let mut slots = base;
        run_and2(&mut slots, &out, &ia, &ib);
        assert_eq!(slots[3], a.and(b));
        assert_eq!(slots[4], b.and(a));

        let mut slots = base;
        run_nand2(&mut slots, &out, &ia, &ib, mask);
        assert_eq!(slots[3], a.nand(b, mask));

        let mut slots = base;
        run_or2(&mut slots, &out, &ia, &ib);
        assert_eq!(slots[3], a.or(b));

        let mut slots = base;
        run_nor2(&mut slots, &out, &ia, &ib, mask);
        assert_eq!(slots[4], b.nor(a, mask));

        let mut slots = base;
        run_xor2(&mut slots, &out, &ia, &ib);
        assert_eq!(slots[3], a.xor(b));

        let mut slots = base;
        run_xnor2(&mut slots, &out, &ia, &ib, mask);
        assert_eq!(slots[3], a.xnor(b, mask));

        let mut slots = base;
        run_inv(&mut slots, &out, &ia, mask);
        assert_eq!(slots[3], a.not(mask));
        assert_eq!(slots[4], b.not(mask));

        let mut slots = base;
        run_buf(&mut slots, &out, &ia);
        assert_eq!(slots[3], a);

        let mut slots = base;
        run_mux2(&mut slots, &out, &ia, &ib, &ic);
        assert_eq!(slots[3], LaneVal::mux(c, a, b));
        assert_eq!(slots[4], LaneVal::mux(c, b, a));

        let mut slots = base;
        run_aoi21(&mut slots, &out, &ia, &ib, &ic, mask);
        assert_eq!(slots[3], LaneVal::aoi21(a, b, c, mask));

        let mut slots = base;
        run_oai21(&mut slots, &out, &ia, &ib, &ic, mask);
        assert_eq!(slots[4], LaneVal::oai21(b, a, c, mask));

        let mut slots = base;
        run_tie0(&mut slots, &out);
        assert_eq!(slots[3], LaneVal::ZERO);

        let mut slots = base;
        run_tie1(&mut slots, &out, mask);
        assert_eq!(slots[4], LaneVal::splat(Lv::One, mask));
        // Tie1 must not set bits above the lane mask.
        assert_eq!(slots[4].val & !mask, 0);
    }
}
