//! Standard-cell power libraries for `xbound`.
//!
//! The paper's power analysis (Synopsys PrimeTime) reads a Liberty `.lib`
//! characterization of the standard cells. This crate provides:
//!
//! * [`CellLibrary`] — per-cell transition energies (rise/fall, fJ), leakage
//!   (nW) and area (µm²) for the cell vocabulary of
//!   [`xbound_netlist::CellKind`];
//! * a parser for the **Liberty subset** in [`liberty`] plus a writer;
//! * two embedded synthetic libraries: [`CellLibrary::ulp65`] (65 nm-class,
//!   1.0 V — stands in for the paper's TSMC 65GP openMSP430 target) and
//!   [`CellLibrary::ulp130`] (130 nm-class, 3.0 V — stands in for the
//!   MSP430F1610 silicon measured in Chapter 2).
//!
//! # Example
//!
//! ```
//! use xbound_cells::CellLibrary;
//! use xbound_netlist::CellKind;
//!
//! let lib = CellLibrary::ulp65();
//! let dff = lib.power(CellKind::Dff);
//! assert!(dff.energy_rise_fj > dff.energy_fall_fj);
//! assert!(lib.max_transition_energy_fj(CellKind::Xor2) > 0.0);
//! ```

pub mod liberty;

use std::fmt;
use xbound_netlist::CellKind;

/// Per-cell power/area characterization.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CellPower {
    /// Dynamic energy for a rising output transition, femtojoules.
    pub energy_rise_fj: f64,
    /// Dynamic energy for a falling output transition, femtojoules.
    pub energy_fall_fj: f64,
    /// Leakage power, nanowatts.
    pub leakage_nw: f64,
    /// Cell area, square micrometres.
    pub area_um2: f64,
    /// Energy drawn from the clock pin each cycle (femtojoules); zero for
    /// combinational cells.
    pub clock_pin_fj: f64,
}

impl CellPower {
    /// Energy of the given output transition direction.
    #[inline]
    pub fn energy_fj(&self, rising: bool) -> f64 {
        if rising {
            self.energy_rise_fj
        } else {
            self.energy_fall_fj
        }
    }

    /// The larger of the rise/fall energies.
    #[inline]
    pub fn max_energy_fj(&self) -> f64 {
        self.energy_rise_fj.max(self.energy_fall_fj)
    }

    /// The output transition maximizing energy: `(first, second)` cycle
    /// values — the `maxTransition` lookup of the paper's Algorithm 2.
    #[inline]
    pub fn max_transition(&self) -> (bool, bool) {
        if self.energy_rise_fj >= self.energy_fall_fj {
            (false, true) // 0 -> 1
        } else {
            (true, false) // 1 -> 0
        }
    }
}

/// A complete characterization of the cell vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub struct CellLibrary {
    name: String,
    voltage_v: f64,
    cells: [CellPower; CellKind::ALL.len()],
}

/// Errors raised when a library is incomplete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LibraryError {
    /// A cell kind required by the netlist vocabulary is missing.
    MissingCell {
        /// Canonical name of the missing cell.
        cell: String,
    },
}

impl fmt::Display for LibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibraryError::MissingCell { cell } => {
                write!(f, "library does not characterize cell `{cell}`")
            }
        }
    }
}

impl std::error::Error for LibraryError {}

impl CellLibrary {
    /// Builds a library from `(kind, power)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::MissingCell`] if any [`CellKind`] is absent.
    pub fn from_cells(
        name: impl Into<String>,
        voltage_v: f64,
        pairs: &[(CellKind, CellPower)],
    ) -> Result<CellLibrary, LibraryError> {
        let mut cells = [None; CellKind::ALL.len()];
        for (k, p) in pairs {
            cells[Self::slot(*k)] = Some(*p);
        }
        let mut resolved = [CellPower::default(); CellKind::ALL.len()];
        for (i, k) in CellKind::ALL.iter().enumerate() {
            match cells[i] {
                Some(p) => resolved[i] = p,
                None => {
                    return Err(LibraryError::MissingCell {
                        cell: k.name().to_string(),
                    })
                }
            }
        }
        Ok(CellLibrary {
            name: name.into(),
            voltage_v,
            cells: resolved,
        })
    }

    fn slot(kind: CellKind) -> usize {
        CellKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("kind in ALL")
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Nominal supply voltage, volts.
    pub fn voltage_v(&self) -> f64 {
        self.voltage_v
    }

    /// Characterization of one cell kind.
    #[inline]
    pub fn power(&self, kind: CellKind) -> &CellPower {
        &self.cells[Self::slot(kind)]
    }

    /// Maximum single-transition energy of a cell, femtojoules.
    #[inline]
    pub fn max_transition_energy_fj(&self, kind: CellKind) -> f64 {
        self.power(kind).max_energy_fj()
    }

    /// Total leakage of a gate population, nanowatts.
    pub fn total_leakage_nw<'a>(&self, kinds: impl IntoIterator<Item = &'a CellKind>) -> f64 {
        kinds.into_iter().map(|k| self.power(*k).leakage_nw).sum()
    }

    /// The embedded 65 nm-class library (openMSP430 stand-in target).
    ///
    /// Parsed from Liberty text at every call; the text is embedded in the
    /// binary so the Liberty parser is exercised on the production path.
    ///
    /// # Panics
    ///
    /// Panics only if the embedded library text is corrupt (a build error).
    pub fn ulp65() -> CellLibrary {
        liberty::parse(ULP65_LIB).expect("embedded ulp65.lib is valid")
    }

    /// The embedded 130 nm-class library (MSP430F1610 stand-in, Chapter 2).
    ///
    /// # Panics
    ///
    /// Panics only if the embedded library text is corrupt (a build error).
    pub fn ulp130() -> CellLibrary {
        liberty::parse(ULP130_LIB).expect("embedded ulp130.lib is valid")
    }

    /// A voltage-scaled derate of this library: every switching energy
    /// (rise, fall, clock pin) and the leakage scale by `(v / Vnom)²`,
    /// the first-order CV² dependence; area is voltage-independent.
    ///
    /// `derated(Vnom)` is the **identity** — same name, equal cells — so
    /// a nominal operating-point corner keys and caches exactly like the
    /// base library. Any other voltage yields a distinct name
    /// (`"<name>@<v>v"`): the name is the only library-identifying key
    /// material in the bound cache and the subtree memo, so two voltages
    /// must never share it. Scaling rise and fall by the same positive
    /// factor preserves every cell's [`CellPower::max_transition`]
    /// direction, which is what lets operating-point sweeps share one
    /// max-transitions table across the derates of a base library.
    pub fn derated(&self, v: f64) -> CellLibrary {
        if v == self.voltage_v {
            return self.clone();
        }
        let s = (v / self.voltage_v) * (v / self.voltage_v);
        let mut cells = self.cells;
        for c in &mut cells {
            c.energy_rise_fj *= s;
            c.energy_fall_fj *= s;
            c.clock_pin_fj *= s;
            c.leakage_nw *= s;
        }
        CellLibrary {
            name: format!("{}@{}v", self.name, v),
            voltage_v: v,
            cells,
        }
    }
}

/// Raw Liberty text of the 65 nm-class library.
pub const ULP65_LIB: &str = include_str!("../data/ulp65.lib");
/// Raw Liberty text of the 130 nm-class library.
pub const ULP130_LIB: &str = include_str!("../data/ulp130.lib");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_libraries_parse() {
        let l65 = CellLibrary::ulp65();
        assert_eq!(l65.name(), "ulp65");
        assert_eq!(l65.voltage_v(), 1.0);
        let l130 = CellLibrary::ulp130();
        assert_eq!(l130.name(), "ulp130");
        assert_eq!(l130.voltage_v(), 3.0);
    }

    #[test]
    fn all_cells_characterized_and_positive() {
        let lib = CellLibrary::ulp65();
        for k in CellKind::ALL {
            let p = lib.power(k);
            assert!(p.leakage_nw > 0.0, "{k} leakage");
            assert!(p.area_um2 > 0.0, "{k} area");
            if !matches!(k, CellKind::Tie0 | CellKind::Tie1) {
                assert!(p.energy_rise_fj > 0.0, "{k} rise energy");
            }
        }
    }

    #[test]
    fn ulp130_energies_scale_up() {
        let l65 = CellLibrary::ulp65();
        let l130 = CellLibrary::ulp130();
        for k in CellKind::ALL {
            assert!(
                l130.power(k).energy_rise_fj >= l65.power(k).energy_rise_fj,
                "{k}"
            );
        }
    }

    #[test]
    fn sequential_cells_cost_more_than_inverters() {
        let lib = CellLibrary::ulp65();
        assert!(
            lib.max_transition_energy_fj(CellKind::Dff)
                > lib.max_transition_energy_fj(CellKind::Inv)
        );
    }

    #[test]
    fn clock_pin_energy_only_on_sequential_cells() {
        let lib = CellLibrary::ulp65();
        for k in CellKind::ALL {
            if k.is_sequential() {
                assert!(lib.power(k).clock_pin_fj > 0.0, "{k}");
            } else {
                assert_eq!(lib.power(k).clock_pin_fj, 0.0, "{k}");
            }
        }
    }

    #[test]
    fn max_transition_picks_higher_energy_direction() {
        let p = CellPower {
            energy_rise_fj: 2.0,
            energy_fall_fj: 5.0,
            leakage_nw: 1.0,
            area_um2: 1.0,
            clock_pin_fj: 0.0,
        };
        assert_eq!(p.max_transition(), (true, false));
        assert_eq!(p.max_energy_fj(), 5.0);
    }

    #[test]
    fn derated_at_nominal_voltage_is_identity() {
        let lib = CellLibrary::ulp65();
        let same = lib.derated(lib.voltage_v());
        assert_eq!(same, lib);
        assert_eq!(same.name(), "ulp65");
    }

    #[test]
    fn derated_energies_scale_quadratically() {
        let lib = CellLibrary::ulp65();
        let v = 0.9;
        let low = lib.derated(v);
        assert_eq!(low.name(), "ulp65@0.9v");
        assert_eq!(low.voltage_v(), v);
        let s = (v / lib.voltage_v()) * (v / lib.voltage_v());
        for k in CellKind::ALL {
            let base = lib.power(k);
            let der = low.power(k);
            assert_eq!(der.energy_rise_fj, base.energy_rise_fj * s, "{k} rise");
            assert_eq!(der.energy_fall_fj, base.energy_fall_fj * s, "{k} fall");
            assert_eq!(der.clock_pin_fj, base.clock_pin_fj * s, "{k} clock");
            assert_eq!(der.leakage_nw, base.leakage_nw * s, "{k} leakage");
            assert_eq!(der.area_um2, base.area_um2, "{k} area is voltage-free");
        }
    }

    #[test]
    fn derating_preserves_max_transition_direction() {
        let lib = CellLibrary::ulp130();
        let low = lib.derated(2.7);
        for k in CellKind::ALL {
            assert_eq!(
                low.power(k).max_transition(),
                lib.power(k).max_transition(),
                "{k}"
            );
        }
    }

    #[test]
    fn missing_cell_detected() {
        let err = CellLibrary::from_cells("partial", 1.0, &[]).unwrap_err();
        assert!(matches!(err, LibraryError::MissingCell { .. }));
    }

    #[test]
    fn total_leakage_sums() {
        let lib = CellLibrary::ulp65();
        let kinds = [CellKind::Inv, CellKind::Inv, CellKind::Dff];
        let total = lib.total_leakage_nw(kinds.iter());
        let expect =
            2.0 * lib.power(CellKind::Inv).leakage_nw + lib.power(CellKind::Dff).leakage_nw;
        assert!((total - expect).abs() < 1e-12);
    }
}
