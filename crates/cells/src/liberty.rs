//! Liberty-subset parser and writer.
//!
//! Liberty is the industry format for standard-cell characterization. The
//! subset understood here covers what the power engine consumes: the
//! `library` group with `nom_voltage`, and per-`cell` groups carrying
//! `area`, `cell_leakage_power`, and an output `pin` with an
//! `internal_power` group holding `rise_power` / `fall_power` (fJ per
//! transition).
//!
//! The parser is a small recursive-descent over the generic Liberty
//! structure — groups `name (args) { ... }` and attributes `key : value;` —
//! so unknown groups/attributes are tolerated and skipped, which is how real
//! Liberty consumers behave.
//!
//! # Example
//!
//! ```
//! use xbound_cells::liberty;
//!
//! let lib = liberty::parse(xbound_cells::ULP65_LIB)?;
//! let text = liberty::write(&lib);
//! let back = liberty::parse(&text)?;
//! assert_eq!(lib, back);
//! # Ok::<(), liberty::LibertyError>(())
//! ```

use crate::{CellLibrary, CellPower, LibraryError};
use std::collections::HashMap;
use std::fmt;
use xbound_netlist::CellKind;

/// Errors from [`parse`].
#[derive(Debug, Clone, PartialEq)]
pub enum LibertyError {
    /// Lexical/syntactic problem.
    Syntax {
        /// 1-based line.
        line: usize,
        /// Description.
        message: String,
    },
    /// A numeric attribute failed to parse.
    BadNumber {
        /// 1-based line.
        line: usize,
        /// The attribute name.
        attribute: String,
    },
    /// The library misses required cells.
    Incomplete(LibraryError),
}

impl fmt::Display for LibertyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibertyError::Syntax { line, message } => {
                write!(f, "liberty syntax error at line {line}: {message}")
            }
            LibertyError::BadNumber { line, attribute } => {
                write!(f, "bad numeric value for `{attribute}` at line {line}")
            }
            LibertyError::Incomplete(e) => write!(f, "incomplete library: {e}"),
        }
    }
}

impl std::error::Error for LibertyError {}

impl From<LibraryError> for LibertyError {
    fn from(e: LibraryError) -> LibertyError {
        LibertyError::Incomplete(e)
    }
}

/// Generic Liberty group node.
#[derive(Debug, Clone, Default)]
struct Group {
    kind: String,
    args: Vec<String>,
    attrs: HashMap<String, String>,
    children: Vec<Group>,
}

struct P<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> P<'a> {
    fn err(&self, m: impl Into<String>) -> LibertyError {
        LibertyError::Syntax {
            line: self.line,
            message: m.into(),
        }
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.src.len() && (self.src[self.pos] as char).is_whitespace() {
                if self.src[self.pos] == b'\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
            if self.src[self.pos..].starts_with(b"/*") {
                self.pos += 2;
                while self.pos < self.src.len() && !self.src[self.pos..].starts_with(b"*/") {
                    if self.src[self.pos] == b'\n' {
                        self.line += 1;
                    }
                    self.pos += 1;
                }
                self.pos = (self.pos + 2).min(self.src.len());
                continue;
            }
            if self.src[self.pos..].starts_with(b"//") {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            break;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn token(&mut self) -> Result<String, LibertyError> {
        self.skip_ws();
        let start = self.pos;
        if self.peek() == Some(b'"') {
            self.pos += 1;
            let s = self.pos;
            while self.pos < self.src.len() && self.src[self.pos] != b'"' {
                if self.src[self.pos] == b'\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
            if self.pos >= self.src.len() {
                return Err(self.err("unterminated string"));
            }
            let out = String::from_utf8_lossy(&self.src[s..self.pos]).into_owned();
            self.pos += 1;
            return Ok(out);
        }
        while self.pos < self.src.len() {
            let c = self.src[self.pos] as char;
            if c.is_ascii_alphanumeric() || "._-+_".contains(c) || c == '_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err(format!(
                "unexpected character `{}`",
                self.peek().map(|b| b as char).unwrap_or('∅')
            )));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn expect(&mut self, c: u8) -> Result<(), LibertyError> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", c as char)))
        }
    }

    /// Parses the body of a group after `{`; returns at matching `}`.
    fn group_body(&mut self, kind: String, args: Vec<String>) -> Result<Group, LibertyError> {
        let mut g = Group {
            kind,
            args,
            ..Group::default()
        };
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Err(self.err("unterminated group")),
                Some(b'}') => {
                    self.pos += 1;
                    // Optional trailing `;`.
                    self.skip_ws();
                    if self.peek() == Some(b';') {
                        self.pos += 1;
                    }
                    return Ok(g);
                }
                _ => {
                    let name = self.token()?;
                    self.skip_ws();
                    match self.peek() {
                        Some(b':') => {
                            self.pos += 1;
                            let val = self.token()?;
                            self.expect(b';')?;
                            g.attrs.insert(name, val);
                        }
                        Some(b'(') => {
                            self.pos += 1;
                            let mut args = Vec::new();
                            loop {
                                self.skip_ws();
                                if self.peek() == Some(b')') {
                                    self.pos += 1;
                                    break;
                                }
                                args.push(self.token()?);
                                self.skip_ws();
                                if self.peek() == Some(b',') {
                                    self.pos += 1;
                                }
                            }
                            self.skip_ws();
                            match self.peek() {
                                Some(b'{') => {
                                    self.pos += 1;
                                    let child = self.group_body(name, args)?;
                                    g.children.push(child);
                                }
                                Some(b';') => {
                                    // Simple complex attribute, e.g.
                                    // capacitive_load_unit (1.0, "pf");
                                    self.pos += 1;
                                }
                                _ => return Err(self.err("expected `{` or `;` after group args")),
                            }
                        }
                        _ => return Err(self.err(format!("expected `:` or `(` after `{name}`"))),
                    }
                }
            }
        }
    }
}

fn get_num(g: &Group, key: &str, line: usize) -> Result<Option<f64>, LibertyError> {
    match g.attrs.get(key) {
        None => Ok(None),
        Some(v) => v
            .parse::<f64>()
            .map(Some)
            .map_err(|_| LibertyError::BadNumber {
                line,
                attribute: key.to_string(),
            }),
    }
}

/// Parses Liberty text into a [`CellLibrary`].
///
/// # Errors
///
/// Returns [`LibertyError`] on syntax problems, non-numeric values in the
/// consumed attributes, or a library missing cells of the vocabulary.
pub fn parse(src: &str) -> Result<CellLibrary, LibertyError> {
    let mut p = P {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    p.skip_ws();
    let kw = p.token()?;
    if kw != "library" {
        return Err(p.err("expected `library` group"));
    }
    p.expect(b'(')?;
    let name = p.token()?;
    p.expect(b')')?;
    p.expect(b'{')?;
    let root = p.group_body("library".to_string(), vec![name.clone()])?;

    let voltage = get_num(&root, "nom_voltage", 0)?.unwrap_or(1.0);
    let mut pairs = Vec::new();
    for cell in root.children.iter().filter(|c| c.kind == "cell") {
        let cname = match cell.args.first() {
            Some(n) => n.clone(),
            None => continue,
        };
        let Some(kind) = CellKind::from_name(&cname) else {
            continue; // tolerate extra cells outside the vocabulary
        };
        let area = get_num(cell, "area", 0)?.unwrap_or(0.0);
        let leak = get_num(cell, "cell_leakage_power", 0)?.unwrap_or(0.0);
        let clock = get_num(cell, "clock_pin_energy", 0)?.unwrap_or(0.0);
        let mut rise = 0.0;
        let mut fall = 0.0;
        for pin in cell.children.iter().filter(|c| c.kind == "pin") {
            if pin.attrs.get("direction").map(String::as_str) != Some("output") {
                continue;
            }
            for ip in pin.children.iter().filter(|c| c.kind == "internal_power") {
                rise = get_num(ip, "rise_power", 0)?.unwrap_or(0.0);
                fall = get_num(ip, "fall_power", 0)?.unwrap_or(0.0);
            }
        }
        pairs.push((
            kind,
            CellPower {
                energy_rise_fj: rise,
                energy_fall_fj: fall,
                leakage_nw: leak,
                area_um2: area,
                clock_pin_fj: clock,
            },
        ));
    }
    Ok(CellLibrary::from_cells(name, voltage, &pairs)?)
}

/// Serializes a [`CellLibrary`] back to the Liberty subset.
pub fn write(lib: &CellLibrary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "library ({}) {{\n  nom_voltage : {};\n  leakage_power_unit : \"1nW\";\n",
        lib.name(),
        lib.voltage_v()
    ));
    for kind in CellKind::ALL {
        let p = lib.power(kind);
        let outpin = kind.output_pin();
        out.push_str(&format!(
            "  cell ({}) {{\n    area : {};\n    cell_leakage_power : {};\n    clock_pin_energy : {};\n    pin ({outpin}) {{\n      direction : output;\n      internal_power () {{\n        rise_power : {};\n        fall_power : {};\n      }}\n    }}\n  }}\n",
            kind.name(),
            p.area_um2,
            p.leakage_nw,
            p.clock_pin_fj,
            p.energy_rise_fj,
            p.energy_fall_fj
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_ulp65() {
        let lib = parse(crate::ULP65_LIB).unwrap();
        let text = write(&lib);
        let back = parse(&text).unwrap();
        assert_eq!(lib, back);
    }

    #[test]
    fn unknown_groups_and_cells_tolerated() {
        let src = r#"
        library (weird) {
          nom_voltage : 1.2;
          operating_conditions (slow) { process : 1.0; }
          cell (FANCY_LATCH) { area : 9.0; }
          cell (INV) {
            area : 1.0; cell_leakage_power : 0.5;
            pin (Y) { direction : output;
              internal_power () { rise_power : 3.0; fall_power : 2.5; } }
          }
        }
        "#;
        // Missing most vocabulary cells -> Incomplete, but parse structure ok.
        match parse(src).unwrap_err() {
            LibertyError::Incomplete(_) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn syntax_error_reports_line() {
        let src = "library (x) {\n  nom_voltage 1.0;\n}\n";
        match parse(src).unwrap_err() {
            LibertyError::Syntax { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_number_detected() {
        let src = "library (x) {\n  nom_voltage : volts;\n}\n";
        match parse(src).unwrap_err() {
            LibertyError::BadNumber { attribute, .. } => assert_eq!(attribute, "nom_voltage"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comments_are_skipped() {
        let lib = parse(crate::ULP130_LIB).unwrap();
        assert_eq!(lib.name(), "ulp130");
    }

    #[test]
    fn ff_group_in_cells_tolerated() {
        // ulp65.lib contains ff (IQ, IQN) groups inside sequential cells.
        let lib = parse(crate::ULP65_LIB).unwrap();
        assert!(lib.power(CellKind::Dffre).energy_rise_fj > 0.0);
    }
}
