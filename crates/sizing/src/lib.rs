//! Energy harvesting / storage sizing models for ULP systems.
//!
//! Reproduces the system-level side of the paper:
//!
//! * [`batteries`] — Table 1.1: specific energy and energy density per
//!   battery chemistry;
//! * [`harvesters`] — Table 1.2: power density per harvester type;
//! * [`SystemType`] and the sizing relations of Fig 1.3 (which requirement
//!   — peak power or peak energy — drives which component);
//! * [`savings`] — the harvester-area / battery-volume reduction math
//!   behind Tables 5.1 and 5.2;
//! * [`landscape`] — Table 6.1: microarchitectural features of recent
//!   embedded processors (why ULP cores suit symbolic co-analysis).
//!
//! # Example
//!
//! ```
//! use xbound_sizing::{harvesters, savings};
//!
//! // A Type-1 node whose processor peak drops from 2.0 mW to 1.7 mW
//! // (15 % tighter), processor = 50 % of system peak:
//! let reduction = savings::reduction_pct(0.5, 2.0, 1.7);
//! assert!((reduction - 7.5).abs() < 1e-9);
//!
//! // Harvester area for 2 mW at indoor-photovoltaic density:
//! let pv = harvesters::by_name("Photovoltaic (indoor)").unwrap();
//! assert!(pv.area_cm2_for_mw(2.0) > 0.0);
//! ```

/// Battery chemistry data — paper Table 1.1.
pub mod batteries {
    /// One battery chemistry.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Battery {
        /// Chemistry name.
        pub name: &'static str,
        /// Specific energy, joules per gram.
        pub specific_energy_j_per_g: f64,
        /// Energy density, megajoules per litre.
        pub energy_density_mj_per_l: f64,
    }

    /// Table 1.1 rows.
    pub const TABLE: [Battery; 6] = [
        Battery {
            name: "Li-ion",
            specific_energy_j_per_g: 460.0,
            energy_density_mj_per_l: 1.152,
        },
        Battery {
            name: "Alkaline",
            specific_energy_j_per_g: 400.0,
            energy_density_mj_per_l: 0.331,
        },
        Battery {
            name: "Carbon-zinc",
            specific_energy_j_per_g: 130.0,
            energy_density_mj_per_l: 1.080,
        },
        Battery {
            name: "Ni-MH",
            specific_energy_j_per_g: 340.0,
            energy_density_mj_per_l: 0.504,
        },
        Battery {
            name: "Ni-cad",
            specific_energy_j_per_g: 140.0,
            energy_density_mj_per_l: 0.828,
        },
        Battery {
            name: "Lead-acid",
            specific_energy_j_per_g: 146.0,
            energy_density_mj_per_l: 0.360,
        },
    ];

    /// Looks a chemistry up by name.
    pub fn by_name(name: &str) -> Option<&'static Battery> {
        TABLE.iter().find(|b| b.name == name)
    }

    impl Battery {
        /// Battery volume (litres) for a lifetime energy budget in joules.
        pub fn volume_l_for_joules(&self, joules: f64) -> f64 {
            joules / (self.energy_density_mj_per_l * 1e6)
        }

        /// Battery mass (grams) for a lifetime energy budget in joules.
        pub fn mass_g_for_joules(&self, joules: f64) -> f64 {
            joules / self.specific_energy_j_per_g
        }
    }
}

/// Energy-harvester data — paper Table 1.2.
pub mod harvesters {
    /// One harvester technology.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Harvester {
        /// Technology name.
        pub name: &'static str,
        /// Power density, microwatts per square centimetre.
        pub power_density_uw_per_cm2: f64,
    }

    /// Table 1.2 rows.
    pub const TABLE: [Harvester; 4] = [
        Harvester {
            name: "Photovoltaic (sun)",
            power_density_uw_per_cm2: 100_000.0, // 100 mW/cm^2
        },
        Harvester {
            name: "Photovoltaic (indoor)",
            power_density_uw_per_cm2: 100.0,
        },
        Harvester {
            name: "Thermoelectric",
            power_density_uw_per_cm2: 60.0,
        },
        Harvester {
            name: "Ambient airflow",
            power_density_uw_per_cm2: 1_000.0, // 1 mW/cm^2
        },
    ];

    /// Looks a technology up by name.
    pub fn by_name(name: &str) -> Option<&'static Harvester> {
        TABLE.iter().find(|h| h.name == name)
    }

    impl Harvester {
        /// Harvester area (cm²) needed to supply `mw` milliwatts.
        pub fn area_cm2_for_mw(&self, mw: f64) -> f64 {
            mw * 1000.0 / self.power_density_uw_per_cm2
        }
    }
}

/// ULP system classes by power architecture (paper Fig 1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemType {
    /// Powered directly by a harvester: the harvester must cover **peak
    /// power**.
    Type1,
    /// Harvester charges a battery: the harvester must cover **peak
    /// energy** (average power); the battery covers peaks.
    Type2,
    /// Battery only: capacity set by **peak energy**, effective capacity
    /// derated by **peak power** (pulse-discharge effect).
    Type3,
}

impl SystemType {
    /// Which requirement drives the *harvester* size (None for Type 3).
    pub fn harvester_driver(self) -> Option<Requirement> {
        match self {
            SystemType::Type1 => Some(Requirement::PeakPower),
            SystemType::Type2 => Some(Requirement::PeakEnergy),
            SystemType::Type3 => None,
        }
    }

    /// Which requirement drives the *battery* size (None for Type 1).
    pub fn battery_driver(self) -> Option<Requirement> {
        match self {
            SystemType::Type1 => None,
            SystemType::Type2 | SystemType::Type3 => Some(Requirement::PeakEnergy),
        }
    }
}

/// Which bound a component's size follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Requirement {
    /// Peak instantaneous power.
    PeakPower,
    /// Peak energy (sustained draw).
    PeakEnergy,
}

/// Pulse-discharge derating of effective battery capacity (paper §1 /
/// Furset & Hoffman): effective capacity shrinks as the peak-to-average
/// ratio grows. A simple linear derating model:
/// `effective = nominal · (1 − derate · (peak/avg − 1))`, floored at 20 %.
pub fn effective_capacity(nominal_j: f64, peak_mw: f64, avg_mw: f64, derate: f64) -> f64 {
    if avg_mw <= 0.0 {
        return nominal_j;
    }
    let ratio = (peak_mw / avg_mw - 1.0).max(0.0);
    (nominal_j * (1.0 - derate * ratio)).max(0.2 * nominal_j)
}

/// The Tables 5.1 / 5.2 math.
pub mod savings {
    /// Percentage reduction in a component sized proportionally to the
    /// system requirement, when the *processor's* requirement drops from
    /// `baseline` to `ours` and the processor contributes fraction
    /// `contribution` (0..=1) of the system requirement under the baseline.
    ///
    /// Derivation: component ∝ system requirement `S = P/f + …`; holding
    /// the non-processor part constant,
    /// `ΔS/S = f · (1 − ours/baseline)`.
    ///
    /// # Panics
    ///
    /// Panics if `contribution` is outside `0.0..=1.0` or `baseline <= 0`.
    pub fn reduction_pct(contribution: f64, baseline: f64, ours: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&contribution),
            "contribution must be a fraction"
        );
        assert!(baseline > 0.0, "baseline must be positive");
        contribution * (1.0 - ours / baseline) * 100.0
    }

    /// A full Table 5.1/5.2-style row: reductions at the paper's
    /// contribution percentages (10, 25, 50, 75, 90, 100 %).
    pub fn table_row(baseline: f64, ours: f64) -> [f64; 6] {
        [0.10, 0.25, 0.50, 0.75, 0.90, 1.00].map(|f| reduction_pct(f, baseline, ours))
    }

    /// The paper's example node (Fig 2): harvester area 32.6 cm²,
    /// battery volume 6.95 mm³.
    pub const EXAMPLE_HARVESTER_CM2: f64 = 32.6;
    /// See [`EXAMPLE_HARVESTER_CM2`].
    pub const EXAMPLE_BATTERY_MM3: f64 = 6.95;

    /// Absolute harvester-area saving (cm²) for the example node at 100 %
    /// processor contribution.
    pub fn example_area_saving_cm2(baseline: f64, ours: f64) -> f64 {
        EXAMPLE_HARVESTER_CM2 * reduction_pct(1.0, baseline, ours) / 100.0
    }

    /// Absolute battery-volume saving (mm³) for the example node.
    pub fn example_volume_saving_mm3(baseline: f64, ours: f64) -> f64 {
        EXAMPLE_BATTERY_MM3 * reduction_pct(1.0, baseline, ours) / 100.0
    }
}

/// Table 6.1: microarchitectural features in recent embedded processors.
pub mod landscape {
    /// One processor row.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Processor {
        /// Product name.
        pub name: &'static str,
        /// Has a branch predictor.
        pub branch_predictor: bool,
        /// Has a cache.
        pub cache: bool,
    }

    /// Table 6.1 rows.
    pub const TABLE: [Processor; 8] = [
        Processor {
            name: "ARM Cortex-M0",
            branch_predictor: false,
            cache: false,
        },
        Processor {
            name: "ARM Cortex-M3",
            branch_predictor: true,
            cache: false,
        },
        Processor {
            name: "Atmel ATxmega128A4",
            branch_predictor: false,
            cache: false,
        },
        Processor {
            name: "Freescale/NXP MC13224v",
            branch_predictor: false,
            cache: false,
        },
        Processor {
            name: "Intel Quark-D1000",
            branch_predictor: true,
            cache: true,
        },
        Processor {
            name: "Jennic/NXP JN5169",
            branch_predictor: false,
            cache: false,
        },
        Processor {
            name: "SiLab Si2012",
            branch_predictor: false,
            cache: false,
        },
        Processor {
            name: "TI MSP430",
            branch_predictor: false,
            cache: false,
        },
    ];

    /// Fraction of Table 6.1 processors with fully deterministic
    /// microarchitecture (no predictor, no cache).
    pub fn deterministic_fraction() -> f64 {
        let d = TABLE
            .iter()
            .filter(|p| !p.branch_predictor && !p.cache)
            .count();
        d as f64 / TABLE.len() as f64
    }
}

/// Worst-case budget composition for asynchronous components and interrupts
/// (paper Ch. 6): asynchronous state machines and ISR detection are
/// analyzed separately and their worst case added to the processor bound.
pub fn compose_peak_mw(processor_peak_mw: f64, async_components_mw: &[f64]) -> f64 {
    processor_peak_mw + async_components_mw.iter().sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_1_values() {
        assert_eq!(batteries::TABLE.len(), 6);
        let li = batteries::by_name("Li-ion").unwrap();
        assert_eq!(li.specific_energy_j_per_g, 460.0);
        assert_eq!(li.energy_density_mj_per_l, 1.152);
        assert!(batteries::by_name("unobtainium").is_none());
    }

    #[test]
    fn table_1_2_values() {
        assert_eq!(harvesters::TABLE.len(), 4);
        let sun = harvesters::by_name("Photovoltaic (sun)").unwrap();
        assert_eq!(sun.power_density_uw_per_cm2, 100_000.0);
        // 2 mW at 100 uW/cm^2 indoor -> 20 cm^2.
        let indoor = harvesters::by_name("Photovoltaic (indoor)").unwrap();
        assert!((indoor.area_cm2_for_mw(2.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn battery_sizing_math() {
        let li = batteries::by_name("Li-ion").unwrap();
        // 1.152 MJ/L -> 1 MJ needs ~0.868 L.
        assert!((li.volume_l_for_joules(1.152e6) - 1.0).abs() < 1e-12);
        assert!((li.mass_g_for_joules(460.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reduction_matches_paper_table_5_1_gb_input_row() {
        // Paper Table 5.1 GB-Input row: 14.94 % at 100 % contribution —
        // i.e. X-based peak is 14.94 % below GB-input on average. Check
        // the linear scaling at the published fractions.
        let base = 1.0;
        let ours = 1.0 - 0.1494;
        let row = savings::table_row(base, ours);
        let expect = [1.494, 3.735, 7.47, 11.205, 13.446, 14.94];
        for (got, want) in row.iter().zip(expect) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn example_node_savings() {
        // Design-tool row of Table 5.1: 26.82 % -> 8.74 cm^2 of 32.6 cm^2.
        let saving = savings::example_area_saving_cm2(1.0, 1.0 - 0.2682);
        assert!((saving - 32.6 * 0.2682).abs() < 1e-9);
    }

    #[test]
    fn system_type_drivers_match_fig_1_3() {
        assert_eq!(
            SystemType::Type1.harvester_driver(),
            Some(Requirement::PeakPower)
        );
        assert_eq!(SystemType::Type1.battery_driver(), None);
        assert_eq!(
            SystemType::Type2.harvester_driver(),
            Some(Requirement::PeakEnergy)
        );
        assert_eq!(
            SystemType::Type3.battery_driver(),
            Some(Requirement::PeakEnergy)
        );
        assert_eq!(SystemType::Type3.harvester_driver(), None);
    }

    #[test]
    fn effective_capacity_derates_with_pulse_ratio() {
        let nominal = 100.0;
        let flat = effective_capacity(nominal, 1.0, 1.0, 0.05);
        assert_eq!(flat, nominal);
        let pulsed = effective_capacity(nominal, 4.0, 1.0, 0.05);
        assert!(pulsed < nominal);
        // Floored at 20 %.
        let extreme = effective_capacity(nominal, 1000.0, 1.0, 0.05);
        assert_eq!(extreme, 20.0);
    }

    #[test]
    fn table_6_1_contents() {
        assert_eq!(landscape::TABLE.len(), 8);
        let msp = landscape::TABLE.last().unwrap();
        assert_eq!(msp.name, "TI MSP430");
        assert!(!msp.branch_predictor && !msp.cache);
        // 6 of 8 processors are fully deterministic.
        assert!((landscape::deterministic_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn compose_adds_async_components() {
        assert_eq!(compose_peak_mw(2.0, &[0.1, 0.25]), 2.35);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn reduction_rejects_bad_fraction() {
        let _ = savings::reduction_pct(1.5, 1.0, 0.5);
    }
}
