//! The gate-level MSP430-class core under analysis.
//!
//! This crate builds (at gate level, through the RTL builder) the processor
//! that stands in for the paper's placed-and-routed openMSP430: a multicycle
//! MSP430-subset core organized into the module hierarchy the paper reports
//! (`frontend`, `exec_unit`, `mem_backbone`, `multiplier`, `sfr`,
//! `watchdog`, `clk_module`, `dbg`), with a von-Neumann external bus serving
//! program ROM, data RAM, and the input-port region.
//!
//! [`Cpu::build`] constructs the netlist once; [`Cpu::new_sim`] attaches a
//! three-valued simulator with the standard memory map; [`Cpu::load_program`]
//! loads an assembled [`xbound_msp430::Program`].
//!
//! # Example
//!
//! ```
//! use xbound_cpu::Cpu;
//! use xbound_msp430::assemble;
//!
//! let cpu = Cpu::build()?;
//! let program = assemble("main: mov #3, r4\n add r4, r4\n jmp $\n")?;
//! let mut sim = cpu.new_sim();
//! Cpu::load_program(&mut sim, &program, true);
//! for _ in 0..40 {
//!     sim.step();
//! }
//! sim.eval().unwrap();
//! let arch = cpu.arch_state(&sim);
//! assert_eq!(arch.reg(4).to_u16(), Some(6));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod build;

pub use build::{build_cpu, CpuIo, State};

use xbound_logic::{Lv, XWord};
use xbound_msp430::{memmap, Program};
use xbound_netlist::{Netlist, NetlistError};
use xbound_sim::{BatchSimulator, BusSpec, MemRegion, RegionKind, Simulator};

/// Word writes destined for one memory region: `(byte address, value)`.
type RegionImage = Vec<(u16, XWord)>;

/// The built core: netlist + net-level interface.
#[derive(Debug, Clone)]
pub struct Cpu {
    nl: Netlist,
    io: CpuIo,
}

/// Architectural state extracted from a simulation frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchState {
    /// Program counter.
    pub pc: XWord,
    /// r1 (SP) and r4–r15; entries 0/2/3 are [`XWord::ALL_X`] placeholders.
    pub regs: [XWord; 16],
    /// `[C, Z, N, V]`.
    pub flags: [Lv; 4],
}

impl ArchState {
    /// Value of register `n` (PC for 0).
    ///
    /// # Panics
    ///
    /// Panics for r2/r3 (not regfile-backed; read flags via `flags`).
    pub fn reg(&self, n: usize) -> XWord {
        match n {
            0 => self.pc,
            2 | 3 => panic!("r2/r3 are not regfile-backed; use flags"),
            _ => self.regs[n],
        }
    }

    /// Status register composed from the flag bits (other bits zero).
    pub fn sr(&self) -> XWord {
        let mut w = XWord::ZERO;
        w.set_bit(0, self.flags[0]);
        w.set_bit(1, self.flags[1]);
        w.set_bit(2, self.flags[2]);
        w.set_bit(8, self.flags[3]);
        w
    }
}

impl Cpu {
    /// Builds the core netlist.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from validation — this would indicate a
    /// builder bug, not user error.
    pub fn build() -> Result<Cpu, NetlistError> {
        let (nl, io) = build_cpu()?;
        Ok(Cpu { nl, io })
    }

    /// The gate-level netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.nl
    }

    /// The net-level interface.
    pub fn io(&self) -> &CpuIo {
        &self.io
    }

    /// Creates a simulator with the standard memory map attached:
    /// `pmem` (ROM @ 0xF000), `dmem` (RAM @ 0x0200), `inport` (port region
    /// @ 0x0020, all-X until written by the harness).
    ///
    /// # Panics
    ///
    /// Panics only if the generated netlist and bus spec disagree (a bug).
    pub fn new_sim(&self) -> Simulator<'_> {
        let mut sim = Simulator::new(&self.nl);
        let (bus, mems) = self.standard_bus();
        sim.attach_bus(bus, mems).expect("CPU bus spec is valid");
        sim
    }

    /// Creates a batched simulator ([`BatchSimulator`]) with `lanes`
    /// independent copies of the standard memory map — one run per lane,
    /// one gate pass for all of them.
    ///
    /// # Panics
    ///
    /// Panics only if the generated netlist and bus spec disagree (a bug),
    /// or if `lanes` is outside the supported range.
    pub fn new_batch_sim(&self, lanes: usize) -> BatchSimulator<'_> {
        let mut sim = BatchSimulator::new(&self.nl, lanes);
        let (bus, mems) = self.standard_bus();
        sim.attach_bus(bus, mems).expect("CPU bus spec is valid");
        sim
    }

    /// The standard external bus wiring plus one copy of the memory map
    /// (the lane-generic engine replicates the regions per lane) — the
    /// single home of the memory-map shape shared by both instantiations.
    fn standard_bus(&self) -> (BusSpec, Vec<MemRegion>) {
        let bus = BusSpec {
            addr: self.io.bus_addr.clone(),
            wdata: self.io.bus_wdata.clone(),
            rdata: self.io.bus_rdata.clone(),
            wen: Some(self.io.bus_wen),
        };
        let mems = vec![
            MemRegion::new(
                "pmem",
                RegionKind::Rom,
                memmap::PMEM_BASE,
                memmap::PMEM_WORDS,
            ),
            MemRegion::new(
                "dmem",
                RegionKind::Ram,
                memmap::DMEM_BASE,
                memmap::DMEM_WORDS,
            ),
            MemRegion::new(
                "inport",
                RegionKind::Port,
                memmap::INPORT_BASE,
                memmap::INPORT_WORDS,
            ),
        ];
        (bus, mems)
    }

    /// Splits a program into its memory-region write lists: `(pmem,
    /// dmem)` — the single home of the image-layout rules (ROM address
    /// filter, data-section window, reset vector), shared by the scalar
    /// and batched loaders so they cannot diverge.
    fn program_images(program: &Program) -> (RegionImage, RegionImage) {
        let mut pmem = Vec::new();
        let mut dmem = Vec::new();
        let dmem_end = memmap::DMEM_BASE + (memmap::DMEM_WORDS as u16) * 2;
        for &(addr, w) in program.words() {
            if addr >= memmap::PMEM_BASE {
                pmem.push((addr, XWord::from_u16(w)));
            }
            if (memmap::DMEM_BASE..dmem_end).contains(&addr) {
                dmem.push((addr, XWord::from_u16(w)));
            }
        }
        pmem.push((memmap::RESET_VECTOR, XWord::from_u16(program.entry())));
        (pmem, dmem)
    }

    /// Loads a program image and schedules a 2-cycle reset.
    ///
    /// Image words at ROM addresses initialize `pmem`; words at RAM
    /// addresses initialize `dmem` (data sections). The reset vector is set
    /// to the program entry. With `concrete` set, data memory and the input
    /// port are zero-filled to match the ISS initial state; otherwise they
    /// stay all-X (the paper's symbolic initial condition).
    pub fn load_program(sim: &mut Simulator<'_>, program: &Program, concrete: bool) {
        let (pimg, dimg) = Cpu::program_images(program);
        if concrete {
            sim.mem_mut("dmem").expect("dmem").fill(XWord::from_u16(0));
            sim.mem_mut("inport")
                .expect("inport")
                .fill(XWord::from_u16(0));
            // Real ROMs have definite contents everywhere; unprogrammed
            // words read as 0 (matching the ISS), so concrete traces carry
            // no X values. Symbolic runs keep unprogrammed ROM as X.
            sim.mem_mut("pmem").expect("pmem").fill(XWord::from_u16(0));
        }
        {
            let pmem = sim.mem_mut("pmem").expect("pmem");
            for &(addr, w) in &pimg {
                pmem.write(addr, w);
            }
        }
        {
            let dmem = sim.mem_mut("dmem").expect("dmem");
            for &(addr, w) in &dimg {
                dmem.write(addr, w);
            }
        }
        sim.reset(2);
    }

    /// Writes `values` into an input-port region, word by word.
    fn write_inputs(port: &mut MemRegion, values: &[u16]) {
        for (i, v) in values.iter().enumerate() {
            port.write(memmap::INPORT_BASE + (i * 2) as u16, XWord::from_u16(*v));
        }
    }

    /// Writes harness-provided input values into the input-port region.
    pub fn set_inputs(sim: &mut Simulator<'_>, values: &[u16]) {
        Cpu::write_inputs(sim.mem_mut("inport").expect("inport"), values);
    }

    /// [`Cpu::load_program`] into one lane of a batched simulator. Lanes
    /// may carry different programs (the stressmark GA scores a whole
    /// population per batch); the shared 2-cycle reset is scheduled once.
    pub fn load_program_lane(
        sim: &mut BatchSimulator<'_>,
        lane: usize,
        program: &Program,
        concrete: bool,
    ) {
        let (pimg, dimg) = Cpu::program_images(program);
        if concrete {
            sim.mem_mut_lane("dmem", lane)
                .expect("dmem")
                .fill(XWord::from_u16(0));
            sim.mem_mut_lane("inport", lane)
                .expect("inport")
                .fill(XWord::from_u16(0));
            sim.mem_mut_lane("pmem", lane)
                .expect("pmem")
                .fill(XWord::from_u16(0));
        }
        {
            let pmem = sim.mem_mut_lane("pmem", lane).expect("pmem");
            for &(addr, w) in &pimg {
                pmem.write(addr, w);
            }
        }
        {
            let dmem = sim.mem_mut_lane("dmem", lane).expect("dmem");
            for &(addr, w) in &dimg {
                dmem.write(addr, w);
            }
        }
        sim.reset(2);
    }

    /// Loads the same program image into every lane of a batched
    /// simulator and schedules the shared 2-cycle reset.
    pub fn load_program_batch(sim: &mut BatchSimulator<'_>, program: &Program, concrete: bool) {
        for lane in 0..sim.lanes() {
            Cpu::load_program_lane(sim, lane, program, concrete);
        }
    }

    /// Writes harness-provided input values into one lane's input-port
    /// region (lanes usually differ exactly here).
    pub fn set_inputs_lane(sim: &mut BatchSimulator<'_>, lane: usize, values: &[u16]) {
        Cpu::write_inputs(sim.mem_mut_lane("inport", lane).expect("inport"), values);
    }

    /// One-hot decode of the FSM state nets under an arbitrary net reader
    /// (shared by the scalar and per-lane batched accessors).
    fn state_from(&self, read: impl Fn(xbound_netlist::NetId) -> Lv) -> Option<State> {
        let mut found = None;
        for (i, &net) in self.io.states.iter().enumerate() {
            match read(net) {
                Lv::One => {
                    if found.is_some() {
                        return None; // not one-hot
                    }
                    found = Some(State::ALL[i]);
                }
                Lv::Zero => {}
                Lv::X => return None,
            }
        }
        found
    }

    /// Reads the FSM state from the current frame (if one-hot and known).
    pub fn state(&self, sim: &Simulator<'_>) -> Option<State> {
        self.state_from(|net| sim.value(net))
    }

    /// Extracts the architectural state from the current frame.
    pub fn arch_state(&self, sim: &Simulator<'_>) -> ArchState {
        let word = |nets: &[xbound_netlist::NetId]| sim.value_word(nets);
        let mut regs = [XWord::ALL_X; 16];
        for (i, nets) in self.io.regs.iter().enumerate() {
            if !nets.is_empty() {
                regs[i] = word(nets);
            }
        }
        ArchState {
            pc: word(&self.io.pc),
            regs,
            flags: [
                sim.value(self.io.flags[0]),
                sim.value(self.io.flags[1]),
                sim.value(self.io.flags[2]),
                sim.value(self.io.flags[3]),
            ],
        }
    }

    /// The instruction register value in the current frame.
    pub fn ir_word(&self, sim: &Simulator<'_>) -> XWord {
        sim.value_word(&self.io.ir)
    }

    /// Reads one lane's FSM state from a batched simulator's current
    /// frame (if one-hot and known) — the per-lane [`Cpu::state`].
    pub fn state_lane(&self, sim: &BatchSimulator<'_>, lane: usize) -> Option<State> {
        self.state_from(|net| sim.value_lane(net, lane))
    }

    /// One lane's instruction register value in the current frame.
    pub fn ir_word_lane(&self, sim: &BatchSimulator<'_>, lane: usize) -> XWord {
        sim.value_word_lane(&self.io.ir, lane)
    }

    /// Runs until the next cycle whose settled frame is in `FETCH` state, or
    /// `max_cycles` elapse. Returns `true` if a fetch cycle was reached.
    ///
    /// # Panics
    ///
    /// Panics if the bus fails to settle (X-address feedback), which cannot
    /// happen for concrete runs of valid programs.
    pub fn run_to_fetch(&self, sim: &mut Simulator<'_>, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            sim.eval().expect("bus settles");
            if self.state(sim) == Some(State::Fetch) {
                return true;
            }
            sim.commit();
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbound_msp430::iss::Iss;
    use xbound_msp430::{assemble, memmap};

    fn cpu() -> Cpu {
        Cpu::build().expect("core builds")
    }

    /// Runs `src` on both the gate-level core and the ISS; compares
    /// architectural state at every instruction boundary and the final data
    /// memory. Returns the gate-level cycle count from the first fetch.
    fn cross_check(cpu: &Cpu, src: &str, inputs: &[u16], max_instrs: u64) -> u64 {
        let program = assemble(src).expect("assembles");
        let mut iss = Iss::new(&program);
        iss.set_inputs(inputs);
        let mut sim = cpu.new_sim();
        Cpu::load_program(&mut sim, &program, true);
        Cpu::set_inputs(&mut sim, inputs);
        // Run through reset into the first FETCH.
        sim.step(); // reset cycle 1
        sim.step(); // reset cycle 2
        sim.step(); // RESET0 (vector load)
        sim.eval().unwrap();
        assert_eq!(cpu.state(&sim), Some(State::Fetch), "reset lands in FETCH");
        let first_fetch_cycle = sim.cycle();
        let mut halted_pc: Option<u16> = None;
        for step in 0..max_instrs {
            // At a FETCH-state cycle the previous instruction has retired:
            // compare architectural state.
            let arch = cpu.arch_state(&sim);
            let ctx = format!("instr boundary {step}, cycle {}", sim.cycle());
            assert_eq!(
                arch.pc.to_u16(),
                Some(iss.pc()),
                "{ctx}: PC mismatch (gate {} vs iss {:04x})",
                arch.pc,
                iss.pc()
            );
            for rn in [1usize, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15] {
                assert_eq!(
                    arch.regs[rn].to_u16(),
                    Some(iss.reg(rn as u8)),
                    "{ctx}: r{rn} mismatch"
                );
            }
            let mask = 0x0107; // C,Z,N,V
            assert_eq!(
                arch.sr().to_u16().map(|v| v & mask),
                Some(iss.sr() & mask),
                "{ctx}: flags mismatch"
            );
            if halted_pc == Some(iss.pc()) {
                break;
            }
            // Advance ISS one instruction.
            let retire = iss.step().expect("iss step");
            if retire.next_pc == retire.pc {
                halted_pc = Some(retire.pc);
            }
            // Advance gate sim the same number of cycles.
            for _ in 0..retire.cycles {
                sim.commit();
                sim.eval().expect("bus settles");
            }
            assert_eq!(
                cpu.state(&sim),
                Some(State::Fetch),
                "{ctx}: core not back in FETCH after {} cycles of `{}`",
                retire.cycles,
                retire.instr
            );
        }
        assert!(halted_pc.is_some(), "program must halt in a self-loop");
        // Final data memory comparison.
        let dmem = sim.mem("dmem").expect("dmem");
        for (i, w) in dmem.data().iter().enumerate() {
            assert_eq!(w.to_u16(), Some(iss.dmem()[i]), "dmem[{i}] mismatch at end");
        }
        sim.cycle() - first_fetch_cycle
    }

    #[test]
    fn core_statistics() {
        let c = cpu();
        assert!(
            c.netlist().gate_count() > 3000,
            "core should be a few thousand cells, got {}",
            c.netlist().gate_count()
        );
        // All eight paper modules are present.
        let names: Vec<&str> = c.netlist().modules().iter().map(|s| s.as_str()).collect();
        for m in [
            "frontend",
            "exec_unit",
            "mem_backbone",
            "multiplier",
            "sfr",
            "watchdog",
            "clk_module",
            "dbg",
        ] {
            assert!(names.contains(&m), "missing module {m}");
        }
    }

    #[test]
    fn mov_add_and_jump() {
        cross_check(
            &cpu(),
            r#"
            main:
                mov #3, r4
                mov #11, r5
                add r4, r5
                sub #1, r5
                jmp $
            "#,
            &[],
            64,
        );
    }

    #[test]
    fn all_two_operand_ops() {
        cross_check(
            &cpu(),
            r#"
            main:
                mov #0x5A5A, r4
                mov #0x0FF0, r5
                add r4, r5
                addc r4, r5
                sub r4, r5
                subc r4, r5
                cmp r4, r5
                bit #0x10, r5
                bic #0x3, r5
                bis #0x8001, r5
                xor r4, r5
                and #0x7FFF, r5
                jmp $
            "#,
            &[],
            64,
        );
    }

    #[test]
    fn addressing_modes() {
        cross_check(
            &cpu(),
            r#"
            main:
                mov #0x0300, r6
                mov #0x1234, @r6      ; -> error? @rn not a dst: use indexed
                jmp $
            "#
            .replace(
                "mov #0x1234, @r6      ; -> error? @rn not a dst: use indexed",
                "mov #0x1234, 0(r6)",
            )
            .as_str(),
            &[],
            64,
        );
        cross_check(
            &cpu(),
            r#"
            main:
                mov #0x0300, r6
                mov #0xBEEF, 0(r6)
                mov #0xCAFE, 2(r6)
                mov @r6, r7
                mov @r6+, r8
                mov @r6+, r9
                mov -4(r6), r10
                mov #0x0304, r11
                mov #0x1111, &0x0308
                mov &0x0308, r12
                cmp #0xBEEF, r7
                jne fail
                mov #1, r15
                jmp done
            fail:
                mov #0, r15
            done:
                jmp $
            "#,
            &[],
            128,
        );
    }

    #[test]
    fn conditional_jumps_all_directions() {
        cross_check(
            &cpu(),
            r#"
            main:
                mov #5, r4
                cmp #5, r4
                jeq eq_ok
                jmp $
            eq_ok:
                cmp #6, r4
                jl lt_ok          ; 5 < 6 signed
                jmp $
            lt_ok:
                cmp #4, r4
                jge ge_ok
                jmp $
            ge_ok:
                mov #0xFFFF, r5   ; -1
                cmp #1, r5
                jl neg_ok         ; -1 < 1 signed
                jmp $
            neg_ok:
                add #1, r5        ; -1 + 1 = 0, carry out
                jc carry_ok
                jmp $
            carry_ok:
                jz zero_ok
                jmp $
            zero_ok:
                mov #0x8000, r6
                add r6, r6        ; overflow
                jn not_here
                mov #42, r7
            not_here:
                jmp $
            "#,
            &[],
            128,
        );
    }

    #[test]
    fn format_ii_ops() {
        cross_check(
            &cpu(),
            r#"
            main:
                mov #0x8005, r4
                rra r4
                setc
                rrc r4
                swpb r4
                sxt r4
                mov #0x0300, r6
                mov #0x00F0, 0(r6)
                rra 0(r6)
                mov #0x8001, 2(r6)
                rrc 2(r6)
                jmp $
            "#,
            &[],
            128,
        );
    }

    #[test]
    fn stack_push_pop_call_ret() {
        cross_check(
            &cpu(),
            r#"
            main:
                mov #0x0A00, sp
                mov #7, r4
                push r4
                push #0x1234
                pop r5
                pop r6
                call #double
                call #double
                jmp $
            double:
                add r4, r4
                ret
            "#,
            &[],
            200,
        );
    }

    #[test]
    fn hardware_multiplier_matches_iss() {
        cross_check(
            &cpu(),
            r#"
            main:
                mov #1234, &0x0130
                mov #567, &0x0138
                nop
                mov &0x013A, r4
                mov &0x013C, r5
                mov #0xFFFE, &0x0132  ; -2 signed
                mov #1000, &0x0138
                nop
                mov &0x013A, r6
                mov &0x013C, r7
                jmp $
            "#,
            &[],
            128,
        );
    }

    #[test]
    fn input_port_and_peripheral_regs() {
        cross_check(
            &cpu(),
            r#"
            main:
                mov &0x0020, r4
                mov &0x0022, r5
                add r4, r5
                mov r5, &0x0062      ; P1OUT
                mov &0x0062, r6
                mov #0x5A80, &0x0120 ; stop watchdog
                mov &0x0120, r7
                mov r4, &0x01F0      ; DBG0
                mov &0x01F0, r8
                jmp $
            "#,
            &[1111, 2222],
            128,
        );
    }

    #[test]
    fn input_dependent_branch_concrete() {
        for inputs in [[0u16], [1u16], [99u16]] {
            cross_check(
                &cpu(),
                r#"
                main:
                    mov &0x0020, r4
                    cmp #1, r4
                    jeq one
                    mov #100, r5
                    jmp done
                one:
                    mov #200, r5
                done:
                    jmp $
                "#,
                &inputs,
                64,
            );
        }
    }

    #[test]
    fn loop_with_table_walk() {
        cross_check(
            &cpu(),
            r#"
            main:
                mov #tbl, r6
                mov #0, r4
                mov #4, r5
            loop:
                add @r6+, r4
                dec r5
                jnz loop
                mov r4, &0x0200
                jmp $
            tbl: .word 10, 20, 30, 40
            "#,
            &[],
            256,
        );
    }

    #[test]
    fn cycle_counts_match_iss_formula() {
        // cross_check already asserts per-instruction cycle alignment; this
        // checks a whole-program total explicitly.
        let c = cpu();
        let cycles = cross_check(&c, "main: mov #5, r4\n add r4, r4\n jmp $\n", &[], 16);
        // mov #5 (4) + add (3) + jmp (2); the final jmp $ boundary is
        // re-visited once before the checker stops.
        assert!(cycles >= 9, "got {cycles}");
    }

    #[test]
    fn symbolic_input_x_propagates_but_fsm_stays_concrete() {
        let c = cpu();
        let program =
            assemble("main: mov &0x0020, r4\n add r4, r4\n mov r4, &0x0200\n jmp $\n").unwrap();
        let mut sim = c.new_sim();
        Cpu::load_program(&mut sim, &program, false); // dmem/inport stay X
        for _ in 0..40 {
            sim.eval().expect("bus settles even with X data");
            assert!(
                c.state(&sim).is_some(),
                "FSM must stay concrete under X data at cycle {}",
                sim.cycle()
            );
            sim.commit();
        }
        sim.eval().unwrap();
        let arch = c.arch_state(&sim);
        assert!(arch.regs[4].has_x(), "r4 holds X from the input port");
        // The X was stored to dmem[0].
        let dmem = sim.mem("dmem").unwrap();
        assert!(dmem.read(memmap::DMEM_BASE).has_x());
        // And the PC is concrete (no input-dependent control flow).
        assert!(arch.pc.is_fully_known());
    }

    #[test]
    fn branch_taken_goes_x_on_input_dependent_branch() {
        let c = cpu();
        let program = assemble(
            r#"
            main:
                mov &0x0020, r4
                cmp #1, r4
                jeq one
                mov #100, r5
                jmp done
            one:
                mov #200, r5
            done:
                jmp $
            "#,
        )
        .unwrap();
        let mut sim = c.new_sim();
        Cpu::load_program(&mut sim, &program, false);
        let mut saw_x_branch = false;
        for _ in 0..64 {
            sim.eval().expect("bus settles");
            if c.state(&sim) == Some(State::Decode) && sim.value(c.io().branch_taken) == Lv::X {
                saw_x_branch = true;
                // Next PC must carry X -> the fork condition of Algorithm 1.
                let next = sim.ff_next_values();
                let pc_nets: Vec<usize> = c
                    .io()
                    .pc
                    .iter()
                    .map(|n| {
                        sim.netlist()
                            .sequential_gates()
                            .iter()
                            .position(|&g| sim.netlist().gate(g).output() == *n)
                            .expect("pc is a flop")
                    })
                    .collect();
                assert!(
                    pc_nets.iter().any(|&i| next[i] == Lv::X),
                    "PC next must carry X at the input-dependent branch"
                );
                break;
            }
            sim.commit();
        }
        assert!(saw_x_branch, "input-dependent branch must X the condition");
    }
}
