//! Gate-level construction of the MSP430-class multicycle core.
//!
//! The core is built entirely through the word-level RTL builder
//! ([`xbound_netlist::rtl::Rtl`]) and lowered to the standard-cell
//! vocabulary. It follows the module organization the paper reports for
//! openMSP430 (Fig 14): `frontend`, `exec_unit`, `mem_backbone`,
//! `multiplier`, `sfr`, `watchdog`, `clk_module`, `dbg`.
//!
//! # Microarchitecture
//!
//! A single-issue multicycle FSM with one von-Neumann bus:
//!
//! ```text
//! RESET0 -> FETCH -> DECODE -+-> (jump) ----------------------> FETCH
//!                            +-> SRC_IDX -> SRC_RD -+
//!                            +-> SRC_RD ------------+
//!                            +----------------------+-> EXEC -> FETCH
//!                            |                       +-> DST_IDX -> DST_RD -> EXEC -> DST_WR -> FETCH
//!                            +-> PUSH_WR (push/call) -> FETCH
//! ```
//!
//! Per-instruction cycle counts implement exactly
//! [`xbound_msp430::isa::cycle_count`]; integration tests assert the
//! gate-level core and the ISS agree cycle-for-cycle and state-for-state.

use xbound_msp430::memmap;
use xbound_netlist::rtl::{Bus, Rtl};
use xbound_netlist::{NetId, Netlist, NetlistError};

/// Net-level interface of the built core, used by simulators and analyses.
#[derive(Debug, Clone)]
pub struct CpuIo {
    /// External bus: byte address (16 nets).
    pub bus_addr: Vec<NetId>,
    /// External bus: write data (16 nets).
    pub bus_wdata: Vec<NetId>,
    /// External bus: read data (16 primary-input nets).
    pub bus_rdata: Vec<NetId>,
    /// External bus: write enable.
    pub bus_wen: NetId,
    /// `frontend/branch_taken` — the fork net for symbolic exploration.
    pub branch_taken: NetId,
    /// One net per FSM state, in [`State`] order.
    pub states: Vec<NetId>,
    /// Program counter register outputs.
    pub pc: Vec<NetId>,
    /// Instruction register outputs.
    pub ir: Vec<NetId>,
    /// General-purpose register outputs: index 1 = SP, 4..=15 GPRs;
    /// entries 0, 2, 3 are empty (PC / SR / CG are not regfile-backed).
    pub regs: Vec<Vec<NetId>>,
    /// Flag register outputs `[C, Z, N, V]`.
    pub flags: [NetId; 4],
}

/// FSM states of the core, in one-hot bit order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum State {
    /// Load the reset vector.
    Reset0,
    /// Fetch the instruction word.
    Fetch,
    /// Decode; read register/CG sources; resolve jumps.
    Decode,
    /// Fetch the source index extension word.
    SrcIdx,
    /// Read the source operand from memory.
    SrcRd,
    /// Fetch the destination index extension word.
    DstIdx,
    /// Read the destination operand from memory.
    DstRd,
    /// ALU execute and register write-back.
    Exec,
    /// Write the result to memory.
    DstWr,
    /// Push a word (PUSH/CALL) and update SP / PC.
    PushWr,
}

impl State {
    /// All states in one-hot order.
    pub const ALL: [State; 10] = [
        State::Reset0,
        State::Fetch,
        State::Decode,
        State::SrcIdx,
        State::SrcRd,
        State::DstIdx,
        State::DstRd,
        State::Exec,
        State::DstWr,
        State::PushWr,
    ];

    /// One-hot bit index.
    pub fn index(self) -> usize {
        State::ALL.iter().position(|s| *s == self).expect("in ALL")
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            State::Reset0 => "RESET0",
            State::Fetch => "FETCH",
            State::Decode => "DECODE",
            State::SrcIdx => "SRC_IDX",
            State::SrcRd => "SRC_RD",
            State::DstIdx => "DST_IDX",
            State::DstRd => "DST_RD",
            State::Exec => "EXEC",
            State::DstWr => "DST_WR",
            State::PushWr => "PUSH_WR",
        }
    }
}

/// Builds the core; returns the netlist and its net-level interface.
///
/// # Errors
///
/// Propagates [`NetlistError`] from netlist validation (this indicates a bug
/// in the builder itself, not bad user input).
pub fn build_cpu() -> Result<(Netlist, CpuIo), NetlistError> {
    let mut r = Rtl::new("xbound_ulp_core");
    let rdata = r.input("bus_rdata", 16);

    // ---------------- frontend: state, PC, IR, decode ----------------
    r.set_module("frontend");

    // One-hot state register. Bit 0 (RESET0) is stored inverted so that the
    // synchronous reset (all flops to 0) lands the FSM in RESET0.
    let (hstate, sq) = r.reg("state", State::ALL.len());
    let s_reset0 = r.not(sq[0]);
    let mut s: Vec<NetId> = vec![s_reset0];
    s.extend_from_slice(&sq[1..]);
    let s_fetch = s[State::Fetch.index()];
    let s_decode = s[State::Decode.index()];
    let s_srcidx = s[State::SrcIdx.index()];
    let s_srcrd = s[State::SrcRd.index()];
    let s_dstidx = s[State::DstIdx.index()];
    let s_dstrd = s[State::DstRd.index()];
    let s_exec = s[State::Exec.index()];
    let s_dstwr = s[State::DstWr.index()];
    let s_pushwr = s[State::PushWr.index()];

    let (hpc, pc) = r.reg("pc", 16);
    let (hir, ir) = r.reg("ir", 16);

    // --- instruction field decode (from IR) ---
    let ir15 = ir[15];
    let ir14 = ir[14];
    let ir13 = ir[13];
    let n15 = r.not(ir15);
    let n14 = r.not(ir14);
    let n13 = r.not(ir13);
    // is_jump: IR[15:13] == 001
    let is_jump = {
        let a = r.and(n15, n14);
        r.and(a, ir13)
    };
    // is_one: IR[15:10] == 000100
    let is_one = {
        let n11 = r.not(ir[11]);
        let n10 = r.not(ir[10]);
        let a = r.and(n15, n14);
        let b = r.and(n13, ir[12]);
        let c = r.and(n11, n10);
        let ab = r.and(a, b);
        r.and(ab, c)
    };
    // is_two: opcode >= 4 (IR[15] | IR[14]) and not jump.
    let is_two = {
        let hi = r.or(ir15, ir14);
        let nj = r.not(is_jump);
        r.and(hi, nj)
    };

    // Format-I opcode one-hot (IR[15:12]).
    let opc: Bus = ir[12..16].to_vec();
    let op_is = |r: &mut Rtl, v: u64| r.eq_const(&opc, v);
    let op_mov = op_is(&mut r, 0x4);
    let op_add = op_is(&mut r, 0x5);
    let op_addc = op_is(&mut r, 0x6);
    let op_subc = op_is(&mut r, 0x7);
    let op_sub = op_is(&mut r, 0x8);
    let op_cmp = op_is(&mut r, 0x9);
    let op_bit = op_is(&mut r, 0xB);
    let op_bic = op_is(&mut r, 0xC);
    let op_bis = op_is(&mut r, 0xD);
    let op_xor = op_is(&mut r, 0xE);
    let op_and = op_is(&mut r, 0xF);

    // Format-II opcode one-hot (IR[9:7]).
    let one_sel: Bus = ir[7..10].to_vec();
    let one_rrc0 = r.eq_const(&one_sel, 0);
    let one_swpb0 = r.eq_const(&one_sel, 1);
    let one_rra0 = r.eq_const(&one_sel, 2);
    let one_sxt0 = r.eq_const(&one_sel, 3);
    let one_push0 = r.eq_const(&one_sel, 4);
    let one_call0 = r.eq_const(&one_sel, 5);
    let one_rrc = r.and(is_one, one_rrc0);
    let one_swpb = r.and(is_one, one_swpb0);
    let one_rra = r.and(is_one, one_rra0);
    let one_sxt = r.and(is_one, one_sxt0);
    let one_push = r.and(is_one, one_push0);
    let one_call = r.and(is_one, one_call0);
    let one_rmw = {
        let a = r.or(one_rrc, one_swpb);
        let b = r.or(one_rra, one_sxt);
        r.or(a, b)
    };
    let one_pushcall = r.or(one_push, one_call);

    // Register fields.
    let rs: Bus = ir[8..12].to_vec();
    let rd: Bus = ir[0..4].to_vec();
    let as_mode: Bus = ir[4..6].to_vec(); // As (src) / format-II mode
    let ad = ir[7];

    // Operand register/mode for the source phase (format II uses rd field).
    let o_reg: Bus = {
        let sel = is_one;
        rs.iter()
            .zip(&rd)
            .map(|(&a, &b)| r.mux(sel, a, b))
            .collect()
    };
    let mode0 = as_mode[0];
    let mode1 = as_mode[1];
    let nmode0 = r.not(mode0);
    let nmode1 = r.not(mode1);
    let mode_00 = r.and(nmode1, nmode0);
    let mode_01 = r.and(nmode1, mode0);
    let mode_10 = r.and(mode1, nmode0);
    let mode_11 = r.and(mode1, mode0);

    let oreg_is_r2 = r.eq_const(&o_reg, 2);
    let oreg_is_r3 = r.eq_const(&o_reg, 3);
    let oreg_is_pc = r.eq_const(&o_reg, 0);

    // Constant-generator detection.
    let cg_r2 = {
        let m = r.or(mode_10, mode_11);
        r.and(oreg_is_r2, m)
    };
    let cg_const = r.or(oreg_is_r3, cg_r2);
    let not_cg = r.not(cg_const);

    // Operand classes.
    let o_regmode = r.and(mode_00, not_cg);
    let o_idx = r.and(mode_01, not_cg);
    let o_ind0 = r.or(mode_10, mode_11);
    let o_ind = r.and(o_ind0, not_cg);
    let o_autoinc = r.and(mode_11, not_cg);
    let value_ready = r.or(cg_const, o_regmode);

    // Jump condition evaluation (flags defined in exec_unit below; declared
    // here via placeholder nets is impossible in a flat builder, so the
    // frontend's branch logic is completed after the flags exist — see the
    // `branch logic` section further down).

    // ---------------- exec_unit: register file ----------------
    r.set_module("exec_unit");

    // Flags.
    let (hflag_c, flag_c_q) = r.reg("flag_c", 1);
    let (hflag_z, flag_z_q) = r.reg("flag_z", 1);
    let (hflag_n, flag_n_q) = r.reg("flag_n", 1);
    let (hflag_v, flag_v_q) = r.reg("flag_v", 1);
    let fc = flag_c_q[0];
    let fz = flag_z_q[0];
    let fn_ = flag_n_q[0];
    let fv = flag_v_q[0];

    // Register file: r1 (SP) and r4..r15.
    let rf_indices: Vec<usize> = std::iter::once(1).chain(4..16).collect();
    let mut rf_handles = Vec::new();
    let mut rf_q: Vec<Option<Bus>> = vec![None; 16];
    for &i in &rf_indices {
        let (h, q) = r.reg(&format!("r{i}"), 16);
        rf_handles.push((i, h));
        rf_q[i] = Some(q);
    }

    // Unified register address (read and write always agree per state).
    // DECODE/SRC_IDX/SRC_RD -> o_reg ; DST_IDX/EXEC -> rd ; PUSH_WR -> SP(1).
    let use_oreg = {
        let a = r.or(s_decode, s_srcidx);
        r.or(a, s_srcrd)
    };
    let one_const: Bus = r.lit(1, 4);
    let ra: Bus = (0..4)
        .map(|i| {
            let dphase = r.mux(use_oreg, rd[i], o_reg[i]);
            r.mux(s_pushwr, dphase, one_const[i])
        })
        .collect();
    let ra_hot = r.decode(&ra);

    // Composed SR read value (bits C=0, Z=1, N=2, V=8).
    let zero16 = r.lit(0, 16);
    let mut sr_read = zero16.clone();
    sr_read[0] = fc;
    sr_read[1] = fz;
    sr_read[2] = fn_;
    sr_read[8] = fv;

    // Read port: one-hot selection over all 16 architectural registers.
    let read_choices: Vec<Bus> = (0..16)
        .map(|i| match i {
            0 => pc.clone(),
            2 => sr_read.clone(),
            3 => zero16.clone(),
            _ => rf_q[i].clone().expect("regfile register"),
        })
        .collect();
    let regread = r.onehot_mux(&ra_hot, &read_choices);

    // ---------------- mem_backbone: MAR, bus muxes ----------------
    r.set_module("mem_backbone");

    let (hmar, mar) = r.reg("mar", 16);

    // PC + 2 (shared incrementer for FETCH / SRC_IDX / DST_IDX / @PC+).
    let two16 = r.lit(2, 16);
    let (pc_plus2, _) = r.add(&pc, &two16, None);
    // regread + 2 (auto-increment).
    let (regread_plus2, _) = r.add(&regread, &two16, None);
    // SP - 2 for PUSH/CALL.
    let minus2 = r.lit(0xFFFE, 16);
    let (sp_minus2, _) = r.add(&regread, &minus2, None);

    // ---------------- exec_unit: SRCV / DSTV ----------------
    r.set_module("exec_unit");

    let (hsrcv, srcv) = r.reg("srcv", 16);
    let (hdstv, dstv) = r.reg("dstv", 16);

    // CG constant value.
    let cg_vals: Vec<Bus> = vec![
        r.lit(0, 16),
        r.lit(1, 16),
        r.lit(2, 16),
        r.lit(0xFFFF, 16),
        r.lit(4, 16),
        r.lit(8, 16),
    ];
    let cg_sel: Vec<NetId> = {
        let c0 = r.and(oreg_is_r3, mode_00);
        let c1 = r.and(oreg_is_r3, mode_01);
        let c2 = r.and(oreg_is_r3, mode_10);
        let cm1 = r.and(oreg_is_r3, mode_11);
        let c4 = r.and(oreg_is_r2, mode_10);
        let c8 = r.and(oreg_is_r2, mode_11);
        vec![c0, c1, c2, cm1, c4, c8]
    };
    let cg_value = r.onehot_mux(&cg_sel, &cg_vals);

    // ---------------- exec_unit: ALU ----------------
    // Operand A: destination value (regread in EXEC for register dst,
    // DSTV for memory dst). Operand B: SRCV.
    let two_dst_mem = r.and(is_two, ad);
    let a_operand = r.mux_bus(two_dst_mem, &regread, &dstv);
    let b_operand = srcv.clone();

    // Adder path: A + (B ^ sub_mask) + cin.
    let is_subtract = {
        let a = r.or(op_sub, op_subc);
        r.or(a, op_cmp)
    };
    let b_adder = {
        let mask: Bus = b_operand.iter().map(|&b| r.xor(b, is_subtract)).collect();
        mask
    };
    let adder_cin = {
        // ADD: 0, ADDC/SUBC: C, SUB/CMP: 1.
        let use_carry = r.or(op_addc, op_subc);
        let sub_onlyc = r.or(op_sub, op_cmp);
        let c_or_zero = r.and(use_carry, fc);
        r.or(c_or_zero, sub_onlyc)
    };
    let (sum, carry_out) = r.add(&a_operand, &b_adder, Some(adder_cin));

    // Logic paths.
    let and_res = r.and_bus(&a_operand, &b_operand);
    let nb = r.not_bus(&b_operand);
    let bic_res = r.and_bus(&a_operand, &nb);
    let bis_res = r.or_bus(&a_operand, &b_operand);
    let xor_res = r.xor_bus(&a_operand, &b_operand);

    // Format-II unary paths (operate on B = SRCV).
    let rrc_res: Bus = {
        let mut v: Bus = b_operand[1..].to_vec();
        v.push(fc);
        v
    };
    let rra_res: Bus = {
        let mut v: Bus = b_operand[1..].to_vec();
        v.push(b_operand[15]);
        v
    };
    let swpb_res: Bus = {
        let mut v: Bus = b_operand[8..16].to_vec();
        v.extend_from_slice(&b_operand[0..8]);
        v
    };
    let sxt_res: Bus = {
        let mut v: Bus = b_operand[0..8].to_vec();
        v.extend(std::iter::repeat(b_operand[7]).take(8));
        v
    };

    // Result mux (one-hot).
    let use_adder = {
        let a = r.or(op_add, op_addc);
        let b = r.or(is_subtract, a);
        r.and(is_two, b)
    };
    let sel_mov = r.and(is_two, op_mov);
    let sel_and = {
        let a = r.or(op_and, op_bit);
        r.and(is_two, a)
    };
    let sel_bic = r.and(is_two, op_bic);
    let sel_bis = r.and(is_two, op_bis);
    let sel_xor = r.and(is_two, op_xor);
    let alu_result = r.onehot_mux(
        &[
            use_adder, sel_mov, sel_and, sel_bic, sel_bis, sel_xor, one_rrc, one_rra, one_swpb,
            one_sxt,
        ],
        &[
            sum.clone(),
            b_operand.clone(),
            and_res.clone(),
            bic_res,
            bis_res,
            xor_res,
            rrc_res,
            rra_res,
            swpb_res,
            sxt_res,
        ],
    );

    // Flags.
    let res_zero = r.is_zero(&alu_result);
    let res_neg = alu_result[15];
    let nz = r.not(res_zero);
    let a15 = a_operand[15];
    let b15 = b_operand[15];
    let r15n = alu_result[15];
    // Overflow for add: (a15 & b15 & !r15) | (!a15 & !b15 & r15) — note the
    // B operand here is the *original* source (before sub inversion).
    let v_add = {
        let na = r.not(a15);
        let nb15 = r.not(b15);
        let nr = r.not(r15n);
        let t1 = r.and(a15, b15);
        let t1 = r.and(t1, nr);
        let t2 = r.and(na, nb15);
        let t2 = r.and(t2, r15n);
        r.or(t1, t2)
    };
    let v_sub = {
        let na = r.not(a15);
        let nb15 = r.not(b15);
        let nr = r.not(r15n);
        let t1 = r.and(a15, nb15);
        let t1 = r.and(t1, nr);
        let t2 = r.and(na, b15);
        let t2 = r.and(t2, r15n);
        r.or(t1, t2)
    };
    let v_xor = r.and(a15, b15);
    let is_addition = {
        let a = r.or(op_add, op_addc);
        r.and(is_two, a)
    };
    let is_sub2 = r.and(is_two, is_subtract);
    let sel_xor2 = sel_xor;
    let v_flag = r.onehot_mux(
        &[is_addition, is_sub2, sel_xor2],
        &[vec![v_add], vec![v_sub], vec![v_xor]],
    )[0];
    // Carry: adder ops -> carry_out; AND/BIT/XOR/SXT -> !Z; RRC/RRA -> B[0].
    let logic_sets_c = {
        let a = r.or(sel_and, sel_xor);
        r.or(a, one_sxt)
    };
    let shift_sets_c = r.or(one_rrc, one_rra);
    let c_flag = r.onehot_mux(
        &[use_adder, logic_sets_c, shift_sets_c],
        &[vec![carry_out], vec![nz], vec![b_operand[0]]],
    )[0];

    // Which ops set flags.
    let two_sets_flags = {
        let a = r.or(is_addition, is_sub2);
        let b = r.or(sel_and, sel_xor2);
        let ab = r.or(a, b);
        r.and(is_two, ab)
    };
    let one_sets_flags = {
        let a = r.or(one_rrc, one_rra);
        r.or(a, one_sxt)
    };
    let op_sets_flags = r.or(two_sets_flags, one_sets_flags);

    // Write-back controls.
    let is_test_only = r.or(op_cmp, op_bit);
    let two_wb = {
        let nt = r.not(is_test_only);
        r.and(is_two, nt)
    };
    let exec_wb = r.or(two_wb, one_rmw);
    let rd_is_pc = r.eq_const(&rd, 0);
    let rd_is_sr = r.eq_const(&rd, 2);
    let rd_is_cg = r.eq_const(&rd, 3);
    // Memory-destination detection for the write-back phase:
    //   format I: Ad == 1 ; format II RMW: operand mode != register/CG.
    let one_operand_mem = {
        let m = r.or(o_idx, o_ind);
        r.and(one_rmw, m)
    };
    let needs_dstwr = {
        let two_mem = r.and(two_wb, ad);
        r.or(two_mem, one_operand_mem)
    };
    let ndw = r.not(needs_dstwr);
    let wb_reg_dst = r.and(exec_wb, ndw);
    let exec_writes_pc = r.and(wb_reg_dst, rd_is_pc);
    let exec_writes_sr = r.and(wb_reg_dst, rd_is_sr);
    let rd_is_gpr = {
        let a = r.or(rd_is_pc, rd_is_sr);
        let b = r.or(a, rd_is_cg);
        r.not(b)
    };

    // Flag register update.
    let flags_en = {
        let normal = r.and(s_exec, op_sets_flags);
        let sr_wr = r.and(s_exec, exec_writes_sr);
        r.or(normal, sr_wr)
    };
    let sr_wr_now = r.and(s_exec, exec_writes_sr);
    let c_next = r.mux(sr_wr_now, c_flag, alu_result[0]);
    let z_next = r.mux(sr_wr_now, res_zero, alu_result[1]);
    let n_next = r.mux(sr_wr_now, res_neg, alu_result[2]);
    let v_next = r.mux(sr_wr_now, v_flag, alu_result[8]);
    r.reg_next_en(hflag_c, &vec![c_next], flags_en);
    r.reg_next_en(hflag_z, &vec![z_next], flags_en);
    r.reg_next_en(hflag_n, &vec![n_next], flags_en);
    r.reg_next_en(hflag_v, &vec![v_next], flags_en);

    // ---------------- frontend: branch logic ----------------
    r.set_module("frontend");
    let cond: Bus = ir[10..13].to_vec();
    let cnz = r.eq_const(&cond, 0);
    let cz = r.eq_const(&cond, 1);
    let cnc = r.eq_const(&cond, 2);
    let cc = r.eq_const(&cond, 3);
    let cn = r.eq_const(&cond, 4);
    let cge = r.eq_const(&cond, 5);
    let cl = r.eq_const(&cond, 6);
    let calways = r.eq_const(&cond, 7);
    let nfz = r.not(fz);
    let nfc = r.not(fc);
    let ge_ok = r.xnor(fn_, fv);
    let l_ok = r.xor(fn_, fv);
    let cond_ok = {
        let t0 = r.and(cnz, nfz);
        let t1 = r.and(cz, fz);
        let t2 = r.and(cnc, nfc);
        let t3 = r.and(cc, fc);
        let t4 = r.and(cn, fn_);
        let t5 = r.and(cge, ge_ok);
        let t6 = r.and(cl, l_ok);
        let o01 = r.or(t0, t1);
        let o23 = r.or(t2, t3);
        let o45 = r.or(t4, t5);
        let o67 = r.or(t6, calways);
        let a = r.or(o01, o23);
        let b = r.or(o45, o67);
        r.or(a, b)
    };
    let bt_raw = r.and(is_jump, cond_ok);
    let branch_taken = r.probe("frontend/branch_taken", bt_raw);

    // Branch target: PC + sext(offset) * 2 (PC already points past the jump).
    let off_sext: Bus = {
        let mut v: Bus = Vec::with_capacity(16);
        v.push(r.zero()); // << 1
        v.extend_from_slice(&ir[0..10]);
        let sign = ir[9];
        v.extend(std::iter::repeat(sign).take(5));
        v
    };
    let (pc_branch, _) = r.add(&pc, &off_sext, None);

    // ---------------- FSM next-state ----------------
    // Test-only ops (CMP/BIT) with a memory destination still go through
    // DST_IDX/DST_RD for the read; they just skip DST_WR. So routing uses
    // is_two & Ad, not two_wb & Ad.
    let route_dstidx = r.and(is_two, ad);
    let route_push = one_pushcall;
    let route_exec = {
        let a = r.or(route_dstidx, route_push);
        r.not(a)
    };
    let njump = r.not(is_jump);
    let dec_operand = r.and(s_decode, njump);
    let dec_ready = r.and(dec_operand, value_ready);
    let value_done = r.or(dec_ready, s_srcrd);

    let next_fetch = {
        let jd = r.and(s_decode, is_jump);
        let ef = r.and(s_exec, ndw);
        let a = r.or(s_reset0, jd);
        let b = r.or(ef, s_dstwr);
        let c = r.or(b, s_pushwr);
        r.or(a, c)
    };
    let next_decode = s_fetch;
    let next_srcidx = r.and(dec_operand, o_idx);
    let next_srcrd = {
        let d = r.and(dec_operand, o_ind);
        r.or(d, s_srcidx)
    };
    let next_dstidx = r.and(value_done, route_dstidx);
    let next_dstrd = s_dstidx;
    let next_exec = {
        let a = r.and(value_done, route_exec);
        r.or(a, s_dstrd)
    };
    let next_dstwr = r.and(s_exec, needs_dstwr);
    let next_pushwr = r.and(value_done, route_push);

    let mut state_next: Vec<NetId> = Vec::with_capacity(State::ALL.len());
    let never = r.zero();
    state_next.push(r.not(never)); // stored-inverted RESET0: next raw bit = 1
    state_next.push(next_fetch);
    state_next.push(next_decode);
    state_next.push(next_srcidx);
    state_next.push(next_srcrd);
    state_next.push(next_dstidx);
    state_next.push(next_dstrd);
    state_next.push(next_exec);
    state_next.push(next_dstwr);
    state_next.push(next_pushwr);
    r.reg_next(hstate, &state_next);

    // ---------------- PC update ----------------
    let autoinc_pc = {
        let a = r.and(s_srcrd, o_autoinc);
        r.and(a, oreg_is_pc)
    };
    let dec_branch = r.and(s_decode, branch_taken);
    let call_now = r.and(s_pushwr, one_call);
    let pc_from_inc = {
        let a = r.or(s_fetch, s_srcidx);
        let b = r.or(a, s_dstidx);
        r.or(b, autoinc_pc)
    };
    let exec_pc_wr = r.and(s_exec, exec_writes_pc);
    let pc_en = {
        let a = r.or(s_reset0, pc_from_inc);
        let b = r.or(dec_branch, exec_pc_wr);
        let c = r.or(a, b);
        r.or(c, call_now)
    };
    // mem_rdata (peripheral-merged read data) is defined below; the PC next
    // value needs it for RESET0, so build the peripheral block first.

    // ---------------- peripherals ----------------
    // Bus address mux (mem_backbone).
    r.set_module("mem_backbone");
    let vector16 = r.lit(memmap::RESET_VECTOR as u64, 16);
    let addr_mar = {
        let a = r.or(s_srcrd, s_dstrd);
        r.or(a, s_dstwr)
    };
    let bus_addr = {
        // Default PC; override with MAR / SP-2 / reset vector.
        let from_mar = r.mux_bus(addr_mar, &pc, &mar);
        let from_push = r.mux_bus(s_pushwr, &from_mar, &sp_minus2);
        r.mux_bus(s_reset0, &from_push, &vector16)
    };
    let bus_wen = r.or(s_dstwr, s_pushwr);
    // Write data: DST_WR -> DSTV (ALU result), PUSH_WR -> SRCV or PC (call).
    let push_data = r.mux_bus(one_call, &srcv, &pc);
    let bus_wdata = r.mux_bus(s_pushwr, &dstv, &push_data);

    // Peripheral write strobes (decode on bus_addr).
    let wr_hit = |r: &mut Rtl, addr: u64, wen: NetId, bus: &Bus| {
        let hit = r.eq_const(bus, addr);
        r.and(hit, wen)
    };

    // multiplier
    r.set_module("multiplier");
    let (hop1, op1) = r.reg("op1", 16);
    let (hsigned, signed_q) = r.reg("signed", 1);
    let (hop2, op2) = r.reg("op2", 16);
    let (hpend, pend_q) = r.reg("pend", 1);
    let (hreslo, reslo) = r.reg("reslo", 16);
    let (hreshi, reshi) = r.reg("reshi", 16);
    let wr_mpy = wr_hit(&mut r, memmap::MPY as u64, bus_wen, &bus_addr);
    let wr_mpys = wr_hit(&mut r, memmap::MPYS as u64, bus_wen, &bus_addr);
    let wr_op2 = wr_hit(&mut r, memmap::OP2 as u64, bus_wen, &bus_addr);
    let wr_op1 = r.or(wr_mpy, wr_mpys);
    r.reg_next_en(hop1, &bus_wdata, wr_op1);
    r.reg_next_en(hsigned, &vec![wr_mpys], wr_op1);
    r.reg_next_en(hop2, &bus_wdata, wr_op2);
    r.reg_next(hpend, &vec![wr_op2]);
    // 16x16 unsigned array multiplier + signed correction.
    let product = r.mul(&op1, &op2); // 32 bits
    let prod_lo: Bus = product[0..16].to_vec();
    let prod_hi: Bus = product[16..32].to_vec();
    let corr_hi = {
        // signed: high -= (op1[15] ? op2 : 0) + (op2[15] ? op1 : 0)
        let m1 = r.mask_bus(&op2, op1[15]);
        let m2 = r.mask_bus(&op1, op2[15]);
        let (h1, _) = r.sub(&prod_hi, &m1);
        let (h2, _) = r.sub(&h1, &m2);
        h2
    };
    let reshi_d = r.mux_bus(signed_q[0], &prod_hi, &corr_hi);
    r.reg_next_en(hreslo, &prod_lo, pend_q[0]);
    r.reg_next_en(hreshi, &reshi_d, pend_q[0]);

    // watchdog
    r.set_module("watchdog");
    let (hwdt, wdtctl) = r.reg("wdtctl", 16);
    let (hwcnt, wcnt) = r.reg("wcnt", 16);
    let wr_wdt = wr_hit(&mut r, memmap::WDTCTL as u64, bus_wen, &bus_addr);
    r.reg_next_en(hwdt, &bus_wdata, wr_wdt);
    let hold = wdtctl[7];
    let one1 = r.one();
    let (wcnt_inc, _) = r.inc(&wcnt, one1);
    let wcnt_next = r.mux_bus(hold, &wcnt_inc, &wcnt);
    r.reg_next(hwcnt, &wcnt_next);

    // clk_module
    r.set_module("clk_module");
    let (hclkctl, clkctl) = r.reg("clkctl", 16);
    let (hdiv, div) = r.reg("div", 4);
    let wr_clk = wr_hit(&mut r, memmap::CLKCTL as u64, bus_wen, &bus_addr);
    r.reg_next_en(hclkctl, &bus_wdata, wr_clk);
    let (div_inc, _) = r.inc(&div, one1);
    r.reg_next(hdiv, &div_inc);

    // sfr
    r.set_module("sfr");
    let (hp1out, p1out) = r.reg("p1out", 16);
    let wr_p1 = wr_hit(&mut r, memmap::P1OUT as u64, bus_wen, &bus_addr);
    r.reg_next_en(hp1out, &bus_wdata, wr_p1);

    // dbg
    r.set_module("dbg");
    let (hdbg0, dbg0) = r.reg("dbg0", 16);
    let (hdbg1, dbg1) = r.reg("dbg1", 16);
    let wr_d0 = wr_hit(&mut r, memmap::DBG0 as u64, bus_wen, &bus_addr);
    let wr_d1 = wr_hit(&mut r, memmap::DBG1 as u64, bus_wen, &bus_addr);
    r.reg_next_en(hdbg0, &bus_wdata, wr_d0);
    r.reg_next_en(hdbg1, &bus_wdata, wr_d1);

    // Peripheral read mux (mem_backbone).
    r.set_module("mem_backbone");
    let rd_hits: Vec<(u64, Bus)> = vec![
        (memmap::MPY as u64, op1.clone()),
        (memmap::MPYS as u64, op1.clone()),
        (memmap::OP2 as u64, op2.clone()),
        (memmap::RESLO as u64, reslo.clone()),
        (memmap::RESHI as u64, reshi.clone()),
        (memmap::WDTCTL as u64, wdtctl.clone()),
        (memmap::CLKCTL as u64, clkctl.clone()),
        (memmap::P1OUT as u64, p1out.clone()),
        (memmap::DBG0 as u64, dbg0.clone()),
        (memmap::DBG1 as u64, dbg1.clone()),
    ];
    let mut hit_nets = Vec::new();
    let mut hit_data = Vec::new();
    for (addr, data) in &rd_hits {
        let h = r.eq_const(&bus_addr, *addr);
        hit_nets.push(h);
        hit_data.push(data.clone());
    }
    let periph_any = r.or_all(&hit_nets);
    let periph_data = r.onehot_mux(&hit_nets, &hit_data);
    let mem_rdata = r.mux_bus(periph_any, &rdata, &periph_data);

    // ---------------- frontend: PC / IR / SRCV / DSTV / MAR nexts ----------
    r.set_module("frontend");
    // PC next value.
    let pc_next = {
        // Priority: RESET0 vector load, branch, exec write, call, else +2.
        let v = r.mux_bus(s_reset0, &pc_plus2, &mem_rdata);
        let v = r.mux_bus(dec_branch, &v, &pc_branch);
        let v = r.mux_bus(exec_pc_wr, &v, &alu_result);
        r.mux_bus(call_now, &v, &srcv)
    };
    r.reg_next_en(hpc, &pc_next, pc_en);
    r.reg_next_en(hir, &mem_rdata, s_fetch);

    // SRCV: DECODE (CG or register value), SRC_RD (memory data).
    r.set_module("exec_unit");
    let srcv_dec = r.mux_bus(cg_const, &regread, &cg_value);
    let srcv_d = r.mux_bus(s_srcrd, &srcv_dec, &mem_rdata);
    let srcv_en = {
        let a = r.and(s_decode, value_ready);
        r.or(a, s_srcrd)
    };
    r.reg_next_en(hsrcv, &srcv_d, srcv_en);

    // DSTV: DST_RD (memory data), EXEC (ALU result for DST_WR).
    let dstv_d = r.mux_bus(s_exec, &mem_rdata, &alu_result);
    let dstv_en = {
        let e = r.and(s_exec, needs_dstwr);
        r.or(s_dstrd, e)
    };
    r.reg_next_en(hdstv, &dstv_d, dstv_en);

    // MAR: DECODE (@Rn), SRC_IDX (ext + base), DST_IDX (ext + base).
    r.set_module("mem_backbone");
    // Index base: r2 -> 0 (absolute), r0 -> PC+2? No: at SRC_IDX the ext word
    // is being fetched at PC, and PC+2 is the post-extension PC; MSP430
    // symbolic mode x(PC) uses the address of the extension word + x. The
    // assembler does not emit symbolic mode, so base r0 uses PC as-is.
    let idx_reg = r.mux_bus(s_dstidx, &o_reg, &rd); // which register field
    let idx_is_r2 = r.eq_const(&idx_reg, 2);
    let base_raw = regread.clone();
    let not_abs = r.not(idx_is_r2);
    let base = r.mask_bus(&base_raw, not_abs);
    let (idx_addr, _) = r.add(&mem_rdata, &base, None);
    let mar_d = r.mux_bus(s_decode, &idx_addr, &regread);
    let mar_en = {
        let d = r.and(s_decode, o_ind);
        let i = r.or(s_srcidx, s_dstidx);
        r.or(d, i)
    };
    r.reg_next_en(hmar, &mar_d, mar_en);

    // ---------------- exec_unit: register file writes ----------------
    r.set_module("exec_unit");
    let autoinc_rf = {
        let a = r.and(s_srcrd, o_autoinc);
        let npc = r.not(oreg_is_pc);
        r.and(a, npc)
    };
    let exec_rf_wr = {
        let w = r.and(s_exec, wb_reg_dst);
        r.and(w, rd_is_gpr)
    };
    let rf_wen = {
        let a = r.or(autoinc_rf, exec_rf_wr);
        r.or(a, s_pushwr)
    };
    let rf_wdata = {
        let v = r.mux_bus(s_exec, &regread_plus2, &alu_result);
        r.mux_bus(s_pushwr, &v, &sp_minus2)
    };
    for (i, h) in rf_handles {
        let en = r.and(ra_hot[i], rf_wen);
        r.reg_next_en(h, &rf_wdata, en);
    }

    // ---------------- outputs ----------------
    r.set_module("mem_backbone");
    let bus_addr_out: Vec<NetId> = bus_addr
        .iter()
        .enumerate()
        .map(|(i, &n)| r.probe(&format!("bus_addr[{i}]"), n))
        .collect();
    let bus_wdata_out: Vec<NetId> = bus_wdata
        .iter()
        .enumerate()
        .map(|(i, &n)| r.probe(&format!("bus_wdata[{i}]"), n))
        .collect();
    let bus_wen_out = r.probe("bus_wen", bus_wen);
    r.output("bus_addr", &bus_addr_out);
    r.output("bus_wdata", &bus_wdata_out);
    r.output_bit("bus_wen", bus_wen_out);
    r.output_bit("branch_taken", branch_taken);

    let io = CpuIo {
        bus_addr: bus_addr_out,
        bus_wdata: bus_wdata_out,
        bus_rdata: rdata,
        bus_wen: bus_wen_out,
        branch_taken,
        states: s,
        pc,
        ir,
        regs: {
            let mut v: Vec<Vec<NetId>> = vec![Vec::new(); 16];
            for i in rf_indices {
                v[i] = rf_q[i].clone().expect("regfile register");
            }
            v
        },
        flags: [fc, fz, fn_, fv],
    };
    let nl = r.finish()?;
    Ok((nl, io))
}
