//! Property test: the gate-level core and the behavioral ISS agree on
//! random straight-line programs — registers, flags, memory, and cycle
//! counts. This is the strongest evidence the golden model and the gates
//! implement the same ISA semantics.

use proptest::prelude::*;
use xbound_cpu::Cpu;
use xbound_msp430::iss::Iss;
use xbound_msp430::{assemble, Program};

/// One random instruction in the supported subset, writing only r4-r13 and
/// a small data-RAM window so programs cannot fault.
#[derive(Debug, Clone)]
enum RandInstr {
    AluRR { op: usize, rs: u8, rd: u8 },
    AluImm { op: usize, imm: u16, rd: u8 },
    MovAbs { rs: u8, slot: u8 },
    LoadAbs { slot: u8, rd: u8 },
    LoadIdx { off: i16, rd: u8 },
    One { op: usize, rd: u8 },
    PushPop { rs: u8, rd: u8 },
}

const ALU: [&str; 8] = ["mov", "add", "addc", "sub", "subc", "xor", "and", "bis"];
const ONE: [&str; 4] = ["rra", "rrc", "swpb", "sxt"];

fn arb_instr() -> impl Strategy<Value = RandInstr> {
    prop_oneof![
        (0..ALU.len(), 0u8..10, 0u8..10).prop_map(|(op, rs, rd)| RandInstr::AluRR { op, rs, rd }),
        (0..ALU.len(), any::<u16>(), 0u8..10).prop_map(|(op, imm, rd)| RandInstr::AluImm {
            op,
            imm,
            rd
        }),
        (0u8..10, 0u8..8).prop_map(|(rs, slot)| RandInstr::MovAbs { rs, slot }),
        (0u8..8, 0u8..10).prop_map(|(slot, rd)| RandInstr::LoadAbs { slot, rd }),
        (0i16..8, 0u8..10).prop_map(|(off, rd)| RandInstr::LoadIdx { off: off * 2, rd }),
        (0..ONE.len(), 0u8..10).prop_map(|(op, rd)| RandInstr::One { op, rd }),
        (0u8..10, 0u8..10).prop_map(|(rs, rd)| RandInstr::PushPop { rs, rd }),
    ]
}

fn reg(r: u8) -> String {
    format!("r{}", 4 + (r % 10))
}

fn render(instrs: &[RandInstr]) -> String {
    let mut s = String::from(
        "main:\n    mov #0x0A00, sp\n    mov #0x0300, r4\n    mov #0x1234, r5\n    mov #0xFFFF, r6\n",
    );
    for i in instrs {
        match i {
            RandInstr::AluRR { op, rs, rd } => {
                s.push_str(&format!("    {} {}, {}\n", ALU[*op], reg(*rs), reg(*rd)));
            }
            RandInstr::AluImm { op, imm, rd } => {
                s.push_str(&format!("    {} #{}, {}\n", ALU[*op], imm, reg(*rd)));
            }
            RandInstr::MovAbs { rs, slot } => {
                s.push_str(&format!(
                    "    mov {}, &0x{:04x}\n",
                    reg(*rs),
                    0x0300 + 2 * (*slot as u16)
                ));
            }
            RandInstr::LoadAbs { slot, rd } => {
                s.push_str(&format!(
                    "    mov &0x{:04x}, {}\n",
                    0x0300 + 2 * (*slot as u16),
                    reg(*rd)
                ));
            }
            RandInstr::LoadIdx { off, rd } => {
                // Use r4 (held at 0x0300) as a safe base register.
                s.push_str(&format!("    mov {}(r4), {}\n", off, reg(*rd)));
            }
            RandInstr::One { op, rd } => {
                s.push_str(&format!("    {} {}\n", ONE[*op], reg(*rd)));
            }
            RandInstr::PushPop { rs, rd } => {
                s.push_str(&format!("    push {}\n    pop {}\n", reg(*rs), reg(*rd)));
            }
        }
        // Keep r4 a valid data pointer for LoadIdx regardless of clobbers.
        s.push_str("    mov #0x0300, r4\n");
    }
    s.push_str("    jmp $\n");
    s
}

fn run_both(program: &Program) -> (Iss, u64) {
    let mut iss = Iss::new(program);
    let outcome = iss.run(500_000).expect("iss runs");
    assert!(outcome.halted);
    (iss, outcome.cycles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_programs_match_iss(instrs in proptest::collection::vec(arb_instr(), 1..14)) {
        let src = render(&instrs);
        let program = assemble(&src).expect("renders assemble");
        let (iss, cycles) = run_both(&program);

        let cpu = Cpu::build().expect("builds");
        let mut sim = cpu.new_sim();
        Cpu::load_program(&mut sim, &program, true);
        for _ in 0..(3 + cycles) {
            sim.step();
        }
        sim.eval().expect("settles");
        let arch = cpu.arch_state(&sim);
        prop_assert_eq!(arch.pc.to_u16(), Some(iss.pc()), "PC\n{}", src);
        for rn in [1usize, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13] {
            prop_assert_eq!(
                arch.regs[rn].to_u16(),
                Some(iss.reg(rn as u8)),
                "r{} mismatch\n{}",
                rn,
                src.clone()
            );
        }
        let mask = 0x0107u16;
        prop_assert_eq!(
            arch.sr().to_u16().map(|v| v & mask),
            Some(iss.sr() & mask),
            "flags mismatch\n{}",
            src
        );
        let dmem = sim.mem("dmem").expect("dmem");
        for (i, w) in dmem.data().iter().enumerate() {
            prop_assert_eq!(w.to_u16(), Some(iss.dmem()[i]), "dmem[{}]\n{}", i, src.clone());
        }
    }
}
