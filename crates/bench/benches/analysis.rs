//! Criterion benchmarks for the co-analysis pipeline (the tool-runtime
//! numbers behind the paper's "2 hours for the most complex benchmark"
//! remark — this Rust implementation analyzes each benchmark in well under
//! a second).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xbound_core::peak_power::compute_peak_power;
use xbound_core::{CoAnalysis, ExploreConfig, SymbolicExplorer, UlpSystem};

fn bench_algorithm1(c: &mut Criterion) {
    let sys = UlpSystem::openmsp430_class().expect("builds");
    let mut g = c.benchmark_group("algorithm1_symbolic_exploration");
    g.sample_size(10);
    for name in ["mult", "tHold", "binSearch"] {
        let bench = xbound_benchsuite::by_name(name).expect("exists");
        let program = bench.program().expect("assembles");
        let cfg = ExploreConfig {
            widen_threshold: bench.widen_threshold(),
            ..ExploreConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(name), &program, |b, p| {
            b.iter(|| {
                let explorer = SymbolicExplorer::new(sys.cpu(), cfg);
                explorer.explore(p).expect("explores")
            });
        });
    }
    g.finish();
}

/// Batched symbolic exploration: the same fork-heavy benchmarks explored
/// at different lane widths. Results (tree, deterministic stats, every
/// downstream table) are bit-identical at any width; only the wall clock
/// and the gate-pass count change.
fn bench_batched_symbolic_exploration(c: &mut Criterion) {
    let sys = UlpSystem::openmsp430_class().expect("builds");
    let mut g = c.benchmark_group("batched_symbolic_exploration");
    g.sample_size(10);
    for name in ["rle", "Viterbi"] {
        let bench = xbound_benchsuite::by_name(name).expect("exists");
        let program = bench.program().expect("assembles");
        for lanes in [1usize, 8, 32, 64] {
            let cfg = ExploreConfig {
                widen_threshold: bench.widen_threshold(),
                max_total_cycles: 5_000_000,
                threads: 1,
                lanes,
                ..ExploreConfig::default()
            };
            g.bench_with_input(BenchmarkId::new(name, lanes), &program, |b, p| {
                b.iter(|| {
                    let explorer = SymbolicExplorer::new(sys.cpu(), cfg);
                    explorer.explore(p).expect("explores")
                });
            });
        }
    }
    g.finish();
}

/// Work-stealing thread scaling on the two slowest suite benchmarks.
/// Lanes stay fixed at 8 so the only variable is the worker pool; the
/// tree and every bound are bit-identical at any thread count.
fn bench_explore_thread_scaling(c: &mut Criterion) {
    let sys = UlpSystem::openmsp430_class().expect("builds");
    let mut g = c.benchmark_group("explore_thread_scaling");
    g.sample_size(10);
    for name in ["rle", "Viterbi"] {
        let bench = xbound_benchsuite::by_name(name).expect("exists");
        let program = bench.program().expect("assembles");
        for threads in [1usize, 2, 4] {
            let cfg = ExploreConfig {
                widen_threshold: bench.widen_threshold(),
                max_total_cycles: 5_000_000,
                threads,
                lanes: 8,
                ..ExploreConfig::default()
            };
            g.bench_with_input(BenchmarkId::new(name, threads), &program, |b, p| {
                b.iter(|| {
                    let explorer = SymbolicExplorer::new(sys.cpu(), cfg);
                    explorer.explore(p).expect("explores")
                });
            });
        }
    }
    g.finish();
}

fn bench_algorithm2(c: &mut Criterion) {
    let sys = UlpSystem::openmsp430_class().expect("builds");
    let bench = xbound_benchsuite::by_name("mult").expect("exists");
    let program = bench.program().expect("assembles");
    let explorer = SymbolicExplorer::new(sys.cpu(), ExploreConfig::default());
    let (tree, _) = explorer.explore(&program).expect("explores");
    let mut g = c.benchmark_group("algorithm2_peak_power");
    g.sample_size(10);
    g.bench_function("mult_even_odd_assignment", |b| {
        b.iter(|| compute_peak_power(sys.cpu().netlist(), sys.library(), sys.clock_hz(), &tree));
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let sys = UlpSystem::openmsp430_class().expect("builds");
    let bench = xbound_benchsuite::by_name("intAVG").expect("exists");
    let program = bench.program().expect("assembles");
    let mut g = c.benchmark_group("end_to_end_co_analysis");
    g.sample_size(10);
    g.bench_function("intAVG_full_pipeline", |b| {
        b.iter(|| {
            CoAnalysis::new(&sys)
                .energy_rounds(bench.energy_rounds())
                .run(&program)
                .expect("analyzes")
        });
    });
    g.finish();
}

/// Operating-point sweep amortization: one shared exploration feeding
/// the default 8-corner grid's composition passes, vs 8 independent cold
/// co-analyses of the same corners (no memo, no cache). The per-corner
/// reports are byte-identical either way
/// (`crates/core/tests/sweep_differential.rs`); only the wall clock
/// changes.
fn bench_sweep_amortization(c: &mut Criterion) {
    use xbound_core::sweep::{run_sweep, SweepSpec};
    let sys = UlpSystem::openmsp430_class().expect("builds");
    let spec = SweepSpec::suite_default();
    let mut g = c.benchmark_group("sweep_amortization");
    g.sample_size(10);
    for name in ["mult", "tHold", "binSearch"] {
        let bench = xbound_benchsuite::by_name(name).expect("exists");
        let program = bench.program().expect("assembles");
        let cfg = ExploreConfig {
            widen_threshold: bench.widen_threshold(),
            threads: 1,
            ..ExploreConfig::suite_default()
        };
        g.bench_with_input(
            BenchmarkId::new("sweep_8_corners", name),
            &program,
            |b, p| {
                b.iter(|| {
                    run_sweep(sys.cpu(), &spec, p, cfg, bench.energy_rounds(), 1).expect("sweeps")
                });
            },
        );
        // The naive curve: one full cold analysis per corner, exactly as
        // a driver without the sweep engine would produce it.
        let corner_systems: Vec<UlpSystem> = spec
            .corners()
            .iter()
            .map(|corner| UlpSystem::new(sys.cpu().clone(), corner.library(), corner.clock_hz()))
            .collect();
        g.bench_with_input(
            BenchmarkId::new("cold_8_analyses", name),
            &program,
            |b, p| {
                b.iter(|| {
                    for corner_sys in &corner_systems {
                        CoAnalysis::new(corner_sys)
                            .config(cfg)
                            .energy_rounds(bench.energy_rounds())
                            .run(p)
                            .expect("analyzes");
                    }
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_algorithm1,
    bench_batched_symbolic_exploration,
    bench_explore_thread_scaling,
    bench_algorithm2,
    bench_end_to_end,
    bench_sweep_amortization
);
criterion_main!(benches);
