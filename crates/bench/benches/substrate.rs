//! Criterion benchmarks for the substrates: gate-level simulation
//! throughput, power analysis, the assembler, and the Liberty parser.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use xbound_cells::CellLibrary;
use xbound_cpu::Cpu;
use xbound_msp430::assemble;
use xbound_power::PowerAnalyzer;

fn bench_gate_sim(c: &mut Criterion) {
    let cpu = Cpu::build().expect("builds");
    let bench = xbound_benchsuite::by_name("tea8").expect("exists");
    let program = bench.program().expect("assembles");
    let mut g = c.benchmark_group("gate_level_simulation");
    g.sample_size(10);
    let cycles = 500u64;
    g.throughput(Throughput::Elements(
        cycles * cpu.netlist().gate_count() as u64,
    ));
    g.bench_function("tea8_500_cycles", |b| {
        b.iter(|| {
            let mut sim = cpu.new_sim();
            Cpu::load_program(&mut sim, &program, true);
            for _ in 0..cycles {
                sim.step();
            }
            sim.cycle()
        });
    });
    g.finish();
}

fn bench_power_analysis(c: &mut Criterion) {
    let cpu = Cpu::build().expect("builds");
    let bench = xbound_benchsuite::by_name("intAVG").expect("exists");
    let program = bench.program().expect("assembles");
    let mut sim = cpu.new_sim();
    Cpu::load_program(&mut sim, &program, true);
    let mut frames = Vec::new();
    for _ in 0..200 {
        frames.push(sim.eval().expect("settles").clone());
        sim.commit();
    }
    let lib = CellLibrary::ulp65();
    let mut g = c.benchmark_group("power_analysis");
    g.throughput(Throughput::Elements(frames.len() as u64));
    g.bench_function("activity_based_200_cycles", |b| {
        let analyzer = PowerAnalyzer::new(cpu.netlist(), &lib, 100.0e6);
        b.iter(|| analyzer.analyze(&frames));
    });
    g.finish();
}

fn bench_assembler_and_liberty(c: &mut Criterion) {
    let src = xbound_benchsuite::by_name("tea8").expect("exists").source();
    c.bench_function("assemble_tea8", |b| {
        b.iter(|| assemble(src).expect("assembles"));
    });
    c.bench_function("parse_liberty_ulp65", |b| {
        b.iter(|| xbound_cells::liberty::parse(xbound_cells::ULP65_LIB).expect("parses"));
    });
}

fn bench_cpu_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu_construction");
    g.sample_size(10);
    g.bench_function("build_gate_level_core", |b| {
        b.iter(|| Cpu::build().expect("builds"));
    });
    g.finish();
}

/// Scalar vs batched gate-kernel throughput on the ulp65-cell core:
/// 32 concrete tea8 runs with diverging inputs, either as 32 scalar
/// simulations or as one 32-lane batched simulation (identical results —
/// see `crates/sim/tests/batch_differential.rs`). Throughput is counted
/// in lane-cycles, so the reported ratio is the concrete-run speedup
/// recorded in `BENCH_sim.json`.
fn bench_batch_vs_scalar_sim(c: &mut Criterion) {
    let cpu = Cpu::build().expect("builds");
    let bench = xbound_benchsuite::by_name("tea8").expect("exists");
    let program = bench.program().expect("assembles");
    let cycles = 200u64;
    let lanes = 32usize;
    let inputs_of = |lane: usize| -> Vec<u16> {
        (0..8)
            .map(|i| (lane as u16).wrapping_mul(31).wrapping_add(i * 97))
            .collect()
    };
    let mut g = c.benchmark_group("batched_concrete_simulation");
    g.sample_size(10);
    g.throughput(Throughput::Elements(cycles * lanes as u64));
    g.bench_function("scalar_32_runs_200_cycles", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for lane in 0..lanes {
                let mut sim = cpu.new_sim();
                Cpu::load_program(&mut sim, &program, true);
                Cpu::set_inputs(&mut sim, &inputs_of(lane));
                for _ in 0..cycles {
                    sim.step();
                }
                total += sim.cycle();
            }
            total
        });
    });
    g.bench_function("batch_32_lanes_200_cycles", |b| {
        b.iter(|| {
            let mut sim = cpu.new_batch_sim(lanes);
            Cpu::load_program_batch(&mut sim, &program, true);
            for lane in 0..lanes {
                Cpu::set_inputs_lane(&mut sim, lane, &inputs_of(lane));
            }
            for _ in 0..cycles {
                sim.step();
            }
            sim.cycle()
        });
    });
    g.finish();
}

/// Event-driven vs levelized vs compiled engine throughput on the same
/// concrete tea8 run (identical frames — see
/// `crates/sim/tests/differential.rs` and
/// `crates/bench/tests/compiled_differential.rs`). One simulator per
/// engine is built and program-loaded outside the timing loop and rewound
/// by snapshot restore each iteration, so the numbers isolate the settle
/// kernels: throughput is counted in gate-passes (cycles × comb gates,
/// × 1 whichever lane width, since one pass covers all lanes word-wise).
/// These are the `ns/gate-pass` rows recorded in `BENCH_sim.json`.
fn bench_engine_comparison(c: &mut Criterion) {
    use xbound_sim::EvalMode;
    let cpu = Cpu::build().expect("builds");
    let bench = xbound_benchsuite::by_name("tea8").expect("exists");
    let program = bench.program().expect("assembles");
    let cycles = 200u64;
    let lanes = 32usize;
    let inputs_of = |lane: usize| -> Vec<u16> {
        (0..8)
            .map(|i| (lane as u16).wrapping_mul(31).wrapping_add(i * 97))
            .collect()
    };
    let modes = [
        ("event_driven", EvalMode::EventDriven),
        ("levelized", EvalMode::Levelized),
        ("compiled", EvalMode::Compiled),
    ];

    let mut g = c.benchmark_group("engine_concrete_simulation");
    g.sample_size(10);
    g.throughput(Throughput::Elements(
        cycles * cpu.netlist().gate_count() as u64,
    ));
    for (name, mode) in modes {
        let mut sim = cpu.new_sim();
        sim.set_eval_mode(mode);
        Cpu::load_program(&mut sim, &program, true);
        Cpu::set_inputs(&mut sim, &inputs_of(0));
        let start = sim.machine_state();
        g.bench_function(format!("{name}_tea8_200_cycles"), |b| {
            b.iter(|| {
                sim.set_machine_state(&start);
                for _ in 0..cycles {
                    sim.step();
                }
                sim.cycle()
            });
        });
    }
    g.finish();

    let mut g = c.benchmark_group("engine_batched_concrete_simulation");
    g.sample_size(10);
    g.throughput(Throughput::Elements(
        cycles * cpu.netlist().gate_count() as u64,
    ));
    for (name, mode) in modes {
        let mut sim = cpu.new_batch_sim(lanes);
        sim.set_eval_mode(mode);
        Cpu::load_program_batch(&mut sim, &program, true);
        for lane in 0..lanes {
            Cpu::set_inputs_lane(&mut sim, lane, &inputs_of(lane));
        }
        let start = sim.machine_state();
        g.bench_function(format!("{name}_tea8_32_lanes_200_cycles"), |b| {
            b.iter(|| {
                sim.set_machine_state(&start);
                for _ in 0..cycles {
                    sim.step();
                }
                sim.cycle()
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_gate_sim,
    bench_power_analysis,
    bench_assembler_and_liberty,
    bench_cpu_construction,
    bench_batch_vs_scalar_sim,
    bench_engine_comparison
);
criterion_main!(benches);
