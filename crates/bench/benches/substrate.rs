//! Criterion benchmarks for the substrates: gate-level simulation
//! throughput, power analysis, the assembler, and the Liberty parser.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use xbound_cells::CellLibrary;
use xbound_cpu::Cpu;
use xbound_msp430::assemble;
use xbound_power::PowerAnalyzer;

fn bench_gate_sim(c: &mut Criterion) {
    let cpu = Cpu::build().expect("builds");
    let bench = xbound_benchsuite::by_name("tea8").expect("exists");
    let program = bench.program().expect("assembles");
    let mut g = c.benchmark_group("gate_level_simulation");
    g.sample_size(10);
    let cycles = 500u64;
    g.throughput(Throughput::Elements(
        cycles * cpu.netlist().gate_count() as u64,
    ));
    g.bench_function("tea8_500_cycles", |b| {
        b.iter(|| {
            let mut sim = cpu.new_sim();
            Cpu::load_program(&mut sim, &program, true);
            for _ in 0..cycles {
                sim.step();
            }
            sim.cycle()
        });
    });
    g.finish();
}

fn bench_power_analysis(c: &mut Criterion) {
    let cpu = Cpu::build().expect("builds");
    let bench = xbound_benchsuite::by_name("intAVG").expect("exists");
    let program = bench.program().expect("assembles");
    let mut sim = cpu.new_sim();
    Cpu::load_program(&mut sim, &program, true);
    let mut frames = Vec::new();
    for _ in 0..200 {
        frames.push(sim.eval().expect("settles").clone());
        sim.commit();
    }
    let lib = CellLibrary::ulp65();
    let mut g = c.benchmark_group("power_analysis");
    g.throughput(Throughput::Elements(frames.len() as u64));
    g.bench_function("activity_based_200_cycles", |b| {
        let analyzer = PowerAnalyzer::new(cpu.netlist(), &lib, 100.0e6);
        b.iter(|| analyzer.analyze(&frames));
    });
    g.finish();
}

fn bench_assembler_and_liberty(c: &mut Criterion) {
    let src = xbound_benchsuite::by_name("tea8").expect("exists").source();
    c.bench_function("assemble_tea8", |b| {
        b.iter(|| assemble(src).expect("assembles"));
    });
    c.bench_function("parse_liberty_ulp65", |b| {
        b.iter(|| xbound_cells::liberty::parse(xbound_cells::ULP65_LIB).expect("parses"));
    });
}

fn bench_cpu_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu_construction");
    g.sample_size(10);
    g.bench_function("build_gate_level_core", |b| {
        b.iter(|| Cpu::build().expect("builds"));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_gate_sim,
    bench_power_analysis,
    bench_assembler_and_liberty,
    bench_cpu_construction
);
criterion_main!(benches);
