//! Differential test: the compiled (levelize + cone-dedup bytecode)
//! engine against the default event-driven engine on the real MSP430
//! benchmark suite.
//!
//! The acceptance bar of the compiled backend: for every benchmark and
//! at explorer thread counts 1 and 3, the canonical bounds line, the
//! `ExecutionTree` (segment shapes, parents, every per-cycle `Frame`),
//! and the deterministic `ExploreStats` must be **byte-identical**
//! whichever engine settles the gates.
//!
//! Engine selection goes through the real `XBOUND_SIM_ENGINE` knob, the
//! same path production uses. The environment is process-global, so this
//! file holds exactly one `#[test]` — its own test binary, its own
//! process — and restores the variable before returning.

use xbound_core::{
    summary, BoundsReport, CoAnalysis, ExecutionTree, ExploreConfig, ExploreStats, UlpSystem,
};

fn assert_trees_identical(name: &str, cfg: &str, a: &ExecutionTree, b: &ExecutionTree) {
    assert_eq!(
        a.segments().len(),
        b.segments().len(),
        "{name} {cfg}: segment count"
    );
    for (i, (sa, sb)) in a.segments().iter().zip(b.segments()).enumerate() {
        assert_eq!(
            sa.start_cycle, sb.start_cycle,
            "{name} {cfg}: seg {i} start"
        );
        assert_eq!(sa.parent, sb.parent, "{name} {cfg}: seg {i} parent");
        assert_eq!(sa.end, sb.end, "{name} {cfg}: seg {i} end");
        assert_eq!(sa.frames, sb.frames, "{name} {cfg}: seg {i} frames");
    }
}

fn assert_stats_identical(name: &str, cfg: &str, a: &ExploreStats, b: &ExploreStats) {
    assert_eq!(
        a.deterministic(),
        b.deterministic(),
        "{name} {cfg}: deterministic stats"
    );
}

/// One full co-analysis of `bench` under whatever engine
/// `XBOUND_SIM_ENGINE` currently selects; returns the canonical bounds
/// line plus the tree and stats.
fn analyze(
    sys: &UlpSystem,
    bench: &xbound_benchsuite::Benchmark,
    threads: usize,
) -> (String, ExecutionTree, ExploreStats) {
    let program = bench.program().expect("assembles");
    let a = CoAnalysis::new(sys)
        .config(ExploreConfig {
            widen_threshold: bench.widen_threshold(),
            max_total_cycles: 5_000_000,
            threads,
            ..ExploreConfig::default()
        })
        .energy_rounds(bench.energy_rounds())
        .run(&program)
        .expect("analysis succeeds");
    let line = summary::bounds_line(bench.name(), &BoundsReport::from_analysis(&a));
    (line, a.tree().clone(), a.stats().clone())
}

/// Every benchmark, compiled vs event-driven, at explorer thread counts
/// 1 and 3: bounds lines, execution trees, and deterministic stats are
/// byte-identical.
#[test]
fn all_benchmarks_bound_identically_under_compiled_engine() {
    // Belt and braces: the knob must not leak in from the environment,
    // or the "event-driven" half of the comparison would silently test
    // compiled-vs-compiled.
    std::env::remove_var("XBOUND_SIM_ENGINE");
    let sys = UlpSystem::openmsp430_class().expect("system builds");
    for threads in [1usize, 3] {
        let cfg = format!("threads={threads}");
        for bench in xbound_benchsuite::all() {
            std::env::remove_var("XBOUND_SIM_ENGINE");
            let (line_ref, tree_ref, stats_ref) = analyze(&sys, bench, threads);

            std::env::set_var("XBOUND_SIM_ENGINE", "compiled");
            let (line_cmp, tree_cmp, stats_cmp) = analyze(&sys, bench, threads);
            std::env::remove_var("XBOUND_SIM_ENGINE");

            assert_eq!(
                line_ref,
                line_cmp,
                "{} {cfg}: bounds line diverged",
                bench.name()
            );
            assert_trees_identical(bench.name(), &cfg, &tree_ref, &tree_cmp);
            assert_stats_identical(bench.name(), &cfg, &stats_ref, &stats_cmp);
        }
    }
}
