//! The engine's gate-evaluation counter (`Engine::gate_evals`), on a real
//! workload: the denominator of the ns/gate-pass numbers in
//! `BENCH_sim.json`.
//!
//! Run with `--nocapture` to see the per-engine counts.

use xbound_cpu::Cpu;
use xbound_sim::EvalMode;

/// Same 200-cycle concrete tea8 run under each engine: the event-driven
/// engine evaluates only dirty gates, the levelized oracle sweeps the
/// whole netlist every pass, and the compiled engine executes its
/// deduplicated op program — strictly fewer evals per pass than the
/// sweep, with bus settle iterations re-running only the read-data cone.
#[test]
fn gate_eval_counts_order_as_designed() {
    let cpu = Cpu::build().expect("builds");
    let bench = xbound_benchsuite::by_name("tea8").expect("exists");
    let program = bench.program().expect("assembles");
    let cycles = 200u64;
    let mut counts = Vec::new();
    for (name, mode) in [
        ("event-driven", EvalMode::EventDriven),
        ("levelized", EvalMode::Levelized),
        ("compiled", EvalMode::Compiled),
    ] {
        let mut sim = cpu.new_sim();
        sim.set_eval_mode(mode);
        Cpu::load_program(&mut sim, &program, true);
        for _ in 0..cycles {
            sim.step();
        }
        let evals = sim.gate_evals();
        println!(
            "{name}: {evals} gate evals over {cycles} cycles ({:.1}/cycle)",
            evals as f64 / cycles as f64
        );
        counts.push((name, evals));
    }
    let by_name = |n: &str| counts.iter().find(|(m, _)| *m == n).unwrap().1;
    let event = by_name("event-driven");
    let levelized = by_name("levelized");
    let compiled = by_name("compiled");
    assert!(event > 0 && compiled > 0);
    assert!(
        compiled < levelized,
        "dedup + rdata-cone settling must evaluate fewer ops than the full \
         sweep ({compiled} vs {levelized})"
    );
    assert!(
        event < compiled,
        "the event-driven engine's dirty sets must stay sparser than full \
         re-evaluation ({event} vs {compiled})"
    );
}
