//! Observability guard: tracing must never perturb result bytes, and
//! the traces it produces must be structurally valid.
//!
//! The whole check lives in **one** `#[test]` because
//! [`xbound_obs::trace::enable`] is process-global and one-way: the
//! untraced reference bounds must be computed before tracing turns on,
//! and a sibling test running concurrently in the same binary would
//! race that ordering.

use xbound_core::jsonin::Json;
use xbound_core::{summary, BoundsReport, CoAnalysis, ExploreConfig, UlpSystem};

/// Canonical full-suite bound lines at one `(threads, lanes)` setting —
/// the exact bytes `suite_summary --bounds` writes.
fn suite_bounds(sys: &UlpSystem, threads: usize, lanes: usize) -> String {
    let mut out = String::new();
    for bench in xbound_benchsuite::all() {
        let program = bench.program().expect("assembles");
        let a = CoAnalysis::new(sys)
            .config(ExploreConfig {
                widen_threshold: bench.widen_threshold(),
                threads,
                lanes,
                ..ExploreConfig::suite_default()
            })
            .energy_rounds(bench.energy_rounds())
            .run(&program)
            .expect("analyzes");
        out.push_str(&summary::bounds_line(
            bench.name(),
            &BoundsReport::from_analysis(&a),
        ));
        out.push('\n');
    }
    out
}

#[test]
fn tracing_is_invisible_in_result_bytes_and_traces_are_well_formed() {
    let sys = UlpSystem::openmsp430_class().expect("system builds");

    // Untraced reference first — must precede `enable()`.
    assert!(
        !xbound_obs::trace::enabled(),
        "tracing must be off for the reference run (XBOUND_TRACE leaked into the test env?)"
    );
    let reference = suite_bounds(&sys, 1, 1);

    xbound_obs::trace::enable();
    for (threads, lanes) in [(1, 1), (1, 8), (3, 1), (3, 8)] {
        let traced = suite_bounds(&sys, threads, lanes);
        assert_eq!(
            traced, reference,
            "traced bounds diverged at threads={threads} lanes={lanes}"
        );
    }

    // The runs above recorded real spans; now validate the exported
    // Chrome trace document.
    assert!(xbound_obs::trace::event_count() > 0, "no events recorded");
    let doc = xbound_obs::trace::chrome_trace_json();
    let v = Json::parse(&doc).expect("trace parses as JSON");
    let events = v
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Per-event shape + collect per-tid spans and thread labels.
    let mut spans: std::collections::BTreeMap<u64, Vec<(f64, f64)>> =
        std::collections::BTreeMap::new();
    let mut labels: Vec<String> = Vec::new();
    let mut names: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("ph");
        let tid = e.get("tid").and_then(Json::as_u64).expect("tid");
        assert_eq!(e.get("pid").and_then(Json::as_u64), Some(1));
        let name = e.get("name").and_then(Json::as_str).expect("name");
        match ph {
            "M" => {
                assert_eq!(name, "thread_name");
                let label = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .expect("metadata label");
                labels.push(label.to_string());
            }
            "X" => {
                let ts = e.get("ts").and_then(Json::as_f64).expect("ts");
                let dur = e.get("dur").and_then(Json::as_f64).expect("dur");
                assert!(ts >= 0.0 && dur >= 0.0 && ts.is_finite() && dur.is_finite());
                spans.entry(tid).or_default().push((ts, ts + dur));
                names.insert(name.to_string());
            }
            "i" => {
                let ts = e.get("ts").and_then(Json::as_f64).expect("ts");
                assert!(ts >= 0.0 && ts.is_finite());
                names.insert(name.to_string());
            }
            other => panic!("unexpected phase `{other}`"),
        }
    }

    // The instrumented pipeline stages must all have fired.
    for expected in [
        "co_analysis",
        "explore",
        "peak_power_compose",
        "peak_energy",
    ] {
        assert!(names.contains(expected), "no `{expected}` span in trace");
    }
    // The 3-thread runs ran the work-stealing pool: its workers must
    // appear as labeled threads in the trace.
    assert!(
        labels.iter().any(|l| l.starts_with("explore-worker-")),
        "no explore-worker thread label in {labels:?}"
    );

    // Spans must nest properly per thread (sort by start, longest
    // first; every span fits inside the enclosing open span).
    for (tid, list) in &mut spans {
        list.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap()
                .then(b.1.partial_cmp(&a.1).unwrap())
        });
        let mut stack: Vec<(f64, f64)> = Vec::new();
        for &(start, end) in list.iter() {
            while let Some(&(_, open_end)) = stack.last() {
                if start >= open_end - 1e-3 {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(open_start, open_end)) = stack.last() {
                assert!(
                    start >= open_start - 1e-3 && end <= open_end + 1e-3,
                    "tid {tid}: span [{start}, {end}] straddles [{open_start}, {open_end}]"
                );
            }
            stack.push((start, end));
        }
    }
}
