//! Differential test: batched symbolic exploration against the scalar
//! explorer on the real MSP430 benchmark suite.
//!
//! The acceptance bar of the lane-generic engine refactor: for every
//! benchmark, the [`xbound_core::SymbolicExplorer`]'s `ExecutionTree`
//! (segment shapes, parents, every per-cycle `Frame`), the deterministic
//! `ExploreStats`, and the downstream peak-power table must be
//! **bit-identical** between the 1-lane/1-thread reference (the historical
//! scalar explorer) and any `(threads, lanes)` setting.

use xbound_core::peak_power::compute_peak_power;
use xbound_core::{ExecutionTree, ExploreConfig, ExploreStats, SymbolicExplorer, UlpSystem};

fn explore_config(
    bench: &xbound_benchsuite::Benchmark,
    threads: usize,
    lanes: usize,
) -> ExploreConfig {
    ExploreConfig {
        widen_threshold: bench.widen_threshold(),
        max_total_cycles: 5_000_000,
        threads,
        lanes,
        ..ExploreConfig::default()
    }
}

fn assert_trees_identical(name: &str, cfg: &str, a: &ExecutionTree, b: &ExecutionTree) {
    assert_eq!(
        a.segments().len(),
        b.segments().len(),
        "{name} {cfg}: segment count"
    );
    for (i, (sa, sb)) in a.segments().iter().zip(b.segments()).enumerate() {
        assert_eq!(
            sa.start_cycle, sb.start_cycle,
            "{name} {cfg}: seg {i} start"
        );
        assert_eq!(sa.parent, sb.parent, "{name} {cfg}: seg {i} parent");
        assert_eq!(sa.end, sb.end, "{name} {cfg}: seg {i} end");
        assert_eq!(sa.frames, sb.frames, "{name} {cfg}: seg {i} frames");
    }
}

fn assert_stats_identical(name: &str, cfg: &str, a: &ExploreStats, b: &ExploreStats) {
    assert_eq!(
        a.deterministic(),
        b.deterministic(),
        "{name} {cfg}: deterministic stats"
    );
}

/// Every benchmark at the satellite matrix's cheap diagonal — lanes 8,
/// one thread — plus the peak-power table downstream.
#[test]
fn all_benchmarks_explore_identically_at_8_lanes() {
    let sys = UlpSystem::openmsp430_class().expect("system builds");
    for bench in xbound_benchsuite::all() {
        let program = bench.program().expect("assembles");
        let reference = SymbolicExplorer::new(sys.cpu(), explore_config(bench, 1, 1))
            .explore(&program)
            .expect("reference explores");
        let batched = SymbolicExplorer::new(sys.cpu(), explore_config(bench, 1, 8))
            .explore(&program)
            .expect("batched explores");
        assert_trees_identical(bench.name(), "1x8", &reference.0, &batched.0);
        assert_stats_identical(bench.name(), "1x8", &reference.1, &batched.1);
        let peak_ref = compute_peak_power(
            sys.cpu().netlist(),
            sys.library(),
            sys.clock_hz(),
            &reference.0,
        );
        let peak_batched = compute_peak_power(
            sys.cpu().netlist(),
            sys.library(),
            sys.clock_hz(),
            &batched.0,
        );
        assert_eq!(
            peak_ref.peak_mw,
            peak_batched.peak_mw,
            "{}: peak-power bound diverged",
            bench.name()
        );
        assert_eq!(
            peak_ref.peak_at,
            peak_batched.peak_at,
            "{}: peak location diverged",
            bench.name()
        );
        assert_eq!(
            peak_ref.bound_mw,
            peak_batched.bound_mw,
            "{}: per-cycle peak-power table diverged",
            bench.name()
        );
    }
}

/// Every benchmark under the work-stealing pool (threads 4, lanes 8)
/// against the single-threaded scalar reference: the tree and the
/// deterministic stats must be byte-identical no matter how the region
/// deques drained.
#[test]
fn all_benchmarks_explore_identically_under_work_stealing() {
    let sys = UlpSystem::openmsp430_class().expect("system builds");
    for bench in xbound_benchsuite::all() {
        let program = bench.program().expect("assembles");
        let reference = SymbolicExplorer::new(sys.cpu(), explore_config(bench, 1, 1))
            .explore(&program)
            .expect("reference explores");
        let stolen = SymbolicExplorer::new(sys.cpu(), explore_config(bench, 4, 8))
            .explore(&program)
            .expect("work-stealing explores");
        assert_trees_identical(bench.name(), "4x8", &reference.0, &stolen.0);
        assert_stats_identical(bench.name(), "4x8", &reference.1, &stolen.1);
    }
}

/// Fork-heavy benchmarks across the full `(threads, lanes)` matrix of the
/// satellite spec: lanes ∈ {1, 8, 64} × threads ∈ {1, 3}.
#[test]
fn fork_heavy_benchmarks_explore_identically_across_matrix() {
    let sys = UlpSystem::openmsp430_class().expect("system builds");
    for name in ["binSearch", "tHold", "div"] {
        let bench = xbound_benchsuite::by_name(name).expect("exists");
        let program = bench.program().expect("assembles");
        let reference = SymbolicExplorer::new(sys.cpu(), explore_config(bench, 1, 1))
            .explore(&program)
            .expect("reference explores");
        assert!(
            reference.1.forks > 0,
            "{name} must fork for this test to mean anything"
        );
        for threads in [1usize, 3] {
            for lanes in [1usize, 8, 64] {
                if (threads, lanes) == (1, 1) {
                    continue;
                }
                let cfg = format!("{threads}x{lanes}");
                let got = SymbolicExplorer::new(sys.cpu(), explore_config(bench, threads, lanes))
                    .explore(&program)
                    .expect("explores");
                assert_trees_identical(name, &cfg, &reference.0, &got.0);
                assert_stats_identical(name, &cfg, &reference.1, &got.1);
                assert_eq!(got.1.batch.lanes, lanes as u64, "{name} {cfg}: lane record");
            }
        }
    }
}
