//! Shared infrastructure for the experiment harness.
//!
//! The `experiments` binary regenerates every table and figure of the
//! paper's evaluation (see DESIGN.md §4 for the experiment index). This
//! library holds the pieces the experiments share: a lazily-built pair of
//! systems (the 65 nm "openMSP430-class" target and the 130 nm
//! "MSP430F1610-class" target of Chapter 2), cached X-based analyses, the
//! profiling campaign used by the input-based baselines, and text-table
//! rendering.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use xbound_baselines::profiling::{profile, ProfilingResult, RunStat};
use xbound_baselines::stressmark::GaConfig;
use xbound_benchsuite::Benchmark;
use xbound_core::{Analysis, AnalysisError, CoAnalysis, ExploreConfig, UlpSystem};

/// Seed for every randomized experiment (reproducible runs).
pub const SEED: u64 = 0xA5F0_2017;

/// Default number of random input sets per profiling campaign.
pub const PROFILE_RUNS: usize = 8;

static PROFILE_RUNS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static GA_POPULATION_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Number of random input sets per profiling campaign
/// ([`PROFILE_RUNS`] unless overridden by [`set_profile_runs`], e.g. the
/// `experiments --profile-runs N` flag). The batched concrete engine
/// makes large populations cheap: lane groups share one gate pass.
pub fn profile_runs() -> usize {
    match PROFILE_RUNS_OVERRIDE.load(Ordering::Relaxed) {
        0 => PROFILE_RUNS,
        n => n,
    }
}

/// Overrides the profiling population size for this process (0 restores
/// the default).
pub fn set_profile_runs(n: usize) {
    PROFILE_RUNS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The stressmark GA configuration ([`GaConfig::default`] unless the
/// population was overridden by [`set_ga_population`], e.g. the
/// `experiments --ga-pop N` flag).
pub fn ga_config() -> GaConfig {
    let mut cfg = GaConfig::default();
    if let n @ 1.. = GA_POPULATION_OVERRIDE.load(Ordering::Relaxed) {
        cfg.population = n;
        cfg.elitism = cfg.elitism.min(n.saturating_sub(1)).max(1);
    }
    cfg
}

/// Overrides the stressmark GA population size for this process (0
/// restores the default).
pub fn set_ga_population(n: usize) {
    GA_POPULATION_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The experiment harness context.
pub struct Harness {
    sys65: UlpSystem,
    sys130: Option<UlpSystem>,
    analyses: HashMap<&'static str, Analysis<'static>>,
    /// Subtree memo for incremental re-analysis, resolved from
    /// `XBOUND_MEMO` (the `experiments --incremental` flag sets that
    /// variable). `None` runs every analysis cold; results are
    /// byte-identical either way.
    memo: Option<std::sync::Arc<xbound_core::memo::SubtreeMemo>>,
}

impl Harness {
    /// Builds the 65 nm system (the 130 nm variant is built on demand).
    ///
    /// # Errors
    ///
    /// Propagates core-construction errors.
    pub fn new() -> Result<Harness, AnalysisError> {
        Ok(Harness {
            sys65: UlpSystem::openmsp430_class()?,
            sys130: None,
            analyses: HashMap::new(),
            memo: xbound_core::memo::from_env(false),
        })
    }

    /// The openMSP430-class system (65 nm, 100 MHz).
    pub fn sys65(&self) -> &UlpSystem {
        &self.sys65
    }

    /// The MSP430F1610-class system (130 nm, 8 MHz), built on first use.
    ///
    /// # Errors
    ///
    /// Propagates core-construction errors.
    pub fn sys130(&mut self) -> Result<&UlpSystem, AnalysisError> {
        if self.sys130.is_none() {
            self.sys130 = Some(UlpSystem::msp430f1610_class()?);
        }
        Ok(self.sys130.as_ref().expect("just built"))
    }

    /// The exploration configuration for a benchmark (the shared suite
    /// config + the benchmark's widening knob — identical to what
    /// `suite_summary` and the co-analysis service use, which keeps the
    /// drivers byte-comparable).
    pub fn explore_config(bench: &Benchmark) -> ExploreConfig {
        ExploreConfig {
            widen_threshold: bench.widen_threshold(),
            ..ExploreConfig::suite_default()
        }
    }

    /// Runs (and caches) the X-based co-analysis of a benchmark on the
    /// 65 nm system.
    ///
    /// # Errors
    ///
    /// Propagates analysis errors.
    pub fn analysis(
        &mut self,
        bench: &'static Benchmark,
    ) -> Result<&Analysis<'static>, AnalysisError> {
        if !self.analyses.contains_key(bench.name()) {
            let program = bench.program().expect("benchmark assembles");
            // SAFETY-free lifetime workaround: analyses borrow the system;
            // we store them alongside it by leaking a clone of the system.
            // The harness is a process-lifetime singleton in practice.
            let sys: &'static UlpSystem = Box::leak(Box::new(self.sys65.clone()));
            let analysis = CoAnalysis::new(sys)
                .config(Self::explore_config(bench))
                .energy_rounds(bench.energy_rounds())
                .memo(self.memo.clone())
                .run(&program)?;
            self.analyses.insert(bench.name(), analysis);
        }
        Ok(&self.analyses[bench.name()])
    }

    /// Runs the profiling campaign (random + extremal inputs) for a
    /// benchmark on a system.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn campaign(
        system: &UlpSystem,
        bench: &Benchmark,
        seed_salt: u64,
    ) -> Result<ProfilingResult, AnalysisError> {
        let mut rng = StdRng::seed_from_u64(SEED ^ seed_salt);
        let mut result = profile(system, bench, profile_runs(), &mut rng)?;
        // Extremal inputs join the campaign (legitimately part of choosing
        // profiling inputs; raises the observed peak). They batch into
        // lane groups like the random population above.
        let program = bench.program().expect("assembles");
        let stress_sets = bench.stress_inputs();
        let stress_runs = system.profile_concrete_population(
            &program,
            &stress_sets,
            bench.max_concrete_cycles(),
            0,
            1,
        )?;
        for (inputs, (_, trace)) in stress_sets.into_iter().zip(stress_runs) {
            let stat = RunStat {
                inputs,
                peak_mw: trace.peak_mw(),
                avg_mw: trace.avg_mw(),
                cycles: trace.cycles() as u64,
                npe_j_per_cycle: trace.energy_per_cycle_j(),
            };
            result.observed_peak_mw = result.observed_peak_mw.max(stat.peak_mw);
            result.min_peak_mw = result.min_peak_mw.min(stat.peak_mw);
            result.observed_npe = result.observed_npe.max(stat.npe_j_per_cycle);
            result.min_npe = result.min_npe.min(stat.npe_j_per_cycle);
            result.runs.push(stat);
        }
        result.gb_peak_mw = result.observed_peak_mw * xbound_baselines::GUARDBAND;
        result.gb_npe = result.observed_npe * xbound_baselines::GUARDBAND;
        Ok(result)
    }
}

/// A simple fixed-width text table.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "table arity");
        self.rows.push(cells.to_vec());
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for c in 0..ncols {
            width[c] = self.header[c].len();
            for r in &self.rows {
                width[c] = width[c].max(r[c].len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}  ", cell, w = width[c]);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * ncols;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            line(r, &mut out);
        }
        out
    }
}

/// Writes an experiment result under the results directory
/// ([`xbound_core::outdirs::results_dir`]: `XBOUND_RESULTS_DIR`, default
/// `results/`, created if missing) and echoes it to stdout. Failures to
/// persist are reported on stderr instead of silently dropping the file.
pub fn emit(id: &str, title: &str, body: &str) {
    let text = format!("== {id}: {title} ==\n{body}\n");
    println!("{text}");
    match xbound_core::outdirs::results_dir() {
        Ok(dir) => {
            let path = dir.join(format!("{id}.txt"));
            if let Err(e) = std::fs::write(&path, &text) {
                xbound_obs::warn!("experiments", "could not write {}: {e}", path.display());
            }
        }
        Err(e) => xbound_obs::warn!("experiments", "could not create results dir: {e}"),
    }
}

/// Formats milliwatts with 4 decimals.
pub fn mw(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a J/cycle quantity in scientific notation.
pub fn npe(v: f64) -> String {
    format!("{v:.3e}")
}

/// Formats a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{v:+.1}%")
}

/// Geometric-mean helper for ratio summaries.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".to_string(), "1".to_string()]);
        t.row(&["longer".to_string(), "2".to_string()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn geomean_of_ones_is_one() {
        assert!((geomean([1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
    }
}
