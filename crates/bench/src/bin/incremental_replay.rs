//! Cold-vs-warm incremental re-analysis over the benchmark suite.
//!
//! ```text
//! cargo run --release -p xbound_bench --bin incremental_replay [-- OPTIONS] [BENCH...]
//! ```
//!
//! For every benchmark this driver runs the co-analysis twice against one
//! subtree memo — a cold run that populates it and a warm run that replays
//! from it — asserts the two `BoundsReport`s are byte-identical, and prints
//! the wall-clock ratio. With `--edit` it additionally applies a
//! one-instruction source edit to `tHold` (the result store moves to a
//! different address), re-analyzes warm against the unedited memo, and
//! byte-diffs the report against a cold, memo-less run of the edited
//! program — the end-to-end incremental-recompile scenario.
//!
//! Options:
//!
//! * `--edit` — run the one-instruction-edit scenario (exits non-zero on
//!   any byte difference or if no subtree is stitched).
//! * `--json PATH` — write per-benchmark cold/warm seconds, speedups, and
//!   memo counters as JSON (the `incremental_reanalysis` section of
//!   `BENCH_sim.json` is produced this way).
//! * positional names — restrict to those benchmarks.
use std::sync::Arc;
use std::time::Instant;
use xbound_core::jsonout::JsonWriter;
use xbound_core::memo::SubtreeMemo;
use xbound_core::{summary, BoundsReport, CoAnalysis, ExploreConfig, UlpSystem};
use xbound_msp430::assemble;

struct Row {
    name: &'static str,
    cold_s: f64,
    warm_s: f64,
    hits: u64,
    misses: u64,
    stitched: u64,
}

fn main() {
    let mut names: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut edit = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = Some(args.next().expect("--json PATH")),
            "--edit" => edit = true,
            other => names.push(other.to_string()),
        }
    }

    let sys = UlpSystem::openmsp430_class().unwrap();
    println!("gates: {}", sys.cpu().netlist().gate_count());
    let benches: Vec<&'static xbound_benchsuite::Benchmark> = xbound_benchsuite::all()
        .iter()
        .filter(|b| names.is_empty() || names.iter().any(|n| n == b.name()))
        .collect();
    for n in &names {
        assert!(
            xbound_benchsuite::by_name(n).is_some(),
            "unknown benchmark `{n}`"
        );
    }

    let mut rows: Vec<Row> = Vec::new();
    for b in &benches {
        let program = b.program().unwrap();
        let config = ExploreConfig {
            widen_threshold: b.widen_threshold(),
            ..ExploreConfig::suite_default()
        };
        let memo = Arc::new(SubtreeMemo::in_memory());
        let run = |timer: &mut f64| {
            let t0 = Instant::now();
            let a = CoAnalysis::new(&sys)
                .config(config)
                .energy_rounds(b.energy_rounds())
                .memo(Some(memo.clone()))
                .run(&program)
                .unwrap();
            *timer = t0.elapsed().as_secs_f64();
            summary::bounds_line(b.name(), &BoundsReport::from_analysis(&a))
        };
        let (mut cold_s, mut warm_s) = (0.0, 0.0);
        let cold_line = run(&mut cold_s);
        let cold_stats = memo.stats();
        let warm_line = run(&mut warm_s);
        let warm_stats = memo.stats();
        assert_eq!(
            cold_line,
            warm_line,
            "{}: warm bounds differ from cold",
            b.name()
        );
        assert_eq!(
            warm_stats.misses,
            cold_stats.misses,
            "{}: warm run re-simulated an unchanged path",
            b.name()
        );
        let hits = warm_stats.hits - cold_stats.hits;
        println!(
            "{:10} cold={:>8.2?} warm={:>8.2?} ({:>5.1}% of cold) hits={hits} stitched={}",
            b.name(),
            std::time::Duration::from_secs_f64(cold_s),
            std::time::Duration::from_secs_f64(warm_s),
            100.0 * warm_s / cold_s,
            warm_stats.stitched_segments - cold_stats.stitched_segments,
        );
        rows.push(Row {
            name: b.name(),
            cold_s,
            warm_s,
            hits,
            misses: cold_stats.misses,
            stitched: warm_stats.stitched_segments - cold_stats.stitched_segments,
        });
    }
    let under_half = rows.iter().filter(|r| r.warm_s < 0.5 * r.cold_s).count();
    println!(
        "{} of {} benchmarks re-analyze warm in under half the cold wall-clock",
        under_half,
        rows.len()
    );

    if edit {
        edit_scenario(&sys);
    }

    if let Some(path) = json_path {
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.field_u64("benchmarks", rows.len() as u64);
        w.field_u64("warm_under_half_cold", under_half as u64);
        w.key("rows");
        w.begin_array();
        for r in &rows {
            w.begin_object();
            w.field_str("name", r.name);
            w.field_raw("cold_seconds", &format!("{:.6}", r.cold_s));
            w.field_raw("warm_seconds", &format!("{:.6}", r.warm_s));
            w.field_raw("warm_over_cold", &format!("{:.4}", r.warm_s / r.cold_s));
            w.field_u64("memo_hits", r.hits);
            w.field_u64("memo_misses", r.misses);
            w.field_u64("stitched_segments", r.stitched);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        let mut doc = w.finish();
        doc.push('\n');
        std::fs::write(&path, doc).expect("write json");
        xbound_obs::info!("replay", "wrote {path}");
    }
}

/// The incremental-recompile scenario: seed the memo with `tHold`, apply a
/// one-instruction edit (the result store moves from `&0x0200` to
/// `&0x0208` — a word fetched only by the post-loop tail), and re-analyze
/// warm. The warm report must byte-match a cold, memo-less analysis of the
/// edited program, with the loop's execution subtrees stitched from the
/// memo.
fn edit_scenario(sys: &UlpSystem) {
    let b = xbound_benchsuite::by_name("tHold").expect("suite has tHold");
    let original = b.source();
    let needle = "mov r8, &0x0200";
    assert_eq!(
        original.matches(needle).count(),
        1,
        "edit anchor must be unique in tHold"
    );
    let edited_src = original.replace(needle, "mov r8, &0x0208");
    let edited = assemble(&edited_src).expect("edited tHold assembles");
    let config = ExploreConfig {
        widen_threshold: b.widen_threshold(),
        ..ExploreConfig::suite_default()
    };

    let memo = Arc::new(SubtreeMemo::in_memory());
    CoAnalysis::new(sys)
        .config(config)
        .energy_rounds(b.energy_rounds())
        .memo(Some(memo.clone()))
        .run(&b.program().unwrap())
        .unwrap();
    let seeded = memo.stats();

    let t0 = Instant::now();
    let cold = CoAnalysis::new(sys)
        .config(config)
        .energy_rounds(b.energy_rounds())
        .run(&edited)
        .unwrap();
    let cold_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let warm = CoAnalysis::new(sys)
        .config(config)
        .energy_rounds(b.energy_rounds())
        .memo(Some(memo.clone()))
        .run(&edited)
        .unwrap();
    let warm_s = t1.elapsed().as_secs_f64();
    let after = memo.stats();

    let cold_line = summary::bounds_line("tHold-edited", &BoundsReport::from_analysis(&cold));
    let warm_line = summary::bounds_line("tHold-edited", &BoundsReport::from_analysis(&warm));
    assert_eq!(cold_line, warm_line, "edited warm bounds differ from cold");
    assert!(after.hits > seeded.hits, "edit scenario stitched nothing");
    assert!(
        after.misses > seeded.misses,
        "the edited tail must re-simulate"
    );
    println!(
        "edit: tHold store @0x0200 -> @0x0208: warm={:.2?} ({:.1}% of cold {:.2?}), hits={}, re-simulated paths={}, bounds byte-identical",
        std::time::Duration::from_secs_f64(warm_s),
        100.0 * warm_s / cold_s,
        std::time::Duration::from_secs_f64(cold_s),
        after.hits - seeded.hits,
        after.misses - seeded.misses,
    );
}
