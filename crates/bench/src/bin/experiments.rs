//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p xbound-bench --bin experiments -- all
//! cargo run --release -p xbound-bench --bin experiments -- fig5_1 fig5_2
//! ```
//!
//! Population-size flags (the batched concrete engine makes large
//! populations cheap — lane groups share one gate pass per cycle):
//!
//! * `--profile-runs N` — random input sets per profiling campaign
//!   (default 8);
//! * `--ga-pop N` — stressmark GA population per generation (default 16);
//! * `--lanes N` — concrete batch lane width (sets `XBOUND_LANES`;
//!   results are bit-identical at any width);
//! * `--explore-lanes N` — symbolic-exploration lane width (sets
//!   `XBOUND_EXPLORE_LANES`; results are bit-identical at any width);
//! * `--incremental` — attach a subtree memo (sets `XBOUND_MEMO=1`
//!   unless the variable is already set): repeat runs replay memoized
//!   execution subtrees from the shared cache directory. Results are
//!   byte-identical with or without it.
//!
//! Each experiment prints its table and writes `results/<id>.txt`. See
//! DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
//! paper-vs-measured record.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xbound_baselines::{design_tool, stressmark, GUARDBAND};
use xbound_bench::{emit, geomean, mw, npe, pct, Harness, Table, SEED};
use xbound_core::optimize::{optimize_program, OptimizeOptions};
use xbound_core::UlpSystem;
use xbound_logic::Lv;
use xbound_msp430::assemble;
use xbound_netlist::{CellKind, Netlist};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut args: Vec<String> = Vec::new();
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        let flag_value = |it: &mut std::vec::IntoIter<String>, flag: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{flag} N"))
        };
        match a.as_str() {
            "--profile-runs" => {
                xbound_bench::set_profile_runs(flag_value(&mut it, "--profile-runs"))
            }
            "--ga-pop" => xbound_bench::set_ga_population(flag_value(&mut it, "--ga-pop")),
            "--lanes" => {
                std::env::set_var("XBOUND_LANES", flag_value(&mut it, "--lanes").to_string())
            }
            "--explore-lanes" => std::env::set_var(
                "XBOUND_EXPLORE_LANES",
                flag_value(&mut it, "--explore-lanes").to_string(),
            ),
            // Subtree memo for incremental re-analysis (results are
            // byte-identical; repeat invocations replay from the shared
            // cache directory). `XBOUND_MEMO` set explicitly wins.
            "--incremental" => {
                if std::env::var_os("XBOUND_MEMO").is_none() {
                    std::env::set_var("XBOUND_MEMO", "1");
                }
            }
            _ => args.push(a),
        }
    }
    let mut ids: Vec<&str> = args.iter().map(String::as_str).collect();
    if ids.is_empty() || ids.contains(&"all") {
        ids = vec![
            "tab1_1", "tab1_2", "fig1_5", "fig2_2", "fig2_3", "fig3_2", "fig3_3", "fig3_4",
            "fig3_5", "fig3_6", "fig4_1", "fig5_1", "fig5_2", "tab5_1", "tab5_2", "fig5_4",
            "fig5_5", "fig5_6", "tab6_1",
        ];
    }
    let mut h = Harness::new().expect("core builds");
    // Shared across fig5_1/fig5_2/tab5_1/tab5_2.
    let mut comparison: Option<ComparisonData> = None;
    let mut ran: Vec<&str> = Vec::new();
    for id in ids {
        ran.push(id);
        match id {
            "tab1_1" => tab1_1(),
            "tab1_2" => tab1_2(),
            "fig1_5" => fig1_5(&mut h),
            "fig2_2" => fig2_2(&mut h),
            "fig2_3" => fig2_3(&mut h),
            "fig3_2" => fig3_2(),
            "fig3_3" => fig3_3(&mut h),
            "fig3_4" => fig3_4(&mut h),
            "fig3_5" => fig3_5(&mut h),
            "fig3_6" => fig3_6(&mut h),
            "fig4_1" => fig4_1(&mut h),
            "fig5_1" => {
                let data = comparison.get_or_insert_with(|| ComparisonData::collect(&mut h));
                fig5_1(data);
            }
            "fig5_2" => {
                let data = comparison.get_or_insert_with(|| ComparisonData::collect(&mut h));
                fig5_2(data);
            }
            "tab5_1" => {
                let data = comparison.get_or_insert_with(|| ComparisonData::collect(&mut h));
                tab5_1(data);
            }
            "tab5_2" => {
                let data = comparison.get_or_insert_with(|| ComparisonData::collect(&mut h));
                tab5_2(data);
            }
            "fig5_4" => fig5_4_5_6(&mut h, false),
            "fig5_5" => fig5_5(&mut h),
            "fig5_6" => fig5_4_5_6(&mut h, true),
            "tab6_1" => tab6_1(),
            "ablation" => ablation(&mut h),
            "ga_smoke" => ga_smoke(&mut h),
            other => {
                ran.pop();
                xbound_obs::error!("experiments", "unknown experiment id `{other}`");
            }
        }
    }
    write_manifest(&ran);
}

/// Writes `manifest.json` into the results directory (shared `jsonout`
/// writer): which experiments this run produced, with the population
/// knobs — so downstream tooling can tell a partial regeneration from a
/// full one.
fn write_manifest(ran: &[&str]) {
    let mut w = xbound_core::jsonout::JsonWriter::pretty();
    w.begin_object();
    w.field_u64("profile_runs", xbound_bench::profile_runs() as u64);
    w.field_u64("ga_population", xbound_bench::ga_config().population as u64);
    w.key("experiments");
    w.begin_array();
    for id in ran {
        w.str_val(id);
    }
    w.end_array();
    w.end_object();
    let mut doc = w.finish();
    doc.push('\n');
    match xbound_core::outdirs::results_dir() {
        Ok(dir) => {
            let path = dir.join("manifest.json");
            if let Err(e) = std::fs::write(&path, doc) {
                xbound_obs::warn!("experiments", "could not write {}: {e}", path.display());
            }
        }
        Err(e) => xbound_obs::warn!("experiments", "could not create results dir: {e}"),
    }
}

fn tab1_1() {
    let mut t = Table::new(&["Battery", "Specific energy [J/g]", "Energy density [MJ/L]"]);
    for b in xbound_sizing::batteries::TABLE {
        t.row(&[
            b.name.to_string(),
            format!("{}", b.specific_energy_j_per_g),
            format!("{:.3}", b.energy_density_mj_per_l),
        ]);
    }
    emit(
        "tab1_1",
        "Battery energy densities (paper Table 1.1)",
        &t.render(),
    );
}

fn tab1_2() {
    let mut t = Table::new(&["Harvester", "Power density [uW/cm^2]"]);
    for hv in xbound_sizing::harvesters::TABLE {
        t.row(&[
            hv.name.to_string(),
            format!("{}", hv.power_density_uw_per_cm2),
        ]);
    }
    emit(
        "tab1_2",
        "Harvester power densities (paper Table 1.2)",
        &t.render(),
    );
}

/// Counts potentially-active nets per module at the peak cycle.
fn active_gates_at_peak(
    nl: &Netlist,
    analysis: &xbound_core::Analysis<'_>,
) -> Vec<(String, usize)> {
    let (sid, ci) = analysis.peak_power().peak_at;
    let seg = analysis.tree().segment(sid);
    let cur = &seg.frames[ci];
    let prev = if ci > 0 {
        seg.frames[ci - 1].clone()
    } else {
        analysis
            .tree()
            .boundary_prev(sid)
            .cloned()
            .unwrap_or_else(|| cur.clone())
    };
    let mut per_module = vec![0usize; nl.modules().len()];
    for g in nl.gates() {
        let o = g.output().index();
        let changed = prev.get(o) != cur.get(o) || cur.get(o) == Lv::X || prev.get(o) == Lv::X;
        if changed {
            per_module[g.module().index()] += 1;
        }
    }
    let mut out: Vec<(String, usize)> = nl
        .modules()
        .iter()
        .cloned()
        .zip(per_module)
        .filter(|(_, n)| *n > 0)
        .collect();
    out.sort_by_key(|b| std::cmp::Reverse(b.1));
    out
}

fn fig1_5(h: &mut Harness) {
    let mut body = String::new();
    let mut totals = Vec::new();
    for name in ["tHold", "PI"] {
        let bench = xbound_benchsuite::by_name(name).expect("exists");
        let nl = h.sys65().cpu().netlist().clone();
        let analysis = h.analysis(bench).expect("analyzes");
        let counts = active_gates_at_peak(&nl, analysis);
        let total: usize = counts.iter().map(|(_, n)| n).sum();
        totals.push((name, total));
        body.push_str(&format!("{name}: {total} active gates at the peak cycle\n"));
        for (m, n) in counts {
            body.push_str(&format!("    {m:<14} {n}\n"));
        }
    }
    body.push_str(&format!(
        "\npaper: tHold 452 vs PI 743 active gates; shape check: PI > tHold -> {}\n",
        if totals[1].1 > totals[0].1 {
            "OK"
        } else {
            "MISMATCH"
        }
    ));
    emit(
        "fig1_5",
        "Active gates at the peak cycle, tHold vs PI (paper Fig 5/1.5)",
        &body,
    );
}

/// Chapter-2-style measurement table for a system: per-benchmark peak power
/// and NPE with input-induced ranges.
fn measurement_table(system: &UlpSystem, names: &[&str], salt: u64) -> Table {
    let mut t = Table::new(&[
        "benchmark",
        "peak min [mW]",
        "peak max [mW]",
        "spread",
        "NPE min [J/cyc]",
        "NPE max [J/cyc]",
    ]);
    // Profiling campaigns are independent per benchmark: fan out, render in
    // suite order.
    let rows = xbound_core::par::par_map_labeled(
        0,
        names.to_vec(),
        |_, name| name.to_string(),
        |_, name| {
            let bench = xbound_benchsuite::by_name(name).expect("exists");
            let prof = Harness::campaign(system, bench, salt).expect("profiles");
            [
                name.to_string(),
                mw(prof.min_peak_mw),
                mw(prof.observed_peak_mw),
                pct((prof.observed_peak_mw / prof.min_peak_mw - 1.0) * 100.0),
                npe(prof.min_npe),
                npe(prof.observed_npe),
            ]
        },
    );
    for row in &rows {
        t.row(row);
    }
    t
}

const CH2_BENCHES: [&str; 8] = [
    "autoCorr",
    "binSearch",
    "FFT",
    "intFilt",
    "mult",
    "PI",
    "tea8",
    "tHold",
];

fn fig2_2(h: &mut Harness) {
    let sys = h.sys130().expect("130nm system").clone();
    let t = measurement_table(&sys, &CH2_BENCHES, 2);
    let rated = design_tool::rated_chip_mw(&sys);
    let body = format!(
        "{}\nrated chip power: {} mW (paper: 4.8 mW for MSP430F1610)\n\
         substitution: simulated 130nm-class core @ 8 MHz stands in for the\n\
         oscilloscope measurement of the MSP430F1610 (see DESIGN.md).\n",
        t.render(),
        mw(rated)
    );
    emit(
        "fig2_2",
        "Measured peak power / NPE across inputs, MSP430F1610-class (paper Fig 7)",
        &body,
    );
}

fn fig2_3(h: &mut Harness) {
    let sys = h.sys130().expect("130nm system").clone();
    let bench = xbound_benchsuite::by_name("mult").expect("exists");
    let program = bench.program().expect("assembles");
    let mut rng = StdRng::seed_from_u64(SEED);
    let inputs = bench.gen_inputs(&mut rng);
    let (_, trace) = sys
        .profile_concrete(&program, &inputs, bench.max_concrete_cycles())
        .expect("runs");
    let series = trace.per_cycle_mw();
    let mut body = format!(
        "mult on the 130nm-class system @ 8 MHz: {} cycles\n\
         peak {} mW at cycle {}, average {} mW (avg/peak = {:.2})\n\nsparkline (16-cycle buckets, max per bucket):\n",
        trace.cycles(),
        mw(trace.peak_mw()),
        trace.peak_cycle(),
        mw(trace.avg_mw()),
        trace.avg_mw() / trace.peak_mw()
    );
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
    for chunk in series.chunks(16) {
        let m = chunk.iter().copied().fold(0.0, f64::max);
        let idx = ((m / trace.peak_mw()) * 7.0).round() as usize;
        body.push(glyphs[idx.min(7)]);
    }
    body.push('\n');
    body.push_str("paper: instantaneous power is far below peak most of the time.\n");
    emit(
        "fig2_3",
        "Instantaneous power of mult, MSP430F1610-class (paper Fig 8)",
        &body,
    );
}

fn fig3_2() {
    // The paper's 3-gate toy example: overlapping Xs resolved to maximize
    // even and odd cycles respectively.
    let mut nl = Netlist::new("toy");
    let stim = nl.add_input("stim");
    let g1 = nl.add_net("g1");
    let g2 = nl.add_net("g2");
    let g3 = nl.add_net("g3");
    nl.add_gate(CellKind::Buf, "u1", &[stim], g1).expect("gate");
    nl.add_gate(CellKind::Inv, "u2", &[stim], g2).expect("gate");
    nl.add_gate(CellKind::Buf, "u3", &[g1], g3).expect("gate");
    let _ = (g2, g3);
    let body = "The even/odd X-assignment is exercised by unit tests\n\
                (xbound-core peak_power tests) on the paper's 3-gate pattern;\n\
                the production path runs it on every benchmark (fig3_3).\n\
                Rule check:\n  (X,X) -> cell's max-energy transition\n  (v,X) -> !v\n  (X,v) -> !v in c-1\n";
    emit(
        "fig3_2",
        "Even/odd X-assignment example (paper Fig 10/3.2)",
        body,
    );
}

fn fig3_3(h: &mut Harness) {
    let mut t = Table::new(&[
        "benchmark",
        "cycles",
        "bound min [mW]",
        "bound mean [mW]",
        "bound peak [mW]",
        "peak cycle",
    ]);
    for bench in xbound_benchsuite::all() {
        let analysis = h.analysis(bench).expect("analyzes");
        let env = analysis.peak_power().envelope_mw(analysis.tree());
        let n = env.len().max(1);
        let mean = env.iter().sum::<f64>() / n as f64;
        let min = env.iter().copied().fold(f64::INFINITY, f64::min);
        t.row(&[
            bench.name().to_string(),
            format!("{n}"),
            mw(min),
            mw(mean),
            mw(analysis.peak_power().peak_mw),
            format!("{}", analysis.peak_power().peak_cycle),
        ]);
    }
    emit(
        "fig3_3",
        "Per-cycle X-based peak power traces (paper Fig 11): per-benchmark stats",
        &t.render(),
    );
}

fn fig3_4(h: &mut Harness) {
    let bench = xbound_benchsuite::by_name("mult").expect("exists");
    let program = bench.program().expect("assembles");
    let sys = h.sys65().clone();
    let analysis = h.analysis(bench).expect("analyzes");
    let mut body = String::new();
    // Low-activity and high-activity input sets — one batched gate pass
    // simulates both concrete runs.
    let labels = [
        "low-activity (all zeros)",
        "high-activity (alternating max)",
    ];
    let input_sets: Vec<Vec<u16>> = vec![
        vec![0u16; 8],
        vec![0xFFFF, 0xFFFF, 0, 0, 0xFFFF, 0xFFFF, 0, 0],
    ];
    let runs = sys
        .profile_concrete_batch(&program, &input_sets, bench.max_concrete_cycles())
        .expect("runs");
    for (label, (frames, _)) in labels.iter().zip(&runs) {
        let sup = analysis.check_superset(frames);
        body.push_str(&format!(
            "{label}: common {} nets, X-only {} nets, violations {}\n",
            sup.common,
            sup.x_only,
            sup.violations.len()
        ));
        assert!(sup.is_sound(), "superset property violated");
    }
    body.push_str("\nvalidation: no net toggles concretely without being marked by the\nX-based analysis (paper Fig 12) — the hard soundness invariant.\n");
    emit(
        "fig3_4",
        "Toggle-superset validation for mult (paper Fig 12)",
        &body,
    );
}

fn fig3_5(h: &mut Harness) {
    let bench = xbound_benchsuite::by_name("mult").expect("exists");
    let program = bench.program().expect("assembles");
    let sys = h.sys65().clone();
    let analysis = h.analysis(bench).expect("analyzes");
    let mut body = String::new();
    let mut rng = StdRng::seed_from_u64(SEED ^ 35);
    // Same RNG stream as per-trial profiling, one batched run for all
    // three trials.
    let input_sets: Vec<Vec<u16>> = (0..3).map(|_| bench.gen_inputs(&mut rng)).collect();
    let runs = sys
        .profile_concrete_batch(&program, &input_sets, bench.max_concrete_cycles())
        .expect("runs");
    for (trial, (frames, trace)) in runs.iter().enumerate() {
        let dom = analysis
            .check_dominance(frames, trace)
            .expect("path inside tree");
        body.push_str(&format!(
            "inputs {trial}: cycles {}, min margin {} mW, mean bound/measured {:.2}, violations {}\n",
            dom.cycles,
            mw(dom.min_margin_mw),
            dom.mean_ratio,
            dom.violations.len()
        ));
        assert!(dom.is_sound(), "dominance violated");
    }
    body.push_str("\nvalidation: the X-based trace upper-bounds every input-based power\ntrace cycle-by-cycle (paper Fig 13).\n");
    emit(
        "fig3_5",
        "Per-cycle power dominance for mult (paper Fig 13)",
        &body,
    );
}

fn fig3_6(h: &mut Harness) {
    let bench = xbound_benchsuite::by_name("mult").expect("exists");
    let analysis = h.analysis(bench).expect("analyzes");
    let cois = analysis.cycles_of_interest(2);
    let body = format!(
        "{}\nEach COI reports the in-flight instruction, the FSM phase, and the\nper-module power split that identifies the culprit module (paper Fig 14).\n",
        xbound_core::coi::format_report(&cois)
    );
    emit(
        "fig3_6",
        "Cycles of interest for mult (paper Fig 14)",
        &body,
    );
}

fn fig4_1(h: &mut Harness) {
    let names: Vec<&str> = xbound_benchsuite::all().iter().map(|b| b.name()).collect();
    let sys = h.sys65().clone();
    let t = measurement_table(&sys, &names, 41);
    emit(
        "fig4_1",
        "Peak power / NPE across inputs, openMSP430-class (paper Fig 15)",
        &t.render(),
    );
}

/// Data shared by the Fig 16/17 and Table 4/5 experiments.
struct ComparisonData {
    rows: Vec<BenchComparison>,
    stressmark_gb_peak: f64,
    stressmark_gb_npe: f64,
    design_tool_peak: f64,
    design_tool_npe: f64,
}

struct BenchComparison {
    name: &'static str,
    obs_min: f64,
    obs_max: f64,
    gb_input: f64,
    xbased: f64,
    obs_npe_max: f64,
    gb_input_npe: f64,
    xbased_npe: f64,
}

impl ComparisonData {
    fn collect(h: &mut Harness) -> ComparisonData {
        let sys = h.sys65().clone();
        let dt = design_tool::design_tool_rating(&sys);
        let mut rng = StdRng::seed_from_u64(SEED ^ 51);
        let sm = stressmark::evolve(
            &sys,
            stressmark::StressTarget::PeakPower,
            &xbound_bench::ga_config(),
            &mut rng,
        )
        .expect("GA runs");
        let sm_npe = {
            // Average-power stressmark for the energy comparison.
            let mut rng = StdRng::seed_from_u64(SEED ^ 52);
            let sma = stressmark::evolve(
                &sys,
                stressmark::StressTarget::AveragePower,
                &xbound_bench::ga_config(),
                &mut rng,
            )
            .expect("GA runs");
            sma.avg_mw * 1e-3 / sys.clock_hz() * GUARDBAND
        };
        // Profiling campaigns fan out across the pool; the cached X-based
        // analyses are then attached sequentially in suite order.
        let profs = xbound_core::par::par_map_labeled(
            0,
            xbound_benchsuite::all().iter().collect::<Vec<_>>(),
            |_, bench| bench.name().to_string(),
            |_, bench| Harness::campaign(&sys, bench, 51).expect("profiles"),
        );
        let mut rows = Vec::new();
        for (bench, prof) in xbound_benchsuite::all().iter().zip(profs) {
            let analysis = h.analysis(bench).expect("analyzes");
            rows.push(BenchComparison {
                name: bench.name(),
                obs_min: prof.min_peak_mw,
                obs_max: prof.observed_peak_mw,
                gb_input: prof.gb_peak_mw,
                xbased: analysis.peak_power().peak_mw,
                obs_npe_max: prof.observed_npe,
                gb_input_npe: prof.gb_npe,
                xbased_npe: analysis.peak_energy().npe_j_per_cycle,
            });
        }
        ComparisonData {
            rows,
            stressmark_gb_peak: sm.peak_mw * GUARDBAND,
            stressmark_gb_npe: sm_npe,
            design_tool_peak: dt.peak_mw,
            design_tool_npe: dt.npe_j_per_cycle,
        }
    }
}

fn fig5_1(data: &ComparisonData) {
    let mut t = Table::new(&[
        "benchmark",
        "input-based [mW]",
        "GB input [mW]",
        "X-based [mW]",
        "X vs GB-input",
        "sound",
    ]);
    for r in &data.rows {
        t.row(&[
            r.name.to_string(),
            format!("{}..{}", mw(r.obs_min), mw(r.obs_max)),
            mw(r.gb_input),
            mw(r.xbased),
            pct((r.xbased / r.gb_input - 1.0) * 100.0),
            (r.xbased >= r.obs_max - 1e-9).to_string(),
        ]);
    }
    let x_vs_gbin = geomean(data.rows.iter().map(|r| r.xbased / r.gb_input));
    let x_vs_stress = geomean(data.rows.iter().map(|r| r.xbased / data.stressmark_gb_peak));
    let x_vs_dt = geomean(data.rows.iter().map(|r| r.xbased / data.design_tool_peak));
    let body = format!(
        "{}\nGB stressmark: {} mW   design tool: {} mW\n\n\
         X-based vs GB input-based (geomean): {} (paper: -15%)\n\
         X-based vs GB stressmark  (geomean): {} (paper: -26%)\n\
         X-based vs design tool    (geomean): {} (paper: -27%)\n\
         soundness: X-based >= max observed input-based for every benchmark.\n\
         Deviations above GB-input are the multiplier-heavy / widened kernels;\n\
         see EXPERIMENTS.md for the conservatism discussion.\n",
        t.render(),
        mw(data.stressmark_gb_peak),
        mw(data.design_tool_peak),
        pct((x_vs_gbin - 1.0) * 100.0),
        pct((x_vs_stress - 1.0) * 100.0),
        pct((x_vs_dt - 1.0) * 100.0),
    );
    emit(
        "fig5_1",
        "Peak power: conventional techniques vs X-based (paper Fig 16)",
        &body,
    );
}

fn fig5_2(data: &ComparisonData) {
    let mut t = Table::new(&[
        "benchmark",
        "input NPE max",
        "GB input NPE",
        "X-based NPE",
        "X vs GB-input",
        "sound",
    ]);
    for r in &data.rows {
        t.row(&[
            r.name.to_string(),
            npe(r.obs_npe_max),
            npe(r.gb_input_npe),
            npe(r.xbased_npe),
            pct((r.xbased_npe / r.gb_input_npe - 1.0) * 100.0),
            (r.xbased_npe >= r.obs_npe_max - 1e-18).to_string(),
        ]);
    }
    let x_vs_gbin = geomean(data.rows.iter().map(|r| r.xbased_npe / r.gb_input_npe));
    let x_vs_stress = geomean(
        data.rows
            .iter()
            .map(|r| r.xbased_npe / data.stressmark_gb_npe),
    );
    let x_vs_dt = geomean(
        data.rows
            .iter()
            .map(|r| r.xbased_npe / data.design_tool_npe),
    );
    let body = format!(
        "{}\nGB stressmark NPE: {}   design tool NPE: {}\n\n\
         X-based vs GB input-based (geomean): {} (paper: -17%)\n\
         X-based vs GB stressmark  (geomean): {} (paper: -26%)\n\
         X-based vs design tool    (geomean): {} (paper: -47%)\n",
        t.render(),
        npe(data.stressmark_gb_npe),
        npe(data.design_tool_npe),
        pct((x_vs_gbin - 1.0) * 100.0),
        pct((x_vs_stress - 1.0) * 100.0),
        pct((x_vs_dt - 1.0) * 100.0),
    );
    emit(
        "fig5_2",
        "Normalized peak energy comparison (paper Fig 17)",
        &body,
    );
}

fn savings_table(title: &str, id: &str, pairs: Vec<(f64, f64)>, labels: [&str; 3]) {
    // pairs: per-baseline (baseline_value, xbased_value) averaged reduction.
    let mut t = Table::new(&["Baseline", "10%", "25%", "50%", "75%", "90%", "100%"]);
    for ((base, ours), label) in pairs.into_iter().zip(labels) {
        let row = xbound_sizing::savings::table_row(base, ours);
        let mut cells = vec![label.to_string()];
        cells.extend(row.iter().map(|v| format!("{v:.2}")));
        t.row(&cells);
    }
    emit(id, title, &t.render());
}

fn tab5_1(data: &ComparisonData) {
    // Average relative reduction vs each baseline (clamped at 0: a negative
    // entry means the X-based bound was the more conservative one).
    let gbin = geomean(data.rows.iter().map(|r| (r.xbased / r.gb_input).min(1.0)));
    let gbs = geomean(
        data.rows
            .iter()
            .map(|r| (r.xbased / data.stressmark_gb_peak).min(1.0)),
    );
    let dt = geomean(
        data.rows
            .iter()
            .map(|r| (r.xbased / data.design_tool_peak).min(1.0)),
    );
    savings_table(
        "Harvester-area reduction vs processor contribution (paper Table 4/5.1)",
        "tab5_1",
        vec![(1.0, gbin), (1.0, gbs), (1.0, dt)],
        ["GB-Input", "GB-Stress", "Design Tool"],
    );
}

fn tab5_2(data: &ComparisonData) {
    let gbin = geomean(
        data.rows
            .iter()
            .map(|r| (r.xbased_npe / r.gb_input_npe).min(1.0)),
    );
    let gbs = geomean(
        data.rows
            .iter()
            .map(|r| (r.xbased_npe / data.stressmark_gb_npe).min(1.0)),
    );
    let dt = geomean(
        data.rows
            .iter()
            .map(|r| (r.xbased_npe / data.design_tool_npe).min(1.0)),
    );
    savings_table(
        "Battery-volume reduction vs processor contribution (paper Table 5/5.2)",
        "tab5_2",
        vec![(1.0, gbin), (1.0, gbs), (1.0, dt)],
        ["GB-Input", "GB-Stress", "Design Tool"],
    );
}

fn fig5_4_5_6(h: &mut Harness, overheads: bool) {
    let sys = h.sys65().clone();
    let mut t = if overheads {
        Table::new(&[
            "benchmark",
            "perf degradation",
            "energy overhead",
            "accepted",
        ])
    } else {
        Table::new(&[
            "benchmark",
            "peak before [mW]",
            "peak after [mW]",
            "reduction",
            "dyn-range reduction",
            "accepted",
        ])
    };
    let mut reductions = Vec::new();
    // Draw every benchmark's inputs from the shared stream first (keeps the
    // published tables identical), then optimize benchmarks in parallel.
    let mut rng = StdRng::seed_from_u64(SEED ^ 54);
    let jobs: Vec<_> = xbound_benchsuite::all()
        .iter()
        .map(|bench| (bench, bench.gen_inputs(&mut rng)))
        .collect();
    let reports = xbound_core::par::par_map_labeled(
        0,
        jobs,
        |_, (bench, _)| bench.name().to_string(),
        |_, (bench, inputs)| {
            let opts = OptimizeOptions {
                scratch_reg: Some(14),
                iss_inputs: inputs,
                ..OptimizeOptions::default()
            };
            // One layer of parallelism at a time: benchmarks already fan out
            // here, so each optimizer run explores single-threaded.
            let config = xbound_core::ExploreConfig {
                threads: 1,
                ..Harness::explore_config(bench)
            };
            optimize_program(&sys, bench.source(), config, bench.energy_rounds(), &opts)
                .expect("optimizer runs")
        },
    );
    for (bench, report) in xbound_benchsuite::all().iter().zip(&reports) {
        let accepted: Vec<&str> = report.accepted.iter().map(|k| k.name()).collect();
        let range_red = if report.original_dynamic_range_mw > 0.0 {
            (1.0 - report.optimized_dynamic_range_mw / report.original_dynamic_range_mw) * 100.0
        } else {
            0.0
        };
        reductions.push(report.peak_reduction_pct);
        if overheads {
            t.row(&[
                bench.name().to_string(),
                pct(report.performance_degradation_pct),
                pct(report.energy_overhead_pct),
                accepted.join(", "),
            ]);
        } else {
            t.row(&[
                bench.name().to_string(),
                mw(report.original_peak_mw),
                mw(report.optimized_peak_mw),
                pct(-report.peak_reduction_pct),
                pct(-range_red),
                accepted.join(", "),
            ]);
        }
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
    let max = reductions.iter().copied().fold(0.0, f64::max);
    if overheads {
        emit(
            "fig5_6",
            "Performance / energy overhead of the optimizations (paper Fig 21)",
            &t.render(),
        );
    } else {
        let body = format!(
            "{}\naverage peak reduction {:.1}% (paper: 5%), max {:.1}% (paper: 10%)\n\
             (only transforms that reduce the X-based bound are accepted)\n",
            t.render(),
            avg,
            max
        );
        emit(
            "fig5_4",
            "Peak power reduction from OPT1/2/3 (paper Fig 19)",
            &body,
        );
    }
}

fn fig5_5(h: &mut Harness) {
    let sys = h.sys65().clone();
    let bench = xbound_benchsuite::by_name("mult").expect("exists");
    let opts = OptimizeOptions {
        scratch_reg: Some(14),
        iss_inputs: vec![1, 2, 3, 4, 5, 6, 7, 8],
        ..OptimizeOptions::default()
    };
    let report = optimize_program(
        &sys,
        bench.source(),
        Harness::explore_config(bench),
        bench.energy_rounds(),
        &opts,
    )
    .expect("optimizer runs");
    // Bound traces before and after.
    let before = h.analysis(bench).expect("analyzes");
    let after_prog = assemble(&report.optimized_source).expect("assembles");
    let after = xbound_core::CoAnalysis::new(&sys)
        .config(Harness::explore_config(bench))
        .energy_rounds(bench.energy_rounds())
        .run(&after_prog)
        .expect("analyzes");
    let be = before.peak_power().envelope_mw(before.tree());
    let ae = after.peak_power().envelope_mw(after.tree());
    let body = format!(
        "before: peak {} mW over {} cycles\nafter:  peak {} mW over {} cycles\n\
         accepted: {:?}\n\nenvelope (32-cycle buckets, before | after):\n{}\n",
        mw(before.peak_power().peak_mw),
        be.len(),
        mw(after.peak_power().peak_mw),
        ae.len(),
        report.accepted.iter().map(|k| k.name()).collect::<Vec<_>>(),
        {
            let mut s = String::new();
            let bucket = 32;
            let peak = before.peak_power().peak_mw;
            for i in 0..(be.len().max(ae.len()) / bucket + 1) {
                let bmax = be
                    .get((i * bucket).min(be.len())..((i + 1) * bucket).min(be.len()))
                    .unwrap_or(&[])
                    .iter()
                    .copied()
                    .fold(0.0, f64::max);
                let amax = ae
                    .get((i * bucket).min(ae.len())..((i + 1) * bucket).min(ae.len()))
                    .unwrap_or(&[])
                    .iter()
                    .copied()
                    .fold(0.0, f64::max);
                s.push_str(&format!(
                    "{:5} {:<26} | {:<26}\n",
                    i * bucket,
                    "#".repeat((bmax / peak * 25.0) as usize),
                    "#".repeat((amax / peak * 25.0) as usize)
                ));
            }
            s
        }
    );
    emit(
        "fig5_5",
        "mult bound trace before/after optimization (paper Fig 20)",
        &body,
    );
}

/// Ablation: the structural-stability refinement of Algorithm 2 (DESIGN.md
/// design choice). `off` = the paper's literal maximizing assignment;
/// `on` = held registers / unchanged cones cannot toggle.
fn ablation(h: &mut Harness) {
    let sys = h.sys65().clone();
    let mut t = Table::new(&[
        "benchmark",
        "bound, stability off [mW]",
        "bound, stability on [mW]",
        "pessimism removed",
    ]);
    for name in ["mult", "tea8", "tHold", "PI", "intAVG", "binSearch"] {
        let bench = xbound_benchsuite::by_name(name).expect("exists");
        let program = bench.program().expect("assembles");
        let explorer =
            xbound_core::SymbolicExplorer::new(sys.cpu(), Harness::explore_config(bench));
        let (tree, _) = explorer.explore(&program).expect("explores");
        let naive = xbound_core::peak_power::compute_peak_power_opts(
            sys.cpu().netlist(),
            sys.library(),
            sys.clock_hz(),
            &tree,
            false,
        );
        let refined = xbound_core::peak_power::compute_peak_power_opts(
            sys.cpu().netlist(),
            sys.library(),
            sys.clock_hz(),
            &tree,
            true,
        );
        t.row(&[
            name.to_string(),
            mw(naive.peak_mw),
            mw(refined.peak_mw),
            pct(-(1.0 - refined.peak_mw / naive.peak_mw) * 100.0),
        ]);
    }
    let body = format!(
        "{}
Both bounds are sound; stability removes the structural pessimism of
charging held registers (e.g. the idle multiplier array) every cycle.
",
        t.render()
    );
    emit(
        "ablation",
        "Design-choice ablation: Algorithm 2 with/without stability analysis",
        &body,
    );
}

/// CI smoke for the batched stressmark path: a tiny GA whose population
/// is scored one lane group at a time, plus a batched-validation pass on
/// the champion's measured trace shape.
fn ga_smoke(h: &mut Harness) {
    let sys = h.sys65().clone();
    let mut rng = StdRng::seed_from_u64(SEED ^ 99);
    // Population follows --ga-pop; everything else is shrunk for smoke.
    let cfg = stressmark::GaConfig {
        generations: 2,
        genome_len: 8,
        eval_cycles: 150,
        ..xbound_bench::ga_config()
    };
    let result = stressmark::evolve(&sys, stressmark::StressTarget::PeakPower, &cfg, &mut rng)
        .expect("GA runs");
    assert!(result.peak_mw > 0.0 && result.avg_mw > 0.0);
    assert_eq!(result.history.len(), cfg.generations);
    let body = format!(
        "batched GA: population {} × {} generations, {} eval cycles/individual\n\
         champion peak {} mW, avg {} mW\nhistory: {:?}\n",
        cfg.population,
        cfg.generations,
        cfg.eval_cycles,
        mw(result.peak_mw),
        mw(result.avg_mw),
        result
            .history
            .iter()
            .map(|v| format!("{v:.3}"))
            .collect::<Vec<_>>(),
    );
    emit(
        "ga_smoke",
        "Stressmark GA smoke on the batched concrete engine",
        &body,
    );
}

fn tab6_1() {
    let mut t = Table::new(&["Processor", "Branch predictor", "Cache"]);
    for p in xbound_sizing::landscape::TABLE {
        t.row(&[
            p.name.to_string(),
            if p.branch_predictor { "yes" } else { "no" }.to_string(),
            if p.cache { "yes" } else { "no" }.to_string(),
        ]);
    }
    let body = format!(
        "{}\n{}% of these processors are fully deterministic — the co-analysis\napplies directly (paper Ch. 6).\n",
        t.render(),
        (xbound_sizing::landscape::deterministic_fraction() * 100.0) as u32
    );
    emit(
        "tab6_1",
        "Microarchitectural features in embedded processors (paper Table 6.1)",
        &body,
    );
}
