//! Runs the X-based co-analysis over the whole benchmark suite and prints
//! one summary line per benchmark (peak bound, NPE, tree statistics,
//! analysis runtime) — a quick health check of the full pipeline.
//!
//! ```text
//! cargo run --release -p xbound_bench --bin suite_summary [-- OPTIONS] [BENCH...]
//! ```
//!
//! Options:
//!
//! * `--oracle` — run on the full-levelized evaluation engine (equivalent
//!   to `XBOUND_SIM_ENGINE=levelized`); result columns are byte-identical
//!   to the default event-driven engine, only timings differ.
//! * `--threads N` — suite-level worker pool size (default: auto, see
//!   `XBOUND_THREADS`); benchmarks fan out across workers and print in
//!   deterministic suite order regardless.
//! * `--validate N` — additionally validate each analysis against `N`
//!   random concrete runs through the batched engine (Fig 12 toggle
//!   superset + Fig 13 power dominance per run); the summary line gains a
//!   `val=` column. Reports are identical at any lane width/thread count.
//! * `--lanes N` — lane width for the batched validation runs (default:
//!   auto, see `XBOUND_LANES`; clamped to 1..=64).
//! * `--explore-lanes N` — lane width for batched symbolic exploration:
//!   how many pending execution-tree branches share one gate pass
//!   (default: auto, see `XBOUND_EXPLORE_LANES`). Result columns are
//!   byte-identical at any width; only timings and the occupancy
//!   telemetry change.
//! * `--json PATH` — additionally write per-benchmark wall-clock numbers
//!   and bounds as JSON (via the shared `xbound_core::jsonout` writer),
//!   with engine / thread-count / lane-width metadata plus the
//!   exploration's lane-occupancy and speculative-waste counters, so
//!   `BENCH_*.json` entries are self-describing.
//! * `--bounds PATH` — write one canonical `{"name": ..., "bounds": ...}`
//!   line per benchmark ([`xbound_core::summary::bounds_line`]); the
//!   co-analysis service's `xbound-client suite` prints byte-identical
//!   lines, which is how CI cross-checks the daemon against the direct
//!   path.
//! * `--incremental` — attach a subtree memo (incremental re-analysis;
//!   see `xbound_core::memo`). Repeat analyses of unchanged or edited
//!   programs replay memoized execution subtrees; the result columns are
//!   byte-identical either way. `XBOUND_MEMO` overrides the flag (`0`
//!   disables, `mem` keeps the memo off disk, `1` persists it under the
//!   shared cache directory).
//! * `--sweep PATH` — operating-point sweep mode (`xbound_core::sweep`):
//!   explore each benchmark **once**, then bound every corner of the
//!   default library × voltage × clock grid, writing the
//!   bound-vs-operating-point curves as JSON to `PATH`. One summary line
//!   prints per (benchmark, corner); the final `sweep:` line carries the
//!   tree-reuse counter CI greps. With `--bounds PATH`, each line gains a
//!   trailing `"corner"` field — stripping it yields bytes identical to a
//!   plain single-corner `--bounds` run of that corner (the CI sweep
//!   smoke contract). Not combinable with `--validate`/`--incremental`.
//! * `--sweep-corners N` — truncate the default 8-corner grid to its
//!   first `N` corners (the CI smoke runs 4).
//! * `--trace PATH` — record a Chrome-trace of the run (exploration,
//!   power composition, sweep stages, per-worker scheduling events) and
//!   write it to PATH at exit; load it at `chrome://tracing` or
//!   <https://ui.perfetto.dev>. `XBOUND_TRACE=PATH` is the environment
//!   spelling. Tracing never changes result bytes — only timings.
//! * positional names — restrict the run to those benchmarks (the CI smoke
//!   invocation runs a fast subset).
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use xbound_core::jsonout::JsonWriter;
use xbound_core::{
    par, summary, BatchExploreStats, BoundsReport, CoAnalysis, ExploreConfig, UlpSystem,
};

struct Row {
    name: &'static str,
    line: String,
    seconds: f64,
    explore: Option<BatchExploreStats>,
    bounds: Option<BoundsReport>,
}

/// Stable per-benchmark salt for validation input generation (FNV-1a, so
/// subsets validate with the same inputs as full-suite runs).
fn name_salt(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn main() {
    let mut trace_path = xbound_obs::trace::init_from_env();
    let mut names: Vec<String> = Vec::new();
    let mut threads = 0usize;
    let mut lanes = 0usize;
    let mut explore_lanes = 0usize;
    let mut validate_runs = 0usize;
    let mut json_path: Option<String> = None;
    let mut bounds_path: Option<String> = None;
    let mut sweep_path: Option<String> = None;
    let mut sweep_corners = 0usize;
    let mut incremental = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--oracle" => std::env::set_var("XBOUND_SIM_ENGINE", "levelized"),
            "--compiled" => std::env::set_var("XBOUND_SIM_ENGINE", "compiled"),
            "--incremental" => incremental = true,
            "--sweep" => sweep_path = Some(args.next().expect("--sweep PATH")),
            "--sweep-corners" => {
                sweep_corners = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--sweep-corners N");
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads N");
            }
            "--lanes" => {
                lanes = args.next().and_then(|v| v.parse().ok()).expect("--lanes N");
            }
            "--explore-lanes" => {
                explore_lanes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--explore-lanes N");
            }
            "--validate" => {
                validate_runs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--validate N");
            }
            "--json" => json_path = Some(args.next().expect("--json PATH")),
            "--bounds" => bounds_path = Some(args.next().expect("--bounds PATH")),
            "--trace" => {
                let path = args.next().expect("--trace PATH");
                xbound_obs::trace::enable();
                trace_path = Some(path);
            }
            other => names.push(other.to_string()),
        }
    }
    let benches: Vec<&'static xbound_benchsuite::Benchmark> = xbound_benchsuite::all()
        .iter()
        .filter(|b| names.is_empty() || names.iter().any(|n| n == b.name()))
        .collect();
    for n in &names {
        assert!(
            xbound_benchsuite::by_name(n).is_some(),
            "unknown benchmark `{n}`"
        );
    }

    let sys = UlpSystem::openmsp430_class().unwrap();
    println!("gates: {}", sys.cpu().netlist().gate_count());
    if let Some(curve_path) = sweep_path {
        assert!(
            validate_runs == 0 && !incremental,
            "--sweep is not combinable with --validate/--incremental"
        );
        sweep_mode(
            &sys,
            &benches,
            &curve_path,
            sweep_corners,
            threads,
            explore_lanes,
            bounds_path.as_deref(),
        );
        write_trace(trace_path);
        return;
    }
    let memo = xbound_core::memo::from_env(incremental);
    let suite_workers = par::resolve_threads(threads).min(benches.len().max(1));
    let lane_width = par::resolve_lanes(lanes);
    let explore_lane_width = par::resolve_explore_lanes(explore_lanes);
    // One layer of parallelism at a time: when benchmarks already fan out
    // across the pool, each analysis explores single-threaded.
    let explore_threads = if suite_workers > 1 { 1 } else { 0 };
    let t_suite = Instant::now();
    let rows = par::par_map_labeled(
        suite_workers,
        benches,
        |_, b| b.name().to_string(),
        |_, b| {
            let t0 = Instant::now();
            let program = b.program().unwrap();
            let r = CoAnalysis::new(&sys)
                .config(ExploreConfig {
                    widen_threshold: b.widen_threshold(),
                    threads: explore_threads,
                    lanes: explore_lane_width,
                    ..ExploreConfig::suite_default()
                })
                .energy_rounds(b.energy_rounds())
                .memo(memo.clone())
                .run(&program);
            let mut explore = None;
            let mut bounds = None;
            let line = match r {
                Ok(a) => {
                    let val = if validate_runs > 0 {
                        let mut rng =
                            StdRng::seed_from_u64(xbound_bench::SEED ^ name_salt(b.name()));
                        let input_sets: Vec<Vec<u16>> =
                            (0..validate_runs).map(|_| b.gen_inputs(&mut rng)).collect();
                        let checks = a
                            .validate_population(
                                &program,
                                &input_sets,
                                b.max_concrete_cycles(),
                                lane_width,
                                1,
                            )
                            .expect("validation runs");
                        let sound = checks.iter().filter(|c| c.is_sound()).count();
                        assert_eq!(
                            sound,
                            checks.len(),
                            "{}: soundness violation in batched validation",
                            b.name()
                        );
                        format!(" val={sound}/{} ok", checks.len())
                    } else {
                        String::new()
                    };
                    let s = a.stats();
                    explore = Some(s.batch.clone());
                    bounds = Some(BoundsReport::from_analysis(&a));
                    let e = a.peak_energy();
                    format!(
                        "{:10} peak={:.4} mW npe={:.3e} J/cyc segs={} cycles={} forks={} merges={} widen={} conv={}{val} [{:.2?}]",
                        b.name(), a.peak_power().peak_mw, e.npe_j_per_cycle,
                        a.tree().segments().len(), s.cycles, s.forks, s.merges, s.widenings,
                        e.converged, t0.elapsed()
                    )
                }
                Err(e) => format!("{:10} ERROR: {e} [{:.2?}]", b.name(), t0.elapsed()),
            };
            Row {
                name: b.name(),
                line,
                seconds: t0.elapsed().as_secs_f64(),
                explore,
                bounds,
            }
        },
    );
    for row in &rows {
        println!("{}", row.line);
    }
    let total = t_suite.elapsed().as_secs_f64();
    let engine = xbound_core::sim_engine_name();
    println!(
        "suite: {} benchmarks in {total:.3} s ({} suite worker{}, engine: {engine}, batch lanes: {lane_width}, explore lanes: {explore_lane_width})",
        rows.len(),
        suite_workers,
        if suite_workers == 1 { "" } else { "s" },
    );
    if let Some(m) = &memo {
        let s = m.stats();
        println!(
            "memo: {} hits / {} misses, {} segments stitched, {} power-trace hits{}",
            s.hits,
            s.misses,
            s.stitched_segments,
            s.power_hits,
            m.dir()
                .map(|d| format!(", persisted at {}", d.display()))
                .unwrap_or_default(),
        );
    }

    if let Some(path) = json_path {
        // Self-describing metadata first, then the per-benchmark timings
        // and bounds plus the exploration's lane-occupancy /
        // speculative-waste telemetry (scheduling-dependent; the bounds
        // themselves are byte-identical at any lane width or thread
        // count). Emitted through the shared `jsonout` writer.
        let agg = rows.iter().filter_map(|r| r.explore.as_ref()).fold(
            xbound_core::BatchExploreStats::default(),
            |mut acc, b| {
                acc.lanes = b.lanes;
                acc.absorb(b);
                acc
            },
        );
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.field_str("engine", engine);
        w.field_u64("threads", suite_workers as u64);
        // The cached process-wide worker resolution for this run's
        // `--threads` knob (par::resolve_threads caches the auto path).
        w.field_u64("resolved_threads", par::resolve_threads(threads) as u64);
        w.field_u64(
            "explore_threads",
            par::resolve_threads(explore_threads) as u64,
        );
        w.field_u64("batch_lanes", lane_width as u64);
        w.field_u64("explore_lanes", explore_lane_width as u64);
        w.field_u64("validate_runs", validate_runs as u64);
        w.field_u64("explore_gate_passes", agg.gate_passes);
        w.field_u64("explore_active_lane_cycles", agg.active_lane_cycles);
        w.field_u64("explore_idle_lane_cycles", agg.idle_lane_cycles);
        w.field_raw("explore_occupancy", &format!("{:.4}", agg.occupancy()));
        // Work-stealing scheduler telemetry (scheduling-dependent, like
        // the occupancy counters above).
        w.field_u64("explore_steals", agg.steals);
        w.field_u64("explore_steal_failures", agg.steal_failures);
        w.field_u64("explore_idle_wakeups", agg.idle_wakeups);
        w.field_u64("explore_max_speculation_depth", agg.max_speculation_depth);
        w.key("explore_committed_cycles_per_worker");
        w.begin_array();
        for c in &agg.committed_cycles_per_worker {
            w.u64_val(*c);
        }
        w.end_array();
        if let Some(m) = &memo {
            let s = m.stats();
            w.field_u64("memo_hits", s.hits);
            w.field_u64("memo_misses", s.misses);
            w.field_u64("memo_stitched_segments", s.stitched_segments);
            w.field_u64("memo_power_hits", s.power_hits);
        }
        w.key("benchmarks");
        w.begin_array();
        for row in &rows {
            w.begin_object();
            w.field_str("name", row.name);
            w.field_raw("seconds", &format!("{:.6}", row.seconds));
            if let Some(b) = &row.explore {
                w.field_u64("explore_gate_passes", b.gate_passes);
                w.field_raw("explore_occupancy", &format!("{:.4}", b.occupancy()));
                w.field_u64("explore_steals", b.steals);
                w.field_u64("explore_max_speculation_depth", b.max_speculation_depth);
            }
            if let Some(bounds) = &row.bounds {
                w.key("bounds");
                bounds.write(&mut w);
            }
            w.end_object();
        }
        w.end_array();
        w.field_raw("total_seconds", &format!("{total:.6}"));
        w.end_object();
        let mut doc = w.finish();
        doc.push('\n');
        std::fs::write(&path, doc).expect("write json");
        xbound_obs::info!("suite", "wrote {path}");
    }

    if let Some(path) = bounds_path {
        // Canonical per-benchmark bound lines, byte-identical to what
        // `xbound-client suite` prints for the same programs.
        let mut out = String::new();
        for row in &rows {
            match &row.bounds {
                Some(b) => out.push_str(&summary::bounds_line(row.name, b)),
                None => {
                    let mut w = JsonWriter::compact();
                    w.begin_object();
                    w.field_str("name", row.name);
                    w.field_str("error", "analysis failed");
                    w.end_object();
                    out.push_str(&w.finish());
                }
            }
            out.push('\n');
        }
        std::fs::write(&path, out).expect("write bounds");
        xbound_obs::info!("suite", "wrote {path}");
    }
    write_trace(trace_path);
}

/// Writes the Chrome trace collected this run (no-op when tracing was
/// never enabled).
fn write_trace(path: Option<String>) {
    if let Some(path) = path {
        match xbound_obs::trace::write_chrome_trace(&path) {
            Ok(()) => xbound_obs::info!("suite", "wrote trace {path}"),
            Err(e) => {
                xbound_obs::error!("suite", "trace write {path} failed: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// The `--sweep` flow: each benchmark explores **once**, then every
/// corner of the (possibly truncated) default operating-point grid is
/// bounded from the shared tree (`xbound_core::sweep::run_sweep`).
fn sweep_mode(
    sys: &UlpSystem,
    benches: &[&'static xbound_benchsuite::Benchmark],
    curve_path: &str,
    sweep_corners: usize,
    threads: usize,
    explore_lanes: usize,
    bounds_path: Option<&str>,
) {
    use xbound_core::sweep::{run_sweep, SweepAnalysis, SweepSpec};

    struct SweepRow {
        name: &'static str,
        result: Result<SweepAnalysis, String>,
        seconds: f64,
    }

    let spec = SweepSpec::suite_default().truncated(sweep_corners);
    let suite_workers = par::resolve_threads(threads).min(benches.len().max(1));
    let explore_lane_width = par::resolve_explore_lanes(explore_lanes);
    // One layer of parallelism at a time: when benchmarks already fan out
    // across the pool, each sweep explores single-threaded and bounds its
    // corners serially.
    let inner_threads = if suite_workers > 1 { 1 } else { 0 };
    let t_suite = Instant::now();
    let rows = par::par_map_labeled(
        suite_workers,
        benches.to_vec(),
        |_, b| b.name().to_string(),
        |_, b| {
            let t0 = Instant::now();
            let program = b.program().unwrap();
            let config = ExploreConfig {
                widen_threshold: b.widen_threshold(),
                threads: inner_threads,
                lanes: explore_lane_width,
                ..ExploreConfig::suite_default()
            };
            let result = run_sweep(
                sys.cpu(),
                &spec,
                &program,
                config,
                b.energy_rounds(),
                inner_threads,
            )
            .map_err(|e| e.to_string());
            SweepRow {
                name: b.name(),
                result,
                seconds: t0.elapsed().as_secs_f64(),
            }
        },
    );

    let mut tree_reuse = 0u64;
    let mut tables_built = 0u64;
    let mut trace_reuse = 0u64;
    for row in &rows {
        match &row.result {
            Ok(s) => {
                for cr in &s.corners {
                    println!(
                        "{:10} {:22} peak={:.4} mW npe={:.3e} J/cyc conv={} [{:.2}ms]",
                        row.name,
                        cr.corner.label(),
                        cr.report.peak_mw,
                        cr.report.npe_j_per_cycle,
                        cr.report.converged,
                        cr.seconds * 1e3,
                    );
                }
                tree_reuse += s.stats.tree_reuse_hits;
                tables_built += s.stats.tables_built;
                trace_reuse += s.stats.trace_reuse_hits;
            }
            Err(e) => println!("{:10} ERROR: {e}", row.name),
        }
    }
    let total = t_suite.elapsed().as_secs_f64();
    let engine = xbound_core::sim_engine_name();
    println!(
        "sweep: {} benchmarks x {} corners in {total:.3} s (tree_reuse={tree_reuse}, tables={tables_built}, trace_reuse={trace_reuse}, {} suite worker{}, engine: {engine})",
        rows.len(),
        spec.corners().len(),
        suite_workers,
        if suite_workers == 1 { "" } else { "s" },
    );

    // The bound-vs-operating-point curve document.
    let mut w = JsonWriter::pretty();
    w.begin_object();
    w.field_str("engine", engine);
    w.field_u64("threads", suite_workers as u64);
    w.field_u64("explore_lanes", explore_lane_width as u64);
    w.key("corners");
    w.begin_array();
    for c in spec.corners() {
        w.begin_object();
        w.field_str("label", &c.label());
        w.field_str("library", c.library().name());
        w.field_f64("voltage_v", c.vdd_v());
        w.field_f64("clock_hz", c.clock_hz());
        w.end_object();
    }
    w.end_array();
    w.key("benchmarks");
    w.begin_array();
    for row in &rows {
        w.begin_object();
        w.field_str("name", row.name);
        w.field_raw("seconds", &format!("{:.6}", row.seconds));
        match &row.result {
            Ok(s) => {
                w.field_raw(
                    "explore_seconds",
                    &format!("{:.6}", s.stats.explore_seconds),
                );
                w.field_u64("tree_reuse_hits", s.stats.tree_reuse_hits);
                w.field_u64("tables_built", s.stats.tables_built);
                w.field_u64("trace_sets_built", s.stats.trace_sets_built);
                w.field_u64("trace_reuse_hits", s.stats.trace_reuse_hits);
                w.key("curve");
                w.begin_array();
                for cr in &s.corners {
                    w.begin_object();
                    w.field_str("corner", &cr.corner.label());
                    w.field_raw("seconds", &format!("{:.6}", cr.seconds));
                    w.key("bounds");
                    cr.report.write(&mut w);
                    w.end_object();
                }
                w.end_array();
            }
            Err(e) => w.field_str("error", e),
        }
        w.end_object();
    }
    w.end_array();
    w.field_raw("total_seconds", &format!("{total:.6}"));
    w.end_object();
    let mut doc = w.finish();
    doc.push('\n');
    std::fs::write(curve_path, doc).expect("write sweep curves");
    xbound_obs::info!("suite", "wrote {curve_path}");

    if let Some(path) = bounds_path {
        // Corner-stamped canonical bound lines: drop the trailing
        // `, "corner": "..."` and the bytes equal a plain single-corner
        // `--bounds` run of that corner — the CI sweep smoke strips it
        // with sed and diffs.
        let mut out = String::new();
        for row in &rows {
            match &row.result {
                Ok(s) => {
                    for cr in &s.corners {
                        let mut w = JsonWriter::compact();
                        w.begin_object();
                        w.field_str("name", row.name);
                        w.key("bounds");
                        cr.report.write(&mut w);
                        w.field_str("corner", &cr.corner.label());
                        w.end_object();
                        out.push_str(&w.finish());
                        out.push('\n');
                    }
                }
                Err(_) => {
                    let mut w = JsonWriter::compact();
                    w.begin_object();
                    w.field_str("name", row.name);
                    w.field_str("error", "analysis failed");
                    w.end_object();
                    out.push_str(&w.finish());
                    out.push('\n');
                }
            }
        }
        std::fs::write(path, out).expect("write bounds");
        xbound_obs::info!("suite", "wrote {path}");
    }
}
