//! Runs the X-based co-analysis over the whole benchmark suite and prints
//! one summary line per benchmark (peak bound, NPE, tree statistics,
//! analysis runtime) — a quick health check of the full pipeline.
//!
//! ```text
//! cargo run --release -p xbound_bench --bin suite_summary [-- OPTIONS] [BENCH...]
//! ```
//!
//! Options:
//!
//! * `--oracle` — run on the full-levelized evaluation engine (equivalent
//!   to `XBOUND_SIM_ENGINE=levelized`); result columns are byte-identical
//!   to the default event-driven engine, only timings differ.
//! * `--threads N` — suite-level worker pool size (default: auto, see
//!   `XBOUND_THREADS`); benchmarks fan out across workers and print in
//!   deterministic suite order regardless.
//! * `--json PATH` — additionally write per-benchmark wall-clock numbers
//!   as JSON (used to regenerate `BENCH_sim.json`).
//! * positional names — restrict the run to those benchmarks (the CI smoke
//!   invocation runs a fast subset).
use std::time::Instant;
use xbound_core::{par, CoAnalysis, ExploreConfig, UlpSystem};

struct Row {
    name: &'static str,
    line: String,
    seconds: f64,
}

fn main() {
    let mut names: Vec<String> = Vec::new();
    let mut threads = 0usize;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--oracle" => std::env::set_var("XBOUND_SIM_ENGINE", "levelized"),
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads N");
            }
            "--json" => json_path = Some(args.next().expect("--json PATH")),
            other => names.push(other.to_string()),
        }
    }
    let benches: Vec<&'static xbound_benchsuite::Benchmark> = xbound_benchsuite::all()
        .iter()
        .filter(|b| names.is_empty() || names.iter().any(|n| n == b.name()))
        .collect();
    for n in &names {
        assert!(
            xbound_benchsuite::by_name(n).is_some(),
            "unknown benchmark `{n}`"
        );
    }

    let sys = UlpSystem::openmsp430_class().unwrap();
    println!("gates: {}", sys.cpu().netlist().gate_count());
    let suite_workers = par::resolve_threads(threads).min(benches.len().max(1));
    // One layer of parallelism at a time: when benchmarks already fan out
    // across the pool, each analysis explores single-threaded.
    let explore_threads = if suite_workers > 1 { 1 } else { 0 };
    let t_suite = Instant::now();
    let rows = par::par_map(suite_workers, benches, |_, b| {
        let t0 = Instant::now();
        let program = b.program().unwrap();
        let r = CoAnalysis::new(&sys)
            .config(ExploreConfig {
                widen_threshold: b.widen_threshold(),
                max_total_cycles: 5_000_000,
                threads: explore_threads,
                ..ExploreConfig::default()
            })
            .energy_rounds(b.energy_rounds())
            .run(&program);
        let seconds = t0.elapsed().as_secs_f64();
        let line = match r {
            Ok(a) => {
                let s = a.stats();
                let e = a.peak_energy();
                format!(
                    "{:10} peak={:.4} mW npe={:.3e} J/cyc segs={} cycles={} forks={} merges={} widen={} conv={} [{:.2?}]",
                    b.name(), a.peak_power().peak_mw, e.npe_j_per_cycle,
                    a.tree().segments().len(), s.cycles, s.forks, s.merges, s.widenings,
                    e.converged, t0.elapsed()
                )
            }
            Err(e) => format!("{:10} ERROR: {e} [{:.2?}]", b.name(), t0.elapsed()),
        };
        Row {
            name: b.name(),
            line,
            seconds,
        }
    });
    for row in &rows {
        println!("{}", row.line);
    }
    let total = t_suite.elapsed().as_secs_f64();
    println!(
        "suite: {} benchmarks in {total:.3} s ({} suite worker{}, engine: {})",
        rows.len(),
        suite_workers,
        if suite_workers == 1 { "" } else { "s" },
        match xbound_sim::EvalMode::from_env() {
            xbound_sim::EvalMode::EventDriven => "event-driven",
            xbound_sim::EvalMode::Levelized => "levelized oracle",
        }
    );

    if let Some(path) = json_path {
        let mut json = String::from("{\n  \"benchmarks\": [\n");
        for (i, row) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"name\": \"{}\", \"seconds\": {:.6}}}{}\n",
                row.name,
                row.seconds,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!("  ],\n  \"total_seconds\": {total:.6}\n}}\n"));
        std::fs::write(&path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}
