//! Runs the X-based co-analysis over the whole benchmark suite and prints
//! one summary line per benchmark (peak bound, NPE, tree statistics,
//! analysis runtime) — a quick health check of the full pipeline.
//!
//! ```text
//! cargo run --release -p xbound-bench --bin suite_summary
//! ```
use std::time::Instant;
use xbound_core::{CoAnalysis, ExploreConfig, UlpSystem};

fn main() {
    let sys = UlpSystem::openmsp430_class().unwrap();
    println!("gates: {}", sys.cpu().netlist().gate_count());
    for b in xbound_benchsuite::all() {
        let t0 = Instant::now();
        let program = b.program().unwrap();
        let r = CoAnalysis::new(&sys)
            .config(ExploreConfig {
                widen_threshold: b.widen_threshold(),
                max_total_cycles: 5_000_000,
                ..ExploreConfig::default()
            })
            .energy_rounds(b.energy_rounds())
            .run(&program);
        match r {
            Ok(a) => {
                let s = a.stats();
                let e = a.peak_energy();
                println!(
                    "{:10} peak={:.4} mW npe={:.3e} J/cyc segs={} cycles={} forks={} merges={} widen={} conv={} [{:.2?}]",
                    b.name(), a.peak_power().peak_mw, e.npe_j_per_cycle,
                    a.tree().segments().len(), s.cycles, s.forks, s.merges, s.widenings,
                    e.converged, t0.elapsed()
                );
            }
            Err(e) => println!("{:10} ERROR: {e} [{:.2?}]", b.name(), t0.elapsed()),
        }
    }
}
