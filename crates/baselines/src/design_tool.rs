//! The design-specification baseline (paper Fig 4, "design tool").
//!
//! Two ratings are produced:
//!
//! * [`rated_chip_mw`] — the data-sheet number: every cell performs its
//!   maximum-energy transition every cycle (the paper quotes 4.8 mW for the
//!   MSP430F1610 at its operating point);
//! * [`design_tool_rating`] — what running the EDA power tool with its
//!   default (vectorless) toggle rates reports. Peak power uses the tool's
//!   worst-case default activity; peak energy per cycle is the same figure
//!   divided by the clock (no dynamic variation is modeled — which is why
//!   this baseline is off by 47 % on energy in the paper).

use xbound_core::UlpSystem;
use xbound_power::statics::{vectorless_power_mw, VectorlessConfig};

/// The data-sheet rated power: all cells switching, milliwatts.
pub fn rated_chip_mw(system: &UlpSystem) -> f64 {
    system.analyzer().rated_peak_mw()
}

/// Result of the design-tool rating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignToolRating {
    /// Peak power requirement, milliwatts.
    pub peak_mw: f64,
    /// Normalized peak energy, joules per cycle.
    pub npe_j_per_cycle: f64,
}

/// Default worst-case activity the tool assumes when no simulation data is
/// supplied (conservative vendor default).
pub fn worst_case_defaults() -> VectorlessConfig {
    VectorlessConfig {
        input_probability: 0.5,
        input_toggle_rate: 0.5,
        register_toggle_rate: 0.5,
    }
}

/// Runs the vectorless rating with [`worst_case_defaults`].
pub fn design_tool_rating(system: &UlpSystem) -> DesignToolRating {
    design_tool_rating_with(system, &worst_case_defaults())
}

/// Runs the vectorless rating with explicit defaults.
pub fn design_tool_rating_with(system: &UlpSystem, cfg: &VectorlessConfig) -> DesignToolRating {
    let peak_mw = vectorless_power_mw(
        system.cpu().netlist(),
        system.library(),
        system.clock_hz(),
        cfg,
    );
    DesignToolRating {
        peak_mw,
        npe_j_per_cycle: peak_mw * 1e-3 / system.clock_hz(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rated_exceeds_design_tool_exceeds_zero() {
        let sys = UlpSystem::openmsp430_class().unwrap();
        let rated = rated_chip_mw(&sys);
        let dt = design_tool_rating(&sys);
        assert!(
            rated > dt.peak_mw,
            "rated {rated} vs design tool {}",
            dt.peak_mw
        );
        assert!(dt.peak_mw > 0.0);
        assert!(dt.npe_j_per_cycle > 0.0);
    }

    #[test]
    fn higher_default_rate_higher_rating() {
        let sys = UlpSystem::openmsp430_class().unwrap();
        let low = design_tool_rating_with(
            &sys,
            &VectorlessConfig {
                input_toggle_rate: 0.1,
                register_toggle_rate: 0.1,
                ..VectorlessConfig::default()
            },
        );
        let high = design_tool_rating(&sys);
        assert!(high.peak_mw > low.peak_mw);
    }
}
