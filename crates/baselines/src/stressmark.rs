//! GA-generated stressmarks (paper Fig 4, "stressmark"; method of Kim et
//! al.'s AUDIT, adapted to target peak instantaneous power and average
//! power on the ULP core).
//!
//! A genome is a short sequence of instruction genes drawn from a catalog
//! covering the core's power-relevant behaviors (ALU traffic, bus traffic,
//! stack traffic, hardware-multiplier traffic). The phenotype is an
//! endless loop executing the sequence; fitness is the measured peak (or
//! average) power over a fixed window. Tournament selection, single-point
//! crossover, per-gene mutation, and elitism evolve the population.

use crate::measure_cycles_batch;
use rand::RngExt;
use xbound_core::{par, AnalysisError, UlpSystem};
use xbound_msp430::{assemble, Program};

/// What the GA maximizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StressTarget {
    /// Peak instantaneous power.
    PeakPower,
    /// Average (sustained) power.
    AveragePower,
}

/// GA parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Generations to evolve.
    pub generations: usize,
    /// Genes (instructions) per individual.
    pub genome_len: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Individuals preserved unchanged per generation.
    pub elitism: usize,
    /// Cycles measured per fitness evaluation.
    pub eval_cycles: u64,
    /// Lane width for the batched fitness evaluation (0 = auto, see
    /// [`par::resolve_lanes`]); fitness values are bit-identical at any
    /// width.
    pub lanes: usize,
    /// Worker-pool size for fitness lane groups (0 = auto, see
    /// [`par::resolve_threads`]).
    pub threads: usize,
}

impl Default for GaConfig {
    fn default() -> GaConfig {
        GaConfig {
            population: 16,
            generations: 10,
            genome_len: 12,
            mutation_rate: 0.15,
            elitism: 2,
            eval_cycles: 400,
            lanes: 0,
            threads: 0,
        }
    }
}

/// One instruction gene.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Gene {
    AluRR { op: u8, rs: u8, rd: u8 },
    AluImm { op: u8, imm: u16, rd: u8 },
    LoadAbs { word: u8, rd: u8 },
    StoreAbs { rs: u8, word: u8 },
    Push { rs: u8 },
    PopTo { rd: u8 },
    MpyOp1 { rs: u8 },
    MpyOp2 { rs: u8 },
    MpyRead { rd: u8 },
    Swpb { rd: u8 },
    Nop,
}

const ALU_OPS: [&str; 6] = ["add", "sub", "xor", "and", "bis", "bic"];

fn reg_name(r: u8) -> String {
    format!("r{}", 4 + (r % 10)) // r4..r13
}

impl Gene {
    fn random<R: RngExt>(rng: &mut R) -> Gene {
        match rng.random_range(0..11u32) {
            0 => Gene::AluRR {
                op: rng.random_range(0..ALU_OPS.len() as u8),
                rs: rng.random_range(0..10),
                rd: rng.random_range(0..10),
            },
            1 => Gene::AluImm {
                op: rng.random_range(0..ALU_OPS.len() as u8),
                imm: rng.random_range(0..=u16::MAX),
                rd: rng.random_range(0..10),
            },
            2 => Gene::LoadAbs {
                word: rng.random_range(0..16),
                rd: rng.random_range(0..10),
            },
            3 => Gene::StoreAbs {
                rs: rng.random_range(0..10),
                word: rng.random_range(0..16),
            },
            4 => Gene::Push {
                rs: rng.random_range(0..10),
            },
            5 => Gene::PopTo {
                rd: rng.random_range(0..10),
            },
            6 => Gene::MpyOp1 {
                rs: rng.random_range(0..10),
            },
            7 => Gene::MpyOp2 {
                rs: rng.random_range(0..10),
            },
            8 => Gene::MpyRead {
                rd: rng.random_range(0..10),
            },
            9 => Gene::Swpb {
                rd: rng.random_range(0..10),
            },
            _ => Gene::Nop,
        }
    }

    fn emit(&self, out: &mut String, stack_depth: &mut i32) {
        match *self {
            Gene::AluRR { op, rs, rd } => {
                let op = ALU_OPS[(op as usize) % ALU_OPS.len()];
                out.push_str(&format!("    {op} {}, {}\n", reg_name(rs), reg_name(rd)));
            }
            Gene::AluImm { op, imm, rd } => {
                let op = ALU_OPS[(op as usize) % ALU_OPS.len()];
                out.push_str(&format!("    {op} #{imm}, {}\n", reg_name(rd)));
            }
            Gene::LoadAbs { word, rd } => {
                let addr = 0x0200 + 2 * (word as u16);
                out.push_str(&format!("    mov &0x{addr:04x}, {}\n", reg_name(rd)));
            }
            Gene::StoreAbs { rs, word } => {
                let addr = 0x0200 + 2 * (word as u16);
                out.push_str(&format!("    mov {}, &0x{addr:04x}\n", reg_name(rs)));
            }
            Gene::Push { rs } => {
                out.push_str(&format!("    push {}\n", reg_name(rs)));
                *stack_depth += 1;
            }
            Gene::PopTo { rd } => {
                if *stack_depth > 0 {
                    out.push_str(&format!("    pop {}\n", reg_name(rd)));
                    *stack_depth -= 1;
                } else {
                    out.push_str("    nop\n");
                }
            }
            Gene::MpyOp1 { rs } => {
                out.push_str(&format!("    mov {}, &0x0130\n", reg_name(rs)));
            }
            Gene::MpyOp2 { rs } => {
                out.push_str(&format!("    mov {}, &0x0138\n", reg_name(rs)));
            }
            Gene::MpyRead { rd } => {
                out.push_str(&format!("    mov &0x013A, {}\n", reg_name(rd)));
            }
            Gene::Swpb { rd } => {
                out.push_str(&format!("    swpb {}\n", reg_name(rd)));
            }
            Gene::Nop => out.push_str("    nop\n"),
        }
    }
}

/// Renders a genome to an endless-loop stressmark.
fn render(genome: &[Gene]) -> String {
    let mut s = String::from(
        "        .org 0xF000\nmain:\n    mov #0x0A00, sp\n    mov #0xAAAA, r4\n    mov #0x5555, r5\n    mov #0xFFFF, r6\n    mov #0x0F0F, r7\n    mov #0xF0F0, r8\n    mov #0x3C3C, r9\n    mov #0xC3C3, r10\n    mov #0x00FF, r11\n    mov #0xFF00, r12\n    mov #0, r13\nloop:\n",
    );
    let mut depth = 0i32;
    for g in genome {
        g.emit(&mut s, &mut depth);
    }
    for _ in 0..depth {
        s.push_str("    pop r4\n"); // re-balance the stack each iteration
    }
    s.push_str("    jmp loop\n");
    s
}

/// Result of one GA run.
#[derive(Debug, Clone)]
pub struct StressmarkResult {
    /// The best stressmark found, as assembly source.
    pub source: String,
    /// Its measured peak power, milliwatts.
    pub peak_mw: f64,
    /// Its measured average power, milliwatts.
    pub avg_mw: f64,
    /// Best fitness per generation (for convergence plots).
    pub history: Vec<f64>,
}

/// Evolves a stressmark against `system`.
///
/// # Errors
///
/// Propagates simulator errors from fitness evaluation.
pub fn evolve<R: RngExt>(
    system: &UlpSystem,
    target: StressTarget,
    config: &GaConfig,
    rng: &mut R,
) -> Result<StressmarkResult, AnalysisError> {
    let mut population: Vec<Vec<Gene>> = (0..config.population)
        .map(|_| (0..config.genome_len).map(|_| Gene::random(rng)).collect())
        .collect();
    // Seed two individuals with a multiplier-pounding pattern (operands
    // alternating all-ones / all-zeros flip the whole array each trigger),
    // the strongest known power virus on this core — the GA refines it.
    let pound: Vec<Gene> = (0..config.genome_len)
        .map(|i| match i % 6 {
            0 => Gene::MpyOp1 { rs: 2 }, // r6 = 0xFFFF
            1 => Gene::MpyOp2 { rs: 2 },
            2 => Gene::MpyRead { rd: 0 },
            3 => Gene::MpyOp1 { rs: 9 }, // r13 = 0
            4 => Gene::MpyOp2 { rs: 9 },
            _ => Gene::AluRR {
                op: 2,
                rs: 2,
                rd: 1,
            }, // xor r6, r5
        })
        .collect();
    if config.population >= 2 {
        population[0] = pound.clone();
        let mut alt = pound;
        alt.rotate_left(3);
        population[1] = alt;
    }

    // The whole population is scored through the batched concrete engine:
    // each lane executes one rendered genome, so a single gate pass per
    // cycle measures up to a full lane group of individuals. Lane groups
    // fan out across the worker pool (parallelism × bit-parallelism); the
    // per-genome traces — and therefore every GA decision — are
    // bit-identical to scalar evaluation at any lane width/thread count.
    let score_population =
        |population: &[Vec<Gene>], system: &UlpSystem| -> Result<Vec<(f64, f64)>, AnalysisError> {
            let programs: Vec<Program> = population
                .iter()
                .map(|genome| assemble(&render(genome)).expect("rendered stressmark assembles"))
                .collect();
            let lanes = par::resolve_lanes(config.lanes);
            let chunks: Vec<&[Program]> = programs.chunks(lanes).collect();
            let results = par::par_map(config.threads, chunks, |_, chunk| {
                let refs: Vec<&Program> = chunk.iter().collect();
                measure_cycles_batch(system, &refs, config.eval_cycles)
            });
            let mut out = Vec::with_capacity(population.len());
            for r in results {
                out.extend(r?.into_iter().map(|t| (t.peak_mw(), t.avg_mw())));
            }
            Ok(out)
        };

    let mut history = Vec::with_capacity(config.generations);
    let mut scored: Vec<(f64, f64, Vec<Gene>)> = Vec::new();
    for _gen in 0..config.generations {
        scored.clear();
        for (genome, (peak, avg)) in population
            .iter()
            .zip(score_population(&population, system)?)
        {
            let fit = match target {
                StressTarget::PeakPower => peak,
                StressTarget::AveragePower => avg,
            };
            scored.push((fit, peak, genome.clone()));
        }
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite fitness"));
        history.push(scored[0].0);
        // Next generation: elitism + tournament/crossover/mutation.
        let mut next: Vec<Vec<Gene>> = scored
            .iter()
            .take(config.elitism)
            .map(|(_, _, g)| g.clone())
            .collect();
        while next.len() < config.population {
            let pick = |rng: &mut R, scored: &[(f64, f64, Vec<Gene>)]| -> Vec<Gene> {
                let a = rng.random_range(0..scored.len());
                let b = rng.random_range(0..scored.len());
                scored[a.min(b)].2.clone() // sorted: lower index = fitter
            };
            let pa = pick(rng, &scored);
            let pb = pick(rng, &scored);
            let cut = rng.random_range(1..config.genome_len.max(2));
            let mut child: Vec<Gene> = pa[..cut.min(pa.len())].to_vec();
            child.extend_from_slice(&pb[cut.min(pb.len())..]);
            child.truncate(config.genome_len);
            while child.len() < config.genome_len {
                child.push(Gene::random(rng));
            }
            for g in child.iter_mut() {
                if rng.random_range(0.0..1.0) < config.mutation_rate {
                    *g = Gene::random(rng);
                }
            }
            next.push(child);
        }
        population = next;
    }
    // Final scoring pass to pick the champion.
    let mut best: Option<(f64, f64, Vec<Gene>)> = None;
    for (genome, (peak, avg)) in population
        .iter()
        .zip(score_population(&population, system)?)
    {
        let fit = match target {
            StressTarget::PeakPower => peak,
            StressTarget::AveragePower => avg,
        };
        if best.as_ref().map(|(f, _, _)| fit > *f).unwrap_or(true) {
            best = Some((
                fit,
                if target == StressTarget::PeakPower {
                    avg
                } else {
                    peak
                },
                genome.clone(),
            ));
        }
    }
    let (fit, other, genome) = best.expect("non-empty population");
    let (peak_mw, avg_mw) = match target {
        StressTarget::PeakPower => (fit, other),
        StressTarget::AveragePower => (other, fit),
    };
    Ok(StressmarkResult {
        source: render(&genome),
        peak_mw,
        avg_mw,
        history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rendered_genomes_assemble() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let genome: Vec<Gene> = (0..10).map(|_| Gene::random(&mut rng)).collect();
            let src = render(&genome);
            assemble(&src).unwrap_or_else(|e| panic!("{e}\n---\n{src}"));
        }
    }

    #[test]
    fn ga_improves_or_holds_fitness() {
        let sys = UlpSystem::openmsp430_class().unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = GaConfig {
            population: 6,
            generations: 3,
            genome_len: 8,
            eval_cycles: 150,
            ..GaConfig::default()
        };
        let result = evolve(&sys, StressTarget::PeakPower, &cfg, &mut rng).unwrap();
        assert!(result.peak_mw > 0.0);
        assert!(result.avg_mw > 0.0);
        assert_eq!(result.history.len(), 3);
        // Elitism guarantees monotone best-of-generation fitness.
        for w in result.history.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "elitism keeps the champion");
        }
        assert!(result.source.contains("jmp loop"));
    }
}
