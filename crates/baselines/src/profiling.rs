//! Input-based profiling with guardbanding (paper Fig 4, "GB input-based").
//!
//! The application is measured over `n` randomly generated input sets; the
//! observed peak power and normalized peak energy are multiplied by the
//! 4/3 guardband of prior studies. The guardband is required because
//! profiling cannot cover all inputs — the paper shows input-induced peak
//! variation above 25 %, so an unguarded profile under-provisions.

use crate::GUARDBAND;
use rand::RngExt;
use xbound_benchsuite::Benchmark;
use xbound_core::{AnalysisError, UlpSystem};

/// One profiling run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStat {
    /// Inputs used.
    pub inputs: Vec<u16>,
    /// Measured peak power, milliwatts.
    pub peak_mw: f64,
    /// Measured average power, milliwatts.
    pub avg_mw: f64,
    /// Runtime, cycles.
    pub cycles: u64,
    /// Normalized peak energy, joules per cycle.
    pub npe_j_per_cycle: f64,
}

/// Aggregate result of a profiling campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilingResult {
    /// Per-run statistics.
    pub runs: Vec<RunStat>,
    /// Highest observed peak power, milliwatts.
    pub observed_peak_mw: f64,
    /// Lowest observed peak power (for the Fig 7a error bars).
    pub min_peak_mw: f64,
    /// Guardbanded peak power (×4/3), milliwatts.
    pub gb_peak_mw: f64,
    /// Highest observed NPE, joules per cycle.
    pub observed_npe: f64,
    /// Lowest observed NPE.
    pub min_npe: f64,
    /// Guardbanded NPE (×4/3).
    pub gb_npe: f64,
}

/// Profiles `bench` over `n` random input sets.
///
/// The campaign's concrete runs go through the batched engine
/// ([`UlpSystem::profile_concrete_population`]): the input population is
/// chunked into lane groups and every group shares one gate pass per
/// cycle. Lane groups run sequentially here — campaigns are typically
/// already fanned out across benchmarks one level up — and the per-run
/// statistics are bit-identical to scalar profiling at any lane width.
///
/// # Errors
///
/// Propagates assembler/simulator errors ([`AnalysisError`] also covers a
/// run that fails to halt within the benchmark's cycle budget).
pub fn profile<R: RngExt>(
    system: &UlpSystem,
    bench: &Benchmark,
    n: usize,
    rng: &mut R,
) -> Result<ProfilingResult, AnalysisError> {
    let program = bench.program().expect("benchmark sources assemble");
    // Draw every input set first (same RNG stream as per-run profiling),
    // then measure the whole population through the batch engine.
    let input_sets: Vec<Vec<u16>> = (0..n).map(|_| bench.gen_inputs(rng)).collect();
    let results = system.profile_concrete_population(
        &program,
        &input_sets,
        bench.max_concrete_cycles(),
        0,
        1,
    )?;
    let runs: Vec<RunStat> = input_sets
        .into_iter()
        .zip(results)
        .map(|(inputs, (_, trace))| RunStat {
            inputs,
            peak_mw: trace.peak_mw(),
            avg_mw: trace.avg_mw(),
            cycles: trace.cycles() as u64,
            npe_j_per_cycle: trace.energy_per_cycle_j(),
        })
        .collect();
    let observed_peak_mw = runs.iter().map(|r| r.peak_mw).fold(0.0, f64::max);
    let min_peak_mw = runs.iter().map(|r| r.peak_mw).fold(f64::INFINITY, f64::min);
    let observed_npe = runs.iter().map(|r| r.npe_j_per_cycle).fold(0.0, f64::max);
    let min_npe = runs
        .iter()
        .map(|r| r.npe_j_per_cycle)
        .fold(f64::INFINITY, f64::min);
    Ok(ProfilingResult {
        runs,
        observed_peak_mw,
        min_peak_mw,
        gb_peak_mw: observed_peak_mw * GUARDBAND,
        observed_npe,
        min_npe,
        gb_npe: observed_npe * GUARDBAND,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn profiling_produces_guardbanded_bounds() {
        let sys = UlpSystem::openmsp430_class().unwrap();
        let bench = xbound_benchsuite::by_name("intAVG").unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let result = profile(&sys, bench, 3, &mut rng).unwrap();
        assert_eq!(result.runs.len(), 3);
        assert!(result.observed_peak_mw > 0.0);
        assert!((result.gb_peak_mw / result.observed_peak_mw - GUARDBAND).abs() < 1e-12);
        assert!(result.gb_npe >= result.observed_npe);
        assert!(result.min_peak_mw <= result.observed_peak_mw);
        for r in &result.runs {
            assert!(r.avg_mw <= r.peak_mw);
            assert!(r.cycles > 10);
        }
    }
}
