//! Conventional techniques for rating peak power and energy (paper §4.2).
//!
//! Three baselines are reproduced, matching Figure 4's methodology
//! overview:
//!
//! * [`design_tool`] — rating from the design specification: vectorless
//!   power analysis at the EDA tool's default toggle rates, plus the
//!   data-sheet "rated" power (every cell switching);
//! * [`stressmark`] — a genetic algorithm evolves instruction sequences
//!   that maximize measured peak (or average) power, in the style of
//!   Kim et al.'s AUDIT framework;
//! * [`profiling`] — input-based profiling over many input sets with the
//!   4/3 guardband of prior work applied to the observed peak.
//!
//! All three over-approximate application-specific behavior; the paper's
//! X-based co-analysis (in `xbound-core`) beats each of them while staying
//! sound — the experiments harness regenerates that comparison (Fig 16/17).

pub mod design_tool;
pub mod profiling;
pub mod stressmark;

use xbound_core::UlpSystem;
use xbound_logic::Frame;
use xbound_power::PowerTrace;

/// The guardband factor applied to profiled peaks (paper §4.2, from prior
/// studies; appropriate for the ~25 % input-induced variability of Fig 7a).
pub const GUARDBAND: f64 = 4.0 / 3.0;

/// Runs a program (or endless stressmark) for a fixed number of cycles and
/// measures its power — no halt required.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn measure_cycles(
    system: &UlpSystem,
    program: &xbound_msp430::Program,
    inputs: &[u16],
    cycles: u64,
) -> Result<(Vec<Frame>, PowerTrace), xbound_core::AnalysisError> {
    let cpu = system.cpu();
    let mut sim = cpu.new_sim();
    xbound_cpu::Cpu::load_program(&mut sim, program, true);
    xbound_cpu::Cpu::set_inputs(&mut sim, inputs);
    let mut frames = Vec::with_capacity(cycles as usize);
    for _ in 0..cycles {
        frames.push(sim.eval()?.clone());
        sim.commit();
    }
    Ok((frames.clone(), system.analyzer().analyze(&frames)))
}

/// Batched [`measure_cycles`]: runs up to [`xbound_logic::MAX_LANES`]
/// *different* programs (one per lane, no inputs — the stressmark shape)
/// for a fixed cycle count through one
/// [`xbound_sim::BatchSimulator`], returning one measured power trace
/// per program. Each trace is bit-identical to the corresponding scalar
/// [`measure_cycles`] run — the GA's fitness ranking cannot depend on
/// the lane width.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `programs` is empty or longer than
/// [`xbound_logic::MAX_LANES`].
pub fn measure_cycles_batch(
    system: &UlpSystem,
    programs: &[&xbound_msp430::Program],
    cycles: u64,
) -> Result<Vec<PowerTrace>, xbound_core::AnalysisError> {
    let lanes = programs.len();
    let mut sim = system.cpu().new_batch_sim(lanes);
    for (lane, program) in programs.iter().enumerate() {
        xbound_cpu::Cpu::load_program_lane(&mut sim, lane, program, true);
    }
    sim.set_change_logging(true);
    // Stream each settled cycle into the batched power accumulator — the
    // frame sequence is never materialized, and the engine's sorted
    // change log limits each accumulation to the nets that actually
    // changed (the ascending order keeps the f64 sums bit-identical to a
    // full scan).
    let analyzer = system.analyzer();
    let mut acc = analyzer.batch_accumulator(lanes);
    let mut changes: Vec<u32> = Vec::new();
    for _ in 0..cycles {
        sim.eval()?;
        sim.swap_change_log(&mut changes);
        changes.sort_unstable();
        changes.dedup();
        acc.push_changed(sim.frame(), &changes);
        changes.clear();
        sim.commit();
    }
    Ok(acc.finish(None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbound_msp430::assemble;

    #[test]
    fn measure_cycles_runs_fixed_window() {
        let sys = UlpSystem::openmsp430_class().unwrap();
        let p = assemble("main: add #1, r4\n jmp main\n").unwrap();
        let (frames, trace) = measure_cycles(&sys, &p, &[], 64).unwrap();
        assert_eq!(frames.len(), 64);
        assert_eq!(trace.cycles(), 64);
        assert!(trace.peak_mw() > 0.0);
    }
}
