//! End-to-end daemon tests over real TCP connections: cache hits with
//! byte-identical responses, single-flight deduplication of concurrent
//! identical requests, warm restarts from the on-disk store, and
//! byte-identity of daemon bounds against the direct `CoAnalysis` path.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use xbound_service::json::Json;
use xbound_service::{protocol, Server, ServiceConfig};

/// A blocking line-oriented test client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: BufWriter::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "daemon closed the connection");
        line.trim_end_matches('\n').to_string()
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

fn memory_only_server() -> Server {
    Server::start(ServiceConfig {
        disk_cache: false,
        workers: 2,
        ..ServiceConfig::default()
    })
    .expect("server starts")
}

fn stat(response: &str, key: &str) -> u64 {
    let v = Json::parse(response).expect("stats parse");
    assert_eq!(
        v.get("ok").and_then(Json::as_bool),
        Some(true),
        "{response}"
    );
    v.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats missing {key}: {response}"))
}

fn tiny_source(tag: u16) -> String {
    format!(
        r#"
        main:
            mov #{tag}, r4
            add r4, r4
            mov &0x0020, r5
            add r5, r4
            jmp $
        "#
    )
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("xbound-service-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn analyze_twice_second_served_from_cache_with_identical_bytes() {
    let server = memory_only_server();
    let mut client = Client::connect(server.addr());
    let request = protocol::analyze_source_request(&tiny_source(1));
    let first = client.roundtrip(&request);
    assert!(first.contains("\"ok\": true"), "{first}");
    assert!(first.contains("\"bounds\": {"), "{first}");
    let second = client.roundtrip(&request);
    assert_eq!(first, second, "cached response must be byte-identical");
    let stats = client.roundtrip(&protocol::op_request("stats"));
    assert_eq!(stat(&stats, "analyses_run"), 1, "{stats}");
    assert!(stat(&stats, "cache_hits_memory") >= 1, "{stats}");
    assert_eq!(stat(&stats, "cache_entries"), 1, "{stats}");
    // A second connection sees the same bytes too.
    let third = Client::connect(server.addr()).roundtrip(&request);
    assert_eq!(first, third);
    let shutdown = client.roundtrip(&protocol::op_request("shutdown"));
    assert!(shutdown.contains("\"shutting_down\": true"), "{shutdown}");
    server.join();
}

#[test]
fn concurrent_identical_requests_run_one_analysis() {
    let server = memory_only_server();
    let addr = server.addr();
    let request = protocol::analyze_source_request(&tiny_source(2));
    let responses: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let request = request.clone();
                s.spawn(move || Client::connect(addr).roundtrip(&request))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    for r in &responses {
        assert_eq!(r, &responses[0], "all concurrent answers identical");
        assert!(r.contains("\"ok\": true"), "{r}");
    }
    let stats = Client::connect(addr).roundtrip(&protocol::op_request("stats"));
    assert_eq!(
        stat(&stats, "analyses_run"),
        1,
        "single-flight must collapse concurrent duplicates: {stats}"
    );
    Client::connect(addr).roundtrip(&protocol::op_request("shutdown"));
    server.join();
}

#[test]
fn cache_persists_across_daemon_restart() {
    let dir = fresh_dir("persist");
    let config = || ServiceConfig {
        cache_dir: Some(dir.clone()),
        workers: 1,
        ..ServiceConfig::default()
    };
    let request = protocol::analyze_source_request(&tiny_source(3));
    let first = {
        let server = Server::start(config()).expect("first daemon");
        let mut client = Client::connect(server.addr());
        let first = client.roundtrip(&request);
        assert!(first.contains("\"ok\": true"), "{first}");
        client.roundtrip(&protocol::op_request("shutdown"));
        server.join();
        first
    };
    // A fresh daemon on the same cache dir answers warm: byte-identical
    // bounds, zero analyses run, one disk hit.
    let server = Server::start(config()).expect("second daemon");
    let mut client = Client::connect(server.addr());
    let replay = client.roundtrip(&request);
    assert_eq!(first, replay, "disk-cached answer must be byte-identical");
    let stats = client.roundtrip(&protocol::op_request("stats"));
    assert_eq!(stat(&stats, "analyses_run"), 0, "{stats}");
    assert_eq!(stat(&stats, "cache_hits_disk"), 1, "{stats}");
    client.roundtrip(&protocol::op_request("shutdown"));
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn suite_bounds_match_direct_coanalysis_bytes() {
    use xbound_core::{BoundsReport, CoAnalysis, ExploreConfig, UlpSystem};

    let bench = xbound_benchsuite::by_name("tHold").expect("exists");
    // The direct path, exactly as `suite_summary` runs it.
    let system = UlpSystem::openmsp430_class().expect("builds");
    let program = bench.program().expect("assembles");
    let analysis = CoAnalysis::new(&system)
        .config(ExploreConfig {
            widen_threshold: bench.widen_threshold(),
            ..ExploreConfig::suite_default()
        })
        .energy_rounds(bench.energy_rounds())
        .run(&program)
        .expect("analyzes");
    let direct = protocol::bounds_line(bench.name(), &BoundsReport::from_analysis(&analysis));

    let server = memory_only_server();
    let mut client = Client::connect(server.addr());
    client.send(&protocol::suite_request(&["tHold".to_string()]));
    let result = client.recv();
    let done = client.recv();
    assert!(done.contains("\"done\": 1"), "{done}");
    let v = Json::parse(&result).expect("parses");
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{result}");
    let report =
        xbound_service::cache::bounds_from_json(v.get("bounds").expect("bounds")).expect("valid");
    let daemon = protocol::bounds_line("tHold", &report);
    assert_eq!(
        daemon, direct,
        "daemon bounds must be byte-identical to the direct path"
    );
    client.roundtrip(&protocol::op_request("shutdown"));
    server.join();
}

#[test]
fn malformed_and_unknown_requests_get_error_responses() {
    let server = memory_only_server();
    let mut client = Client::connect(server.addr());
    let bad = client.roundtrip("this is not json");
    assert!(bad.contains("\"ok\": false"), "{bad}");
    let unknown = client.roundtrip(r#"{"op": "frobnicate"}"#);
    assert!(unknown.contains("unknown op"), "{unknown}");
    let bad_bench = client.roundtrip(r#"{"op": "suite", "benches": ["nope"]}"#);
    assert!(bad_bench.contains("unknown benchmark"), "{bad_bench}");
    let bad_asm = client.roundtrip(r#"{"op": "analyze", "source": "not assembly at all"}"#);
    assert!(bad_asm.contains("\"ok\": false"), "{bad_asm}");
    // The connection survives all of the above.
    let stats = client.roundtrip(&protocol::op_request("stats"));
    assert!(stats.contains("\"ok\": true"), "{stats}");
    client.roundtrip(&protocol::op_request("shutdown"));
    server.join();
}

#[test]
fn sweep_streams_corner_stamped_bounds_that_compose_with_the_cache() {
    let server = memory_only_server();
    let mut client = Client::connect(server.addr());
    client.send(&protocol::sweep_request(&["mult".to_string()], 2));
    let first = client.recv();
    let second = client.recv();
    let done = client.recv();
    assert!(
        done.contains("\"done\": 1") && done.contains("\"corners\": 2"),
        "{done}"
    );
    for (line, label) in [(&first, "ulp65@100MHz"), (&second, "ulp65@50MHz")] {
        let v = Json::parse(line).expect("parses");
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{line}");
        assert_eq!(v.get("name").and_then(Json::as_str), Some("mult"), "{line}");
        assert_eq!(
            v.get("corner").and_then(Json::as_str),
            Some(label),
            "corners stream in grid order: {line}"
        );
    }
    // The nominal corner seeded the cache: a plain suite request for the
    // same benchmark is a pure cache hit with byte-identical bounds.
    let v = Json::parse(&first).expect("parses");
    let sweep_bounds =
        xbound_service::cache::bounds_from_json(v.get("bounds").expect("bounds")).expect("valid");
    client.send(&protocol::suite_request(&["mult".to_string()]));
    let suite_line = client.recv();
    let _done = client.recv();
    let sv = Json::parse(&suite_line).expect("parses");
    let suite_bounds =
        xbound_service::cache::bounds_from_json(sv.get("bounds").expect("bounds")).expect("valid");
    assert_eq!(
        suite_bounds.to_json(),
        sweep_bounds.to_json(),
        "sweep corner and suite bounds must be byte-identical"
    );
    let stats = client.roundtrip(&protocol::op_request("stats"));
    assert_eq!(stat(&stats, "sweeps_run"), 1, "{stats}");
    assert_eq!(stat(&stats, "sweep_corners"), 2, "{stats}");
    assert_eq!(stat(&stats, "sweep_tree_reuse"), 1, "{stats}");
    assert!(stat(&stats, "cache_hits_memory") >= 1, "{stats}");
    client.roundtrip(&protocol::op_request("shutdown"));
    server.join();
}
