//! Incremental re-analysis through the daemon: the subtree memo's hit /
//! miss counters surface in `stats`, a one-instruction edit re-analyzes
//! warm with byte-identical bounds, and the invalidation matrix holds at
//! the protocol level (result-relevant knobs miss, result-irrelevant
//! knobs hit).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use xbound_core::jsonout::JsonWriter;
use xbound_service::json::Json;
use xbound_service::{protocol, Server, ServiceConfig};

struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: BufWriter::new(stream),
        }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "daemon closed the connection");
        line.trim_end_matches('\n').to_string()
    }
}

fn memory_only_server() -> Server {
    Server::start(ServiceConfig {
        disk_cache: false,
        workers: 2,
        ..ServiceConfig::default()
    })
    .expect("server starts")
}

fn stat(response: &str, key: &str) -> u64 {
    let v = Json::parse(response).expect("stats parse");
    v.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats missing {key}: {response}"))
}

/// `analyze` request with explicit knobs.
fn analyze_with(source: &str, knobs: &[(&str, u64)]) -> String {
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.field_str("op", "analyze");
    w.field_str("source", source);
    for (k, v) in knobs {
        w.field_u64(k, *v);
    }
    w.end_object();
    w.finish()
}

/// Input-dependent two-arm program; `tail_imm` parameterizes an immediate
/// several instructions into the fall-through arm (a one-word ROM edit).
fn two_arm_source(tail_imm: u16) -> String {
    format!(
        r#"
        main:
            mov &0x0020, r4
            cmp #1, r4
            jeq one
            mov #12, r5
            add r4, r5
            mov #{tail_imm}, r7
            add r7, r5
            jmp done
        one:
            mov r4, &0x0130
            nop
            mov &0x013A, r5
        done:
            mov r5, &0x0200
            jmp $
        "#
    )
}

struct MemoCounters {
    hits: u64,
    misses: u64,
    stitched: u64,
}

fn memo_counters(client: &mut Client) -> MemoCounters {
    let stats = client.roundtrip(&protocol::op_request("stats"));
    assert_eq!(
        Json::parse(&stats)
            .expect("parse")
            .get("memo_enabled")
            .and_then(Json::as_bool),
        Some(true),
        "memo must be on by default: {stats}"
    );
    MemoCounters {
        hits: stat(&stats, "memo_hits"),
        misses: stat(&stats, "memo_misses"),
        stitched: stat(&stats, "memo_stitched_segments"),
    }
}

#[test]
fn edited_program_reanalyzes_warm_with_byte_identical_bounds() {
    let warm_server = memory_only_server();
    let mut client = Client::connect(warm_server.addr());

    // Cold: seed the memo with the original program.
    let cold = client.roundtrip(&analyze_with(&two_arm_source(100), &[]));
    assert!(cold.contains("\"ok\": true"), "{cold}");
    let seeded = memo_counters(&mut client);
    assert!(seeded.misses > 0, "cold run must look paths up");
    assert_eq!(seeded.hits, 0, "nothing to hit on a fresh daemon");

    // One-instruction edit: a different content address (the bound cache
    // misses), but the unperturbed execution subtrees replay warm.
    let edited = two_arm_source(101);
    let warm = client.roundtrip(&analyze_with(&edited, &[]));
    assert!(warm.contains("\"ok\": true"), "{warm}");
    let after = memo_counters(&mut client);
    assert!(after.hits > seeded.hits, "edit must stitch subtrees");
    assert!(after.misses > seeded.misses, "edited cone must re-simulate");
    assert!(after.stitched > 0, "stitched segments surface in stats");

    // Byte-identity: a fresh daemon (cold memo) must produce the exact
    // same response for the edited program.
    let cold_server = memory_only_server();
    let cold_edited = Client::connect(cold_server.addr()).roundtrip(&analyze_with(&edited, &[]));
    assert_eq!(
        warm, cold_edited,
        "warm (memoized) response must be byte-identical to a cold daemon's"
    );
    Client::connect(cold_server.addr()).roundtrip(&protocol::op_request("shutdown"));
    cold_server.join();

    client.roundtrip(&protocol::op_request("shutdown"));
    warm_server.join();
}

#[test]
fn invalidation_matrix_over_the_protocol() {
    let server = memory_only_server();
    let mut client = Client::connect(server.addr());
    let source = two_arm_source(100);

    let r = client.roundtrip(&analyze_with(&source, &[("widen_threshold", 8)]));
    assert!(r.contains("\"ok\": true"), "{r}");
    let seeded = memo_counters(&mut client);

    // energy_rounds is not result-relevant to exploration: a different
    // value is a fresh analysis (new content address) that replays the
    // whole tree from the memo.
    let r = client.roundtrip(&analyze_with(
        &source,
        &[("widen_threshold", 8), ("energy_rounds", 777)],
    ));
    assert!(r.contains("\"ok\": true"), "{r}");
    let warm = memo_counters(&mut client);
    assert!(warm.hits > seeded.hits, "energy_rounds change must hit");
    assert_eq!(
        warm.misses, seeded.misses,
        "energy_rounds change must not re-simulate"
    );

    // Result-relevant knobs invalidate: each change must miss (and must
    // not stitch stale subtrees).
    let mut before = warm;
    let matrix: [&[(&str, u64)]; 3] = [
        &[("widen_threshold", 9)],
        &[("widen_threshold", 8), ("max_segment_cycles", 9_999)],
        &[("widen_threshold", 8), ("max_total_cycles", 99_999)],
    ];
    for knobs in matrix {
        let r = client.roundtrip(&analyze_with(&source, knobs));
        assert!(r.contains("\"ok\": true"), "{r}");
        let after = memo_counters(&mut client);
        assert!(
            after.misses > before.misses,
            "knobs {knobs:?} must invalidate the memo"
        );
        assert_eq!(
            after.hits, before.hits,
            "knobs {knobs:?} must not hit stale entries"
        );
        before = after;
    }

    client.roundtrip(&protocol::op_request("shutdown"));
    server.join();
}
