//! Two-writer stress for the on-disk cache's write-then-rename: daemons
//! (or a daemon racing a warm restart) sharing one `XBOUND_CACHE_DIR`
//! must never rename a partially-written file into place. Writers use
//! unique tmp names (pid + monotonic counter) and rename over existing
//! entries, so a concurrent reader always sees a complete, parseable
//! document.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use xbound_core::{BoundsReport, CoAnalysis, ExploreConfig, UlpSystem};
use xbound_msp430::assemble;
use xbound_service::cache::{BoundCache, KeyMaterial};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("xbound-cache-stress-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create stress dir");
    dir
}

#[test]
fn two_writers_one_reader_never_observe_a_partial_entry() {
    let system = UlpSystem::openmsp430_class().expect("builds");
    let program = assemble("main: mov #7, r4\n add r4, r4\n jmp $\n").expect("assembles");
    let config = ExploreConfig::suite_default();
    let report = CoAnalysis::new(&system)
        .run(&program)
        .map(|a| BoundsReport::from_analysis(&a))
        .expect("analyzes");
    let key = KeyMaterial::new(&system, &program, &config, 1000);

    let dir = fresh_dir("two-writers");
    // Seed the entry so the reader has something to race against from
    // iteration zero.
    BoundCache::new(4, Some(dir.clone())).put(&key, &report);

    const ROUNDS: usize = 300;
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // Two writers mimicking two daemons sharing the directory: both
        // rewrite the same content address as fast as they can.
        for w in 0..2 {
            let cache = BoundCache::new(4, Some(dir.clone()));
            let key = &key;
            let report = &report;
            let stop = &stop;
            s.spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    cache.put(key, report);
                    i += 1;
                    if w == 0 && i >= ROUNDS {
                        stop.store(true, Ordering::Relaxed);
                    }
                }
            });
        }
        // The reader takes a fresh cache instance per probe (cold memory,
        // forced disk read). Every read must produce the full report —
        // a partial rename would parse as garbage and come back as a
        // miss or a different report.
        let key = &key;
        let report = &report;
        let dir = &dir;
        let stop = &stop;
        s.spawn(move || {
            let mut reads = 0usize;
            while !stop.load(Ordering::Relaxed) || reads == 0 {
                let (seen, _) = BoundCache::new(4, Some(dir.clone()))
                    .get(key)
                    .expect("disk entry must always be complete");
                assert_eq!(
                    seen.to_json(),
                    report.to_json(),
                    "reader observed a torn cache entry"
                );
                reads += 1;
            }
        });
    });

    let _ = std::fs::remove_dir_all(&dir);
}
