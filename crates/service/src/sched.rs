//! The job scheduler: a bounded queue feeding a worker pool, with
//! single-flight deduplication.
//!
//! Every connection handler funnels analysis work through
//! [`Scheduler::analyze`]:
//!
//! 1. **cache probe** — a [`BoundCache`] hit answers immediately;
//! 2. **single-flight** — if an identical key is already being analyzed,
//!    the request waits on that job's completion slot instead of queuing
//!    a duplicate (N concurrent identical requests run exactly one
//!    underlying analysis);
//! 3. **bounded queue** — otherwise the job joins the queue (submitters
//!    block while it is full — backpressure, not unbounded memory) and a
//!    worker runs the existing `CoAnalysis` pipeline.
//!
//! Worker count resolves through [`xbound_core::par::resolve_threads`]
//! (`0` = auto, `XBOUND_THREADS`); each job explores single-threaded when
//! the pool has more than one worker ("one layer of parallelism at a
//! time", exactly like the suite drivers), which keeps results
//! bit-identical to the direct path.

use crate::cache::{BoundCache, CacheHit, KeyMaterial};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use xbound_core::memo::{MemoStats, SubtreeMemo};
use xbound_core::sweep::{run_sweep, Corner, SweepSpec};
use xbound_core::{par, BoundsReport, CoAnalysis, ExploreConfig, UlpSystem};
use xbound_msp430::Program;
use xbound_obs::trace;

/// A successful [`Scheduler::analyze`]: the bounds, how they were
/// served, and the content address they live under.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeOutcome {
    /// The canonical analysis result.
    pub report: BoundsReport,
    /// How the request was satisfied (telemetry only).
    pub served: Served,
    /// The 16-hex content address ([`KeyMaterial::hex`]).
    pub key_hex: String,
}

/// How an [`Scheduler::analyze`] call was satisfied (`stats` telemetry;
/// deliberately *not* part of the analyze response, which stays
/// byte-identical however it was served).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// A worker ran the analysis for this request.
    Fresh,
    /// In-memory cache hit.
    CacheMemory,
    /// On-disk cache hit (daemon restarted since the analysis ran).
    CacheDisk,
    /// Coalesced onto an identical in-flight analysis (single-flight).
    Coalesced,
}

/// One sweep-corner result: the corner label and its canonical bounds
/// (byte-identical to a direct single-corner analysis of that operating
/// point).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCornerOutcome {
    /// The corner label ([`Corner::label`]), e.g. `ulp65@0.9v@50MHz`.
    pub label: String,
    /// The canonical analysis result for this corner.
    pub report: BoundsReport,
    /// How this corner was satisfied (telemetry only).
    pub served: Served,
}

/// One queued unit of work.
struct Job {
    program: Program,
    config: ExploreConfig,
    energy_rounds: u64,
    kind: JobKind,
}

enum JobKind {
    /// One single-corner analysis.
    Analyze { key: KeyMaterial, slot: Arc<Slot> },
    /// One shared exploration fanning Algorithm 2 + peak-energy over the
    /// listed corners (only the corners that missed cache and had no
    /// identical in-flight work — each entry is content-addressed
    /// independently, so cache hits compose per corner).
    Sweep {
        corners: Vec<(KeyMaterial, Corner, Arc<Slot>)>,
    },
}

/// A completion slot shared by every request waiting on one analysis.
struct Slot {
    result: Mutex<Option<Result<BoundsReport, String>>>,
    done: Condvar,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot {
            result: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    fn fill(&self, r: Result<BoundsReport, String>) {
        *self.result.lock().expect("slot lock") = Some(r);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<BoundsReport, String> {
        let mut guard = self.result.lock().expect("slot lock");
        loop {
            if let Some(r) = guard.as_ref() {
                return r.clone();
            }
            guard = self.done.wait(guard).expect("slot wait");
        }
    }
}

struct State {
    queue: VecDeque<Job>,
    /// Key hex → the in-flight (queued or running) analysis of that key.
    inflight: HashMap<String, Arc<Slot>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for jobs.
    job_ready: Condvar,
    /// Submitters wait here for queue space.
    space: Condvar,
    queue_capacity: usize,
    system: UlpSystem,
    cache: Arc<BoundCache>,
    /// Subtree memo shared by every worker (incremental re-analysis);
    /// `None` when disabled via `XBOUND_MEMO=0`.
    memo: Option<Arc<SubtreeMemo>>,
    analyses_run: AtomicU64,
    coalesced: AtomicU64,
    /// Sweep jobs executed (each = one shared exploration).
    sweeps_run: AtomicU64,
    /// Corners bounded fresh inside sweep jobs.
    sweep_corners: AtomicU64,
    /// Corners that reused a sweep job's shared execution tree instead
    /// of exploring again (corners − 1 per sweep job).
    sweep_tree_reuse: AtomicU64,
    /// Work-stealing explorer telemetry accumulated across every fresh
    /// analysis (scheduling-dependent; surfaced by `stats`, never part of
    /// any analyze response).
    explore_steals: AtomicU64,
    explore_steal_failures: AtomicU64,
    explore_idle_wakeups: AtomicU64,
    explore_max_speculation_depth: AtomicU64,
    workers: usize,
}

impl Shared {
    fn note_explore(&self, b: &xbound_core::BatchExploreStats) {
        self.explore_steals.fetch_add(b.steals, Ordering::Relaxed);
        self.explore_steal_failures
            .fetch_add(b.steal_failures, Ordering::Relaxed);
        self.explore_idle_wakeups
            .fetch_add(b.idle_wakeups, Ordering::Relaxed);
        self.explore_max_speculation_depth
            .fetch_max(b.max_speculation_depth, Ordering::Relaxed);
    }
}

/// Work-stealing explorer counters accumulated by a scheduler (see
/// [`Scheduler::explore_telemetry`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreTelemetry {
    /// Total successful steals across analyses.
    pub steals: u64,
    /// Total empty victim probes.
    pub steal_failures: u64,
    /// Total idle-worker wakeups.
    pub idle_wakeups: u64,
    /// Deepest speculation past any commit frontier.
    pub max_speculation_depth: u64,
}

/// The analysis scheduler (see the module docs).
pub struct Scheduler {
    shared: Arc<Shared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    /// Spawns `workers` analysis workers (`0` = auto via
    /// [`par::resolve_threads`]) over a queue bounded at
    /// `queue_capacity` jobs. `memo` (when present) is shared by every
    /// worker: repeat analyses of identical or near-identical programs
    /// replay memoized execution subtrees and segment-power traces; the
    /// reports stay byte-identical to memo-less runs.
    pub fn new(
        system: UlpSystem,
        cache: Arc<BoundCache>,
        memo: Option<Arc<SubtreeMemo>>,
        workers: usize,
        queue_capacity: usize,
    ) -> Scheduler {
        let workers = par::resolve_threads(workers);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                inflight: HashMap::new(),
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            space: Condvar::new(),
            queue_capacity: queue_capacity.max(1),
            system,
            cache,
            memo,
            analyses_run: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            sweeps_run: AtomicU64::new(0),
            sweep_corners: AtomicU64::new(0),
            sweep_tree_reuse: AtomicU64::new(0),
            explore_steals: AtomicU64::new(0),
            explore_steal_failures: AtomicU64::new(0),
            explore_idle_wakeups: AtomicU64::new(0),
            explore_max_speculation_depth: AtomicU64::new(0),
            workers,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("xbound-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        Scheduler {
            shared,
            handles: Mutex::new(handles),
        }
    }

    /// Resolved worker-pool size.
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Jobs currently queued (not yet claimed by a worker).
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().expect("state lock").queue.len()
    }

    /// Keys currently in flight (queued or running).
    pub fn inflight(&self) -> usize {
        self.shared.state.lock().expect("state lock").inflight.len()
    }

    /// Analyses actually executed by workers (cache hits and coalesced
    /// requests excluded).
    pub fn analyses_run(&self) -> u64 {
        self.shared.analyses_run.load(Ordering::Relaxed)
    }

    /// Requests that joined an identical in-flight analysis.
    pub fn coalesced(&self) -> u64 {
        self.shared.coalesced.load(Ordering::Relaxed)
    }

    /// Sweep jobs executed (each = one shared exploration).
    pub fn sweeps_run(&self) -> u64 {
        self.shared.sweeps_run.load(Ordering::Relaxed)
    }

    /// Corners bounded fresh inside sweep jobs.
    pub fn sweep_corners(&self) -> u64 {
        self.shared.sweep_corners.load(Ordering::Relaxed)
    }

    /// Corners that reused a sweep's shared execution tree instead of
    /// exploring again.
    pub fn sweep_tree_reuse(&self) -> u64 {
        self.shared.sweep_tree_reuse.load(Ordering::Relaxed)
    }

    /// Work-stealing explorer telemetry accumulated across every fresh
    /// analysis this scheduler ran (all zero on a multi-worker daemon,
    /// where each analysis explores single-threaded).
    pub fn explore_telemetry(&self) -> ExploreTelemetry {
        ExploreTelemetry {
            steals: self.shared.explore_steals.load(Ordering::Relaxed),
            steal_failures: self.shared.explore_steal_failures.load(Ordering::Relaxed),
            idle_wakeups: self.shared.explore_idle_wakeups.load(Ordering::Relaxed),
            max_speculation_depth: self
                .shared
                .explore_max_speculation_depth
                .load(Ordering::Relaxed),
        }
    }

    /// `true` when a subtree memo is attached.
    pub fn memo_enabled(&self) -> bool {
        self.shared.memo.is_some()
    }

    /// Subtree-memo counters (all zero when the memo is disabled).
    pub fn memo_stats(&self) -> MemoStats {
        self.shared
            .memo
            .as_ref()
            .map(|m| m.stats())
            .unwrap_or_default()
    }

    /// Resident subtree-memo entries (0 when disabled).
    pub fn memo_entries(&self) -> usize {
        self.shared.memo.as_ref().map_or(0, |m| m.entries())
    }

    /// Analyzes `program` under `config`, deduplicating against the cache
    /// and identical in-flight work. Blocks until the bound is available.
    ///
    /// # Errors
    ///
    /// Returns the analysis error message (the scheduler itself never
    /// fails a request except at shutdown).
    pub fn analyze(
        &self,
        program: &Program,
        config: ExploreConfig,
        energy_rounds: u64,
    ) -> Result<AnalyzeOutcome, String> {
        let key = KeyMaterial::new(&self.shared.system, program, &config, energy_rounds);
        let hex = key.hex();
        let done = |report, served| {
            Ok(AnalyzeOutcome {
                report,
                served,
                key_hex: hex.clone(),
            })
        };
        if let Some((report, hit)) = self.shared.cache.get(&key) {
            let served = match hit {
                CacheHit::Memory => Served::CacheMemory,
                CacheHit::Disk => Served::CacheDisk,
            };
            return done(report, served);
        }
        let slot = {
            let mut state = self.shared.state.lock().expect("state lock");
            if let Some(slot) = state.inflight.get(&hex) {
                let slot = Arc::clone(slot);
                drop(state);
                self.shared.coalesced.fetch_add(1, Ordering::Relaxed);
                let _span = trace::span("coalesce_wait");
                let report = slot.wait()?;
                return done(report, Served::Coalesced);
            }
            // Re-probe under the state lock: an identical job may have
            // completed (cache publish + inflight retire) between the
            // unlocked probe above and here — without this, that window
            // queues a redundant full analysis.
            if let Some((report, hit)) = self.shared.cache.recheck(&key) {
                let served = match hit {
                    CacheHit::Memory => Served::CacheMemory,
                    CacheHit::Disk => Served::CacheDisk,
                };
                return done(report, served);
            }
            let slot = Slot::new();
            state.inflight.insert(hex.clone(), Arc::clone(&slot));
            while state.queue.len() >= self.shared.queue_capacity && !state.shutdown {
                state = self.shared.space.wait(state).expect("space wait");
            }
            if state.shutdown {
                state.inflight.remove(&hex);
                // Waiters may already have coalesced onto this slot while
                // we were blocked on queue space — fail them, don't
                // strand them.
                slot.fill(Err("server is shutting down".to_string()));
                return Err("server is shutting down".to_string());
            }
            state.queue.push_back(Job {
                program: program.clone(),
                config,
                energy_rounds,
                kind: JobKind::Analyze {
                    key,
                    slot: Arc::clone(&slot),
                },
            });
            self.shared.job_ready.notify_one();
            slot
        };
        let report = {
            let _span = trace::span("queue_wait");
            slot.wait()?
        };
        done(report, Served::Fresh)
    }

    /// Bounds `program` at every corner of `spec`, exploring **once**
    /// for all the corners that need fresh work. Each corner is
    /// content-addressed independently ([`KeyMaterial::for_corner`]):
    /// cached corners answer from the cache, corners identical to
    /// in-flight work coalesce onto it, and only the rest ride the
    /// shared exploration — so sweep and single-corner requests compose
    /// through one cache. Results come back in `spec` order,
    /// byte-identical to direct single-corner analyses.
    ///
    /// # Errors
    ///
    /// Returns the first failing corner's error message (the shared
    /// exploration failing fails every fresh corner identically).
    pub fn sweep(
        &self,
        program: &Program,
        spec: &SweepSpec,
        config: ExploreConfig,
        energy_rounds: u64,
    ) -> Result<Vec<SweepCornerOutcome>, String> {
        // Per-corner key material first (outside any lock).
        let keyed: Vec<(KeyMaterial, &Corner)> = spec
            .corners()
            .iter()
            .map(|c| {
                (
                    KeyMaterial::for_corner(
                        program,
                        c.library().name(),
                        c.clock_hz(),
                        &config,
                        energy_rounds,
                    ),
                    c,
                )
            })
            .collect();
        // Unlocked cache probe per corner.
        enum Pending {
            Ready(BoundsReport, Served),
            Wait(Arc<Slot>, Served),
        }
        let mut pending: Vec<Option<Pending>> = keyed
            .iter()
            .map(|(key, _)| {
                self.shared.cache.get(key).map(|(report, hit)| {
                    let served = match hit {
                        CacheHit::Memory => Served::CacheMemory,
                        CacheHit::Disk => Served::CacheDisk,
                    };
                    Pending::Ready(report, served)
                })
            })
            .collect();
        {
            let mut state = self.shared.state.lock().expect("state lock");
            let mut fresh: Vec<(KeyMaterial, Corner, Arc<Slot>)> = Vec::new();
            for (i, (key, corner)) in keyed.iter().enumerate() {
                if pending[i].is_some() {
                    continue;
                }
                let hex = key.hex();
                if let Some(slot) = state.inflight.get(&hex) {
                    self.shared.coalesced.fetch_add(1, Ordering::Relaxed);
                    pending[i] = Some(Pending::Wait(Arc::clone(slot), Served::Coalesced));
                    continue;
                }
                // Same under-lock re-probe as `analyze`: the corner may
                // have been published between the unlocked probe and now.
                if let Some((report, hit)) = self.shared.cache.recheck(key) {
                    let served = match hit {
                        CacheHit::Memory => Served::CacheMemory,
                        CacheHit::Disk => Served::CacheDisk,
                    };
                    pending[i] = Some(Pending::Ready(report, served));
                    continue;
                }
                let slot = Slot::new();
                state.inflight.insert(hex, Arc::clone(&slot));
                pending[i] = Some(Pending::Wait(Arc::clone(&slot), Served::Fresh));
                fresh.push((key.clone(), (*corner).clone(), slot));
            }
            if !fresh.is_empty() {
                while state.queue.len() >= self.shared.queue_capacity && !state.shutdown {
                    state = self.shared.space.wait(state).expect("space wait");
                }
                if state.shutdown {
                    for (key, _, slot) in &fresh {
                        state.inflight.remove(&key.hex());
                        slot.fill(Err("server is shutting down".to_string()));
                    }
                    return Err("server is shutting down".to_string());
                }
                state.queue.push_back(Job {
                    program: program.clone(),
                    config,
                    energy_rounds,
                    kind: JobKind::Sweep { corners: fresh },
                });
                self.shared.job_ready.notify_one();
            }
        }
        keyed
            .iter()
            .zip(pending)
            .map(|((_, corner), p)| {
                let (report, served) = match p.expect("every corner resolved") {
                    Pending::Ready(report, served) => (report, served),
                    Pending::Wait(slot, served) => (slot.wait()?, served),
                };
                Ok(SweepCornerOutcome {
                    label: corner.label(),
                    report,
                    served,
                })
            })
            .collect()
    }

    /// Stops accepting jobs, drains the queue, and joins the workers.
    /// Queued work still completes (waiters get their results); only
    /// submitters blocked on a full queue are refused.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().expect("state lock");
            state.shutdown = true;
            self.shared.job_ready.notify_all();
            self.shared.space.notify_all();
        }
        let handles = std::mem::take(&mut *self.handles.lock().expect("handles lock"));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("state lock");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    shared.space.notify_one();
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.job_ready.wait(state).expect("job wait");
            }
        };
        shared.analyses_run.fetch_add(1, Ordering::Relaxed);
        // Workers are the concurrency layer; each analysis explores
        // single-threaded unless this is a single-worker daemon (results
        // are bit-identical either way).
        let explore_threads = if shared.workers > 1 { 1 } else { 0 };
        let config = ExploreConfig {
            threads: explore_threads,
            ..job.config
        };
        match job.kind {
            JobKind::Analyze { key, slot } => {
                let _span =
                    trace::span_args("analyze_job", || vec![("key".to_string(), key.hex())]);
                let result = catch_unwind(AssertUnwindSafe(|| {
                    CoAnalysis::new(&shared.system)
                        .config(config)
                        .energy_rounds(job.energy_rounds)
                        .memo(shared.memo.clone())
                        .run(&job.program)
                        .map(|a| {
                            shared.note_explore(&a.stats().batch);
                            BoundsReport::from_analysis(&a)
                        })
                        .map_err(|e| e.to_string())
                }))
                .unwrap_or_else(|p| {
                    Err(format!(
                        "analysis panicked: {}",
                        par::payload_message(p.as_ref())
                    ))
                });
                if let Ok(report) = &result {
                    // Publish to the cache *before* retiring the
                    // in-flight entry so a request arriving in between
                    // finds one or the other — never a third analysis.
                    shared.cache.put(&key, report);
                }
                {
                    let mut state = shared.state.lock().expect("state lock");
                    state.inflight.remove(&key.hex());
                }
                slot.fill(result);
            }
            JobKind::Sweep { corners } => {
                let _span = trace::span_args("sweep_job", || {
                    vec![("corners".to_string(), corners.len().to_string())]
                });
                // One shared exploration for every fresh corner; the
                // corner fan-out stays serial inside a worker ("one layer
                // of parallelism at a time", like the explore threads).
                let spec = SweepSpec::new(corners.iter().map(|(_, c, _)| c.clone()).collect());
                let result = catch_unwind(AssertUnwindSafe(|| {
                    run_sweep(
                        shared.system.cpu(),
                        &spec,
                        &job.program,
                        config,
                        job.energy_rounds,
                        explore_threads,
                    )
                    .map_err(|e| e.to_string())
                }))
                .unwrap_or_else(|p| {
                    Err(format!(
                        "sweep panicked: {}",
                        par::payload_message(p.as_ref())
                    ))
                });
                match result {
                    Ok(sweep) => {
                        shared.sweeps_run.fetch_add(1, Ordering::Relaxed);
                        shared
                            .sweep_corners
                            .fetch_add(sweep.stats.corners, Ordering::Relaxed);
                        shared
                            .sweep_tree_reuse
                            .fetch_add(sweep.stats.tree_reuse_hits, Ordering::Relaxed);
                        shared.note_explore(&sweep.explore.batch);
                        // `run_sweep` preserves corner order, so results
                        // zip against the keyed corners positionally.
                        for ((key, _, slot), cr) in corners.iter().zip(sweep.corners) {
                            shared.cache.put(key, &cr.report);
                            {
                                let mut state = shared.state.lock().expect("state lock");
                                state.inflight.remove(&key.hex());
                            }
                            slot.fill(Ok(cr.report));
                        }
                    }
                    Err(e) => {
                        for (key, _, slot) in &corners {
                            {
                                let mut state = shared.state.lock().expect("state lock");
                                state.inflight.remove(&key.hex());
                            }
                            slot.fill(Err(e.clone()));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbound_msp430::assemble;

    fn tiny_program(tag: u16) -> Program {
        // Distinct immediates give distinct cache keys per tag.
        assemble(&format!(
            r#"
            main:
                mov #{tag}, r4
                add r4, r4
                jmp $
            "#
        ))
        .expect("assembles")
    }

    fn scheduler(workers: usize) -> Scheduler {
        let system = UlpSystem::openmsp430_class().expect("builds");
        let cache = Arc::new(BoundCache::new(8, None));
        Scheduler::new(system, cache, None, workers, 4)
    }

    #[test]
    fn analyze_then_cache_hit() {
        let sched = scheduler(2);
        let program = tiny_program(1);
        let cfg = ExploreConfig::suite_default();
        let first = sched.analyze(&program, cfg, 1000).expect("analyzes");
        assert_eq!(first.served, Served::Fresh);
        let second = sched.analyze(&program, cfg, 1000).expect("analyzes");
        assert_eq!(second.served, Served::CacheMemory);
        assert_eq!(first.key_hex, second.key_hex);
        assert_eq!(first.report, second.report);
        assert_eq!(first.report.to_json(), second.report.to_json());
        assert_eq!(sched.analyses_run(), 1);
    }

    #[test]
    fn concurrent_identical_requests_run_once() {
        let sched = Arc::new(scheduler(2));
        let program = tiny_program(2);
        let cfg = ExploreConfig::suite_default();
        let results: Vec<AnalyzeOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let sched = Arc::clone(&sched);
                    let program = program.clone();
                    s.spawn(move || sched.analyze(&program, cfg, 1000).expect("analyzes"))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("joins"))
                .collect()
        });
        assert_eq!(sched.analyses_run(), 1, "single-flight must deduplicate");
        let canonical = results[0].report.to_json();
        for r in &results {
            assert_eq!(r.report.to_json(), canonical);
        }
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let sched = scheduler(2);
        let cfg = ExploreConfig::suite_default();
        let a = sched.analyze(&tiny_program(3), cfg, 1000).expect("a");
        let b = sched.analyze(&tiny_program(4), cfg, 1000).expect("b");
        assert_eq!(sched.analyses_run(), 2);
        assert_ne!(a.key_hex, b.key_hex, "distinct programs, distinct keys");
        assert!(a.report.cycles > 0 && b.report.cycles > 0);
    }

    #[test]
    fn sweep_and_single_corner_requests_compose_through_the_cache() {
        let sched = scheduler(2);
        let program = tiny_program(6);
        let cfg = ExploreConfig::suite_default();
        let spec = SweepSpec::suite_default().truncated(2);
        let outcomes = sched.sweep(&program, &spec, cfg, 1000).expect("sweeps");
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|o| o.served == Served::Fresh));
        assert_eq!(sched.sweeps_run(), 1);
        assert_eq!(sched.sweep_corners(), 2);
        assert_eq!(sched.sweep_tree_reuse(), 1);
        // The nominal corner's cache entry answers a direct
        // single-corner request byte-identically.
        let direct = sched.analyze(&program, cfg, 1000).expect("analyzes");
        assert_eq!(direct.served, Served::CacheMemory);
        assert_eq!(direct.report.to_json(), outcomes[0].report.to_json());
        // Re-sweeping is pure cache hits: no new exploration runs.
        let again = sched.sweep(&program, &spec, cfg, 1000).expect("sweeps");
        assert!(again.iter().all(|o| o.served == Served::CacheMemory));
        assert_eq!(sched.sweeps_run(), 1);
        assert_eq!(again[1].label, "ulp65@50MHz");
    }

    #[test]
    fn shutdown_refuses_new_work_but_stays_clean() {
        let sched = scheduler(1);
        sched.shutdown();
        let err = sched
            .analyze(&tiny_program(5), ExploreConfig::suite_default(), 1000)
            .expect_err("refused");
        assert!(err.contains("shutting down"), "{err}");
    }
}
