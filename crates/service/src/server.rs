//! The TCP daemon: a `std::net::TcpListener` accept loop feeding a
//! bounded thread-per-connection pool, dispatching protocol requests
//! into the [`Scheduler`].
//!
//! Concurrency layers, outermost first:
//!
//! 1. **accept pool** — at most `conns` connections are handled at once
//!    (resolved via [`par::resolve_threads`], like every other pool in
//!    the workspace); further clients queue in the listen backlog;
//! 2. **job scheduler** — handlers funnel analysis work into the bounded
//!    queue with cache + single-flight deduplication;
//! 3. **analysis workers** — run the existing `CoAnalysis` pipeline.
//!
//! Shutdown is cooperative: a `shutdown` request answers, stops the
//! accept loop, drains active connections and queued jobs, joins the
//! workers, and releases the port.

use crate::cache::BoundCache;
use crate::protocol::{self, Request};
use crate::sched::Scheduler;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;
use xbound_core::jsonout::JsonWriter;
use xbound_core::{par, ExploreConfig, UlpSystem};
use xbound_msp430::{assemble, Program};
use xbound_obs::{metrics, trace};

/// Registry instruments for the daemon's serving layer. Counters are
/// incremented at their event sites; the gauges are refreshed from the
/// scheduler whenever a snapshot is about to be taken (`stats` /
/// `metrics` requests), which keeps the hot request path free of any
/// extra bookkeeping beyond one relaxed add.
struct ServiceMetrics {
    requests: metrics::Counter,
    connections: metrics::Counter,
    queue_depth: metrics::Gauge,
    inflight: metrics::Gauge,
    cache_entries: metrics::Gauge,
    request_us: metrics::Histogram,
}

fn service_metrics() -> &'static ServiceMetrics {
    static M: std::sync::OnceLock<ServiceMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| ServiceMetrics {
        requests: metrics::counter("xbound_service_requests_total"),
        connections: metrics::counter("xbound_service_connections_total"),
        queue_depth: metrics::gauge("xbound_service_queue_depth"),
        inflight: metrics::gauge("xbound_service_inflight"),
        cache_entries: metrics::gauge("xbound_service_cache_entries"),
        request_us: metrics::histogram("xbound_service_request_duration_us"),
    })
}

/// Daemon configuration (the `xbound-serve` flags).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind host (default loopback).
    pub host: String,
    /// Bind port (`0` = ephemeral, reported by [`Server::addr`]).
    pub port: u16,
    /// Analysis workers (`0` = auto via [`par::resolve_threads`]).
    pub workers: usize,
    /// Concurrent connection cap (`0` = auto: 4× the
    /// [`par::resolve_threads`] worker resolution, floor 8 — connections
    /// mostly wait on the scheduler rather than compute).
    pub conns: usize,
    /// On-disk cache directory. `None` resolves through
    /// [`xbound_core::outdirs::cache_dir`] (`XBOUND_CACHE_DIR`, then
    /// `<results dir>/cache`). Ignored when `disk_cache` is off.
    pub cache_dir: Option<PathBuf>,
    /// Whether bounds persist on disk at all.
    pub disk_cache: bool,
    /// In-memory LRU capacity (entries).
    pub cache_capacity: usize,
    /// Bounded job-queue capacity.
    pub queue_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            host: "127.0.0.1".to_string(),
            port: 0,
            workers: 0,
            conns: 0,
            cache_dir: None,
            disk_cache: true,
            cache_capacity: 256,
            queue_capacity: 64,
        }
    }
}

/// Counting gate bounding the connection-handler pool.
struct ConnGate {
    active: Mutex<usize>,
    changed: Condvar,
    cap: usize,
}

impl ConnGate {
    fn new(cap: usize) -> ConnGate {
        ConnGate {
            active: Mutex::new(0),
            changed: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn acquire(&self) {
        let mut n = self.active.lock().expect("gate lock");
        while *n >= self.cap {
            n = self.changed.wait(n).expect("gate wait");
        }
        *n += 1;
    }

    fn release(&self) {
        let mut n = self.active.lock().expect("gate lock");
        *n -= 1;
        self.changed.notify_all();
    }

    fn wait_idle(&self) {
        let mut n = self.active.lock().expect("gate lock");
        while *n > 0 {
            n = self.changed.wait(n).expect("gate wait");
        }
    }
}

/// The daemon state shared by the accept loop and every handler.
pub struct Service {
    scheduler: Scheduler,
    cache: Arc<BoundCache>,
    started: Instant,
    requests: AtomicU64,
    shutting_down: AtomicBool,
    addr: SocketAddr,
    workers: usize,
}

impl Service {
    /// Resolved analysis-worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The bound cache (telemetry).
    pub fn cache(&self) -> &BoundCache {
        &self.cache
    }

    /// The scheduler (telemetry).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// `true` once a shutdown request was accepted.
    pub fn shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Handles one request line, writing one or more response lines.
    /// Returns `true` when the connection (and for `shutdown`, the
    /// daemon) should stop.
    fn dispatch(&self, line: &str, out: &mut impl Write) -> std::io::Result<bool> {
        let request = match protocol::parse_request(line) {
            Ok(r) => r,
            Err(e) => {
                writeln!(out, "{}", protocol::error_response(&e))?;
                return Ok(false);
            }
        };
        let _span = trace::span_args("request", || {
            let op = match &request {
                Request::Analyze { .. } => "analyze",
                Request::Suite { .. } => "suite",
                Request::Sweep { .. } => "sweep",
                Request::Stats => "stats",
                Request::Metrics { .. } => "metrics",
                Request::Shutdown => "shutdown",
            };
            vec![("op".to_string(), op.to_string())]
        });
        let t0 = Instant::now();
        let done = self.dispatch_parsed(request, out);
        service_metrics()
            .request_us
            .observe_us(t0.elapsed().as_micros() as u64);
        done
    }

    /// [`Self::dispatch`] after parsing, behind the request span and
    /// duration histogram.
    fn dispatch_parsed(&self, request: Request, out: &mut impl Write) -> std::io::Result<bool> {
        match request {
            Request::Analyze {
                source,
                image,
                config,
                energy_rounds,
            } => {
                let program = match (source, image) {
                    (Some(src), None) => assemble(&src).map_err(|e| e.to_string()),
                    (None, Some((entry, words))) => Ok(Program::from_words(words, entry)),
                    _ => unreachable!("parse_request enforces exactly one"),
                };
                let answer = program.and_then(|p| {
                    self.scheduler
                        .analyze(&p, config, energy_rounds)
                        .map(|out| protocol::analyze_response(&out.key_hex, &out.report))
                });
                match answer {
                    Ok(resp) => writeln!(out, "{resp}")?,
                    Err(e) => writeln!(out, "{}", protocol::error_response(&e))?,
                }
                Ok(false)
            }
            Request::Suite { benches } => self.run_suite(&benches, out).map(|()| false),
            Request::Sweep { benches, corners } => {
                self.run_sweep(&benches, corners, out).map(|()| false)
            }
            Request::Stats => {
                writeln!(out, "{}", self.stats_response())?;
                Ok(false)
            }
            Request::Metrics { prometheus } => {
                self.refresh_gauges();
                writeln!(out, "{}", protocol::metrics_response(prometheus))?;
                Ok(false)
            }
            Request::Shutdown => {
                let mut w = JsonWriter::compact();
                w.begin_object();
                w.field_bool("ok", true);
                w.field_bool("shutting_down", true);
                w.end_object();
                writeln!(out, "{}", w.finish())?;
                out.flush()?;
                self.begin_shutdown();
                Ok(true)
            }
        }
    }

    /// Resolves request names to benchmarks (empty = the whole suite),
    /// deduplicating and rejecting unknown names. `Ok(None)` means an
    /// error response was already written.
    fn resolve_benches(
        names: &[String],
        out: &mut impl Write,
    ) -> std::io::Result<Option<Vec<&'static xbound_benchsuite::Benchmark>>> {
        // Duplicates are analyzed once (one result line per distinct
        // name) — this also bounds the per-request fan-out at the suite
        // size, since unknown names are rejected.
        if names.is_empty() {
            return Ok(Some(xbound_benchsuite::all().iter().collect()));
        }
        let mut list: Vec<&'static xbound_benchsuite::Benchmark> = Vec::with_capacity(names.len());
        for n in names {
            match xbound_benchsuite::by_name(n) {
                Some(b) => {
                    if !list.iter().any(|have| have.name() == b.name()) {
                        list.push(b);
                    }
                }
                None => {
                    writeln!(
                        out,
                        "{}",
                        protocol::error_response(&format!("unknown benchmark `{n}`"))
                    )?;
                    return Ok(None);
                }
            }
        }
        Ok(Some(list))
    }

    /// Streams suite results per-completion, then the `done` line.
    fn run_suite(&self, names: &[String], out: &mut impl Write) -> std::io::Result<()> {
        let Some(list) = Self::resolve_benches(names, out)? else {
            return Ok(());
        };
        let (tx, rx) = mpsc::channel();
        let mut completed = 0u64;
        let mut failed = 0u64;
        // If the client goes away mid-stream, remember the error but keep
        // draining so the workers' results are still cached for the next
        // client.
        let mut write_err: Option<std::io::Error> = None;
        std::thread::scope(|s| {
            for b in list {
                let tx = tx.clone();
                s.spawn(move || {
                    let config = ExploreConfig {
                        widen_threshold: b.widen_threshold(),
                        ..ExploreConfig::suite_default()
                    };
                    let result = b.program().map_err(|e| e.to_string()).and_then(|p| {
                        self.scheduler
                            .analyze(&p, config, b.energy_rounds())
                            .map(|out| out.report)
                    });
                    let _ = tx.send((b.name(), result));
                });
            }
            drop(tx);
            for (name, result) in rx {
                let line = match result {
                    Ok(bounds) => {
                        completed += 1;
                        protocol::suite_result_response(name, &bounds)
                    }
                    Err(e) => {
                        failed += 1;
                        protocol::suite_error_response(name, &e)
                    }
                };
                if write_err.is_none() {
                    if let Err(e) = writeln!(out, "{line}").and_then(|()| out.flush()) {
                        write_err = Some(e);
                    }
                }
            }
        });
        if let Some(e) = write_err {
            return Err(e);
        }
        writeln!(out, "{}", protocol::suite_done_response(completed, failed))
    }

    /// Streams operating-point sweep results — one line per
    /// `(benchmark, corner)`, corners in grid order within each
    /// completed benchmark — then the `done` line. Each benchmark
    /// explores once for all its fresh corners
    /// ([`Scheduler::sweep`](crate::sched::Scheduler::sweep)).
    fn run_sweep(
        &self,
        names: &[String],
        corners: u64,
        out: &mut impl Write,
    ) -> std::io::Result<()> {
        let Some(list) = Self::resolve_benches(names, out)? else {
            return Ok(());
        };
        let spec = xbound_core::sweep::SweepSpec::suite_default().truncated(corners as usize);
        let spec = &spec;
        let (tx, rx) = mpsc::channel();
        let mut completed = 0u64;
        let mut corner_lines = 0u64;
        let mut failed = 0u64;
        // Same drain discipline as `run_suite`: a client that goes away
        // mid-stream must not strand the workers' results.
        let mut write_err: Option<std::io::Error> = None;
        std::thread::scope(|s| {
            for b in list {
                let tx = tx.clone();
                s.spawn(move || {
                    let config = ExploreConfig {
                        widen_threshold: b.widen_threshold(),
                        ..ExploreConfig::suite_default()
                    };
                    let result = b
                        .program()
                        .map_err(|e| e.to_string())
                        .and_then(|p| self.scheduler.sweep(&p, spec, config, b.energy_rounds()));
                    let _ = tx.send((b.name(), result));
                });
            }
            drop(tx);
            for (name, result) in rx {
                let lines: Vec<String> = match result {
                    Ok(outcomes) => {
                        completed += 1;
                        corner_lines += outcomes.len() as u64;
                        outcomes
                            .iter()
                            .map(|o| protocol::sweep_result_response(name, &o.label, &o.report))
                            .collect()
                    }
                    Err(e) => {
                        failed += 1;
                        vec![protocol::suite_error_response(name, &e)]
                    }
                };
                for line in lines {
                    if write_err.is_none() {
                        if let Err(e) = writeln!(out, "{line}").and_then(|()| out.flush()) {
                            write_err = Some(e);
                        }
                    }
                }
            }
        });
        if let Some(e) = write_err {
            return Err(e);
        }
        writeln!(
            out,
            "{}",
            protocol::sweep_done_response(completed, corner_lines, failed)
        )
    }

    /// Refreshes the sampled gauges from the scheduler/cache (called
    /// right before a registry snapshot is served).
    fn refresh_gauges(&self) {
        let m = service_metrics();
        m.queue_depth.set(self.scheduler.queue_depth() as u64);
        m.inflight.set(self.scheduler.inflight() as u64);
        m.cache_entries.set(self.cache.len() as u64);
    }

    fn stats_response(&self) -> String {
        let (hits_mem, hits_disk, misses) = self.cache.counters();
        let mut w = JsonWriter::compact();
        w.begin_object();
        w.field_bool("ok", true);
        w.field_str("version", &protocol::version_string());
        w.field_raw(
            "uptime_seconds",
            &format!("{:.3}", self.started.elapsed().as_secs_f64()),
        );
        w.field_u64("workers", self.workers as u64);
        w.field_u64("queue_depth", self.scheduler.queue_depth() as u64);
        w.field_u64("inflight", self.scheduler.inflight() as u64);
        w.field_u64("cache_entries", self.cache.len() as u64);
        w.field_u64("cache_hits_memory", hits_mem);
        w.field_u64("cache_hits_disk", hits_disk);
        w.field_u64("cache_misses", misses);
        w.field_u64("coalesced", self.scheduler.coalesced());
        w.field_u64("analyses_run", self.scheduler.analyses_run());
        // Operating-point sweep telemetry: sweep jobs executed, corners
        // bounded fresh inside them, and corners that reused a shared
        // execution tree instead of exploring again.
        w.field_u64("sweeps_run", self.scheduler.sweeps_run());
        w.field_u64("sweep_corners", self.scheduler.sweep_corners());
        w.field_u64("sweep_tree_reuse", self.scheduler.sweep_tree_reuse());
        // Which gate-eval engine serves analyses (result-neutral: cached
        // and fresh answers are byte-identical across engines, so it is
        // telemetry, not key material).
        w.field_str("sim_engine", xbound_core::sim_engine_name());
        let memo = self.scheduler.memo_stats();
        w.field_bool("memo_enabled", self.scheduler.memo_enabled());
        w.field_u64("memo_entries", self.scheduler.memo_entries() as u64);
        w.field_u64("memo_hits", memo.hits);
        w.field_u64("memo_misses", memo.misses);
        w.field_u64("memo_stitched_segments", memo.stitched_segments);
        w.field_u64("memo_power_hits", memo.power_hits);
        w.field_u64("memo_power_misses", memo.power_misses);
        // Work-stealing explorer telemetry, accumulated over fresh analyses.
        // All zero on a multi-worker daemon: each analysis then explores
        // single-threaded and the daemon parallelises across requests.
        let et = self.scheduler.explore_telemetry();
        w.field_u64("explore_steals", et.steals);
        w.field_u64("explore_steal_failures", et.steal_failures);
        w.field_u64("explore_idle_wakeups", et.idle_wakeups);
        w.field_u64("explore_max_speculation_depth", et.max_speculation_depth);
        w.field_u64("requests", self.requests.load(Ordering::Relaxed));
        match self.cache.dir() {
            Some(d) => w.field_str("cache_dir", &d.display().to_string()),
            None => w.field_raw("cache_dir", "null"),
        }
        w.end_object();
        w.finish()
    }

    /// Flags shutdown and pokes the accept loop awake.
    fn begin_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop blocks in `accept()`; a throwaway connection
        // wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running daemon.
pub struct Server {
    addr: SocketAddr,
    service: Arc<Service>,
    accept_thread: std::thread::JoinHandle<()>,
}

impl Server {
    /// Binds, builds the system + cache + scheduler, and starts the
    /// accept loop.
    ///
    /// # Errors
    ///
    /// Returns bind/cache-directory IO errors and core-construction
    /// failures (as [`std::io::Error`] with `InvalidData`).
    pub fn start(config: ServiceConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind((config.host.as_str(), config.port))?;
        let addr = listener.local_addr()?;
        let dir = if config.disk_cache {
            Some(xbound_core::outdirs::cache_dir(config.cache_dir.clone())?)
        } else {
            None
        };
        let system = UlpSystem::openmsp430_class().map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("core build: {e}"))
        })?;
        let cache = Arc::new(BoundCache::new(config.cache_capacity, dir.clone()));
        // Subtree memo for incremental re-analysis: on by default, opted
        // out with `XBOUND_MEMO=0`. It persists next to the bound cache
        // (same directory, same canonical encoding); `XBOUND_MEMO=mem` or
        // a disabled disk cache keep it in memory only.
        let memo = if xbound_core::memo::disabled_by_env() {
            None
        } else {
            let memo_dir = match std::env::var("XBOUND_MEMO").as_deref().map(str::trim) {
                Ok("mem") | Ok("memory") => None,
                _ => dir,
            };
            Some(Arc::new(match memo_dir {
                Some(d) => xbound_core::memo::SubtreeMemo::with_dir(d),
                None => xbound_core::memo::SubtreeMemo::in_memory(),
            }))
        };
        let scheduler = Scheduler::new(
            system,
            Arc::clone(&cache),
            memo,
            config.workers,
            config.queue_capacity,
        );
        let workers = scheduler.workers();
        let service = Arc::new(Service {
            scheduler,
            cache,
            started: Instant::now(),
            requests: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            addr,
            workers,
        });
        // Connections mostly *wait* (on the scheduler, or between client
        // requests) rather than compute, so the auto cap is 4× the worker
        // resolution with a floor of 8 — a single-core host still serves
        // a client that keeps one connection open while another connects.
        let conn_cap = if config.conns > 0 {
            config.conns
        } else {
            par::resolve_threads(0).saturating_mul(4).max(8)
        };
        let gate = Arc::new(ConnGate::new(conn_cap));
        let accept_service = Arc::clone(&service);
        let accept_thread = std::thread::Builder::new()
            .name("xbound-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_service, &gate))
            .expect("spawn accept loop");
        Ok(Server {
            addr,
            service,
            accept_thread,
        })
    }

    /// The bound address (resolves `port: 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared daemon state (telemetry in tests).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Blocks until the daemon has shut down (accept loop exited,
    /// connections drained, workers joined).
    pub fn join(self) {
        let _ = self.accept_thread.join();
    }
}

fn accept_loop(listener: &TcpListener, service: &Arc<Service>, gate: &Arc<ConnGate>) {
    loop {
        if service.shutting_down() {
            break;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) => {
                if service.shutting_down() {
                    break;
                }
                xbound_obs::warn!("serve", "accept failed: {e}");
                continue;
            }
        };
        if service.shutting_down() {
            // The wake-up connection (or a late client): drop it.
            drop(stream);
            break;
        }
        gate.acquire();
        service_metrics().connections.inc();
        let service = Arc::clone(service);
        // The guard releases the slot even if the handler panics — a
        // leaked slot would shrink the pool for the daemon's lifetime
        // and eventually wedge `wait_idle`.
        let guard = SlotGuard {
            gate: Arc::clone(gate),
        };
        let spawned = std::thread::Builder::new()
            .name("xbound-conn".to_string())
            .spawn(move || {
                let _guard = guard;
                handle_conn(&service, stream);
            });
        if let Err(e) = spawned {
            // The closure (and its guard) never ran; `guard` was moved
            // into the dead closure and dropped with it, releasing the
            // slot.
            xbound_obs::warn!("serve", "spawn failed: {e}");
        }
    }
    // Drain live connections, then the job queue + workers.
    gate.wait_idle();
    service.scheduler.shutdown();
}

/// Releases a [`ConnGate`] slot on drop — panic-safe.
struct SlotGuard {
    gate: Arc<ConnGate>,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.gate.release();
    }
}

fn handle_conn(service: &Arc<Service>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    // A finite read timeout lets an otherwise-idle handler notice a
    // daemon shutdown: without it, one silent client parked in a
    // blocking read would stall `wait_idle` (and the port) forever.
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(250)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    'conn: loop {
        line.clear();
        // `read_line` appends; on a timeout the partial data stays in
        // `line` and the retry continues the same line.
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => break 'conn,
                Ok(_) => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if service.shutting_down() {
                        break 'conn;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break 'conn,
            }
        }
        if line.trim().is_empty() {
            continue;
        }
        service.requests.fetch_add(1, Ordering::Relaxed);
        service_metrics().requests.inc();
        match service.dispatch(line.trim_end_matches(['\r', '\n']), &mut writer) {
            Ok(stop) => {
                if writer.flush().is_err() || stop {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}
