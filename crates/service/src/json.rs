//! JSON value parsing for the service protocol and the on-disk caches.
//!
//! The parser itself lives in [`xbound_core::jsonin`] (the memo table
//! decodes its entries core-side with the same grammar); this module
//! re-exports it under the service's historical path. The writer half is
//! [`xbound_core::jsonout`]. Both sides reject non-finite numbers, so
//! parse → re-serialize stays the identity on bytes for every document
//! the workspace produces (the byte-identity contract).

pub use xbound_core::jsonin::Json;

#[cfg(test)]
mod tests {
    use super::*;

    /// The daemon parses untrusted request lines: an over-range exponent
    /// (`1e999` overflows `f64::from_str` to `+inf`) must be a parse
    /// error, not a silently non-finite knob value.
    #[test]
    fn service_parser_rejects_non_finite_numbers() {
        for bad in [
            r#"{"op": "analyze", "energy_rounds": 1e999}"#,
            r#"{"clock_hz": -1e999}"#,
        ] {
            let err = Json::parse(bad).expect_err(bad);
            assert!(err.contains("non-finite"), "{bad}: {err}");
        }
    }
}
