//! The line-delimited JSON protocol spoken between `xbound-serve` and
//! `xbound-client`.
//!
//! Every request is one JSON object on one line; every response line is
//! one JSON object. Most requests produce exactly one response line;
//! `suite` streams one line per completed benchmark followed by a final
//! `done` line. Responses always carry `"ok"`; failures look like
//! `{"ok": false, "error": "..."}`.
//!
//! Requests:
//!
//! ```text
//! {"op": "analyze", "source": "<assembly>"}
//! {"op": "analyze", "image": {"entry": 49152, "words": [[49152, 16451], ...]}}
//! {"op": "suite", "benches": ["mult", "tea8"]}        // [] or absent = all
//! {"op": "sweep", "benches": ["mult"], "corners": 4}  // 0/absent = full grid
//! {"op": "stats"}
//! {"op": "shutdown"}
//! ```
//!
//! `analyze` accepts optional knobs `widen_threshold`, `energy_rounds`,
//! `max_total_cycles`, `max_segment_cycles` (defaults:
//! [`ExploreConfig::suite_default`] + 10 000 energy rounds — the library
//! defaults of [`xbound_core::CoAnalysis`]).
//!
//! The `analyze` response is **deliberately free of serving metadata**
//! (`{"ok": true, "key": "<hex16>", "bounds": {...}}`): a cached answer
//! is byte-identical to a freshly computed one. Hit/miss accounting is
//! observable through `stats` instead.

use crate::json::Json;
use xbound_core::jsonout::JsonWriter;
use xbound_core::{BoundsReport, ExploreConfig};
use xbound_msp430::Program;

/// Default peak-energy value-iteration rounds for raw `analyze` requests
/// (the [`xbound_core::CoAnalysis`] builder default).
pub const DEFAULT_ENERGY_ROUNDS: u64 = 10_000;

/// Protocol revision, bumped whenever the wire format gains or changes
/// an op or response field. Carried (with the crate version) in the
/// `version` field of `stats`/`metrics` responses so clients can warn on
/// daemon/client drift.
pub const PROTOCOL_REV: u32 = 2;

/// The `version` string stamped into `stats`/`metrics` responses and
/// compared by `xbound-client`: `<crate-version>+p<protocol-rev>`.
pub fn version_string() -> String {
    format!("{}+p{PROTOCOL_REV}", env!("CARGO_PKG_VERSION"))
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Analyze one program: assembly source or a raw image.
    Analyze {
        /// Assembly source (assembled on the server) …
        source: Option<String>,
        /// … or a pre-assembled image as `(entry, words)`.
        image: Option<(u16, Vec<(u16, u16)>)>,
        /// Exploration config (suite defaults + request overrides).
        config: ExploreConfig,
        /// Peak-energy round budget.
        energy_rounds: u64,
    },
    /// Analyze named benchmarks, streaming results per completion.
    /// Duplicate names are analyzed once (one result line per distinct
    /// name).
    Suite {
        /// Benchmark names; empty = the whole suite.
        benches: Vec<String>,
    },
    /// Analyze named benchmarks over the operating-point grid, exploring
    /// each benchmark once and bounding every corner from the shared
    /// tree. Streams one result line per `(benchmark, corner)`.
    Sweep {
        /// Benchmark names; empty = the whole suite.
        benches: Vec<String>,
        /// Corner-count cap over the default grid; 0 = the full grid.
        corners: u64,
    },
    /// Service telemetry.
    Stats,
    /// Global metrics-registry dump (`format`: `"json"` or
    /// `"prometheus"`).
    Metrics {
        /// `true` = Prometheus text exposition, `false` = canonical JSON.
        prometheus: bool,
    },
    /// Clean shutdown.
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a message suitable for an error response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line).map_err(|e| format!("malformed request: {e}"))?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("request needs a string `op`")?;
    match op {
        "analyze" => {
            let source = v.get("source").and_then(Json::as_str).map(str::to_string);
            let image = match v.get("image") {
                None => None,
                Some(img) => {
                    let entry = img
                        .get("entry")
                        .and_then(Json::as_u64)
                        .and_then(|n| u16::try_from(n).ok())
                        .ok_or("image needs a u16 `entry`")?;
                    let words = img
                        .get("words")
                        .and_then(Json::as_arr)
                        .ok_or("image needs a `words` array")?
                        .iter()
                        .map(|pair| {
                            let p = pair.as_arr().ok_or("image word must be [addr, word]")?;
                            let addr = p
                                .first()
                                .and_then(Json::as_u64)
                                .and_then(|n| u16::try_from(n).ok());
                            let word = p
                                .get(1)
                                .and_then(Json::as_u64)
                                .and_then(|n| u16::try_from(n).ok());
                            match (addr, word, p.len()) {
                                (Some(a), Some(w), 2) => Ok((a, w)),
                                _ => Err("image word must be [u16, u16]".to_string()),
                            }
                        })
                        .collect::<Result<Vec<(u16, u16)>, String>>()?;
                    Some((entry, words))
                }
            };
            if source.is_some() == image.is_some() {
                return Err("analyze needs exactly one of `source` / `image`".to_string());
            }
            // Knobs are strict: a present-but-mistyped knob is an error,
            // not a silent fall-through to the default (which would cache
            // bounds under knobs the client never asked for).
            let opt_u64 = |k: &str| -> Result<Option<u64>, String> {
                match v.get(k) {
                    None => Ok(None),
                    Some(x) => x
                        .as_u64()
                        .map(Some)
                        .ok_or(format!("`{k}` must be a non-negative integer")),
                }
            };
            let mut config = ExploreConfig::suite_default();
            if let Some(n) = opt_u64("widen_threshold")? {
                config.widen_threshold =
                    u32::try_from(n).map_err(|_| "widen_threshold out of range")?;
            }
            if let Some(n) = opt_u64("max_total_cycles")? {
                config.max_total_cycles = n;
            }
            if let Some(n) = opt_u64("max_segment_cycles")? {
                config.max_segment_cycles = n;
            }
            let energy_rounds = opt_u64("energy_rounds")?.unwrap_or(DEFAULT_ENERGY_ROUNDS);
            Ok(Request::Analyze {
                source,
                image,
                config,
                energy_rounds,
            })
        }
        "suite" => Ok(Request::Suite {
            benches: parse_benches(&v)?,
        }),
        "sweep" => {
            let corners = match v.get("corners") {
                None => 0,
                Some(c) => c
                    .as_u64()
                    .ok_or("`corners` must be a non-negative integer")?,
            };
            Ok(Request::Sweep {
                benches: parse_benches(&v)?,
                corners,
            })
        }
        "stats" => Ok(Request::Stats),
        "metrics" => match v.get("format") {
            None => Ok(Request::Metrics { prometheus: false }),
            Some(f) => match f.as_str() {
                Some("json") => Ok(Request::Metrics { prometheus: false }),
                Some("prometheus") => Ok(Request::Metrics { prometheus: true }),
                _ => Err("`format` must be \"json\" or \"prometheus\"".to_string()),
            },
        },
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Parses the optional `benches` array shared by `suite` and `sweep`.
fn parse_benches(v: &Json) -> Result<Vec<String>, String> {
    match v.get("benches") {
        None => Ok(Vec::new()),
        Some(b) => b
            .as_arr()
            .ok_or("`benches` must be an array of names")?
            .iter()
            .map(|n| {
                n.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "`benches` must be an array of names".to_string())
            })
            .collect(),
    }
}

/// Serializes an `analyze` request for `source` (client side).
pub fn analyze_source_request(source: &str) -> String {
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.field_str("op", "analyze");
    w.field_str("source", source);
    w.end_object();
    w.finish()
}

/// Serializes an `analyze` request for a program image (client side).
pub fn analyze_image_request(program: &Program) -> String {
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.field_str("op", "analyze");
    w.key("image");
    w.begin_object();
    w.field_u64("entry", u64::from(program.entry()));
    w.key("words");
    w.begin_array();
    for &(addr, word) in program.words() {
        w.begin_array();
        w.u64_val(u64::from(addr));
        w.u64_val(u64::from(word));
        w.end_array();
    }
    w.end_array();
    w.end_object();
    w.end_object();
    w.finish()
}

/// Serializes a `suite` request (client side).
pub fn suite_request(benches: &[String]) -> String {
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.field_str("op", "suite");
    w.key("benches");
    w.begin_array();
    for b in benches {
        w.str_val(b);
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Serializes a `sweep` request (client side). `corners == 0` asks for
/// the full default grid.
pub fn sweep_request(benches: &[String], corners: u64) -> String {
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.field_str("op", "sweep");
    w.key("benches");
    w.begin_array();
    for b in benches {
        w.str_val(b);
    }
    w.end_array();
    w.field_u64("corners", corners);
    w.end_object();
    w.finish()
}

/// Serializes a no-payload request (`stats` / `shutdown`).
pub fn op_request(op: &str) -> String {
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.field_str("op", op);
    w.end_object();
    w.finish()
}

/// Serializes a `metrics` request (client side).
pub fn metrics_request(prometheus: bool) -> String {
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.field_str("op", "metrics");
    w.field_str("format", if prometheus { "prometheus" } else { "json" });
    w.end_object();
    w.finish()
}

/// The `metrics` response: the registry snapshot as a nested object
/// (JSON format) or one escaped string (Prometheus text).
pub fn metrics_response(prometheus: bool) -> String {
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.field_bool("ok", true);
    w.field_str("version", &version_string());
    if prometheus {
        w.field_str("prometheus", &xbound_obs::metrics::snapshot_prometheus());
    } else {
        w.field_raw("metrics", &xbound_obs::metrics::snapshot_json());
    }
    w.end_object();
    w.finish()
}

/// The deterministic `analyze` success response (no serving metadata —
/// cached and fresh answers are byte-identical).
pub fn analyze_response(key_hex: &str, bounds: &BoundsReport) -> String {
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.field_bool("ok", true);
    w.field_str("key", key_hex);
    w.key("bounds");
    bounds.write(&mut w);
    w.end_object();
    w.finish()
}

/// One streamed `suite` result line. The `{"name": ..., "bounds": ...}`
/// payload matches `suite_summary --bounds` byte-for-byte — the CI
/// cross-check contract.
pub fn suite_result_response(name: &str, bounds: &BoundsReport) -> String {
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.field_bool("ok", true);
    w.field_str("name", name);
    w.key("bounds");
    bounds.write(&mut w);
    w.end_object();
    w.finish()
}

/// The canonical per-benchmark bounds line shared by `xbound-client
/// suite` output and `suite_summary --bounds` files
/// (re-exported from [`xbound_core::summary::bounds_line`]).
pub use xbound_core::summary::bounds_line;

/// The final `suite` line after all results streamed.
pub fn suite_done_response(completed: u64, failed: u64) -> String {
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.field_bool("ok", true);
    w.field_u64("done", completed);
    w.field_u64("failed", failed);
    w.end_object();
    w.finish()
}

/// One streamed `sweep` result line: the canonical
/// `{"name": ..., "bounds": ...}` payload of [`suite_result_response`]
/// plus a trailing `"corner"` label, so stripping the corner recovers a
/// byte-identical single-corner bounds record.
pub fn sweep_result_response(name: &str, corner: &str, bounds: &BoundsReport) -> String {
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.field_bool("ok", true);
    w.field_str("name", name);
    w.key("bounds");
    bounds.write(&mut w);
    w.field_str("corner", corner);
    w.end_object();
    w.finish()
}

/// The final `sweep` line: completed benchmarks, total corner lines
/// streamed, and failed benchmarks.
pub fn sweep_done_response(completed: u64, corners: u64, failed: u64) -> String {
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.field_bool("ok", true);
    w.field_u64("done", completed);
    w.field_u64("corners", corners);
    w.field_u64("failed", failed);
    w.end_object();
    w.finish()
}

/// An error response.
pub fn error_response(message: &str) -> String {
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.field_bool("ok", false);
    w.field_str("error", message);
    w.end_object();
    w.finish()
}

/// A per-benchmark error inside a `suite` stream (the stream continues).
pub fn suite_error_response(name: &str, message: &str) -> String {
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.field_bool("ok", false);
    w.field_str("name", name);
    w.field_str("error", message);
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbound_msp430::assemble;

    #[test]
    fn analyze_source_round_trips() {
        let line = analyze_source_request("main:\n jmp $\n");
        let req = parse_request(&line).unwrap();
        match req {
            Request::Analyze {
                source: Some(s),
                image: None,
                config,
                energy_rounds,
            } => {
                assert_eq!(s, "main:\n jmp $\n");
                assert_eq!(config.max_total_cycles, 5_000_000);
                assert_eq!(energy_rounds, DEFAULT_ENERGY_ROUNDS);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn analyze_image_round_trips() {
        let program = assemble("main:\n mov #7, r4\n jmp $\n").unwrap();
        let line = analyze_image_request(&program);
        let req = parse_request(&line).unwrap();
        match req {
            Request::Analyze {
                image: Some((entry, words)),
                source: None,
                ..
            } => {
                assert_eq!(entry, program.entry());
                assert_eq!(words, program.words());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn analyze_knob_overrides_parse() {
        let req = parse_request(
            r#"{"op": "analyze", "source": "x", "widen_threshold": 9, "energy_rounds": 5, "max_total_cycles": 123}"#,
        )
        .unwrap();
        match req {
            Request::Analyze {
                config,
                energy_rounds,
                ..
            } => {
                assert_eq!(config.widen_threshold, 9);
                assert_eq!(config.max_total_cycles, 123);
                assert_eq!(energy_rounds, 5);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn suite_and_plain_ops_parse() {
        assert_eq!(
            parse_request(&suite_request(&["mult".to_string()])).unwrap(),
            Request::Suite {
                benches: vec!["mult".to_string()]
            }
        );
        assert_eq!(parse_request(&op_request("stats")).unwrap(), Request::Stats);
        assert_eq!(
            parse_request(&op_request("shutdown")).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn sweep_round_trips_and_validates() {
        assert_eq!(
            parse_request(&sweep_request(&["mult".to_string()], 4)).unwrap(),
            Request::Sweep {
                benches: vec!["mult".to_string()],
                corners: 4
            }
        );
        // Absent knobs default to the whole suite over the full grid.
        assert_eq!(
            parse_request(r#"{"op": "sweep"}"#).unwrap(),
            Request::Sweep {
                benches: Vec::new(),
                corners: 0
            }
        );
        assert!(parse_request(r#"{"op": "sweep", "corners": -2}"#).is_err());
        assert!(parse_request(r#"{"op": "sweep", "benches": "mult"}"#).is_err());
    }

    #[test]
    fn metrics_round_trips_and_validates() {
        assert_eq!(
            parse_request(&metrics_request(false)).unwrap(),
            Request::Metrics { prometheus: false }
        );
        assert_eq!(
            parse_request(&metrics_request(true)).unwrap(),
            Request::Metrics { prometheus: true }
        );
        // Absent format defaults to JSON; junk is rejected.
        assert_eq!(
            parse_request(r#"{"op": "metrics"}"#).unwrap(),
            Request::Metrics { prometheus: false }
        );
        assert!(parse_request(r#"{"op": "metrics", "format": "xml"}"#).is_err());
    }

    #[test]
    fn metrics_response_carries_version_and_snapshot() {
        xbound_obs::metrics::counter("xbound_test_proto_total").inc();
        let json = Json::parse(&metrics_response(false)).unwrap();
        assert_eq!(json.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            json.get("version").and_then(Json::as_str),
            Some(version_string().as_str())
        );
        assert!(json
            .get("metrics")
            .and_then(|m| m.get("xbound_test_proto_total"))
            .is_some());
        let prom = Json::parse(&metrics_response(true)).unwrap();
        assert!(prom
            .get("prometheus")
            .and_then(Json::as_str)
            .unwrap()
            .contains("xbound_test_proto_total"));
    }

    #[test]
    fn bad_requests_are_rejected() {
        for bad in [
            "{}",
            r#"{"op": "nope"}"#,
            r#"{"op": "analyze"}"#,
            r#"{"op": "analyze", "source": "x", "image": {"entry": 0, "words": []}}"#,
            "not json",
        ] {
            assert!(parse_request(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn mistyped_knobs_are_rejected_not_defaulted() {
        for bad in [
            r#"{"op": "analyze", "source": "x", "energy_rounds": "500"}"#,
            r#"{"op": "analyze", "source": "x", "energy_rounds": -1}"#,
            r#"{"op": "analyze", "source": "x", "max_total_cycles": 1.5}"#,
            r#"{"op": "analyze", "source": "x", "widen_threshold": 5000000000}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad}");
        }
    }
}
