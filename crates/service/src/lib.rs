//! The co-analysis service: a long-running daemon that amortizes,
//! caches, and deduplicates X-based peak power / energy analyses.
//!
//! The paper's bounds are *per-application* artifacts — every new binary
//! (or recompile) needs a fresh co-analysis. A tool server handling that
//! workload from many users should not pay full exploration cost per
//! invocation, so this crate wraps the [`xbound_core`] pipeline in:
//!
//! * a **content-addressed bound cache** ([`cache`]): results keyed by
//!   the hash of *(program image bytes, cell library, operating point,
//!   exploration knobs, energy rounds)*, held in a capacity-bounded
//!   in-memory LRU and persisted on disk so restarts are warm;
//! * a **job scheduler** ([`sched`]): a bounded queue feeding a worker
//!   pool, with single-flight deduplication — N concurrent identical
//!   requests run exactly one underlying analysis;
//! * a **line-delimited JSON protocol** ([`protocol`]) served over
//!   `std::net` TCP ([`server`]) by the `xbound-serve` daemon and spoken
//!   by the `xbound-client` CLI.
//!
//! The correctness contract is byte-identity: a daemon round-trip
//! returns exactly the bytes the direct [`xbound_core::CoAnalysis`] path
//! produces (canonical [`xbound_core::BoundsReport`] JSON), whether the
//! answer was computed fresh, coalesced onto an in-flight job, or
//! replayed from the memory or disk cache — at any `(threads, lanes)`
//! setting. `crates/service/tests/` and the CI service smoke job assert
//! this against `suite_summary --bounds`.
//!
//! ```text
//! xbound-serve --port 4517 --cache-dir results/cache --workers 4 &
//! xbound-client --port 4517 suite mult tea8
//! xbound-client --port 4517 stats
//! xbound-client --port 4517 shutdown
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod json;
pub mod protocol;
pub mod sched;
pub mod server;

pub use cache::{BoundCache, CacheHit, KeyMaterial};
pub use sched::{AnalyzeOutcome, Scheduler, Served};
pub use server::{Server, Service, ServiceConfig};
