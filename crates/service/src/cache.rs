//! The content-addressed bound cache.
//!
//! A co-analysis result is a pure function of *(program image bytes, cell
//! library, operating point, exploration knobs, energy-round budget)* —
//! the scheduling knobs (`threads`, `lanes`) provably do not affect it.
//! [`KeyMaterial`] captures exactly that function input; its FNV-1a hash
//! addresses a capacity-bounded in-memory LRU backed by an on-disk store
//! (one JSON file per key under the cache directory), so daemon restarts
//! are warm.
//!
//! Hash collisions cannot corrupt answers: every entry stores its full
//! key material (the program image included) and a lookup only hits when
//! the material matches byte-for-byte.

use crate::json::Json;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use xbound_core::jsonout::JsonWriter;
use xbound_core::{BoundsReport, ExploreConfig, UlpSystem};
use xbound_msp430::Program;

/// The exact analysis input a cached bound is valid for.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyMaterial {
    /// Canonical program image bytes ([`Program::image_bytes`]).
    pub image: Vec<u8>,
    /// Cell library identifier.
    pub library: String,
    /// Operating clock, hertz.
    pub clock_hz: f64,
    /// [`ExploreConfig::max_segment_cycles`].
    pub max_segment_cycles: u64,
    /// [`ExploreConfig::max_total_cycles`].
    pub max_total_cycles: u64,
    /// [`ExploreConfig::widen_threshold`].
    pub widen_threshold: u32,
    /// [`ExploreConfig::reset_cycles`].
    pub reset_cycles: u32,
    /// Peak-energy value-iteration round budget.
    pub energy_rounds: u64,
}

impl KeyMaterial {
    /// Builds the key for analyzing `program` on `system` with `config`.
    ///
    /// `config.threads` and `config.lanes` are deliberately excluded:
    /// results are bit-identical at any setting, so they must not split
    /// the cache.
    pub fn new(
        system: &UlpSystem,
        program: &Program,
        config: &ExploreConfig,
        energy_rounds: u64,
    ) -> KeyMaterial {
        KeyMaterial::for_corner(
            program,
            system.library().name(),
            system.clock_hz(),
            config,
            energy_rounds,
        )
    }

    /// Builds the key for one operating-point corner, given the corner's
    /// (possibly derated) library name and clock directly. `new`
    /// delegates here, so a sweep corner and a direct single-corner run
    /// of the same operating point produce the same key — their cache
    /// entries compose.
    pub fn for_corner(
        program: &Program,
        library: &str,
        clock_hz: f64,
        config: &ExploreConfig,
        energy_rounds: u64,
    ) -> KeyMaterial {
        KeyMaterial {
            image: program.image_bytes(),
            library: library.to_string(),
            clock_hz,
            max_segment_cycles: config.max_segment_cycles,
            max_total_cycles: config.max_total_cycles,
            widen_threshold: config.widen_threshold,
            reset_cycles: config.reset_cycles,
            energy_rounds,
        }
    }

    /// FNV-1a over the canonical byte serialization of the material.
    pub fn hash(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        eat(&(self.image.len() as u64).to_le_bytes());
        eat(&self.image);
        eat(self.library.as_bytes());
        eat(&[0]);
        eat(&self.clock_hz.to_bits().to_le_bytes());
        eat(&self.max_segment_cycles.to_le_bytes());
        eat(&self.max_total_cycles.to_le_bytes());
        eat(&u64::from(self.widen_threshold).to_le_bytes());
        eat(&u64::from(self.reset_cycles).to_le_bytes());
        eat(&self.energy_rounds.to_le_bytes());
        h
    }

    /// The 16-hex-digit content address (used as key string and cache
    /// file stem).
    pub fn hex(&self) -> String {
        format!("{:016x}", self.hash())
    }

    fn image_hex(&self) -> String {
        let mut s = String::with_capacity(self.image.len() * 2);
        for b in &self.image {
            let _ = write!(s, "{b:02x}");
        }
        s
    }

    /// Writes the material as the next value of `w` (for cache files).
    pub fn write(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_str("image", &self.image_hex());
        w.field_str("library", &self.library);
        w.field_f64("clock_hz", self.clock_hz);
        w.field_u64("max_segment_cycles", self.max_segment_cycles);
        w.field_u64("max_total_cycles", self.max_total_cycles);
        w.field_u64("widen_threshold", u64::from(self.widen_threshold));
        w.field_u64("reset_cycles", u64::from(self.reset_cycles));
        w.field_u64("energy_rounds", self.energy_rounds);
        w.end_object();
    }

    /// Reads the material back from a cache-file object.
    pub fn from_json(v: &Json) -> Result<KeyMaterial, String> {
        let image_hex = v
            .get("image")
            .and_then(Json::as_str)
            .ok_or("key: missing image")?;
        if image_hex.len() % 2 != 0 {
            return Err("key: odd-length image hex".to_string());
        }
        let image = (0..image_hex.len() / 2)
            .map(|i| u8::from_str_radix(&image_hex[2 * i..2 * i + 2], 16))
            .collect::<Result<Vec<u8>, _>>()
            .map_err(|_| "key: bad image hex".to_string())?;
        let str_field = |k: &str| -> Result<String, String> {
            Ok(v.get(k)
                .and_then(Json::as_str)
                .ok_or(format!("key: missing {k}"))?
                .to_string())
        };
        let u64_field = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or(format!("key: missing {k}"))
        };
        Ok(KeyMaterial {
            image,
            library: str_field("library")?,
            clock_hz: v
                .get("clock_hz")
                .and_then(Json::as_f64)
                .ok_or("key: missing clock_hz")?,
            max_segment_cycles: u64_field("max_segment_cycles")?,
            max_total_cycles: u64_field("max_total_cycles")?,
            widen_threshold: u64_field("widen_threshold")? as u32,
            reset_cycles: u64_field("reset_cycles")? as u32,
            energy_rounds: u64_field("energy_rounds")?,
        })
    }
}

/// Parses a [`BoundsReport`] from its canonical JSON object.
///
/// # Errors
///
/// Names the first missing or mistyped field.
pub fn bounds_from_json(v: &Json) -> Result<BoundsReport, String> {
    let f = |k: &str| -> Result<f64, String> {
        v.get(k)
            .and_then(Json::as_f64)
            .ok_or(format!("bounds: missing {k}"))
    };
    let u = |k: &str| -> Result<u64, String> {
        v.get(k)
            .and_then(Json::as_u64)
            .ok_or(format!("bounds: missing {k}"))
    };
    Ok(BoundsReport {
        peak_mw: f("peak_mw")?,
        peak_cycle: u("peak_cycle")?,
        npe_j_per_cycle: f("npe_j_per_cycle")?,
        peak_energy_j: f("peak_energy_j")?,
        energy_cycles: u("energy_cycles")?,
        converged: v
            .get("converged")
            .and_then(Json::as_bool)
            .ok_or("bounds: missing converged")?,
        segments: u("segments")?,
        cycles: u("cycles")?,
        forks: u("forks")?,
        merges: u("merges")?,
        widenings: u("widenings")?,
    })
}

/// How a lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheHit {
    /// Found in the in-memory LRU.
    Memory,
    /// Found in the on-disk store (promoted to memory).
    Disk,
}

struct LruEntry {
    material: KeyMaterial,
    report: BoundsReport,
    /// Monotonic recency stamp; the smallest stamp is evicted.
    stamp: u64,
}

struct LruInner {
    map: HashMap<u64, LruEntry>,
    next_stamp: u64,
}

/// The in-memory LRU + on-disk bound store.
pub struct BoundCache {
    inner: Mutex<LruInner>,
    capacity: usize,
    dir: Option<PathBuf>,
    hits_memory: AtomicU64,
    hits_disk: AtomicU64,
    misses: AtomicU64,
}

impl BoundCache {
    /// Creates a cache holding at most `capacity` in-memory entries,
    /// persisted under `dir` when given (`None` = memory-only, used by
    /// unit tests and `--no-disk-cache`).
    pub fn new(capacity: usize, dir: Option<PathBuf>) -> BoundCache {
        BoundCache {
            inner: Mutex::new(LruInner {
                map: HashMap::new(),
                next_stamp: 0,
            }),
            capacity: capacity.max(1),
            dir,
            hits_memory: AtomicU64::new(0),
            hits_disk: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The persistence directory, if any.
    pub fn dir(&self) -> Option<&PathBuf> {
        self.dir.as_ref()
    }

    /// In-memory entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// `true` when no entry is held in memory.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(memory hits, disk hits, misses)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.hits_memory.load(Ordering::Relaxed),
            self.hits_disk.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Looks `key` up in memory, then on disk. Disk hits are promoted
    /// into memory. Returns the report and where it was found.
    pub fn get(&self, key: &KeyMaterial) -> Option<(BoundsReport, CacheHit)> {
        self.lookup(key, true)
    }

    /// [`BoundCache::get`] without counting a miss — the scheduler's
    /// under-lock re-probe, which would otherwise double-count every
    /// fresh analysis's miss.
    pub(crate) fn recheck(&self, key: &KeyMaterial) -> Option<(BoundsReport, CacheHit)> {
        self.lookup(key, false)
    }

    fn lookup(&self, key: &KeyMaterial, count_miss: bool) -> Option<(BoundsReport, CacheHit)> {
        let hash = key.hash();
        {
            let mut inner = self.inner.lock().expect("cache lock");
            let stamp = inner.next_stamp;
            let found = inner.map.get_mut(&hash).and_then(|e| {
                if e.material == *key {
                    e.stamp = stamp;
                    Some(e.report.clone())
                } else {
                    None
                }
            });
            if let Some(report) = found {
                inner.next_stamp += 1;
                drop(inner);
                self.hits_memory.fetch_add(1, Ordering::Relaxed);
                return Some((report, CacheHit::Memory));
            }
        }
        if let Some(report) = self.load_from_disk(key) {
            self.insert_memory(hash, key.clone(), report.clone());
            self.hits_disk.fetch_add(1, Ordering::Relaxed);
            return Some((report, CacheHit::Disk));
        }
        if count_miss {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        None
    }

    /// Stores a freshly computed bound in memory and (best-effort) on
    /// disk. Disk write failures are reported on stderr but never fail
    /// the analysis.
    pub fn put(&self, key: &KeyMaterial, report: &BoundsReport) {
        self.insert_memory(key.hash(), key.clone(), report.clone());
        if let Some(dir) = &self.dir {
            let path = dir.join(format!("{}.json", key.hex()));
            let mut w = JsonWriter::compact();
            w.begin_object();
            w.key("key");
            key.write(&mut w);
            w.key("bounds");
            report.write(&mut w);
            w.end_object();
            let mut doc = w.finish();
            doc.push('\n');
            // Write-then-rename keeps readers (and a crashed daemon's
            // successor) from ever seeing a torn entry; the helper's
            // pid+counter temp names keep two daemons sharing one cache
            // directory from interleaving writes into each other's
            // scratch file before the rename.
            if let Err(e) = xbound_core::outdirs::write_atomic(&path, doc.as_bytes()) {
                xbound_obs::warn!("cache", "write {} failed: {e}", path.display());
            }
        }
    }

    fn insert_memory(&self, hash: u64, material: KeyMaterial, report: BoundsReport) {
        let mut inner = self.inner.lock().expect("cache lock");
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        inner.map.insert(
            hash,
            LruEntry {
                material,
                report,
                stamp,
            },
        );
        if inner.map.len() > self.capacity {
            if let Some((&evict, _)) = inner.map.iter().min_by_key(|(_, e)| e.stamp) {
                inner.map.remove(&evict);
            }
        }
    }

    fn load_from_disk(&self, key: &KeyMaterial) -> Option<BoundsReport> {
        let dir = self.dir.as_ref()?;
        let path = dir.join(format!("{}.json", key.hex()));
        let text = std::fs::read_to_string(&path).ok()?;
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                xbound_obs::warn!(
                    "cache",
                    "ignoring corrupt cache entry {}: {e}",
                    path.display()
                );
                return None;
            }
        };
        let stored = doc
            .get("key")
            .and_then(|k| KeyMaterial::from_json(k).ok())?;
        // The hash addressed the file; the material check defeats
        // collisions and stale schema.
        if stored != *key {
            return None;
        }
        doc.get("bounds").and_then(|b| bounds_from_json(b).ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn material(tag: u8) -> KeyMaterial {
        KeyMaterial {
            image: vec![tag, 1, 2, 3],
            library: "ulp65".to_string(),
            clock_hz: 1.0e8,
            max_segment_cycles: 200_000,
            max_total_cycles: 5_000_000,
            widen_threshold: 4,
            reset_cycles: 2,
            energy_rounds: 10_000,
        }
    }

    fn report(peak: f64) -> BoundsReport {
        BoundsReport {
            peak_mw: peak,
            peak_cycle: 1,
            npe_j_per_cycle: 2e-13,
            peak_energy_j: 3e-9,
            energy_cycles: 10,
            converged: true,
            segments: 2,
            cycles: 100,
            forks: 1,
            merges: 0,
            widenings: 0,
        }
    }

    #[test]
    fn key_hash_ignores_nothing_it_should_not() {
        let a = material(1);
        let mut b = material(1);
        assert_eq!(a.hash(), b.hash());
        b.energy_rounds = 9_999;
        assert_ne!(a.hash(), b.hash());
        let mut c = material(1);
        c.image[0] = 2;
        assert_ne!(a.hash(), c.hash());
        assert_eq!(a.hex().len(), 16);
    }

    #[test]
    fn key_material_round_trips_through_json() {
        let a = material(7);
        let mut w = JsonWriter::compact();
        a.write(&mut w);
        let parsed = Json::parse(&w.finish()).unwrap();
        assert_eq!(KeyMaterial::from_json(&parsed).unwrap(), a);
    }

    #[test]
    fn bounds_round_trip_through_json() {
        let r = report(1.0 / 3.0);
        let parsed = Json::parse(&r.to_json()).unwrap();
        let back = bounds_from_json(&parsed).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json(), r.to_json());
    }

    #[test]
    fn lru_hits_and_evicts() {
        let cache = BoundCache::new(2, None);
        let (k1, k2, k3) = (material(1), material(2), material(3));
        assert!(cache.get(&k1).is_none());
        cache.put(&k1, &report(1.0));
        cache.put(&k2, &report(2.0));
        assert_eq!(cache.get(&k1).unwrap().1, CacheHit::Memory);
        // k2 is now least recent; inserting k3 evicts it.
        cache.put(&k3, &report(3.0));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&k2).is_none());
        assert_eq!(cache.get(&k1).unwrap().0.peak_mw, 1.0);
        assert_eq!(cache.counters(), (2, 0, 2));
    }

    #[test]
    fn disk_persistence_round_trips() {
        let dir = std::env::temp_dir().join(format!("xbound-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let key = material(9);
        {
            let cache = BoundCache::new(4, Some(dir.clone()));
            cache.put(&key, &report(4.5));
        }
        // A fresh cache (fresh daemon) finds the entry on disk.
        let cache = BoundCache::new(4, Some(dir.clone()));
        let (r, how) = cache.get(&key).expect("disk hit");
        assert_eq!(how, CacheHit::Disk);
        assert_eq!(r, report(4.5));
        // Promoted: the second lookup is a memory hit.
        assert_eq!(cache.get(&key).unwrap().1, CacheHit::Memory);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_material_is_a_miss() {
        let dir = std::env::temp_dir().join(format!("xbound-cache-col-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let key = material(5);
        let cache = BoundCache::new(4, Some(dir.clone()));
        cache.put(&key, &report(1.0));
        // Forge a collision: a file at `other`'s address whose stored
        // material belongs to `key`.
        let other = material(6);
        let path = dir.join(format!("{}.json", other.hex()));
        let mut w = JsonWriter::compact();
        w.begin_object();
        w.key("key");
        key.write(&mut w);
        w.key("bounds");
        report(9.0).write(&mut w);
        w.end_object();
        std::fs::write(&path, w.finish()).unwrap();
        let fresh = BoundCache::new(4, Some(dir.clone()));
        assert!(fresh.get(&other).is_none(), "colliding entry must miss");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
