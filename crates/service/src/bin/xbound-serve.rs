//! The co-analysis daemon.
//!
//! ```text
//! cargo run --release -p xbound_service --bin xbound-serve -- [OPTIONS]
//! ```
//!
//! Options:
//!
//! * `--port N` — bind port (default 4517; `0` = ephemeral, the chosen
//!   port is printed on the listening line);
//! * `--host H` — bind host (default `127.0.0.1`);
//! * `--cache-dir DIR` — on-disk bound-cache directory (default:
//!   `XBOUND_CACHE_DIR`, then `<results dir>/cache` — see
//!   `XBOUND_RESULTS_DIR`);
//! * `--no-disk-cache` — keep the cache in memory only;
//! * `--workers N` — analysis worker pool (default: auto via
//!   `XBOUND_THREADS` / available parallelism, capped at 8);
//! * `--conns N` — concurrent-connection cap (default: auto, same
//!   resolution as `--workers`);
//! * `--cache-capacity N` — in-memory LRU entries (default 256);
//! * `--queue N` — bounded job-queue capacity (default 64).
//!
//! The daemon prints one readiness line to stdout
//! (`xbound-serve listening on HOST:PORT ...`) and then serves until an
//! `xbound-client shutdown` request.
//!
//! Environment: `XBOUND_TRACE=out.json` traces the daemon (request
//! lifecycle, scheduler, exploration spans) and writes a Chrome-trace
//! JSON file on clean shutdown; `XBOUND_LOG` sets the stderr log level.

use std::io::Write as _;
use xbound_service::{Server, ServiceConfig};

/// Default TCP port (unassigned range; "x" + the paper year).
const DEFAULT_PORT: u16 = 4517;

fn main() {
    let trace_out = xbound_obs::trace::init_from_env();
    let mut config = ServiceConfig {
        port: DEFAULT_PORT,
        ..ServiceConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next().unwrap_or_else(|| {
                xbound_obs::error!("serve", "{flag} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--port" => config.port = parse(&value("--port"), "--port"),
            "--host" => config.host = value("--host"),
            "--cache-dir" => config.cache_dir = Some(value("--cache-dir").into()),
            "--no-disk-cache" => config.disk_cache = false,
            "--workers" => config.workers = parse(&value("--workers"), "--workers"),
            "--conns" => config.conns = parse(&value("--conns"), "--conns"),
            "--cache-capacity" => {
                config.cache_capacity = parse(&value("--cache-capacity"), "--cache-capacity");
            }
            "--queue" => config.queue_capacity = parse(&value("--queue"), "--queue"),
            other => {
                xbound_obs::error!("serve", "unknown option `{other}`");
                std::process::exit(2);
            }
        }
    }
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            xbound_obs::error!("serve", "startup failed: {e}");
            std::process::exit(1);
        }
    };
    let service = server.service();
    println!(
        "xbound-serve listening on {} (workers={}, cache-dir={})",
        server.addr(),
        service.workers(),
        service
            .cache()
            .dir()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|| "<memory-only>".to_string()),
    );
    let _ = std::io::stdout().flush();
    server.join();
    if let Some(path) = trace_out {
        match xbound_obs::trace::write_chrome_trace(&path) {
            Ok(()) => xbound_obs::info!("serve", "wrote trace {path}"),
            Err(e) => xbound_obs::warn!("serve", "trace write {path} failed: {e}"),
        }
    }
    println!("xbound-serve: shut down cleanly");
}

fn parse<T: std::str::FromStr>(v: &str, flag: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        xbound_obs::error!("serve", "bad value `{v}` for {flag}");
        std::process::exit(2);
    })
}
