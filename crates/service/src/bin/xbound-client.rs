//! CLI client for the co-analysis daemon.
//!
//! ```text
//! cargo run --release -p xbound_service --bin xbound-client -- [OPTIONS] COMMAND [ARGS]
//! ```
//!
//! Commands:
//!
//! * `analyze FILE.S` — send the assembly file for analysis; prints the
//!   daemon's response line (canonical bounds JSON);
//! * `suite [BENCH...]` — analyze named benchmarks (none = all 14);
//!   prints one canonical `{"name": ..., "bounds": ...}` line per
//!   benchmark **in suite order** (byte-identical to `suite_summary
//!   --bounds` output — results stream per-completion and are reordered
//!   client-side);
//! * `sweep [--corners N] [BENCH...]` — bound named benchmarks at every
//!   corner of the operating-point grid (N caps the grid; 0/absent =
//!   all corners), exploring each benchmark once server-side; prints
//!   one corner-stamped `{"name": ..., "bounds": ..., "corner": ...}`
//!   line per `(benchmark, corner)` in suite × grid order
//!   (byte-identical to `suite_summary --sweep --bounds` output) and
//!   writes one bound-vs-corner curve JSON per benchmark under
//!   `<results dir>/sweeps/`;
//! * `stats [--watch SECS]` — print the daemon's telemetry line;
//!   `--watch` re-polls every SECS seconds and prints a delta view
//!   (requests/s, cache hits/s, queue depth, in-flight) until killed;
//! * `metrics [--prometheus]` — print the daemon's metrics-registry
//!   snapshot (canonical JSON, or Prometheus text exposition with
//!   `--prometheus`);
//! * `wait` — block until the daemon answers a `stats` request (CI
//!   readiness probe);
//! * `shutdown` — ask the daemon to shut down cleanly.
//!
//! `stats` and `metrics` responses carry the daemon's `version`
//! (`<crate>+p<protocol rev>`); the client warns on stderr when it
//! differs from its own.
//!
//! Options: `--port N` (default 4517), `--addr HOST:PORT`,
//! `--timeout S` (overall deadline for `wait`, default 30 s; polls with
//! exponential backoff and exits non-zero on expiry; `--timeout-secs`
//! is the accepted legacy spelling).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use xbound_service::json::Json;
use xbound_service::protocol;

const DEFAULT_PORT: u16 = 4517;

struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Conn {
    fn open(addr: &str) -> std::io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Conn {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    fn send(&mut self, line: &str) -> std::io::Result<()> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }

    fn recv(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        Ok(line.trim_end_matches('\n').to_string())
    }
}

fn fail(msg: &str) -> ! {
    xbound_obs::error!("client", "{msg}");
    std::process::exit(1);
}

/// Warns (once per invocation is enough — the client is one-shot) when
/// the daemon's `version` differs from this binary's: mixed builds still
/// interoperate over the line protocol, but telemetry fields may differ.
fn check_version(response: &Json) {
    let local = protocol::version_string();
    if let Some(remote) = response.get("version").and_then(Json::as_str) {
        if remote != local {
            xbound_obs::warn!(
                "client",
                "daemon version {remote} != client version {local}; \
                 telemetry fields may differ"
            );
        }
    }
}

fn main() {
    let mut addr: Option<String> = None;
    let mut port = DEFAULT_PORT;
    let mut timeout_secs = 30u64;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--port" => {
                port = value("--port")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --port"));
            }
            "--timeout" | "--timeout-secs" => {
                timeout_secs = value(&a).parse().unwrap_or_else(|_| fail("bad --timeout"));
            }
            other => rest.push(other.to_string()),
        }
    }
    let addr = addr.unwrap_or_else(|| format!("127.0.0.1:{port}"));
    let Some((command, cmd_args)) = rest.split_first() else {
        fail("usage: xbound-client [--port N | --addr HOST:PORT] analyze|suite|sweep|stats|metrics|wait|shutdown [ARGS]");
    };
    match command.as_str() {
        "analyze" => {
            let [file] = cmd_args else {
                fail("usage: xbound-client analyze FILE.S");
            };
            let source = std::fs::read_to_string(file)
                .unwrap_or_else(|e| fail(&format!("read {file}: {e}")));
            let response = roundtrip(&addr, &protocol::analyze_source_request(&source));
            check_ok(&response);
            println!("{response}");
        }
        "suite" => suite(&addr, cmd_args),
        "sweep" => sweep(&addr, cmd_args),
        "stats" => stats(&addr, cmd_args),
        "metrics" => metrics(&addr, cmd_args),
        "wait" => wait_ready(&addr, timeout_secs),
        "shutdown" => {
            let response = roundtrip(&addr, &protocol::op_request("shutdown"));
            check_ok(&response);
            println!("{response}");
        }
        other => fail(&format!("unknown command `{other}`")),
    }
}

/// `stats` / `stats --watch SECS`: one-shot prints the daemon's raw
/// telemetry line; watch mode re-polls and prints a delta view
/// (per-second rates over the interval) until the process is killed or
/// the daemon goes away.
fn stats(addr: &str, cmd_args: &[String]) {
    let mut watch: Option<u64> = None;
    let mut it = cmd_args.iter();
    while let Some(a) = it.next() {
        if a == "--watch" {
            let secs: u64 = it
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| fail("--watch needs a positive number of seconds"));
            if secs == 0 {
                fail("--watch needs a positive number of seconds");
            }
            watch = Some(secs);
        } else {
            fail(&format!("unknown stats option `{a}`"));
        }
    }
    let Some(secs) = watch else {
        let response = roundtrip(addr, &protocol::op_request("stats"));
        check_ok(&response);
        check_version(
            &Json::parse(&response).unwrap_or_else(|e| fail(&format!("bad response: {e}"))),
        );
        println!("{response}");
        return;
    };
    let field = |v: &Json, name: &str| v.get(name).and_then(Json::as_u64).unwrap_or(0);
    let mut prev: Option<(Instant, u64, u64, u64)> = None;
    loop {
        let response = roundtrip(addr, &protocol::op_request("stats"));
        check_ok(&response);
        let v = Json::parse(&response).unwrap_or_else(|e| fail(&format!("bad response: {e}")));
        if prev.is_none() {
            check_version(&v);
        }
        let now = Instant::now();
        let requests = field(&v, "requests");
        let hits = field(&v, "cache_hits_memory") + field(&v, "cache_hits_disk");
        let analyses = field(&v, "analyses_run");
        let line = match prev {
            None => format!("requests={requests} cache_hits={hits} analyses={analyses}"),
            Some((t0, req0, hits0, an0)) => {
                let dt = now.duration_since(t0).as_secs_f64().max(1e-9);
                let rate = |cur: u64, old: u64| (cur.saturating_sub(old)) as f64 / dt;
                format!(
                    "requests={requests} ({:+.1}/s) cache_hits={hits} ({:+.1}/s) analyses={analyses} ({:+.1}/s)",
                    rate(requests, req0),
                    rate(hits, hits0),
                    rate(analyses, an0),
                )
            }
        };
        println!(
            "{line} queue={} inflight={} memo_hits={}",
            field(&v, "queue_depth"),
            field(&v, "inflight"),
            field(&v, "memo_hits"),
        );
        prev = Some((now, requests, hits, analyses));
        std::thread::sleep(Duration::from_secs(secs));
    }
}

/// `metrics [--prometheus]`: print the daemon's metrics-registry
/// snapshot (the canonical JSON response line, or the unescaped
/// Prometheus text with `--prometheus`).
fn metrics(addr: &str, cmd_args: &[String]) {
    let mut prometheus = false;
    for a in cmd_args {
        match a.as_str() {
            "--prometheus" => prometheus = true,
            other => fail(&format!("unknown metrics option `{other}`")),
        }
    }
    let response = roundtrip(addr, &protocol::metrics_request(prometheus));
    check_ok(&response);
    let v = Json::parse(&response).unwrap_or_else(|e| fail(&format!("bad response: {e}")));
    check_version(&v);
    if prometheus {
        let text = v
            .get("prometheus")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(&format!("response without prometheus text: {response}")));
        print!("{text}");
    } else {
        println!("{response}");
    }
}

fn roundtrip(addr: &str, request: &str) -> String {
    let mut conn = Conn::open(addr).unwrap_or_else(|e| fail(&format!("connect {addr}: {e}")));
    conn.send(request)
        .and_then(|()| conn.recv())
        .unwrap_or_else(|e| fail(&format!("request failed: {e}")))
}

fn check_ok(response: &str) {
    let ok = Json::parse(response)
        .ok()
        .and_then(|v| v.get("ok").and_then(Json::as_bool))
        .unwrap_or(false);
    if !ok {
        fail(&format!("daemon error: {response}"));
    }
}

/// Resolves the canonical client-side print order: the full suite in
/// `xbound_benchsuite::all()` order when no names are given, the
/// deduplicated request order otherwise (the daemon analyzes duplicates
/// once and streams one result per distinct name).
fn canonical_order(names: &[String]) -> Vec<String> {
    if names.is_empty() {
        xbound_benchsuite::all()
            .iter()
            .map(|b| b.name().to_string())
            .collect()
    } else {
        let mut order = Vec::with_capacity(names.len());
        for n in names {
            if !order.contains(n) {
                order.push(n.clone());
            }
        }
        order
    }
}

/// Runs a suite request and prints canonical per-benchmark bound lines
/// in suite order (the daemon streams per-completion; we reorder).
fn suite(addr: &str, names: &[String]) {
    let order = canonical_order(names);
    let mut conn = Conn::open(addr).unwrap_or_else(|e| fail(&format!("connect {addr}: {e}")));
    conn.send(&protocol::suite_request(&order))
        .unwrap_or_else(|e| fail(&format!("request failed: {e}")));
    let mut results: Vec<Option<String>> = vec![None; order.len()];
    let mut errors = Vec::new();
    loop {
        let line = conn
            .recv()
            .unwrap_or_else(|e| fail(&format!("stream ended early: {e}")));
        let v = Json::parse(&line).unwrap_or_else(|e| fail(&format!("bad response: {e}")));
        if v.get("done").is_some() {
            break;
        }
        let name = v.get("name").and_then(Json::as_str);
        if v.get("ok").and_then(Json::as_bool) == Some(true) {
            let name = name.unwrap_or_else(|| fail(&format!("result without name: {line}")));
            let bounds = v
                .get("bounds")
                .unwrap_or_else(|| fail(&format!("response without bounds: {line}")));
            let report = xbound_service::cache::bounds_from_json(bounds)
                .unwrap_or_else(|e| fail(&format!("bad bounds: {e}")));
            // Re-serializing the parsed report reproduces the daemon's
            // bytes exactly (shortest-repr floats round-trip).
            let canonical = protocol::bounds_line(name, &report);
            // First *unfilled* slot of that name, so a repeated benchmark
            // in the request fills every occurrence.
            let slot = (0..order.len()).find(|&i| order[i] == name && results[i].is_none());
            match slot {
                Some(i) => results[i] = Some(canonical),
                None => errors.push(format!("unexpected benchmark `{name}` in stream")),
            }
        } else {
            let e = v.get("error").and_then(Json::as_str).unwrap_or("unknown");
            match name {
                // A per-benchmark failure: the stream continues.
                Some(name) => errors.push(format!("{name}: {e}")),
                // A whole-request error (e.g. unknown benchmark): no
                // stream and no `done` line will follow — fail now
                // instead of waiting for one.
                None => fail(&format!("daemon error: {e}")),
            }
        }
    }
    for (i, slot) in results.iter().enumerate() {
        match slot {
            Some(line) => println!("{line}"),
            None => errors.push(format!("{}: no result", order[i])),
        }
    }
    if !errors.is_empty() {
        for e in &errors {
            xbound_obs::error!("client", "{e}");
        }
        std::process::exit(1);
    }
}

/// Runs a sweep request: prints corner-stamped canonical bound lines in
/// suite × grid order (the daemon streams whole benchmarks
/// per-completion, corners in grid order within each; we reorder the
/// benchmarks) and writes one bound-vs-corner curve JSON per benchmark
/// under `<results dir>/sweeps/`.
fn sweep(addr: &str, cmd_args: &[String]) {
    let mut corners = 0u64;
    let mut names: Vec<String> = Vec::new();
    let mut it = cmd_args.iter();
    while let Some(a) = it.next() {
        if a == "--corners" {
            corners = it
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| fail("--corners needs a non-negative integer"));
        } else {
            names.push(a.clone());
        }
    }
    let order = canonical_order(&names);
    let mut conn = Conn::open(addr).unwrap_or_else(|e| fail(&format!("connect {addr}: {e}")));
    conn.send(&protocol::sweep_request(&order, corners))
        .unwrap_or_else(|e| fail(&format!("request failed: {e}")));
    // Per-benchmark corner results, in arrival order within a benchmark
    // (the daemon writes each benchmark's corners consecutively in grid
    // order).
    let mut results: Vec<Vec<(String, xbound_core::BoundsReport)>> = vec![Vec::new(); order.len()];
    let mut errors = Vec::new();
    loop {
        let line = conn
            .recv()
            .unwrap_or_else(|e| fail(&format!("stream ended early: {e}")));
        let v = Json::parse(&line).unwrap_or_else(|e| fail(&format!("bad response: {e}")));
        if v.get("done").is_some() {
            break;
        }
        let name = v.get("name").and_then(Json::as_str);
        if v.get("ok").and_then(Json::as_bool) == Some(true) {
            let name = name.unwrap_or_else(|| fail(&format!("result without name: {line}")));
            let corner = v
                .get("corner")
                .and_then(Json::as_str)
                .unwrap_or_else(|| fail(&format!("result without corner: {line}")));
            let bounds = v
                .get("bounds")
                .unwrap_or_else(|| fail(&format!("response without bounds: {line}")));
            let report = xbound_service::cache::bounds_from_json(bounds)
                .unwrap_or_else(|e| fail(&format!("bad bounds: {e}")));
            match order.iter().position(|n| n == name) {
                Some(i) => results[i].push((corner.to_string(), report)),
                None => errors.push(format!("unexpected benchmark `{name}` in stream")),
            }
        } else {
            let e = v.get("error").and_then(Json::as_str).unwrap_or("unknown");
            match name {
                Some(name) => errors.push(format!("{name}: {e}")),
                None => fail(&format!("daemon error: {e}")),
            }
        }
    }
    let sweeps_dir = xbound_core::outdirs::results_dir().and_then(|d| {
        let dir = d.join("sweeps");
        std::fs::create_dir_all(&dir)?;
        Ok(dir)
    });
    for (i, corners) in results.iter().enumerate() {
        if corners.is_empty() {
            errors.push(format!("{}: no result", order[i]));
            continue;
        }
        for (corner, report) in corners {
            // Re-serializing reproduces the daemon's bytes exactly; the
            // line matches `suite_summary --sweep --bounds` output.
            let mut w = xbound_core::jsonout::JsonWriter::compact();
            w.begin_object();
            w.field_str("name", &order[i]);
            w.key("bounds");
            report.write(&mut w);
            w.field_str("corner", corner);
            w.end_object();
            println!("{}", w.finish());
        }
        // The per-benchmark bound-vs-corner curve document.
        match &sweeps_dir {
            Ok(dir) => {
                let mut w = xbound_core::jsonout::JsonWriter::pretty();
                w.begin_object();
                w.field_str("name", &order[i]);
                w.key("curve");
                w.begin_array();
                for (corner, report) in corners {
                    w.begin_object();
                    w.field_str("corner", corner);
                    w.key("bounds");
                    report.write(&mut w);
                    w.end_object();
                }
                w.end_array();
                w.end_object();
                let mut doc = w.finish();
                doc.push('\n');
                let path = dir.join(format!("{}.json", order[i]));
                match xbound_core::outdirs::write_atomic(&path, doc.as_bytes()) {
                    Ok(()) => xbound_obs::info!("client", "wrote {}", path.display()),
                    Err(e) => errors.push(format!("write {}: {e}", path.display())),
                }
            }
            Err(e) => errors.push(format!("results dir: {e}")),
        }
    }
    if !errors.is_empty() {
        for e in &errors {
            xbound_obs::error!("client", "{e}");
        }
        std::process::exit(1);
    }
}

/// Polls `stats` until the daemon answers (or the budget runs out),
/// backing off exponentially (10 ms doubling to a 2 s ceiling) so a
/// slow-starting daemon is noticed quickly without hammering the port
/// for the rest of a long budget.
fn wait_ready(addr: &str, timeout_secs: u64) {
    let deadline = Instant::now() + Duration::from_secs(timeout_secs);
    let mut delay = Duration::from_millis(10);
    loop {
        if let Ok(mut conn) = Conn::open(addr) {
            if conn
                .send(&protocol::op_request("stats"))
                .and_then(|()| conn.recv())
                .is_ok()
            {
                println!("ready");
                return;
            }
        }
        let now = Instant::now();
        if now >= deadline {
            fail(&format!(
                "daemon at {addr} not ready after {timeout_secs}s; \
                 is xbound-serve running on that address?"
            ));
        }
        // Never sleep past the deadline — expire on time, not late.
        std::thread::sleep(delay.min(deadline - now));
        delay = (delay * 2).min(Duration::from_secs(2));
    }
}
