//! Fuzz-style property tests for the instruction decoder: arbitrary word
//! streams never panic, and everything that decodes re-encodes to the same
//! bytes (total round trip on the valid subset).

use proptest::prelude::*;
use xbound_msp430::isa::{decode, encode, Instr};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// decode() is total: any 3-word window either decodes or errors.
    #[test]
    fn decode_never_panics(w0 in any::<u16>(), w1 in any::<u16>(), w2 in any::<u16>()) {
        let _ = decode(&[w0, w1, w2], 0xF000);
    }

    /// Whatever decodes must re-encode to the identical words — the decoder
    /// and encoder agree on every corner of the encoding space.
    #[test]
    fn decode_encode_round_trip(w0 in any::<u16>(), w1 in any::<u16>(), w2 in any::<u16>()) {
        let words = [w0, w1, w2];
        if let Ok((instr, used)) = decode(&words, 0xF000) {
            let re = encode(&instr).expect("decoded instructions are encodable");
            prop_assert_eq!(&re[..], &words[..used], "{}", instr);
            // And decoding the re-encoding yields the same instruction.
            let (again, used2) = decode(&re, 0xF000).expect("re-decodes");
            prop_assert_eq!(used2, used);
            prop_assert_eq!(again, instr);
        }
    }

    /// Displayed instructions are non-empty and stable across round trips.
    #[test]
    fn display_is_stable(w0 in any::<u16>(), w1 in any::<u16>()) {
        if let Ok((instr, _)) = decode(&[w0, w1, 0], 0xF000) {
            let s1 = instr.to_string();
            prop_assert!(!s1.is_empty());
            if let Instr::Jump { .. } = instr {
                prop_assert!(s1.starts_with('j'));
            }
        }
    }
}
