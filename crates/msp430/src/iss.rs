//! Behavioral instruction-set simulator (golden model).
//!
//! [`Iss`] executes the supported MSP430 subset over the memory map in
//! [`crate::memmap`], including the memory-mapped hardware multiplier,
//! watchdog, clock-module, GPIO, and debug registers that the gate-level
//! core implements in logic. It is:
//!
//! * the **golden model** against which the gate-level core is validated
//!   (architectural state compared at every instruction retire), and
//! * the cycle estimator for the optimization study (Fig 5.6), using the
//!   same per-instruction cycle formula ([`crate::isa::cycle_count`]) that
//!   the core's FSM implements.
//!
//! # Example
//!
//! ```
//! use xbound_msp430::{assemble, iss::Iss};
//!
//! let p = assemble("main: mov #3, r4\n mov #4, r5\n add r4, r5\n jmp $\n")?;
//! let mut iss = Iss::new(&p);
//! let outcome = iss.run(100)?;
//! assert!(outcome.halted);
//! assert_eq!(iss.reg(5), 7);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::isa::{cycle_count, decode, Cond, Instr, IsaError, OneOp, Operand, TwoOp};
use crate::{memmap, Program, Reg};
use std::fmt;

/// Status-register flag bits.
pub mod flags {
    /// Carry.
    pub const C: u16 = 1 << 0;
    /// Zero.
    pub const Z: u16 = 1 << 1;
    /// Negative.
    pub const N: u16 = 1 << 2;
    /// Signed overflow.
    pub const V: u16 = 1 << 8;
}

/// Errors raised during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IssError {
    /// Instruction failed to decode.
    Decode {
        /// PC of the instruction.
        pc: u16,
        /// Underlying decoder error.
        source: IsaError,
    },
    /// Fetch from outside program ROM.
    PcOutOfRom {
        /// The offending PC.
        pc: u16,
    },
    /// Data access to an unmapped or illegal address.
    BadAccess {
        /// The address.
        addr: u16,
        /// PC of the instruction.
        pc: u16,
        /// `true` for stores.
        write: bool,
    },
    /// Odd (unaligned) word access.
    Unaligned {
        /// The address.
        addr: u16,
        /// PC of the instruction.
        pc: u16,
    },
}

impl fmt::Display for IssError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IssError::Decode { pc, source } => write!(f, "decode at 0x{pc:04x}: {source}"),
            IssError::PcOutOfRom { pc } => write!(f, "PC 0x{pc:04x} outside program ROM"),
            IssError::BadAccess { addr, pc, write } => write!(
                f,
                "{} of unmapped address 0x{addr:04x} at pc 0x{pc:04x}",
                if *write { "write" } else { "read" }
            ),
            IssError::Unaligned { addr, pc } => {
                write!(f, "unaligned word access 0x{addr:04x} at pc 0x{pc:04x}")
            }
        }
    }
}

impl std::error::Error for IssError {}

/// Information about one retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retire {
    /// Address of the instruction.
    pub pc: u16,
    /// The decoded instruction.
    pub instr: Instr,
    /// PC after the instruction.
    pub next_pc: u16,
    /// Machine cycles consumed (multicycle-core formula).
    pub cycles: u64,
}

/// Result of [`Iss::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Instructions retired during this run.
    pub retired: u64,
    /// Cycles consumed during this run.
    pub cycles: u64,
    /// `true` if the program reached a self-loop (`jmp $`) — the idiom the
    /// benchmark suite uses to signal completion.
    pub halted: bool,
}

/// The behavioral MSP430-subset machine.
#[derive(Debug, Clone)]
pub struct Iss {
    regs: [u16; 16],
    pmem: Vec<u16>,
    dmem: Vec<u16>,
    inport: Vec<u16>,
    mpy_op1: u16,
    mpy_signed: bool,
    mpy_op2: u16,
    reslo: u16,
    reshi: u16,
    wdtctl: u16,
    clkctl: u16,
    p1out: u16,
    dbg: [u16; 2],
    cycles: u64,
    retired: u64,
}

impl Iss {
    /// Creates a machine with the program loaded and PC at the entry point.
    ///
    /// All registers (including SP) reset to 0, matching the gate-level
    /// core; programs that use the stack must initialize SP. Data memory
    /// and the input port are zero-initialized (use [`Iss::set_inport`] to
    /// provide inputs).
    pub fn new(program: &Program) -> Iss {
        let mut pmem = vec![0u16; memmap::PMEM_WORDS];
        for &(addr, w) in program.words() {
            let off = addr.wrapping_sub(memmap::PMEM_BASE) as usize / 2;
            if off < pmem.len() {
                pmem[off] = w;
            }
        }
        // Reset vector.
        pmem[(memmap::RESET_VECTOR - memmap::PMEM_BASE) as usize / 2] = program.entry();
        let mut regs = [0u16; 16];
        regs[Reg::PC.num() as usize] = program.entry();
        Iss {
            regs,
            pmem,
            dmem: vec![0; memmap::DMEM_WORDS],
            inport: vec![0; memmap::INPORT_WORDS],
            mpy_op1: 0,
            mpy_signed: false,
            mpy_op2: 0,
            reslo: 0,
            reshi: 0,
            wdtctl: 0,
            clkctl: 0,
            p1out: 0,
            dbg: [0; 2],
            cycles: 0,
            retired: 0,
        }
    }

    /// Reads a register.
    pub fn reg(&self, n: u8) -> u16 {
        self.regs[n as usize]
    }

    /// Writes a register (no side effects; use for test setup).
    pub fn set_reg(&mut self, n: u8, v: u16) {
        self.regs[n as usize] = v;
    }

    /// Current program counter.
    pub fn pc(&self) -> u16 {
        self.regs[Reg::PC.num() as usize]
    }

    /// Status register.
    pub fn sr(&self) -> u16 {
        self.regs[Reg::SR.num() as usize]
    }

    /// Total cycles consumed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total instructions retired.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Data memory contents.
    pub fn dmem(&self) -> &[u16] {
        &self.dmem
    }

    /// Sets one input-port word.
    ///
    /// # Panics
    ///
    /// Panics if `index >= memmap::INPORT_WORDS`.
    pub fn set_inport(&mut self, index: usize, value: u16) {
        self.inport[index] = value;
    }

    /// Sets consecutive input-port words starting at index 0.
    pub fn set_inputs(&mut self, values: &[u16]) {
        for (i, v) in values.iter().enumerate() {
            self.inport[i] = *v;
        }
    }

    /// Word read with full memory-map semantics.
    ///
    /// # Errors
    ///
    /// [`IssError::Unaligned`] / [`IssError::BadAccess`] on illegal access.
    pub fn read_mem(&self, addr: u16) -> Result<u16, IssError> {
        let pc = self.pc();
        if addr & 1 != 0 {
            return Err(IssError::Unaligned { addr, pc });
        }
        let inport_end = memmap::INPORT_BASE + (memmap::INPORT_WORDS as u16) * 2;
        let dmem_end = memmap::DMEM_BASE + (memmap::DMEM_WORDS as u16) * 2;
        Ok(match addr {
            a if (memmap::INPORT_BASE..inport_end).contains(&a) => {
                self.inport[(a - memmap::INPORT_BASE) as usize / 2]
            }
            a if a == memmap::P1OUT => self.p1out,
            a if a == memmap::WDTCTL => self.wdtctl,
            a if a == memmap::CLKCTL => self.clkctl,
            a if a == memmap::MPY => self.mpy_op1,
            a if a == memmap::MPYS => self.mpy_op1,
            a if a == memmap::OP2 => self.mpy_op2,
            a if a == memmap::RESLO => self.reslo,
            a if a == memmap::RESHI => self.reshi,
            a if a == memmap::DBG0 => self.dbg[0],
            a if a == memmap::DBG1 => self.dbg[1],
            a if (memmap::DMEM_BASE..dmem_end).contains(&a) => {
                self.dmem[(a - memmap::DMEM_BASE) as usize / 2]
            }
            a if a >= memmap::PMEM_BASE => self.pmem[(a - memmap::PMEM_BASE) as usize / 2],
            _ => {
                return Err(IssError::BadAccess {
                    addr,
                    pc,
                    write: false,
                })
            }
        })
    }

    /// Word write with full memory-map semantics (multiplier trigger etc).
    ///
    /// # Errors
    ///
    /// [`IssError::Unaligned`] / [`IssError::BadAccess`] on illegal access.
    pub fn write_mem(&mut self, addr: u16, value: u16) -> Result<(), IssError> {
        let pc = self.pc();
        if addr & 1 != 0 {
            return Err(IssError::Unaligned { addr, pc });
        }
        let dmem_end = memmap::DMEM_BASE + (memmap::DMEM_WORDS as u16) * 2;
        match addr {
            a if a == memmap::P1OUT => self.p1out = value,
            a if a == memmap::WDTCTL => self.wdtctl = value,
            a if a == memmap::CLKCTL => self.clkctl = value,
            a if a == memmap::MPY => {
                self.mpy_op1 = value;
                self.mpy_signed = false;
            }
            a if a == memmap::MPYS => {
                self.mpy_op1 = value;
                self.mpy_signed = true;
            }
            a if a == memmap::OP2 => {
                self.mpy_op2 = value;
                let prod = if self.mpy_signed {
                    ((self.mpy_op1 as i16 as i32) * (value as i16 as i32)) as u32
                } else {
                    (self.mpy_op1 as u32) * (value as u32)
                };
                self.reslo = prod as u16;
                self.reshi = (prod >> 16) as u16;
            }
            a if a == memmap::DBG0 => self.dbg[0] = value,
            a if a == memmap::DBG1 => self.dbg[1] = value,
            a if (memmap::DMEM_BASE..dmem_end).contains(&a) => {
                self.dmem[(a - memmap::DMEM_BASE) as usize / 2] = value;
            }
            _ => {
                return Err(IssError::BadAccess {
                    addr,
                    pc,
                    write: true,
                })
            }
        }
        Ok(())
    }

    fn flag(&self, bit: u16) -> bool {
        self.sr() & bit != 0
    }

    fn set_flags(&mut self, c: bool, z: bool, n: bool, v: bool) {
        let mut sr = self.sr() & !(flags::C | flags::Z | flags::N | flags::V);
        if c {
            sr |= flags::C;
        }
        if z {
            sr |= flags::Z;
        }
        if n {
            sr |= flags::N;
        }
        if v {
            sr |= flags::V;
        }
        self.regs[Reg::SR.num() as usize] = sr;
    }

    /// Reads a source operand; `next_pc` is PC after the whole instruction.
    fn read_operand(&mut self, op: Operand, next_pc: u16) -> Result<u16, IssError> {
        Ok(match op {
            Operand::Reg(Reg::CG) => 0,
            Operand::Reg(Reg::PC) => next_pc,
            Operand::Reg(r) => self.regs[r.num() as usize],
            Operand::Imm(v) => v as u16,
            Operand::ImmExt(v) => v,
            Operand::Abs(a) => self.read_mem(a)?,
            Operand::Indexed(r, off) => {
                let base = if r == Reg::PC {
                    next_pc
                } else {
                    self.regs[r.num() as usize]
                };
                self.read_mem(base.wrapping_add(off as u16))?
            }
            Operand::Indirect(r) => {
                let a = self.regs[r.num() as usize];
                self.read_mem(a)?
            }
            Operand::IndirectInc(r) => {
                let a = self.regs[r.num() as usize];
                let v = self.read_mem(a)?;
                self.regs[r.num() as usize] = a.wrapping_add(2);
                v
            }
        })
    }

    fn write_operand(
        &mut self,
        op: Operand,
        value: u16,
        next_pc: &mut u16,
    ) -> Result<(), IssError> {
        match op {
            Operand::Reg(Reg::PC) => *next_pc = value & !1,
            Operand::Reg(Reg::CG) => {} // constant generator: writes ignored
            Operand::Reg(r) => self.regs[r.num() as usize] = value,
            Operand::Abs(a) => self.write_mem(a, value)?,
            Operand::Indexed(r, off) => {
                let base = if r == Reg::PC {
                    *next_pc
                } else {
                    self.regs[r.num() as usize]
                };
                self.write_mem(base.wrapping_add(off as u16), value)?;
            }
            Operand::Indirect(r) | Operand::IndirectInc(r) => {
                let a = self.regs[r.num() as usize];
                self.write_mem(a, value)?;
            }
            Operand::Imm(_) | Operand::ImmExt(_) => {} // not a real destination
        }
        Ok(())
    }

    fn exec_two(&mut self, op: TwoOp, src: u16, dst: u16) -> (u16, bool) {
        // Returns (result, write_back).
        let (res, wb) = match op {
            TwoOp::Mov => (src, true),
            TwoOp::Add | TwoOp::Addc => {
                let cin = if op == TwoOp::Addc && self.flag(flags::C) {
                    1u32
                } else {
                    0
                };
                let full = dst as u32 + src as u32 + cin;
                let res = full as u16;
                let c = full > 0xFFFF;
                let v = ((dst ^ res) & (src ^ res) & 0x8000) != 0;
                self.set_flags(c, res == 0, res & 0x8000 != 0, v);
                (res, true)
            }
            TwoOp::Sub | TwoOp::Subc | TwoOp::Cmp => {
                let cin = if op == TwoOp::Subc {
                    u32::from(self.flag(flags::C))
                } else {
                    1
                };
                let full = dst as u32 + (!src) as u32 + cin;
                let res = full as u16;
                let c = full > 0xFFFF;
                let v = ((dst ^ src) & (dst ^ res) & 0x8000) != 0;
                self.set_flags(c, res == 0, res & 0x8000 != 0, v);
                (res, op != TwoOp::Cmp)
            }
            TwoOp::Bit | TwoOp::And => {
                let res = src & dst;
                self.set_flags(res != 0, res == 0, res & 0x8000 != 0, false);
                (res, op == TwoOp::And)
            }
            TwoOp::Bic => (dst & !src, true),
            TwoOp::Bis => (dst | src, true),
            TwoOp::Xor => {
                let res = src ^ dst;
                let v = (src & 0x8000 != 0) && (dst & 0x8000 != 0);
                self.set_flags(res != 0, res == 0, res & 0x8000 != 0, v);
                (res, true)
            }
        };
        match op {
            TwoOp::Mov | TwoOp::Bic | TwoOp::Bis => {} // no flags
            _ => {}
        }
        (res, wb)
    }

    fn cond_taken(&self, cond: Cond) -> bool {
        let (c, z, n, v) = (
            self.flag(flags::C),
            self.flag(flags::Z),
            self.flag(flags::N),
            self.flag(flags::V),
        );
        match cond {
            Cond::Nz => !z,
            Cond::Z => z,
            Cond::Nc => !c,
            Cond::C => c,
            Cond::N => n,
            Cond::Ge => n == v,
            Cond::L => n != v,
            Cond::Always => true,
        }
    }

    /// Fetches, decodes, and executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`IssError`] on decode failures or illegal memory accesses.
    pub fn step(&mut self) -> Result<Retire, IssError> {
        let pc = self.pc();
        if pc < memmap::PMEM_BASE || pc & 1 != 0 {
            return Err(IssError::PcOutOfRom { pc });
        }
        let off = (pc - memmap::PMEM_BASE) as usize / 2;
        let window_end = (off + 3).min(self.pmem.len());
        let words = &self.pmem[off..window_end];
        let (instr, used) = decode(words, pc).map_err(|source| IssError::Decode { pc, source })?;
        let mut next_pc = pc.wrapping_add((used * 2) as u16);
        match instr {
            Instr::Two { op, src, dst } => {
                let s = self.read_operand(src, next_pc)?;
                let d = if op == TwoOp::Mov {
                    0 // MOV does not read the destination
                } else {
                    self.read_operand(dst, next_pc)?
                };
                // Destination auto-increment side effects do not re-apply:
                // only source operands use @Rn+ in the encodable ISA.
                let (res, wb) = self.exec_two(op, s, d);
                if wb {
                    self.write_operand(dst, res, &mut next_pc)?;
                }
            }
            Instr::One { op, dst } => match op {
                OneOp::Push => {
                    let v = self.read_operand(dst, next_pc)?;
                    let sp = self.regs[Reg::SP.num() as usize].wrapping_sub(2);
                    self.regs[Reg::SP.num() as usize] = sp;
                    self.write_mem(sp, v)?;
                }
                OneOp::Call => {
                    let target = self.read_operand(dst, next_pc)?;
                    let sp = self.regs[Reg::SP.num() as usize].wrapping_sub(2);
                    self.regs[Reg::SP.num() as usize] = sp;
                    self.write_mem(sp, next_pc)?;
                    next_pc = target & !1;
                }
                OneOp::Rrc | OneOp::Rra | OneOp::Swpb | OneOp::Sxt => {
                    // Read-modify-write: resolve the location once so @Rn+
                    // writes back to the *original* address, matching the
                    // gate-level core (which latches the address in MAR).
                    enum Loc {
                        Reg(Reg),
                        Mem(u16),
                        Discard,
                    }
                    let loc = match dst {
                        Operand::Reg(Reg::CG) => Loc::Discard,
                        Operand::Reg(r) => Loc::Reg(r),
                        Operand::Abs(a) => Loc::Mem(a),
                        Operand::Indexed(r, off) => {
                            let base = if r == Reg::PC {
                                next_pc
                            } else {
                                self.regs[r.num() as usize]
                            };
                            Loc::Mem(base.wrapping_add(off as u16))
                        }
                        Operand::Indirect(r) => Loc::Mem(self.regs[r.num() as usize]),
                        Operand::IndirectInc(r) => {
                            let a = self.regs[r.num() as usize];
                            self.regs[r.num() as usize] = a.wrapping_add(2);
                            Loc::Mem(a)
                        }
                        Operand::Imm(_) | Operand::ImmExt(_) => Loc::Discard,
                    };
                    let v = match &loc {
                        Loc::Reg(Reg::PC) => next_pc,
                        Loc::Reg(r) => self.regs[r.num() as usize],
                        Loc::Mem(a) => self.read_mem(*a)?,
                        Loc::Discard => match dst {
                            Operand::Imm(i) => i as u16,
                            Operand::ImmExt(v) => v,
                            _ => 0,
                        },
                    };
                    let res = match op {
                        OneOp::Rrc => {
                            let cin = u16::from(self.flag(flags::C));
                            let res = (v >> 1) | (cin << 15);
                            self.set_flags(v & 1 != 0, res == 0, res & 0x8000 != 0, false);
                            res
                        }
                        OneOp::Rra => {
                            let res = ((v as i16) >> 1) as u16;
                            self.set_flags(v & 1 != 0, res == 0, res & 0x8000 != 0, false);
                            res
                        }
                        OneOp::Swpb => v.rotate_left(8),
                        OneOp::Sxt => {
                            let res = v as u8 as i8 as i16 as u16;
                            self.set_flags(res != 0, res == 0, res & 0x8000 != 0, false);
                            res
                        }
                        _ => unreachable!("RMW arm"),
                    };
                    match loc {
                        Loc::Reg(Reg::PC) => next_pc = res & !1,
                        Loc::Reg(r) => self.regs[r.num() as usize] = res,
                        Loc::Mem(a) => self.write_mem(a, res)?,
                        Loc::Discard => {}
                    }
                }
            },
            Instr::Jump { cond, offset } => {
                if self.cond_taken(cond) {
                    next_pc = pc.wrapping_add(2).wrapping_add((offset as u16) << 1);
                }
            }
        }
        let cycles = cycle_count(&instr);
        self.cycles += cycles;
        self.retired += 1;
        self.regs[Reg::PC.num() as usize] = next_pc;
        Ok(Retire {
            pc,
            instr,
            next_pc,
            cycles,
        })
    }

    /// Runs until a self-loop (`jmp $`), an error, or `max_instrs` retires.
    ///
    /// # Errors
    ///
    /// Propagates the first [`IssError`] raised by [`Iss::step`].
    pub fn run(&mut self, max_instrs: u64) -> Result<RunOutcome, IssError> {
        let start_ret = self.retired;
        let start_cyc = self.cycles;
        let mut halted = false;
        for _ in 0..max_instrs {
            let r = self.step()?;
            if r.next_pc == r.pc {
                halted = true;
                break;
            }
        }
        Ok(RunOutcome {
            retired: self.retired - start_ret,
            cycles: self.cycles - start_cyc,
            halted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    fn run_asm(src: &str) -> Iss {
        let p = assemble(src).unwrap();
        let mut iss = Iss::new(&p);
        let out = iss.run(100_000).unwrap();
        assert!(out.halted, "program must reach jmp $");
        iss
    }

    #[test]
    fn arithmetic_and_flags() {
        let iss = run_asm(
            r#"
            main:
                mov #0xFFFF, r4
                add #1, r4        ; 0xFFFF + 1 = 0 with carry
                jc carry_ok
                mov #0xBAD, r15
                jmp end
            carry_ok:
                mov #0x600D, r15
            end:
                jmp $
            "#,
        );
        assert_eq!(iss.reg(15), 0x600D);
        assert_eq!(iss.reg(4), 0);
    }

    #[test]
    fn subtraction_carry_convention() {
        // MSP430: C=1 means no borrow.
        let iss = run_asm(
            "main: mov #5, r4\n sub #3, r4\n jc ok\n mov #1, r15\n jmp e\nok: mov #2, r15\ne: jmp $\n",
        );
        assert_eq!(iss.reg(15), 2);
        assert_eq!(iss.reg(4), 2);
    }

    #[test]
    fn signed_comparisons() {
        let iss = run_asm(
            r#"
            main:
                mov #0xFFFE, r4   ; -2
                cmp #1, r4        ; -2 < 1 (signed)
                jl less
                mov #0, r15
                jmp e
            less:
                mov #1, r15
            e:  jmp $
            "#,
        );
        assert_eq!(iss.reg(15), 1);
    }

    #[test]
    fn logic_ops() {
        let iss = run_asm(
            "main: mov #0xF0F0, r4\n bis #0x0F00, r4\n bic #0xF000, r4\n xor #0x00F0, r4\n and #0x0FFF, r4\n jmp $\n",
        );
        // 0xF0F0 | 0x0F00 = 0xFFF0; & !0xF000 = 0x0FF0; ^ 0x00F0 = 0x0F00;
        // & 0x0FFF = 0x0F00.
        assert_eq!(iss.reg(4), 0x0F00);
    }

    #[test]
    fn shifts_and_swpb() {
        let iss = run_asm(
            "main: mov #0x8004, r4\n rra r4\n mov #1, r5\n rrc r5\n swpb r4\n sxt r5\n jmp $\n",
        );
        // rra 0x8004 -> 0xC002 (arithmetic). swpb -> 0x02C0.
        assert_eq!(iss.reg(4), 0x02C0);
        // rrc with C=0 (rra set C=0 since bit0 of 0x8004 = 0) -> 0x0000;
        // sxt 0 -> 0.
        assert_eq!(iss.reg(5), 0);
    }

    #[test]
    fn memory_and_stack() {
        let iss = run_asm(
            r#"
            main:
                mov #0x0A00, sp
                mov #0x1234, &0x0200
                mov &0x0200, r4
                push r4
                pop r5
                mov #0x0200, r6
                mov @r6, r7
                mov #0x4444, 2(r6)
                mov 2(r6), r8
                jmp $
            "#,
        );
        assert_eq!(iss.reg(4), 0x1234);
        assert_eq!(iss.reg(5), 0x1234);
        assert_eq!(iss.reg(7), 0x1234);
        assert_eq!(iss.reg(8), 0x4444);
        assert_eq!(iss.dmem()[0], 0x1234);
        assert_eq!(iss.dmem()[1], 0x4444);
    }

    #[test]
    fn call_and_ret() {
        let iss = run_asm(
            r#"
            main:
                mov #0x0A00, sp
                mov #7, r4
                call #double
                call #double
                jmp $
            double:
                add r4, r4
                ret
            "#,
        );
        assert_eq!(iss.reg(4), 28);
        // SP restored.
        assert_eq!(iss.reg(1), 0x0A00);
    }

    #[test]
    fn hardware_multiplier() {
        let iss = run_asm(
            r#"
            main:
                mov #1234, &0x0130   ; MPY op1 (unsigned)
                mov #567, &0x0138    ; OP2 triggers
                mov &0x013A, r4      ; RESLO
                mov &0x013C, r5      ; RESHI
                mov #0xFFFE, &0x0132 ; MPYS op1 = -2
                mov #3, &0x0138
                mov &0x013A, r6
                mov &0x013C, r7
                jmp $
            "#,
        );
        let prod = 1234u32 * 567;
        assert_eq!(iss.reg(4), prod as u16);
        assert_eq!(iss.reg(5), (prod >> 16) as u16);
        let sprod = (-2i32 * 3) as u32;
        assert_eq!(iss.reg(6), sprod as u16);
        assert_eq!(iss.reg(7), (sprod >> 16) as u16);
    }

    #[test]
    fn input_port_reads() {
        let p = assemble("main: mov &0x0020, r4\n mov &0x0022, r5\n jmp $\n").unwrap();
        let mut iss = Iss::new(&p);
        iss.set_inputs(&[111, 222]);
        iss.run(100).unwrap();
        assert_eq!(iss.reg(4), 111);
        assert_eq!(iss.reg(5), 222);
    }

    #[test]
    fn indirect_autoincrement_walks_table() {
        let iss = run_asm(
            r#"
            main:
                mov #tbl, r6
                mov #0, r4
                mov #3, r5
            loop:
                add @r6+, r4
                dec r5
                jnz loop
                jmp $
            tbl: .word 10, 20, 30
            "#,
        );
        assert_eq!(iss.reg(4), 60);
    }

    #[test]
    fn bad_access_detected() {
        let p = assemble("main: mov &0x0E00, r4\n jmp $\n").unwrap();
        let mut iss = Iss::new(&p);
        let err = iss.run(10).unwrap_err();
        assert!(matches!(err, IssError::BadAccess { write: false, .. }));
    }

    #[test]
    fn unaligned_access_detected() {
        let p = assemble("main: mov #0x0201, r4\n mov @r4, r5\n jmp $\n").unwrap();
        let mut iss = Iss::new(&p);
        let err = iss.run(10).unwrap_err();
        assert!(matches!(err, IssError::Unaligned { .. }));
    }

    #[test]
    fn cycles_accumulate_with_formula() {
        let p = assemble("main: mov #5, r4\n add r4, r4\n jmp $\n").unwrap();
        let mut iss = Iss::new(&p);
        let out = iss.run(10).unwrap();
        // mov #5 (CG? no: 5 not CG -> ext word: 2+1+1=4) + add reg,reg (3)
        // + jmp (2).
        assert_eq!(out.cycles, 4 + 3 + 2);
        assert!(out.halted);
    }

    #[test]
    fn writes_to_rom_rejected() {
        let p = assemble("main: mov #1, &0xF800\n jmp $\n").unwrap();
        let mut iss = Iss::new(&p);
        let err = iss.run(10).unwrap_err();
        assert!(matches!(err, IssError::BadAccess { write: true, .. }));
    }
}
