//! MSP430 ISA subset: instruction model, assembler, and golden-model ISS.
//!
//! The paper analyzes applications compiled for openMSP430. This crate is
//! the software side of that flow:
//!
//! * [`isa`] — instruction representation, binary encoder/decoder (including
//!   constant-generator forms), and disassembly;
//! * [`asm`] — a two-pass assembler ([`assemble`]) producing a loadable
//!   [`Program`] image;
//! * [`iss`] — a behavioral instruction-set simulator used as the golden
//!   model when validating the gate-level core, and for the performance /
//!   energy-overhead numbers of the optimization study (Fig 5.6).
//!
//! # Supported subset
//!
//! Word-sized operations of the MSP430 ISA: all format-I two-operand
//! instructions except `DADD`, all format-II instructions except `RETI`,
//! and all conditional jumps. Byte-sized (`.B`) operations are not
//! implemented (the benchmark suite is written with word operations), and
//! interrupts are not modeled — both documented substitutions in DESIGN.md.
//!
//! # Example
//!
//! ```
//! use xbound_msp430::{assemble, iss::Iss};
//!
//! let program = assemble(r#"
//!         .org 0xF000
//!     main:
//!         mov #21, r4
//!         add r4, r4
//!     done:
//!         jmp done
//! "#)?;
//! let mut iss = Iss::new(&program);
//! iss.run(16)?;
//! assert_eq!(iss.reg(4), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod asm;
pub mod isa;
pub mod iss;

pub use asm::{assemble, AsmError};

use std::collections::HashMap;

/// Memory map shared by the ISS, the gate-level core, and the harnesses.
pub mod memmap {
    /// First byte address of the input-port region (reads return X during
    /// symbolic analysis; harness-provided values during profiling).
    pub const INPORT_BASE: u16 = 0x0020;
    /// Number of 16-bit words in the input-port region.
    pub const INPORT_WORDS: usize = 32;
    /// GPIO output register (inside the core's `sfr` module).
    pub const P1OUT: u16 = 0x0062;
    /// Watchdog control register (`watchdog` module).
    pub const WDTCTL: u16 = 0x0120;
    /// Clock-module divider control register (`clk_module`).
    pub const CLKCTL: u16 = 0x0126;
    /// Multiplier operand 1, unsigned multiply (`multiplier` module).
    pub const MPY: u16 = 0x0130;
    /// Multiplier operand 1, signed multiply.
    pub const MPYS: u16 = 0x0132;
    /// Multiplier operand 2 — writing triggers the multiplication.
    pub const OP2: u16 = 0x0138;
    /// Low word of the product.
    pub const RESLO: u16 = 0x013A;
    /// High word of the product.
    pub const RESHI: u16 = 0x013C;
    /// Debug-module scratch register 0 (`dbg` module).
    pub const DBG0: u16 = 0x01F0;
    /// Debug-module scratch register 1.
    pub const DBG1: u16 = 0x01F2;
    /// First byte address of data RAM.
    pub const DMEM_BASE: u16 = 0x0200;
    /// Data RAM size in words (2 KiB).
    pub const DMEM_WORDS: usize = 1024;
    /// First byte address of program ROM.
    pub const PMEM_BASE: u16 = 0xF000;
    /// Program ROM size in words (4 KiB).
    pub const PMEM_WORDS: usize = 2048;
    /// Reset vector address (last word of ROM).
    pub const RESET_VECTOR: u16 = 0xFFFE;
}

/// A CPU register (`r0`–`r15`; `r0` = PC, `r1` = SP, `r2` = SR/CG1,
/// `r3` = CG2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// Program counter (`r0`).
    pub const PC: Reg = Reg(0);
    /// Stack pointer (`r1`).
    pub const SP: Reg = Reg(1);
    /// Status register / constant generator 1 (`r2`).
    pub const SR: Reg = Reg(2);
    /// Constant generator 2 (`r3`).
    pub const CG: Reg = Reg(3);

    /// Builds a register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n > 15`.
    pub fn new(n: u8) -> Reg {
        assert!(n < 16, "register number {n} out of range");
        Reg(n)
    }

    /// The register number (0–15).
    pub fn num(self) -> u8 {
        self.0
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Reg::PC => write!(f, "pc"),
            Reg::SP => write!(f, "sp"),
            Reg::SR => write!(f, "sr"),
            _ => write!(f, "r{}", self.0),
        }
    }
}

/// An assembled program image.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    words: Vec<(u16, u16)>,
    entry: u16,
    symbols: HashMap<String, u16>,
}

impl Program {
    /// Creates a program from `(byte address, word)` pairs and an entry point.
    pub fn from_words(words: Vec<(u16, u16)>, entry: u16) -> Program {
        Program {
            words,
            entry,
            symbols: HashMap::new(),
        }
    }

    /// `(byte address, word)` pairs of the image, in emission order.
    pub fn words(&self) -> &[(u16, u16)] {
        &self.words
    }

    /// Entry point (address of the first instruction).
    pub fn entry(&self) -> u16 {
        self.entry
    }

    /// Label symbol table.
    pub fn symbols(&self) -> &HashMap<String, u16> {
        &self.symbols
    }

    /// Address of a label.
    pub fn symbol(&self, name: &str) -> Option<u16> {
        self.symbols.get(name).copied()
    }

    pub(crate) fn set_symbols(&mut self, symbols: HashMap<String, u16>) {
        self.symbols = symbols;
    }

    /// Size of the image in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` when the image holds no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The canonical byte encoding of the image: the entry point followed
    /// by every `(address, word)` pair, little-endian, in emission order.
    ///
    /// Two programs with equal `image_bytes` load identically (the symbol
    /// table is debug metadata and is deliberately excluded) — this is
    /// the content the co-analysis service hashes for its
    /// content-addressed bound cache.
    pub fn image_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + 4 * self.words.len());
        out.extend_from_slice(&self.entry.to_le_bytes());
        for &(addr, word) in &self.words {
            out.extend_from_slice(&addr.to_le_bytes());
            out.extend_from_slice(&word.to_le_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_constants() {
        assert_eq!(Reg::PC.num(), 0);
        assert_eq!(Reg::SP.num(), 1);
        assert_eq!(Reg::SR.num(), 2);
        assert_eq!(Reg::CG.num(), 3);
        assert_eq!(Reg::new(7).to_string(), "r7");
        assert_eq!(Reg::PC.to_string(), "pc");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_range_checked() {
        let _ = Reg::new(16);
    }

    #[test]
    fn memmap_regions_do_not_overlap() {
        use memmap::*;
        let inport_end = INPORT_BASE + (INPORT_WORDS as u16) * 2;
        assert!(inport_end <= P1OUT);
        // Region ordering is a compile-time property of the memory map.
        const _: () = {
            use memmap::*;
            assert!(P1OUT < WDTCTL);
            assert!(WDTCTL < MPY);
            assert!(RESHI < DBG0);
            assert!(DBG1 < DMEM_BASE);
        };
        let dmem_end = DMEM_BASE as u32 + (DMEM_WORDS as u32) * 2;
        assert!(dmem_end <= PMEM_BASE as u32);
        let pmem_end = PMEM_BASE as u32 + (PMEM_WORDS as u32) * 2;
        assert_eq!(pmem_end, 0x1_0000);
        assert_eq!(RESET_VECTOR, 0xFFFE);
    }

    #[test]
    fn program_accessors() {
        let p = Program::from_words(vec![(0xF000, 0x4303)], 0xF000);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        assert_eq!(p.entry(), 0xF000);
        assert_eq!(p.symbol("nope"), None);
    }
}
