//! Two-pass MSP430 assembler.
//!
//! Accepts the classic MSP430 assembly syntax for the supported subset:
//!
//! ```text
//!         .org 0xF000          ; set location counter
//!         .equ THRESH, 100     ; named constant
//! main:   mov #THRESH, r4      ; immediate (CG-optimized when possible)
//!         mov &0x0020, r5      ; absolute
//!         mov 2(r4), r6        ; indexed
//!         add @r4+, r7         ; indirect auto-increment
//!         cmp #0, r7
//!         jnz main             ; label target
//!         push r6
//!         pop r6               ; emulated -> mov @sp+, r6
//!         jmp $                ; $ = address of this instruction
//!         .word 1, 2, 3        ; literal data
//! ```
//!
//! Comments start with `;` or `//`. Emulated mnemonics `nop ret pop br clr
//! inc incd dec decd tst rla rlc inv clrc setc` expand to their MSP430
//! definitions. The entry point is the label `main` when present, otherwise
//! the first emitted instruction.

use crate::isa::{encode_opt, Cond, Instr, IsaError, OneOp, Operand, TwoOp};
use crate::{Program, Reg};
use std::collections::HashMap;
use std::fmt;

/// Assembly errors, with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// Malformed statement or operand.
    Syntax {
        /// 1-based source line.
        line: usize,
        /// Description.
        message: String,
    },
    /// Reference to an undefined label/constant.
    UndefinedSymbol {
        /// 1-based source line.
        line: usize,
        /// The symbol.
        symbol: String,
    },
    /// A label or `.equ` name was defined twice.
    DuplicateSymbol {
        /// 1-based source line.
        line: usize,
        /// The symbol.
        symbol: String,
    },
    /// Jump target out of the ±511-word range.
    JumpTooFar {
        /// 1-based source line.
        line: usize,
        /// Byte distance that did not fit.
        distance: i32,
    },
    /// Instruction-level encoding failure.
    Encode {
        /// 1-based source line.
        line: usize,
        /// The underlying error.
        source: IsaError,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            AsmError::UndefinedSymbol { line, symbol } => {
                write!(f, "line {line}: undefined symbol `{symbol}`")
            }
            AsmError::DuplicateSymbol { line, symbol } => {
                write!(f, "line {line}: duplicate symbol `{symbol}`")
            }
            AsmError::JumpTooFar { line, distance } => {
                write!(f, "line {line}: jump of {distance} bytes out of range")
            }
            AsmError::Encode { line, source } => write!(f, "line {line}: {source}"),
        }
    }
}

impl std::error::Error for AsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AsmError::Encode { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// An unresolved expression.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Expr {
    Num(i32),
    Sym(String),
    /// `$`: address of the current instruction.
    Here,
}

/// A parsed (pre-resolution) operand.
#[derive(Debug, Clone, PartialEq, Eq)]
enum POperand {
    Reg(Reg),
    Indexed(Reg, Expr),
    Indirect(Reg),
    IndirectInc(Reg),
    Imm(Expr),
    Abs(Expr),
}

#[derive(Debug, Clone)]
enum Stmt {
    Org(Expr),
    Words(Vec<Expr>),
    Two(TwoOp, POperand, POperand),
    One(OneOp, POperand),
    Jump(Cond, Expr),
}

#[derive(Debug, Clone)]
struct Line {
    number: usize,
    label: Option<String>,
    stmt: Option<Stmt>,
}

fn parse_reg(s: &str) -> Option<Reg> {
    let t = s.trim().to_ascii_lowercase();
    match t.as_str() {
        "pc" => Some(Reg::PC),
        "sp" => Some(Reg::SP),
        "sr" => Some(Reg::SR),
        "cg" => Some(Reg::CG),
        _ => {
            let n: u8 = t.strip_prefix('r')?.parse().ok()?;
            (n < 16).then(|| Reg::new(n))
        }
    }
}

fn parse_num(s: &str) -> Option<i32> {
    let t = s.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else if let Some(bin) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        i64::from_str_radix(bin, 2).ok()?
    } else {
        t.parse::<i64>().ok()?
    };
    let v = if neg { -v } else { v };
    i32::try_from(v).ok()
}

fn parse_expr(s: &str) -> Option<Expr> {
    let t = s.trim();
    if t == "$" {
        return Some(Expr::Here);
    }
    if let Some(n) = parse_num(t) {
        return Some(Expr::Num(n));
    }
    let valid = t
        .chars()
        .next()
        .map(|c| c.is_ascii_alphabetic() || c == '_')
        .unwrap_or(false)
        && t.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    valid.then(|| Expr::Sym(t.to_string()))
}

fn parse_operand(s: &str, line: usize) -> Result<POperand, AsmError> {
    let t = s.trim();
    let syntax = |m: String| AsmError::Syntax { line, message: m };
    if t.is_empty() {
        return Err(syntax("empty operand".into()));
    }
    if let Some(rest) = t.strip_prefix('#') {
        let e = parse_expr(rest).ok_or_else(|| syntax(format!("bad immediate `{t}`")))?;
        return Ok(POperand::Imm(e));
    }
    if let Some(rest) = t.strip_prefix('&') {
        let e = parse_expr(rest).ok_or_else(|| syntax(format!("bad absolute `{t}`")))?;
        return Ok(POperand::Abs(e));
    }
    if let Some(rest) = t.strip_prefix('@') {
        if let Some(base) = rest.strip_suffix('+') {
            let r = parse_reg(base).ok_or_else(|| syntax(format!("bad register `{base}`")))?;
            return Ok(POperand::IndirectInc(r));
        }
        let r = parse_reg(rest).ok_or_else(|| syntax(format!("bad register `{rest}`")))?;
        return Ok(POperand::Indirect(r));
    }
    if let Some(r) = parse_reg(t) {
        return Ok(POperand::Reg(r));
    }
    // Indexed: expr(rN)
    if let Some(open) = t.find('(') {
        if let Some(stripped) = t.ends_with(')').then(|| &t[open + 1..t.len() - 1]) {
            let r =
                parse_reg(stripped).ok_or_else(|| syntax(format!("bad register `{stripped}`")))?;
            let e = parse_expr(&t[..open])
                .ok_or_else(|| syntax(format!("bad index expression `{}`", &t[..open])))?;
            return Ok(POperand::Indexed(r, e));
        }
    }
    Err(syntax(format!("cannot parse operand `{t}`")))
}

fn split_operands(s: &str) -> Vec<String> {
    // Split on commas not inside parentheses.
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '(' => {
                depth += 1;
                cur.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

fn two_op(m: &str) -> Option<TwoOp> {
    TwoOp::ALL.iter().copied().find(|o| o.mnemonic() == m)
}

fn jump_cond(m: &str) -> Option<Cond> {
    match m {
        "jne" | "jnz" => Some(Cond::Nz),
        "jeq" | "jz" => Some(Cond::Z),
        "jnc" | "jlo" => Some(Cond::Nc),
        "jc" | "jhs" => Some(Cond::C),
        "jn" => Some(Cond::N),
        "jge" => Some(Cond::Ge),
        "jl" => Some(Cond::L),
        "jmp" => Some(Cond::Always),
        _ => None,
    }
}

/// Expands emulated mnemonics; returns the statement(s) they stand for.
fn expand_emulated(m: &str, ops: &[String], line: usize) -> Result<Option<Stmt>, AsmError> {
    let syntax = |msg: String| AsmError::Syntax { line, message: msg };
    let one_operand = |ops: &[String]| -> Result<POperand, AsmError> {
        if ops.len() != 1 {
            return Err(syntax(format!("`{m}` takes one operand")));
        }
        parse_operand(&ops[0], line)
    };
    let stmt = match m {
        "nop" => Stmt::Two(TwoOp::Mov, POperand::Reg(Reg::CG), POperand::Reg(Reg::CG)),
        "ret" => Stmt::Two(
            TwoOp::Mov,
            POperand::IndirectInc(Reg::SP),
            POperand::Reg(Reg::PC),
        ),
        "pop" => Stmt::Two(
            TwoOp::Mov,
            POperand::IndirectInc(Reg::SP),
            one_operand(ops)?,
        ),
        "br" => Stmt::Two(TwoOp::Mov, one_operand(ops)?, POperand::Reg(Reg::PC)),
        "clr" => Stmt::Two(TwoOp::Mov, POperand::Imm(Expr::Num(0)), one_operand(ops)?),
        "inc" => Stmt::Two(TwoOp::Add, POperand::Imm(Expr::Num(1)), one_operand(ops)?),
        "incd" => Stmt::Two(TwoOp::Add, POperand::Imm(Expr::Num(2)), one_operand(ops)?),
        "dec" => Stmt::Two(TwoOp::Sub, POperand::Imm(Expr::Num(1)), one_operand(ops)?),
        "decd" => Stmt::Two(TwoOp::Sub, POperand::Imm(Expr::Num(2)), one_operand(ops)?),
        "tst" => Stmt::Two(TwoOp::Cmp, POperand::Imm(Expr::Num(0)), one_operand(ops)?),
        "rla" => {
            let d = one_operand(ops)?;
            Stmt::Two(TwoOp::Add, d.clone(), d)
        }
        "rlc" => {
            let d = one_operand(ops)?;
            Stmt::Two(TwoOp::Addc, d.clone(), d)
        }
        "inv" => Stmt::Two(TwoOp::Xor, POperand::Imm(Expr::Num(-1)), one_operand(ops)?),
        "clrc" => Stmt::Two(
            TwoOp::Bic,
            POperand::Imm(Expr::Num(1)),
            POperand::Reg(Reg::SR),
        ),
        "setc" => Stmt::Two(
            TwoOp::Bis,
            POperand::Imm(Expr::Num(1)),
            POperand::Reg(Reg::SR),
        ),
        _ => return Ok(None),
    };
    Ok(Some(stmt))
}

/// Drops everything from the first `;` or `//` onward.
fn strip_comment(line: &str) -> &str {
    let mut text = line;
    if let Some(i) = text.find(';') {
        text = &text[..i];
    }
    if let Some(i) = text.find("//") {
        text = &text[..i];
    }
    text
}

fn parse_line(number: usize, raw: &str) -> Result<Line, AsmError> {
    let mut text = strip_comment(raw).trim();
    let mut label = None;
    if let Some(colon) = text.find(':') {
        let (l, rest) = text.split_at(colon);
        let l = l.trim();
        let ok = !l.is_empty()
            && l.chars()
                .next()
                .map(|c| c.is_ascii_alphabetic() || c == '_')
                .unwrap_or(false)
            && l.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
        if !ok {
            return Err(AsmError::Syntax {
                line: number,
                message: format!("bad label `{l}`"),
            });
        }
        label = Some(l.to_string());
        text = rest[1..].trim();
    }
    if text.is_empty() {
        return Ok(Line {
            number,
            label,
            stmt: None,
        });
    }
    let (mnemonic, rest) = match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text, ""),
    };
    let m = mnemonic.to_ascii_lowercase();
    let ops = split_operands(rest);
    let syntax = |msg: String| AsmError::Syntax {
        line: number,
        message: msg,
    };
    let stmt = if m == ".org" {
        if ops.len() != 1 {
            return Err(syntax("`.org` takes one operand".into()));
        }
        Stmt::Org(parse_expr(&ops[0]).ok_or_else(|| syntax("bad .org expression".into()))?)
    } else if m == ".word" {
        let exprs: Option<Vec<Expr>> = ops.iter().map(|o| parse_expr(o)).collect();
        Stmt::Words(exprs.ok_or_else(|| syntax("bad .word expression".into()))?)
    } else if m == ".equ" {
        // Handled structurally in pass 1; represent as a pseudo-org? No:
        // encode as a Words-free statement is wrong. Treat here:
        return Err(syntax("`.equ` must be written `.equ NAME, value`".into()));
    } else if let Some(op) = two_op(&m) {
        if ops.len() != 2 {
            return Err(syntax(format!("`{m}` takes two operands")));
        }
        Stmt::Two(
            op,
            parse_operand(&ops[0], number)?,
            parse_operand(&ops[1], number)?,
        )
    } else if let Some(cond) = jump_cond(&m) {
        if ops.len() != 1 {
            return Err(syntax(format!("`{m}` takes one target")));
        }
        Stmt::Jump(
            cond,
            parse_expr(&ops[0]).ok_or_else(|| syntax(format!("bad jump target `{}`", ops[0])))?,
        )
    } else if let Some(op) = OneOp::ALL.iter().copied().find(|o| o.mnemonic() == m) {
        if ops.len() != 1 {
            return Err(syntax(format!("`{m}` takes one operand")));
        }
        Stmt::One(op, parse_operand(&ops[0], number)?)
    } else if let Some(stmt) = expand_emulated(&m, &ops, number)? {
        stmt
    } else {
        return Err(syntax(format!("unknown mnemonic `{m}`")));
    };
    Ok(Line {
        number,
        label,
        stmt: Some(stmt),
    })
}

/// Size of an operand's extension in words, independent of symbol values.
fn p_operand_ext_words(op: &POperand) -> usize {
    match op {
        POperand::Reg(_) | POperand::Indirect(_) | POperand::IndirectInc(_) => 0,
        POperand::Indexed(..) | POperand::Abs(_) => 1,
        POperand::Imm(Expr::Num(v)) => match v {
            0 | 1 | 2 | 4 | 8 | -1 => 0,
            _ => 1,
        },
        // Symbolic immediates are always emitted with an extension word so
        // pass-1 sizes cannot change when the symbol resolves.
        POperand::Imm(_) => 1,
    }
}

fn stmt_words(stmt: &Stmt) -> usize {
    match stmt {
        Stmt::Org(_) => 0,
        Stmt::Words(ws) => ws.len(),
        Stmt::Jump(..) => 1,
        Stmt::One(_, d) => 1 + p_operand_ext_words(d),
        Stmt::Two(_, s, d) => 1 + p_operand_ext_words(s) + p_operand_ext_words(d),
    }
}

struct Resolver<'a> {
    symbols: &'a HashMap<String, u16>,
}

impl Resolver<'_> {
    fn resolve(&self, e: &Expr, here: u16, line: usize) -> Result<i32, AsmError> {
        match e {
            Expr::Num(v) => Ok(*v),
            Expr::Here => Ok(here as i32),
            Expr::Sym(s) => {
                self.symbols
                    .get(s)
                    .map(|v| *v as i32)
                    .ok_or_else(|| AsmError::UndefinedSymbol {
                        line,
                        symbol: s.clone(),
                    })
            }
        }
    }

    /// `(operand, used a symbolic immediate)`.
    fn operand(&self, p: &POperand, here: u16, line: usize) -> Result<(Operand, bool), AsmError> {
        Ok(match p {
            POperand::Reg(r) => (Operand::Reg(*r), false),
            POperand::Indirect(r) => (Operand::Indirect(*r), false),
            POperand::IndirectInc(r) => (Operand::IndirectInc(*r), false),
            POperand::Indexed(r, e) => {
                let v = self.resolve(e, here, line)?;
                (Operand::Indexed(*r, v as i16), false)
            }
            POperand::Abs(e) => {
                let v = self.resolve(e, here, line)?;
                (Operand::Abs(v as u16), false)
            }
            POperand::Imm(e) => {
                let symbolic = !matches!(e, Expr::Num(_));
                let v = self.resolve(e, here, line)?;
                (Operand::Imm(v), symbolic)
            }
        })
    }
}

/// Assembles MSP430 source into a [`Program`].
///
/// # Errors
///
/// Returns [`AsmError`] with a source line number on syntax problems,
/// undefined or duplicate symbols, out-of-range jumps, or encoding failures.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    // Pre-pass: handle `.equ NAME, value` lines textually.
    let mut equs: HashMap<String, u16> = HashMap::new();
    let mut lines = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let number = i + 1;
        let trimmed = strip_comment(raw).trim_start();
        let lower = trimmed.to_ascii_lowercase();
        if lower.starts_with(".equ") {
            let rest = &trimmed[4..];
            let parts = split_operands(rest);
            if parts.len() != 2 {
                return Err(AsmError::Syntax {
                    line: number,
                    message: "`.equ` takes `NAME, value`".into(),
                });
            }
            let name = parts[0].trim().to_string();
            let value = parse_num(&parts[1]).ok_or_else(|| AsmError::Syntax {
                line: number,
                message: format!("bad .equ value `{}`", parts[1]),
            })?;
            if equs.insert(name.clone(), value as u16).is_some() {
                return Err(AsmError::DuplicateSymbol {
                    line: number,
                    symbol: name,
                });
            }
            continue;
        }
        lines.push(parse_line(number, raw)?);
    }

    // Pass 1: label addresses.
    let mut symbols = equs.clone();
    let mut pc: u16 = crate::memmap::PMEM_BASE;
    let mut first_instr: Option<u16> = None;
    for line in &lines {
        if let Some(Stmt::Org(e)) = &line.stmt {
            if let Expr::Num(v) = e {
                pc = *v as u16;
            } else {
                return Err(AsmError::Syntax {
                    line: line.number,
                    message: "`.org` requires a numeric literal".into(),
                });
            }
        }
        if let Some(l) = &line.label {
            if symbols.insert(l.clone(), pc).is_some() {
                return Err(AsmError::DuplicateSymbol {
                    line: line.number,
                    symbol: l.clone(),
                });
            }
        }
        if let Some(stmt) = &line.stmt {
            if !matches!(stmt, Stmt::Org(_)) {
                if !matches!(stmt, Stmt::Words(_)) && first_instr.is_none() {
                    first_instr = Some(pc);
                }
                pc = pc.wrapping_add((stmt_words(stmt) * 2) as u16);
            }
        }
    }

    // Pass 2: emit.
    let resolver = Resolver { symbols: &symbols };
    let mut words: Vec<(u16, u16)> = Vec::new();
    let mut pc: u16 = crate::memmap::PMEM_BASE;
    for line in &lines {
        let Some(stmt) = &line.stmt else { continue };
        let here = pc;
        match stmt {
            Stmt::Org(e) => {
                if let Expr::Num(v) = e {
                    pc = *v as u16;
                }
            }
            Stmt::Words(ws) => {
                for e in ws {
                    let v = resolver.resolve(e, here, line.number)?;
                    words.push((pc, v as u16));
                    pc = pc.wrapping_add(2);
                }
            }
            Stmt::Jump(cond, target) => {
                let t = resolver.resolve(target, here, line.number)?;
                let dist = t - (here as i32 + 2);
                if dist % 2 != 0 {
                    return Err(AsmError::Syntax {
                        line: line.number,
                        message: "odd jump distance".into(),
                    });
                }
                let off = dist / 2;
                if !(-512..=511).contains(&off) {
                    return Err(AsmError::JumpTooFar {
                        line: line.number,
                        distance: dist,
                    });
                }
                let enc = encode_opt(
                    &Instr::Jump {
                        cond: *cond,
                        offset: off as i16,
                    },
                    false,
                )
                .map_err(|source| AsmError::Encode {
                    line: line.number,
                    source,
                })?;
                for w in enc {
                    words.push((pc, w));
                    pc = pc.wrapping_add(2);
                }
            }
            Stmt::One(op, d) => {
                let (dst, sym) = resolver.operand(d, here, line.number)?;
                let enc = encode_opt(&Instr::One { op: *op, dst }, sym).map_err(|source| {
                    AsmError::Encode {
                        line: line.number,
                        source,
                    }
                })?;
                for w in enc {
                    words.push((pc, w));
                    pc = pc.wrapping_add(2);
                }
            }
            Stmt::Two(op, s, d) => {
                let (src, ssym) = resolver.operand(s, here, line.number)?;
                let (dst, dsym) = resolver.operand(d, here, line.number)?;
                let enc = encode_opt(&Instr::Two { op: *op, src, dst }, ssym || dsym).map_err(
                    |source| AsmError::Encode {
                        line: line.number,
                        source,
                    },
                )?;
                for w in enc {
                    words.push((pc, w));
                    pc = pc.wrapping_add(2);
                }
            }
        }
    }

    let entry = symbols
        .get("main")
        .copied()
        .or(first_instr)
        .unwrap_or(crate::memmap::PMEM_BASE);
    let mut p = Program::from_words(words, entry);
    p.set_symbols(symbols);
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::decode;

    #[test]
    fn assembles_reference_encodings() {
        let p = assemble("nop\nret\n").unwrap();
        let ws: Vec<u16> = p.words().iter().map(|(_, w)| *w).collect();
        assert_eq!(ws, vec![0x4303, 0x4130]);
    }

    #[test]
    fn labels_and_jumps_resolve() {
        let p = assemble(
            r#"
                .org 0xF000
            main:
                mov #5, r4
            loop:
                dec r4
                jnz loop
                jmp $
            "#,
        )
        .unwrap();
        assert_eq!(p.entry(), 0xF000);
        let loop_addr = p.symbol("loop").unwrap();
        assert_eq!(loop_addr, 0xF004, "mov #5 takes two words (no CG for 5)");
        // `jmp $` encodes offset -1.
        let (_, last) = *p.words().last().unwrap();
        assert_eq!(last, 0x3FFF);
    }

    #[test]
    fn equ_constants_work() {
        let p = assemble(
            r#"
                .equ PORT, 0x0020
                mov &PORT, r4
            "#,
        )
        .unwrap();
        let ws: Vec<u16> = p.words().iter().map(|(_, w)| *w).collect();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[1], 0x0020);
    }

    #[test]
    fn symbolic_immediate_never_uses_cg() {
        // `two` resolves to 2, which would hit the CG; symbolic immediates
        // must still take an extension word so pass-1 sizing holds.
        let p = assemble(
            r#"
                .equ two, 2
                mov #two, r4
                mov #2, r5
            "#,
        )
        .unwrap();
        let ws: Vec<u16> = p.words().iter().map(|(_, w)| *w).collect();
        assert_eq!(ws.len(), 3, "symbolic #two = 2 words, literal #2 = 1");
        let (i, used) = decode(&ws[..2], 0xF000).unwrap();
        assert_eq!(used, 2);
        assert_eq!(i.to_string(), "mov #2, r4");
    }

    #[test]
    fn emulated_mnemonics_expand() {
        let p = assemble("pop r7\nbr r9\nclr r4\ninc r5\ntst r6\ninv r8\n").unwrap();
        let ws: Vec<u16> = p.words().iter().map(|(_, w)| *w).collect();
        let (pop, _) = decode(&ws[0..1], 0).unwrap();
        assert_eq!(pop.to_string(), "mov @sp+, r7");
        let (br, _) = decode(&ws[1..2], 0).unwrap();
        assert_eq!(br.to_string(), "mov r9, pc");
    }

    #[test]
    fn word_directive_emits_data() {
        let p = assemble(".org 0xF800\ntbl: .word 1, 2, 0xBEEF\n").unwrap();
        assert_eq!(p.words(), &[(0xF800, 1), (0xF802, 2), (0xF804, 0xBEEF)]);
        assert_eq!(p.symbol("tbl"), Some(0xF800));
    }

    #[test]
    fn undefined_symbol_reported() {
        let err = assemble("jmp nowhere\n").unwrap_err();
        assert!(matches!(err, AsmError::UndefinedSymbol { line: 1, .. }));
    }

    #[test]
    fn duplicate_label_reported() {
        let err = assemble("a: nop\na: nop\n").unwrap_err();
        assert!(matches!(err, AsmError::DuplicateSymbol { line: 2, .. }));
    }

    #[test]
    fn jump_too_far_reported() {
        let mut src = String::from("start: nop\n");
        for _ in 0..600 {
            src.push_str("mov #0x1234, r4\n"); // 2 words each
        }
        src.push_str("jmp start\n");
        let err = assemble(&src).unwrap_err();
        assert!(matches!(err, AsmError::JumpTooFar { .. }));
    }

    #[test]
    fn syntax_errors_have_lines() {
        let err = assemble("nop\nfrob r4\n").unwrap_err();
        assert!(matches!(err, AsmError::Syntax { line: 2, .. }));
        let err = assemble("mov r4\n").unwrap_err();
        assert!(matches!(err, AsmError::Syntax { line: 1, .. }));
    }

    #[test]
    fn indexed_operands_parse() {
        let p = assemble("mov -6(r4), &0x0132\n").unwrap();
        let ws: Vec<u16> = p.words().iter().map(|(_, w)| *w).collect();
        let (i, used) = decode(&ws, 0).unwrap();
        assert_eq!(used, 3);
        assert_eq!(i.to_string(), "mov -6(r4), &0x0132");
    }

    #[test]
    fn entry_defaults_to_first_instruction_without_main() {
        let p = assemble(".org 0xF100\nstart: nop\n").unwrap();
        assert_eq!(p.entry(), 0xF100);
    }
}
