//! Instruction representation, binary encoder/decoder, disassembly.
//!
//! The encoder/decoder implement the real MSP430 encodings, including the
//! constant-generator forms through `r2`/`r3` that let small immediates
//! (`#0, #1, #2, #4, #8, #-1`) be encoded without extension words — which
//! matters for power because it removes fetch cycles.
//!
//! # Example
//!
//! ```
//! use xbound_msp430::isa::{decode, encode, Instr, Operand, TwoOp};
//! use xbound_msp430::Reg;
//!
//! let i = Instr::Two {
//!     op: TwoOp::Add,
//!     src: Operand::Imm(2),
//!     dst: Operand::Reg(Reg::new(4)),
//! };
//! let enc = encode(&i)?;
//! assert_eq!(enc.len(), 1, "#2 uses the constant generator");
//! let (back, used) = decode(&enc, 0xF000)?;
//! assert_eq!(used, 1);
//! assert_eq!(back, i);
//! # Ok::<(), xbound_msp430::isa::IsaError>(())
//! ```

use crate::Reg;
use std::fmt;

/// Format-I (double-operand) opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TwoOp {
    /// Copy source to destination (no flags).
    Mov,
    /// Add.
    Add,
    /// Add with carry.
    Addc,
    /// Subtract with carry (borrow).
    Subc,
    /// Subtract.
    Sub,
    /// Compare (subtract, flags only).
    Cmp,
    /// Test bits (AND, flags only).
    Bit,
    /// Clear bits (`dst &= !src`, no flags).
    Bic,
    /// Set bits (`dst |= src`, no flags).
    Bis,
    /// Exclusive or.
    Xor,
    /// Logical and.
    And,
}

impl TwoOp {
    /// All format-I opcodes.
    pub const ALL: [TwoOp; 11] = [
        TwoOp::Mov,
        TwoOp::Add,
        TwoOp::Addc,
        TwoOp::Subc,
        TwoOp::Sub,
        TwoOp::Cmp,
        TwoOp::Bit,
        TwoOp::Bic,
        TwoOp::Bis,
        TwoOp::Xor,
        TwoOp::And,
    ];

    fn opcode(self) -> u16 {
        match self {
            TwoOp::Mov => 0x4,
            TwoOp::Add => 0x5,
            TwoOp::Addc => 0x6,
            TwoOp::Subc => 0x7,
            TwoOp::Sub => 0x8,
            TwoOp::Cmp => 0x9,
            TwoOp::Bit => 0xB,
            TwoOp::Bic => 0xC,
            TwoOp::Bis => 0xD,
            TwoOp::Xor => 0xE,
            TwoOp::And => 0xF,
        }
    }

    fn from_opcode(op: u16) -> Option<TwoOp> {
        TwoOp::ALL.iter().copied().find(|o| o.opcode() == op)
    }

    /// `true` for CMP/BIT: the result is not written back.
    pub fn is_test_only(self) -> bool {
        matches!(self, TwoOp::Cmp | TwoOp::Bit)
    }

    /// Mnemonic string.
    pub fn mnemonic(self) -> &'static str {
        match self {
            TwoOp::Mov => "mov",
            TwoOp::Add => "add",
            TwoOp::Addc => "addc",
            TwoOp::Subc => "subc",
            TwoOp::Sub => "sub",
            TwoOp::Cmp => "cmp",
            TwoOp::Bit => "bit",
            TwoOp::Bic => "bic",
            TwoOp::Bis => "bis",
            TwoOp::Xor => "xor",
            TwoOp::And => "and",
        }
    }
}

/// Format-II (single-operand) opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OneOp {
    /// Rotate right through carry.
    Rrc,
    /// Swap bytes.
    Swpb,
    /// Arithmetic shift right.
    Rra,
    /// Sign-extend low byte.
    Sxt,
    /// Push onto stack.
    Push,
    /// Call subroutine.
    Call,
}

impl OneOp {
    /// All format-II opcodes.
    pub const ALL: [OneOp; 6] = [
        OneOp::Rrc,
        OneOp::Swpb,
        OneOp::Rra,
        OneOp::Sxt,
        OneOp::Push,
        OneOp::Call,
    ];

    fn opcode9(self) -> u16 {
        // Bits [15:7] of the instruction word.
        match self {
            OneOp::Rrc => 0b000_100_000,
            OneOp::Swpb => 0b000_100_001,
            OneOp::Rra => 0b000_100_010,
            OneOp::Sxt => 0b000_100_011,
            OneOp::Push => 0b000_100_100,
            OneOp::Call => 0b000_100_101,
        }
    }

    fn from_opcode9(op: u16) -> Option<OneOp> {
        OneOp::ALL.iter().copied().find(|o| o.opcode9() == op)
    }

    /// `true` for operations that write the operand location back.
    pub fn writes_back(self) -> bool {
        matches!(self, OneOp::Rrc | OneOp::Swpb | OneOp::Rra | OneOp::Sxt)
    }

    /// Mnemonic string.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OneOp::Rrc => "rrc",
            OneOp::Swpb => "swpb",
            OneOp::Rra => "rra",
            OneOp::Sxt => "sxt",
            OneOp::Push => "push",
            OneOp::Call => "call",
        }
    }
}

/// Jump conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Z == 0 (`jne`/`jnz`).
    Nz,
    /// Z == 1 (`jeq`/`jz`).
    Z,
    /// C == 0 (`jnc`).
    Nc,
    /// C == 1 (`jc`).
    C,
    /// N == 1 (`jn`).
    N,
    /// N XOR V == 0 (`jge`).
    Ge,
    /// N XOR V == 1 (`jl`).
    L,
    /// Always (`jmp`).
    Always,
}

impl Cond {
    /// All conditions in encoding order.
    pub const ALL: [Cond; 8] = [
        Cond::Nz,
        Cond::Z,
        Cond::Nc,
        Cond::C,
        Cond::N,
        Cond::Ge,
        Cond::L,
        Cond::Always,
    ];

    fn code(self) -> u16 {
        Cond::ALL.iter().position(|c| *c == self).expect("in ALL") as u16
    }

    /// Mnemonic string.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Nz => "jnz",
            Cond::Z => "jz",
            Cond::Nc => "jnc",
            Cond::C => "jc",
            Cond::N => "jn",
            Cond::Ge => "jge",
            Cond::L => "jl",
            Cond::Always => "jmp",
        }
    }
}

/// An addressing-mode-resolved operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Register direct.
    Reg(Reg),
    /// Indexed: `offset(rn)`.
    Indexed(Reg, i16),
    /// Register indirect: `@rn` (source/format-II only).
    Indirect(Reg),
    /// Register indirect with auto-increment: `@rn+` (source/format-II only).
    IndirectInc(Reg),
    /// Immediate (`#n`); encoded via constant generators when possible.
    Imm(i32),
    /// Immediate carried in an extension word (`@pc+`), even when the value
    /// has a constant-generator form. Produced when decoding such encodings
    /// (the assembler emits them for forward-referenced symbols) so that
    /// decode/encode round-trip to the identical words.
    ImmExt(u16),
    /// Absolute: `&addr`.
    Abs(u16),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Indexed(r, off) => write!(f, "{off}({r})"),
            Operand::Indirect(r) => write!(f, "@{r}"),
            Operand::IndirectInc(r) => write!(f, "@{r}+"),
            Operand::Imm(v) => write!(f, "#{v}"),
            Operand::ImmExt(v) => write!(f, "#{v}"),
            Operand::Abs(a) => write!(f, "&0x{a:04x}"),
        }
    }
}

/// One decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Format I: two operands.
    Two {
        /// Opcode.
        op: TwoOp,
        /// Source operand.
        src: Operand,
        /// Destination operand (register, indexed, or absolute).
        dst: Operand,
    },
    /// Format II: one operand.
    One {
        /// Opcode.
        op: OneOp,
        /// The operand.
        dst: Operand,
    },
    /// Conditional/unconditional PC-relative jump.
    Jump {
        /// Condition.
        cond: Cond,
        /// Signed word offset; target = PC_of_jump + 2 + 2·offset.
        offset: i16,
    },
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Two { op, src, dst } => {
                write!(f, "{} {src}, {dst}", op.mnemonic())
            }
            Instr::One { op, dst } => write!(f, "{} {dst}", op.mnemonic()),
            Instr::Jump { cond, offset } => {
                write!(f, "{} {:+}", cond.mnemonic(), (*offset as i32) * 2 + 2)
            }
        }
    }
}

/// Errors from encoding/decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// The operand is not legal in this position (e.g. `@rn` destination).
    BadOperand {
        /// Description.
        message: String,
    },
    /// Jump offset does not fit in 10 bits.
    JumpOutOfRange {
        /// The offending word offset.
        offset: i32,
    },
    /// The word sequence does not decode to a supported instruction.
    BadEncoding {
        /// The first instruction word.
        word: u16,
    },
    /// More extension words were needed than provided.
    Truncated,
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::BadOperand { message } => write!(f, "bad operand: {message}"),
            IsaError::JumpOutOfRange { offset } => {
                write!(f, "jump offset {offset} words out of range (±511)")
            }
            IsaError::BadEncoding { word } => {
                write!(f, "word 0x{word:04x} is not a supported instruction")
            }
            IsaError::Truncated => write!(f, "instruction stream truncated"),
        }
    }
}

impl std::error::Error for IsaError {}

/// Source addressing encoding: `(reg, As, extension word)`.
fn encode_src_opt(src: Operand, force_imm_ext: bool) -> Result<(u8, u16, Option<u16>), IsaError> {
    Ok(match src {
        Operand::Reg(r) => (r.num(), 0b00, None),
        Operand::Indexed(r, off) => {
            if r == Reg::SR || r == Reg::CG {
                return Err(IsaError::BadOperand {
                    message: format!("indexed mode on {r}"),
                });
            }
            (r.num(), 0b01, Some(off as u16))
        }
        Operand::Indirect(r) => (r.num(), 0b10, None),
        Operand::IndirectInc(r) => (r.num(), 0b11, None),
        Operand::Abs(a) => (Reg::SR.num(), 0b01, Some(a)),
        Operand::ImmExt(v) => (Reg::PC.num(), 0b11, Some(v)),
        Operand::Imm(v) => {
            if !(-32768..=65535).contains(&v) {
                return Err(IsaError::BadOperand {
                    message: format!("immediate {v} out of 16-bit range"),
                });
            }
            match v {
                _ if force_imm_ext => (Reg::PC.num(), 0b11, Some(v as u16)),
                0 => (Reg::CG.num(), 0b00, None),
                1 => (Reg::CG.num(), 0b01, None),
                2 => (Reg::CG.num(), 0b10, None),
                -1 => (Reg::CG.num(), 0b11, None),
                4 => (Reg::SR.num(), 0b10, None),
                8 => (Reg::SR.num(), 0b11, None),
                _ => (Reg::PC.num(), 0b11, Some(v as u16)),
            }
        }
    })
}

/// Destination addressing encoding: `(reg, Ad, extension word)`.
fn encode_dst(dst: Operand) -> Result<(u8, u16, Option<u16>), IsaError> {
    Ok(match dst {
        Operand::Reg(r) => (r.num(), 0, None),
        Operand::Indexed(r, off) => {
            if r == Reg::SR || r == Reg::CG {
                return Err(IsaError::BadOperand {
                    message: format!("indexed destination on {r}"),
                });
            }
            (r.num(), 1, Some(off as u16))
        }
        Operand::Abs(a) => (Reg::SR.num(), 1, Some(a)),
        other => {
            return Err(IsaError::BadOperand {
                message: format!("destination mode `{other}` not encodable"),
            })
        }
    })
}

/// Encodes an instruction to 1–3 words.
///
/// # Errors
///
/// Returns [`IsaError`] for unencodable operands or out-of-range jumps.
pub fn encode(instr: &Instr) -> Result<Vec<u16>, IsaError> {
    encode_opt(instr, false)
}

/// Like [`encode`], with `force_imm_ext` disabling the constant generators so
/// immediates always take an extension word (used by the assembler for
/// forward-referenced symbols whose final value might hit a CG constant).
///
/// # Errors
///
/// Returns [`IsaError`] for unencodable operands or out-of-range jumps.
pub fn encode_opt(instr: &Instr, force_imm_ext: bool) -> Result<Vec<u16>, IsaError> {
    match *instr {
        Instr::Two { op, src, dst } => {
            let (sreg, as_, sext) = encode_src_opt(src, force_imm_ext)?;
            let (dreg, ad, dext) = encode_dst(dst)?;
            let w =
                (op.opcode() << 12) | ((sreg as u16) << 8) | (ad << 7) | (as_ << 4) | dreg as u16;
            let mut out = vec![w];
            out.extend(sext);
            out.extend(dext);
            Ok(out)
        }
        Instr::One { op, dst } => {
            let (reg, mode, ext) = match dst {
                Operand::Reg(r) => (r.num(), 0b00, None),
                Operand::Indexed(r, off) => (r.num(), 0b01, Some(off as u16)),
                Operand::Indirect(r) => (r.num(), 0b10, None),
                Operand::IndirectInc(r) => (r.num(), 0b11, None),
                Operand::Abs(a) => (Reg::SR.num(), 0b01, Some(a)),
                Operand::Imm(_) | Operand::ImmExt(_) => {
                    if op != OneOp::Push && op != OneOp::Call {
                        return Err(IsaError::BadOperand {
                            message: format!("immediate operand on {}", op.mnemonic()),
                        });
                    }
                    let (r, m, e) = encode_src_opt(dst, force_imm_ext)?;
                    (r, m, e)
                }
            };
            let w = ((op.opcode9()) << 7) | (mode << 4) | reg as u16;
            let mut out = vec![w];
            out.extend(ext);
            Ok(out)
        }
        Instr::Jump { cond, offset } => {
            if !(-512..=511).contains(&(offset as i32)) {
                return Err(IsaError::JumpOutOfRange {
                    offset: offset as i32,
                });
            }
            let w = 0x2000 | (cond.code() << 10) | ((offset as u16) & 0x3FF);
            Ok(vec![w])
        }
    }
}

/// Sequential reader over extension words.
struct ExtReader<'a> {
    words: &'a [u16],
    idx: usize,
}

impl ExtReader<'_> {
    fn next(&mut self) -> Result<u16, IsaError> {
        let v = *self.words.get(self.idx).ok_or(IsaError::Truncated)?;
        self.idx += 1;
        Ok(v)
    }
}

/// Decodes a source operand from `(reg, As)` plus extension words.
fn decode_src(reg: u8, as_: u16, ext: &mut ExtReader<'_>) -> Result<Operand, IsaError> {
    let r = Reg::new(reg);
    Ok(match (r, as_) {
        (Reg::CG, 0b00) => Operand::Imm(0),
        (Reg::CG, 0b01) => Operand::Imm(1),
        (Reg::CG, 0b10) => Operand::Imm(2),
        (Reg::CG, 0b11) => Operand::Imm(-1),
        (Reg::SR, 0b10) => Operand::Imm(4),
        (Reg::SR, 0b11) => Operand::Imm(8),
        (Reg::SR, 0b01) => Operand::Abs(ext.next()?),
        (Reg::PC, 0b11) => {
            let v = ext.next()?;
            match v {
                // Non-canonical: the value has a constant-generator form, so
                // keep the extension-word spelling for exact re-encoding.
                0 | 1 | 2 | 4 | 8 | 0xFFFF => Operand::ImmExt(v),
                _ => Operand::Imm(v as i32),
            }
        }
        (_, 0b00) => Operand::Reg(r),
        (_, 0b01) => Operand::Indexed(r, ext.next()? as i16),
        (_, 0b10) => Operand::Indirect(r),
        (_, 0b11) => Operand::IndirectInc(r),
        _ => unreachable!("As is 2 bits"),
    })
}

/// Decodes one instruction from a word slice.
///
/// `pc` is the address of `words[0]` (used only for diagnostics). Returns the
/// instruction and the number of words consumed.
///
/// # Errors
///
/// Returns [`IsaError::BadEncoding`] for unsupported opcodes (including
/// `DADD`, `RETI`, and all byte-mode forms) and [`IsaError::Truncated`] when
/// extension words are missing.
pub fn decode(words: &[u16], pc: u16) -> Result<(Instr, usize), IsaError> {
    let _ = pc;
    let w = *words.first().ok_or(IsaError::Truncated)?;
    let mut ext = ExtReader {
        words: &words[1..],
        idx: 0,
    };
    if w >> 13 == 0b001 {
        let cond = Cond::ALL[((w >> 10) & 0x7) as usize];
        let mut off = (w & 0x3FF) as i16;
        if off & 0x200 != 0 {
            off -= 0x400;
        }
        return Ok((Instr::Jump { cond, offset: off }, 1));
    }
    if w >> 10 == 0b000100 {
        let op9 = w >> 7;
        let op = OneOp::from_opcode9(op9).ok_or(IsaError::BadEncoding { word: w })?;
        if w & 0x0040 != 0 {
            return Err(IsaError::BadEncoding { word: w }); // byte mode
        }
        let mode = (w >> 4) & 0b11;
        let reg = (w & 0xF) as u8;
        let dst = decode_src(reg, mode, &mut ext)?;
        // Constant-generator / immediate operands only make sense for
        // PUSH and CALL; the RMW forms are reserved encodings.
        if !matches!(op, OneOp::Push | OneOp::Call)
            && matches!(dst, Operand::Imm(_) | Operand::ImmExt(_))
        {
            return Err(IsaError::BadEncoding { word: w });
        }
        return Ok((Instr::One { op, dst }, 1 + ext.idx));
    }
    let opcode = w >> 12;
    let op = TwoOp::from_opcode(opcode).ok_or(IsaError::BadEncoding { word: w })?;
    if w & 0x0040 != 0 {
        return Err(IsaError::BadEncoding { word: w }); // byte mode unsupported
    }
    let sreg = ((w >> 8) & 0xF) as u8;
    let as_ = (w >> 4) & 0b11;
    let ad = (w >> 7) & 0b1;
    let dreg = (w & 0xF) as u8;
    let src = decode_src(sreg, as_, &mut ext)?;
    let dst = if ad == 0 {
        Operand::Reg(Reg::new(dreg))
    } else {
        // An indexed destination on the constant generator is a reserved
        // encoding (there is nothing to index).
        if dreg == Reg::CG.num() {
            return Err(IsaError::BadEncoding { word: w });
        }
        let extw = ext.next()?;
        if dreg == Reg::SR.num() {
            Operand::Abs(extw)
        } else {
            Operand::Indexed(Reg::new(dreg), extw as i16)
        }
    };
    Ok((Instr::Two { op, src, dst }, 1 + ext.idx))
}

/// Number of machine cycles the multicycle `xbound-cpu` core (and the ISS)
/// takes for one instruction.
///
/// The shared formula keeps the golden-model ISS cycle-accurate with the
/// gate-level FSM; integration tests assert the two agree end-to-end.
pub fn cycle_count(instr: &Instr) -> u64 {
    fn src_extra(src: Operand) -> u64 {
        match src {
            Operand::Reg(_) => 0,
            Operand::Imm(v) => match v {
                0 | 1 | 2 | 4 | 8 | -1 => 0,
                _ => 1,
            },
            Operand::ImmExt(_) => 1,
            Operand::Indirect(_) | Operand::IndirectInc(_) => 1,
            Operand::Indexed(..) | Operand::Abs(_) => 2,
        }
    }
    match *instr {
        Instr::Jump { .. } => 2,
        Instr::Two { op, src, dst } => {
            let base = 2 + src_extra(src);
            match dst {
                Operand::Reg(_) => base + 1,
                _ => base + if op.is_test_only() { 3 } else { 4 },
            }
        }
        Instr::One { op, dst } => match op {
            OneOp::Push => 2 + src_extra(dst) + 1,
            OneOp::Call => 2 + src_extra(dst) + 1,
            _ => {
                // RRC/RRA/SWPB/SXT read-modify-write.
                match dst {
                    Operand::Reg(_) => 3,
                    Operand::Indirect(_) | Operand::IndirectInc(_) => 5,
                    Operand::Indexed(..) | Operand::Abs(_) => 6,
                    Operand::Imm(_) | Operand::ImmExt(_) => 3, // not encodable; defensive
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(i: Instr) {
        let words = encode(&i).unwrap();
        let (back, used) = decode(&words, 0xF000).unwrap();
        assert_eq!(used, words.len(), "{i}");
        assert_eq!(back, i, "{i}");
    }

    #[test]
    fn round_trip_reg_reg() {
        for op in TwoOp::ALL {
            rt(Instr::Two {
                op,
                src: Operand::Reg(Reg::new(4)),
                dst: Operand::Reg(Reg::new(15)),
            });
        }
    }

    #[test]
    fn round_trip_cg_immediates() {
        for v in [0, 1, 2, 4, 8, -1] {
            let i = Instr::Two {
                op: TwoOp::Mov,
                src: Operand::Imm(v),
                dst: Operand::Reg(Reg::new(4)),
            };
            let words = encode(&i).unwrap();
            assert_eq!(words.len(), 1, "#{v} must use a constant generator");
            rt(i);
        }
    }

    #[test]
    fn round_trip_big_immediate() {
        let i = Instr::Two {
            op: TwoOp::Add,
            src: Operand::Imm(0x1234),
            dst: Operand::Reg(Reg::new(9)),
        };
        let words = encode(&i).unwrap();
        assert_eq!(words.len(), 2);
        rt(i);
    }

    #[test]
    fn round_trip_memory_modes() {
        rt(Instr::Two {
            op: TwoOp::Mov,
            src: Operand::Abs(0x0200),
            dst: Operand::Reg(Reg::new(5)),
        });
        rt(Instr::Two {
            op: TwoOp::Mov,
            src: Operand::Indexed(Reg::new(4), -6),
            dst: Operand::Abs(0x0132),
        });
        rt(Instr::Two {
            op: TwoOp::Add,
            src: Operand::Indirect(Reg::new(7)),
            dst: Operand::Indexed(Reg::new(8), 12),
        });
        rt(Instr::Two {
            op: TwoOp::Mov,
            src: Operand::IndirectInc(Reg::SP),
            dst: Operand::Reg(Reg::PC),
        }); // RET
    }

    #[test]
    fn round_trip_format_ii() {
        for op in [OneOp::Rrc, OneOp::Rra, OneOp::Swpb, OneOp::Sxt] {
            rt(Instr::One {
                op,
                dst: Operand::Reg(Reg::new(11)),
            });
        }
        rt(Instr::One {
            op: OneOp::Push,
            dst: Operand::Reg(Reg::new(4)),
        });
        rt(Instr::One {
            op: OneOp::Push,
            dst: Operand::Imm(0x55AA),
        });
        rt(Instr::One {
            op: OneOp::Call,
            dst: Operand::Imm(0xF100),
        });
        rt(Instr::One {
            op: OneOp::Rra,
            dst: Operand::Indexed(Reg::new(4), 2),
        });
    }

    #[test]
    fn round_trip_jumps() {
        for cond in Cond::ALL {
            for off in [-512i16, -1, 0, 1, 511] {
                rt(Instr::Jump { cond, offset: off });
            }
        }
    }

    #[test]
    fn jump_out_of_range_rejected() {
        let err = encode(&Instr::Jump {
            cond: Cond::Always,
            offset: 512,
        })
        .unwrap_err();
        assert!(matches!(err, IsaError::JumpOutOfRange { .. }));
    }

    #[test]
    fn indirect_destination_rejected() {
        let err = encode(&Instr::Two {
            op: TwoOp::Mov,
            src: Operand::Reg(Reg::new(4)),
            dst: Operand::Indirect(Reg::new(5)),
        })
        .unwrap_err();
        assert!(matches!(err, IsaError::BadOperand { .. }));
    }

    #[test]
    fn byte_mode_and_dadd_rejected() {
        // DADD opcode (0xA) is unsupported.
        assert!(matches!(
            decode(&[0xA444], 0).unwrap_err(),
            IsaError::BadEncoding { .. }
        ));
        // A byte-mode MOV (B/W bit set).
        assert!(matches!(
            decode(&[0x4444 | 0x0040], 0).unwrap_err(),
            IsaError::BadEncoding { .. }
        ));
        // RETI.
        assert!(matches!(
            decode(&[0x1300], 0).unwrap_err(),
            IsaError::BadEncoding { .. }
        ));
    }

    #[test]
    fn truncated_stream_detected() {
        // mov #0x1234, r4 needs one extension word.
        let full = encode(&Instr::Two {
            op: TwoOp::Mov,
            src: Operand::Imm(0x1234),
            dst: Operand::Reg(Reg::new(4)),
        })
        .unwrap();
        assert!(matches!(
            decode(&full[..1], 0).unwrap_err(),
            IsaError::Truncated
        ));
    }

    #[test]
    fn known_encodings_match_reference() {
        // NOP == mov r3, r3 == 0x4303 (TI assembler reference value).
        let nop = Instr::Two {
            op: TwoOp::Mov,
            src: Operand::Reg(Reg::CG),
            dst: Operand::Reg(Reg::CG),
        };
        assert_eq!(encode(&nop).unwrap(), vec![0x4303]);
        // ret == mov @sp+, pc == 0x4130.
        let ret = Instr::Two {
            op: TwoOp::Mov,
            src: Operand::IndirectInc(Reg::SP),
            dst: Operand::Reg(Reg::PC),
        };
        assert_eq!(encode(&ret).unwrap(), vec![0x4130]);
        // jmp $ (offset -1) == 0x3FFF.
        let spin = Instr::Jump {
            cond: Cond::Always,
            offset: -1,
        };
        assert_eq!(encode(&spin).unwrap(), vec![0x3FFF]);
    }

    #[test]
    fn cycle_counts_reasonable() {
        let regreg = Instr::Two {
            op: TwoOp::Add,
            src: Operand::Reg(Reg::new(4)),
            dst: Operand::Reg(Reg::new(5)),
        };
        assert_eq!(cycle_count(&regreg), 3);
        let jmp = Instr::Jump {
            cond: Cond::Always,
            offset: -1,
        };
        assert_eq!(cycle_count(&jmp), 2);
        let store = Instr::Two {
            op: TwoOp::Mov,
            src: Operand::Reg(Reg::new(4)),
            dst: Operand::Abs(0x0200),
        };
        assert_eq!(cycle_count(&store), 6);
        let cmp_mem = Instr::Two {
            op: TwoOp::Cmp,
            src: Operand::Imm(0),
            dst: Operand::Abs(0x0200),
        };
        assert_eq!(cycle_count(&cmp_mem), 5);
    }

    #[test]
    fn display_forms() {
        let i = Instr::Two {
            op: TwoOp::Mov,
            src: Operand::Indexed(Reg::new(4), -6),
            dst: Operand::Abs(0x0132),
        };
        assert_eq!(i.to_string(), "mov -6(r4), &0x0132");
    }
}
