//! Probabilistic (vectorless) activity analysis.
//!
//! The design-specification baseline of the paper ("design tool") rates a
//! processor by running the EDA power tool with its **default input toggle
//! rate** instead of simulation activity. This module reproduces that
//! estimate: signal probabilities and transition densities are propagated
//! from primary inputs (and sequential outputs) through the combinational
//! logic under an input-independence assumption — the classic vectorless
//! mode of PrimeTime/PrimePower.
//!
//! # Example
//!
//! ```
//! use xbound_cells::CellLibrary;
//! use xbound_netlist::rtl::Rtl;
//! use xbound_power::statics::{vectorless_power_mw, VectorlessConfig};
//!
//! let mut r = Rtl::new("t");
//! let a = r.input_bit("a");
//! let b = r.input_bit("b");
//! let y = r.and(a, b);
//! r.output_bit("y", y);
//! let nl = r.finish().unwrap();
//! let lib = CellLibrary::ulp65();
//! let mw = vectorless_power_mw(&nl, &lib, 100.0e6, &VectorlessConfig::default());
//! assert!(mw > 0.0);
//! ```

use crate::power_from_rates;
use xbound_cells::CellLibrary;
use xbound_netlist::{CellKind, Netlist};

/// Configuration of the vectorless analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VectorlessConfig {
    /// Static probability of primary inputs being 1.
    pub input_probability: f64,
    /// Toggle rate of primary inputs, transitions per cycle.
    pub input_toggle_rate: f64,
    /// Toggle rate assumed for sequential outputs, transitions per cycle.
    pub register_toggle_rate: f64,
}

impl Default for VectorlessConfig {
    /// PrimeTime-style defaults: probability 0.5, toggle rate 0.2 on inputs
    /// and registers.
    fn default() -> VectorlessConfig {
        VectorlessConfig {
            input_probability: 0.5,
            input_toggle_rate: 0.2,
            register_toggle_rate: 0.2,
        }
    }
}

/// Per-net probability and transition density.
#[derive(Debug, Clone, Copy, Default)]
struct Act {
    /// Probability the net is 1.
    p: f64,
    /// Expected transitions per cycle.
    d: f64,
}

/// Propagates probabilities/densities; returns per-gate toggle rates.
///
/// Propagation uses the standard independence approximations:
/// `P(and) = pa·pb`, `P(or) = pa + pb − pa·pb`, `P(xor) = pa + pb − 2·pa·pb`;
/// transition densities propagate with Boolean-difference sensitivities
/// (e.g. for AND, input `a` is observable with probability `pb`).
pub fn propagate_rates(nl: &Netlist, cfg: &VectorlessConfig) -> Vec<f64> {
    let mut acts = vec![Act::default(); nl.net_count()];
    for &i in nl.inputs() {
        acts[i.index()] = Act {
            p: cfg.input_probability,
            d: cfg.input_toggle_rate,
        };
    }
    for &g in nl.sequential_gates() {
        let out = nl.gate(g).output();
        acts[out.index()] = Act {
            p: 0.5,
            d: cfg.register_toggle_rate,
        };
    }
    let mut gate_rates = vec![0.0f64; nl.gate_count()];
    for &gid in nl.topo_order() {
        let g = nl.gate(gid);
        let a = |k: usize| acts[g.inputs()[k].index()];
        let out = match g.kind() {
            CellKind::Tie0 => Act { p: 0.0, d: 0.0 },
            CellKind::Tie1 => Act { p: 1.0, d: 0.0 },
            CellKind::Buf => a(0),
            CellKind::Inv => Act {
                p: 1.0 - a(0).p,
                d: a(0).d,
            },
            CellKind::And2 | CellKind::Nand2 => {
                let (x, y) = (a(0), a(1));
                let p = x.p * y.p;
                let d = x.d * y.p + y.d * x.p;
                Act {
                    p: if g.kind() == CellKind::Nand2 {
                        1.0 - p
                    } else {
                        p
                    },
                    d,
                }
            }
            CellKind::Or2 | CellKind::Nor2 => {
                let (x, y) = (a(0), a(1));
                let p = x.p + y.p - x.p * y.p;
                let d = x.d * (1.0 - y.p) + y.d * (1.0 - x.p);
                Act {
                    p: if g.kind() == CellKind::Nor2 {
                        1.0 - p
                    } else {
                        p
                    },
                    d,
                }
            }
            CellKind::Xor2 | CellKind::Xnor2 => {
                let (x, y) = (a(0), a(1));
                let p = x.p + y.p - 2.0 * x.p * y.p;
                let d = x.d + y.d; // XOR is always sensitized
                Act {
                    p: if g.kind() == CellKind::Xnor2 {
                        1.0 - p
                    } else {
                        p
                    },
                    d,
                }
            }
            CellKind::Mux2 => {
                let (d0, d1, s) = (a(0), a(1), a(2));
                let p = (1.0 - s.p) * d0.p + s.p * d1.p;
                let d = (1.0 - s.p) * d0.d
                    + s.p * d1.d
                    + s.d * (d0.p * (1.0 - d1.p) + d1.p * (1.0 - d0.p));
                Act { p, d }
            }
            CellKind::Aoi21 => {
                // !((a & b) | c)
                let (x, y, c) = (a(0), a(1), a(2));
                let pab = x.p * y.p;
                let p_or = pab + c.p - pab * c.p;
                let d_ab = x.d * y.p + y.d * x.p;
                let d = d_ab * (1.0 - c.p) + c.d * (1.0 - pab);
                Act { p: 1.0 - p_or, d }
            }
            CellKind::Oai21 => {
                // !((a | b) & c)
                let (x, y, c) = (a(0), a(1), a(2));
                let pab = x.p + y.p - x.p * y.p;
                let p_and = pab * c.p;
                let d_ab = x.d * (1.0 - y.p) + y.d * (1.0 - x.p);
                let d = d_ab * c.p + c.d * pab;
                Act { p: 1.0 - p_and, d }
            }
            CellKind::Dff | CellKind::Dffe | CellKind::Dffr | CellKind::Dffre => {
                unreachable!("sequential gate in topo order")
            }
        };
        // Clamp to physical bounds: a net cannot toggle more than once per
        // cycle in a synchronous design.
        let out = Act {
            p: out.p.clamp(0.0, 1.0),
            d: out.d.min(1.0),
        };
        acts[g.output().index()] = out;
        gate_rates[gid.index()] = out.d;
    }
    // Sequential gate toggle rates.
    for &gid in nl.sequential_gates() {
        gate_rates[gid.index()] = cfg.register_toggle_rate;
    }
    gate_rates
}

/// The design-tool rating: vectorless expected power, milliwatts.
pub fn vectorless_power_mw(
    nl: &Netlist,
    lib: &CellLibrary,
    clock_hz: f64,
    cfg: &VectorlessConfig,
) -> f64 {
    let rates = propagate_rates(nl, cfg);
    power_from_rates(nl, lib, clock_hz, &rates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbound_netlist::rtl::Rtl;

    fn and_tree() -> Netlist {
        let mut r = Rtl::new("t");
        let a = r.input_bit("a");
        let b = r.input_bit("b");
        let c = r.input_bit("c");
        let d = r.input_bit("d");
        let ab = r.and(a, b);
        let cd = r.and(c, d);
        let y = r.and(ab, cd);
        r.output_bit("y", y);
        r.finish().unwrap()
    }

    #[test]
    fn probabilities_attenuate_through_and_tree() {
        let nl = and_tree();
        let rates = propagate_rates(&nl, &VectorlessConfig::default());
        // Deeper gates toggle less under AND attenuation.
        assert!(rates[2] < rates[0], "root AND rate < leaf AND rate");
        assert!(rates.iter().all(|&r| (0.0..=1.0).contains(&r)));
    }

    #[test]
    fn xor_does_not_attenuate() {
        let mut r = Rtl::new("t");
        let a = r.input_bit("a");
        let b = r.input_bit("b");
        let y = r.xor(a, b);
        r.output_bit("y", y);
        let nl = r.finish().unwrap();
        let cfg = VectorlessConfig::default();
        let rates = propagate_rates(&nl, &cfg);
        assert!((rates[0] - 2.0 * cfg.input_toggle_rate).abs() < 1e-12);
    }

    #[test]
    fn densities_clamped_to_once_per_cycle() {
        // A deep XOR chain would exceed 1 transition/cycle without clamping.
        let mut r = Rtl::new("t");
        let mut nets = Vec::new();
        for i in 0..12 {
            nets.push(r.input_bit(&format!("i{i}")));
        }
        let y = r.xor_bus(&vec![nets[0]; 1], &vec![nets[1]; 1])[0];
        let mut acc = y;
        for &n in &nets[2..] {
            acc = r.xor(acc, n);
        }
        r.output_bit("y", acc);
        let nl = r.finish().unwrap();
        let rates = propagate_rates(&nl, &VectorlessConfig::default());
        assert!(rates.iter().all(|&d| d <= 1.0));
        assert!(rates.last().copied().unwrap() >= 0.99, "chain saturates");
    }

    #[test]
    fn higher_input_rate_higher_power() {
        let nl = and_tree();
        let lib = xbound_cells::CellLibrary::ulp65();
        let lo = vectorless_power_mw(
            &nl,
            &lib,
            100.0e6,
            &VectorlessConfig {
                input_toggle_rate: 0.1,
                ..VectorlessConfig::default()
            },
        );
        let hi = vectorless_power_mw(
            &nl,
            &lib,
            100.0e6,
            &VectorlessConfig {
                input_toggle_rate: 0.4,
                ..VectorlessConfig::default()
            },
        );
        assert!(hi > lo);
    }

    #[test]
    fn ties_never_toggle() {
        let mut r = Rtl::new("t");
        let z = r.zero();
        let o = r.one();
        let y = r.or(z, o);
        r.output_bit("y", y);
        let nl = r.finish().unwrap();
        let rates = propagate_rates(&nl, &VectorlessConfig::default());
        // All gates driven only by ties have zero density.
        assert!(rates.iter().all(|&d| d == 0.0));
    }
}
