//! Value-change-dump (VCD) export and import.
//!
//! The paper's Algorithm 2 materializes even/odd activity assignments as VCD
//! files consumed by PrimeTime. `xbound` operates on in-memory frames for
//! speed but provides VCD interchange here: [`write()`] emits a standard VCD
//! (1 timestep per clock cycle, scalar nets, `x` for unknowns), and
//! [`parse`] reads the same subset back.
//!
//! # Example
//!
//! ```
//! use xbound_netlist::rtl::Rtl;
//! use xbound_sim::Simulator;
//! use xbound_power::vcd;
//!
//! let mut r = Rtl::new("cnt");
//! let (h, q) = r.reg("c", 4);
//! let one = r.one();
//! let (nx, _) = r.inc(&q, one);
//! r.reg_next(h, &nx);
//! r.output("q", &q);
//! let nl = r.finish().unwrap();
//! let mut sim = Simulator::new(&nl);
//! let mut frames = Vec::new();
//! for _ in 0..8 {
//!     frames.push(sim.eval().unwrap().clone());
//!     sim.commit();
//! }
//! let text = vcd::write(&nl, &frames, 10_000);
//! let (names, back) = vcd::parse(&text)?;
//! assert_eq!(names.len(), nl.net_count());
//! assert_eq!(back, frames);
//! # Ok::<(), vcd::VcdError>(())
//! ```

use std::collections::HashMap;
use std::fmt;
use xbound_logic::{Frame, Lv};
use xbound_netlist::Netlist;

/// Errors from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VcdError {
    /// Structural problem in the VCD text.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// A value change referenced an undeclared identifier code.
    UnknownId {
        /// The identifier code.
        id: String,
    },
}

impl fmt::Display for VcdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VcdError::Syntax { line, message } => {
                write!(f, "VCD syntax error at line {line}: {message}")
            }
            VcdError::UnknownId { id } => write!(f, "unknown VCD identifier `{id}`"),
        }
    }
}

impl std::error::Error for VcdError {}

/// Short identifier code for net `i` (printable ASCII, VCD-style).
fn id_code(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

/// Serializes frames as a VCD document.
///
/// One VCD timestep of `timescale_ps` picoseconds per frame; every net of
/// the netlist is declared as a scalar wire under a single scope.
pub fn write(nl: &Netlist, frames: &[Frame], timescale_ps: u64) -> String {
    let mut out = String::new();
    out.push_str("$date xbound $end\n$version xbound-power $end\n");
    out.push_str(&format!("$timescale {timescale_ps} ps $end\n"));
    out.push_str(&format!("$scope module {} $end\n", nl.name()));
    for i in 0..nl.net_count() {
        let name = nl.net_name(xbound_netlist::NetId(i as u32));
        out.push_str(&format!(
            "$var wire 1 {} {} $end\n",
            id_code(i),
            name.replace(' ', "_")
        ));
    }
    out.push_str("$upscope $end\n$enddefinitions $end\n");
    let mut prev: Option<&Frame> = None;
    for (t, f) in frames.iter().enumerate() {
        out.push_str(&format!("#{t}\n"));
        match prev {
            None => {
                out.push_str("$dumpvars\n");
                for i in 0..f.len() {
                    out.push(f.get(i).to_char());
                    out.push_str(&id_code(i));
                    out.push('\n');
                }
                out.push_str("$end\n");
            }
            Some(p) => {
                for i in p.diff_indices(f) {
                    out.push(f.get(i).to_char());
                    out.push_str(&id_code(i));
                    out.push('\n');
                }
            }
        }
        prev = Some(f);
    }
    out
}

/// Parses the VCD subset produced by [`write()`].
///
/// Returns the declared net names (in declaration order) and one frame per
/// timestep.
///
/// # Errors
///
/// Returns [`VcdError`] on malformed declarations or unknown identifiers.
pub fn parse(text: &str) -> Result<(Vec<String>, Vec<Frame>), VcdError> {
    let mut names: Vec<String> = Vec::new();
    let mut ids: HashMap<String, usize> = HashMap::new();
    let mut frames: Vec<Frame> = Vec::new();
    let mut cur: Option<Frame> = None;
    let mut in_defs = true;
    for (ln, raw) in text.lines().enumerate() {
        let line = ln + 1;
        let t = raw.trim();
        if t.is_empty() || t == "$end" || t == "$dumpvars" {
            continue;
        }
        if in_defs {
            if t.starts_with("$var") {
                let parts: Vec<&str> = t.split_whitespace().collect();
                if parts.len() < 5 {
                    return Err(VcdError::Syntax {
                        line,
                        message: "malformed $var".into(),
                    });
                }
                let id = parts[3].to_string();
                ids.insert(id, names.len());
                names.push(parts[4].to_string());
            } else if t.starts_with("$enddefinitions") {
                in_defs = false;
            }
            continue;
        }
        if let Some(ts) = t.strip_prefix('#') {
            let _: u64 = ts.parse().map_err(|_| VcdError::Syntax {
                line,
                message: format!("bad timestep `{ts}`"),
            })?;
            if let Some(f) = cur.take() {
                frames.push(f);
            }
            let next = frames
                .last()
                .cloned()
                .unwrap_or_else(|| Frame::new(names.len()));
            cur = Some(next);
            continue;
        }
        // Scalar value change: <value><id>
        let mut chars = t.chars();
        let vc = chars.next().ok_or(VcdError::Syntax {
            line,
            message: "empty change".into(),
        })?;
        let v = Lv::from_char(vc).ok_or(VcdError::Syntax {
            line,
            message: format!("bad value `{vc}`"),
        })?;
        let id: String = chars.collect();
        let idx = *ids.get(&id).ok_or(VcdError::UnknownId { id })?;
        if let Some(f) = cur.as_mut() {
            f.set(idx, v);
        } else {
            return Err(VcdError::Syntax {
                line,
                message: "value change before first timestep".into(),
            });
        }
    }
    if let Some(f) = cur.take() {
        frames.push(f);
    }
    Ok((names, frames))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_codes_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            let c = id_code(i);
            assert!(c.chars().all(|ch| ('!'..='~').contains(&ch)));
            assert!(seen.insert(c), "duplicate id for {i}");
        }
    }

    #[test]
    fn round_trip_with_x() {
        let mut f0 = Frame::new(5);
        f0.set(0, Lv::One);
        f0.set(3, Lv::X);
        let mut f1 = f0.clone();
        f1.set(3, Lv::Zero);
        f1.set(4, Lv::One);
        let mut nl = Netlist::new("t");
        for i in 0..5 {
            nl.add_input(format!("n{i}"));
        }
        let nl = nl.finalize().unwrap();
        let text = write(&nl, &[f0.clone(), f1.clone()], 10_000);
        let (names, frames) = parse(&text).unwrap();
        assert_eq!(names.len(), 5);
        assert_eq!(frames, vec![f0, f1]);
    }

    #[test]
    fn unknown_id_rejected() {
        let text = "$var wire 1 ! a $end\n$enddefinitions $end\n#0\n1%\n";
        assert!(matches!(parse(text), Err(VcdError::UnknownId { .. })));
    }

    #[test]
    fn bad_value_rejected() {
        let text = "$var wire 1 ! a $end\n$enddefinitions $end\n#0\nq!\n";
        assert!(matches!(parse(text), Err(VcdError::Syntax { .. })));
    }

    #[test]
    fn empty_document_parses() {
        let (names, frames) = parse("$enddefinitions $end\n").unwrap();
        assert!(names.is_empty());
        assert!(frames.is_empty());
    }
}
