//! Activity-based gate-level power analysis — the PrimeTime stand-in.
//!
//! Given a netlist, a cell library, and a per-cycle trace of net values
//! ([`xbound_logic::Frame`]s), [`PowerAnalyzer`] computes:
//!
//! * the per-cycle power trace (dynamic switching energy × clock frequency
//!   plus leakage),
//! * per-module breakdowns (the paper's Fig 14 stacked bars),
//! * total energy and normalized peak energy (J/cycle).
//!
//! The same computation PrimeTime performs in averaged/activity mode: each
//! output transition of a gate contributes that cell's characterized rise or
//! fall energy. Transitions to/from `X` are charged the *maximum* transition
//! energy — conservative, and only reachable when callers analyze raw
//! symbolic traces (Algorithm 2 resolves Xs before analysis).
//!
//! [`statics`] adds probabilistic (toggle-rate-based) analysis used by the
//! design-specification baseline, and [`vcd`] provides VCD export/import.
//!
//! # Example
//!
//! ```
//! use xbound_cells::CellLibrary;
//! use xbound_netlist::rtl::Rtl;
//! use xbound_power::PowerAnalyzer;
//! use xbound_sim::Simulator;
//!
//! let mut r = Rtl::new("cnt");
//! let (h, q) = r.reg("c", 8);
//! let one = r.one();
//! let (nx, _) = r.inc(&q, one);
//! r.reg_next(h, &nx);
//! r.output("q", &q);
//! let nl = r.finish().unwrap();
//!
//! let mut sim = Simulator::new(&nl);
//! sim.reset(1);
//! let mut frames = Vec::new();
//! for _ in 0..32 {
//!     frames.push(sim.eval().unwrap().clone());
//!     sim.commit();
//! }
//! let lib = CellLibrary::ulp65();
//! let analyzer = PowerAnalyzer::new(&nl, &lib, 100.0e6);
//! let trace = analyzer.analyze(&frames);
//! assert!(trace.peak_mw() > 0.0);
//! assert!(trace.avg_mw() <= trace.peak_mw());
//! ```

#![warn(missing_docs)]

pub mod statics;
pub mod vcd;

use xbound_cells::CellLibrary;
use xbound_logic::{BatchFrame, Frame, LaneVal};
use xbound_netlist::{CellKind, Netlist};

/// A per-cycle power trace produced by [`PowerAnalyzer::analyze`].
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTrace {
    per_cycle_mw: Vec<f64>,
    per_module_mw: Vec<Vec<f64>>,
    module_names: Vec<String>,
    clock_hz: f64,
    leakage_mw: f64,
}

impl PowerTrace {
    /// Per-cycle total power, milliwatts.
    pub fn per_cycle_mw(&self) -> &[f64] {
        &self.per_cycle_mw
    }

    /// Per-cycle per-module power, `[module][cycle]`, milliwatts.
    pub fn per_module_mw(&self) -> &[Vec<f64>] {
        &self.per_module_mw
    }

    /// Module names, aligned with [`PowerTrace::per_module_mw`].
    pub fn module_names(&self) -> &[String] {
        &self.module_names
    }

    /// Number of cycles in the trace.
    pub fn cycles(&self) -> usize {
        self.per_cycle_mw.len()
    }

    /// Peak per-cycle power, milliwatts (0 for an empty trace).
    pub fn peak_mw(&self) -> f64 {
        self.per_cycle_mw.iter().copied().fold(0.0, f64::max)
    }

    /// Cycle index at which the peak occurs (0 for an empty trace).
    pub fn peak_cycle(&self) -> usize {
        self.per_cycle_mw
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("power is finite"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Average power over the trace, milliwatts.
    pub fn avg_mw(&self) -> f64 {
        if self.per_cycle_mw.is_empty() {
            return 0.0;
        }
        self.per_cycle_mw.iter().sum::<f64>() / self.per_cycle_mw.len() as f64
    }

    /// Total energy over the trace, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.per_cycle_mw.iter().sum::<f64>() * 1e-3 / self.clock_hz
    }

    /// Energy per cycle averaged over the run (the paper's "normalized peak
    /// energy" metric, J/cycle).
    pub fn energy_per_cycle_j(&self) -> f64 {
        if self.per_cycle_mw.is_empty() {
            return 0.0;
        }
        self.total_energy_j() / self.per_cycle_mw.len() as f64
    }

    /// Constant leakage included in every cycle, milliwatts.
    pub fn leakage_mw(&self) -> f64 {
        self.leakage_mw
    }

    /// Clock frequency used for the analysis, hertz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// Approximate resident size of this trace in bytes — used by
    /// byte-budgeted caches (e.g. the incremental re-analysis segment-power
    /// cache) to account evictions. Counts the per-cycle and per-module
    /// tables plus module-name storage; allocator overhead is ignored.
    pub fn approx_bytes(&self) -> u64 {
        let doubles =
            self.per_cycle_mw.len() + self.per_module_mw.iter().map(Vec::len).sum::<usize>();
        let names: usize = self.module_names.iter().map(String::len).sum();
        (doubles * 8 + names) as u64 + 64
    }

    /// Per-module energy at one cycle, `(module name, mW)`, descending.
    pub fn module_breakdown_at(&self, cycle: usize) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = self
            .module_names
            .iter()
            .zip(&self.per_module_mw)
            .map(|(n, t)| (n.clone(), t.get(cycle).copied().unwrap_or(0.0)))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("power is finite"));
        v
    }
}

/// Multiplier applied to the summed flip-flop clock-pin energy to account
/// for the clock distribution buffers of a placed-and-routed design.
pub const CLOCK_TREE_FACTOR: f64 = 1.25;

/// The clock-independent part of a power analysis: per-cycle and
/// per-module **dynamic switching energy** in femtojoules.
///
/// A [`PowerTrace`] is `floor + fj × (clock_hz × 1e-12)` per cycle — the
/// transition accumulation itself never reads the clock. Capturing the
/// femtojoule sums lets one gate-level analysis serve every clock of an
/// operating-point sweep: [`EnergyTrace::to_power_trace`] applies exactly
/// the float operations [`BatchPowerAccumulator::finish`] applies, so the
/// converted trace is bit-identical to re-analyzing the same frames with
/// an analyzer bound to that clock.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyTrace {
    /// Per-cycle switching energy, femtojoules (cycle 0 is always 0).
    per_cycle_fj: Vec<f64>,
    /// Per-module per-cycle switching energy, `[module][cycle]`,
    /// femtojoules.
    per_module_fj: Vec<Vec<f64>>,
}

impl EnergyTrace {
    /// Per-cycle switching energy, femtojoules.
    pub fn per_cycle_fj(&self) -> &[f64] {
        &self.per_cycle_fj
    }

    /// Number of cycles in the trace.
    pub fn cycles(&self) -> usize {
        self.per_cycle_fj.len()
    }

    /// Converts to the [`PowerTrace`] that `analyzer` would have produced
    /// by analyzing the same frames directly — bit-identical, because
    /// both paths compute `(leakage + clock) + fj × (clock_hz × 1e-12)`
    /// per cycle with the same operations in the same order.
    ///
    /// `analyzer` must be bound to the same netlist and library the
    /// energies were accumulated under; only its clock may differ.
    pub fn to_power_trace(&self, analyzer: &PowerAnalyzer) -> PowerTrace {
        let fj_to_mw = analyzer.clock_hz * 1e-12;
        let floor = analyzer.leakage_mw + analyzer.clock_mw;
        PowerTrace {
            per_cycle_mw: self
                .per_cycle_fj
                .iter()
                .map(|&fj| floor + fj * fj_to_mw)
                .collect(),
            per_module_mw: self
                .per_module_fj
                .iter()
                .map(|m| m.iter().map(|&fj| fj * fj_to_mw).collect())
                .collect(),
            module_names: analyzer.nl.modules().to_vec(),
            clock_hz: analyzer.clock_hz,
            leakage_mw: analyzer.leakage_mw,
        }
    }
}

/// Activity-based power analyzer bound to a netlist + library + clock.
#[derive(Debug, Clone)]
pub struct PowerAnalyzer<'a> {
    nl: &'a Netlist,
    lib: &'a CellLibrary,
    clock_hz: f64,
    /// Per-gate (rise, fall, max) energies in femtojoules.
    energies: Vec<(f64, f64, f64)>,
    leakage_mw: f64,
    clock_mw: f64,
}

impl<'a> PowerAnalyzer<'a> {
    /// Creates an analyzer; precomputes per-gate energies and total leakage.
    ///
    /// # Panics
    ///
    /// Panics if `clock_hz` is not positive or the netlist is not finalized.
    pub fn new(nl: &'a Netlist, lib: &'a CellLibrary, clock_hz: f64) -> PowerAnalyzer<'a> {
        assert!(clock_hz > 0.0, "clock must be positive");
        assert!(nl.is_finalized(), "netlist must be finalized");
        let energies = nl
            .gates()
            .iter()
            .map(|g| {
                let p = lib.power(g.kind());
                (p.energy_rise_fj, p.energy_fall_fj, p.max_energy_fj())
            })
            .collect();
        let leakage_nw: f64 = nl
            .gates()
            .iter()
            .map(|g| lib.power(g.kind()).leakage_nw)
            .sum();
        // Clock network: every flip-flop's clock pin switches each cycle;
        // the tree factor stands in for the distribution buffers. This is
        // input-independent power, charged to every cycle like leakage.
        let clock_fj: f64 = nl
            .gates()
            .iter()
            .map(|g| lib.power(g.kind()).clock_pin_fj)
            .sum();
        PowerAnalyzer {
            nl,
            lib,
            clock_hz,
            energies,
            leakage_mw: leakage_nw * 1e-6,
            clock_mw: clock_fj * CLOCK_TREE_FACTOR * clock_hz * 1e-12,
        }
    }

    /// The bound cell library.
    pub fn library(&self) -> &CellLibrary {
        self.lib
    }

    /// The clock frequency, hertz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// Static leakage of the whole design, milliwatts.
    pub fn leakage_mw(&self) -> f64 {
        self.leakage_mw
    }

    /// Clock-network power (flip-flop clock pins × tree factor), milliwatts.
    pub fn clock_mw(&self) -> f64 {
        self.clock_mw
    }

    /// Input-independent per-cycle floor: leakage + clock network.
    pub fn floor_mw(&self) -> f64 {
        self.leakage_mw + self.clock_mw
    }

    /// Analyzes a frame sequence into a power trace.
    ///
    /// Cycle `c`'s dynamic power counts transitions between frames `c-1` and
    /// `c` (cycle 0 has no transitions, only leakage). Per-module breakdowns
    /// are always computed.
    pub fn analyze(&self, frames: &[Frame]) -> PowerTrace {
        self.analyze_with_boundary(None, frames)
    }

    /// [`PowerAnalyzer::analyze`] of the logical sequence `boundary ++
    /// frames`, without materializing the concatenation.
    ///
    /// Algorithm 2 analyzes every execution-tree segment prefixed by its
    /// parent's last frame; passing the boundary by reference avoids
    /// cloning each segment's frames twice per run.
    ///
    /// This is the 1-lane wrapper of the lane-wise accumulator: each
    /// consecutive frame pair is diffed word-wise ([`Frame::for_each_diff`])
    /// and the changed nets feed [`BatchPowerAccumulator`]'s shared
    /// classify/accumulate kernel at lane width 1, so the scalar and
    /// batched analyses cannot diverge.
    pub fn analyze_with_boundary(&self, boundary: Option<&Frame>, frames: &[Frame]) -> PowerTrace {
        let mut acc = self.batch_accumulator(1);
        let mut prev: Option<&Frame> = None;
        for cur in boundary.into_iter().chain(frames) {
            acc.push_scalar_pair(prev, cur);
            prev = Some(cur);
        }
        acc.finish(None).pop().expect("one lane")
    }

    /// Batched [`PowerAnalyzer::analyze`]: one pass over a
    /// [`BatchFrame`] sequence produces one independent [`PowerTrace`]
    /// per lane, from lane-wise toggle masks.
    ///
    /// `lane_cycles` optionally truncates each lane's trace to its first
    /// `lane_cycles[l]` cycles (a lane that halted early ignores the
    /// cycles simulated past its halt); `None` analyzes every lane over
    /// the full sequence.
    ///
    /// Each lane's trace is **bit-identical** to
    /// `analyze(&lane_frames[..lane_cycles[l]])` of that lane's scalar
    /// frames: per lane, transition energies accumulate in the same
    /// ascending-net order with the same f64 operations.
    ///
    /// Callers that do not already hold the frame sequence should feed a
    /// [`BatchPowerAccumulator`] cycle by cycle instead of materializing
    /// it (a batch frame is `16 bytes × nets` regardless of lane count).
    ///
    /// # Panics
    ///
    /// Panics if the frames disagree in lane count or length, or if
    /// `lane_cycles` has the wrong arity or exceeds the sequence length.
    pub fn analyze_batch(
        &self,
        frames: &[BatchFrame],
        lane_cycles: Option<&[usize]>,
    ) -> Vec<PowerTrace> {
        let Some(first) = frames.first() else {
            return Vec::new();
        };
        let mut acc = self.batch_accumulator(first.lanes());
        for f in frames {
            acc.push(f);
        }
        acc.finish(lane_cycles)
    }

    /// [`PowerAnalyzer::analyze_with_boundary`], stopped at the
    /// clock-independent femtojoule stage (see [`EnergyTrace`]). The full
    /// trace is `energy.to_power_trace(analyzer)`; an operating-point
    /// sweep accumulates once per library and converts once per clock.
    pub fn analyze_energy_with_boundary(
        &self,
        boundary: Option<&Frame>,
        frames: &[Frame],
    ) -> EnergyTrace {
        let mut acc = self.batch_accumulator(1);
        let mut prev: Option<&Frame> = None;
        for cur in boundary.into_iter().chain(frames) {
            acc.push_scalar_pair(prev, cur);
            prev = Some(cur);
        }
        acc.finish_energy(None).pop().expect("one lane")
    }

    /// Creates a streaming accumulator for batched per-lane power
    /// analysis; push one settled [`BatchFrame`] per cycle and
    /// [`BatchPowerAccumulator::finish`] into per-lane traces.
    pub fn batch_accumulator(&self, lanes: usize) -> BatchPowerAccumulator<'_> {
        BatchPowerAccumulator {
            analyzer: self,
            lanes,
            prev: None,
            per_cycle_fj: vec![Vec::new(); lanes],
            per_module_fj: vec![vec![Vec::new(); self.nl.modules().len()]; lanes],
        }
    }

    /// The design-specification "rated" peak power: every gate makes its
    /// maximum-energy transition every cycle, milliwatts.
    ///
    /// This is the data-sheet bound of the paper's Chapter 1/2 (the most
    /// conservative rating).
    pub fn rated_peak_mw(&self) -> f64 {
        let fj: f64 = self.energies.iter().map(|(_, _, m)| m).sum();
        fj * self.clock_hz * 1e-12 + self.leakage_mw + self.clock_mw
    }

    /// Per-gate toggle counts across a frame sequence (for activity plots
    /// like the paper's Fig 5/12).
    pub fn toggle_counts(&self, frames: &[Frame]) -> Vec<u64> {
        let mut counts = vec![0u64; self.nl.gate_count()];
        for c in 1..frames.len() {
            frames[c - 1].for_each_diff(&frames[c], |i| {
                if let Some(gid) = self.nl.driver_of(xbound_netlist::NetId(i as u32)) {
                    counts[gid.index()] += 1;
                }
            });
        }
        counts
    }
}

/// Streaming batched power analysis: one settled [`BatchFrame`] pushed
/// per cycle, per-lane [`PowerTrace`]s out — without ever materializing
/// the frame sequence (see [`PowerAnalyzer::batch_accumulator`]).
///
/// Per lane, energies accumulate in the exact order and with the exact
/// f64 operations of the scalar [`PowerAnalyzer::analyze`], so the
/// finished traces are bit-identical to per-lane scalar analysis.
///
/// Internally the accumulation is pure femtojoules ([`EnergyTrace`]
/// layout); the clock enters only in [`BatchPowerAccumulator::finish`]'s
/// conversion, which is what makes one accumulation reusable across every
/// clock of a sweep.
#[derive(Debug, Clone)]
pub struct BatchPowerAccumulator<'a> {
    analyzer: &'a PowerAnalyzer<'a>,
    lanes: usize,
    prev: Option<BatchFrame>,
    /// `[lane][cycle]`, femtojoules.
    per_cycle_fj: Vec<Vec<f64>>,
    /// `[lane][module][cycle]`, femtojoules.
    per_module_fj: Vec<Vec<Vec<f64>>>,
}

impl BatchPowerAccumulator<'_> {
    /// Number of cycles pushed so far.
    pub fn cycles(&self) -> usize {
        self.per_cycle_fj.first().map(|v| v.len()).unwrap_or(0)
    }

    /// Opens a cycle row: a zero femtojoule slot per lane and per module.
    /// Returns the cycle index the transition kernel accumulates into.
    fn begin_cycle(&mut self) -> usize {
        let c = self.cycles();
        for pc in &mut self.per_cycle_fj {
            pc.push(0.0);
        }
        for pm in &mut self.per_module_fj {
            for m in pm.iter_mut() {
                m.push(0.0);
            }
        }
        c
    }

    /// The shared transition kernel: classifies one net's per-lane
    /// transition (rise / fall / X-endpoint) and accumulates the cell
    /// energy into every changed lane.
    ///
    /// A changed lane lands in exactly one class mask, so each lane
    /// accumulates at most one energy per net, in ascending net order —
    /// the exact f64 order of the historical scalar analyzer, which is
    /// why 1-lane accumulation reproduces it bit for bit. `X` endpoints
    /// are charged the maximum transition energy (conservative; only
    /// reachable when callers analyze raw symbolic traces).
    #[inline]
    fn accumulate_net(&mut self, c: usize, i: usize, p: LaneVal, q: LaneVal) {
        let changed = (p.val ^ q.val) | (p.unk ^ q.unk);
        if changed == 0 {
            return;
        }
        let a = self.analyzer;
        let Some(gid) = a.nl.driver_of(xbound_netlist::NetId(i as u32)) else {
            return; // primary input toggles cost nothing themselves
        };
        let (rise_e, fall_e, max_e) = a.energies[gid.index()];
        let module = a.nl.gate(gid).module().index();
        let known = !p.unk & !q.unk;
        let rise = changed & known & !p.val & q.val;
        let fall = changed & known & p.val & !q.val;
        let xchg = changed & (p.unk | q.unk);
        for (mask, e) in [(rise, rise_e), (fall, fall_e), (xchg, max_e)] {
            let mut m = mask;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                self.per_cycle_fj[l][c] += e;
                self.per_module_fj[l][module][c] += e;
                m &= m - 1;
            }
        }
    }

    /// Accumulates one settled cycle frame (transitions are counted
    /// against the previously pushed frame; the first cycle is floor
    /// power only, like the scalar analyzer).
    ///
    /// # Panics
    ///
    /// Panics if the frame's lane count disagrees with the accumulator.
    pub fn push(&mut self, frame: &BatchFrame) {
        assert_eq!(frame.lanes(), self.lanes, "frame lane count mismatch");
        let c = self.begin_cycle();
        if let Some(prev) = self.prev.take() {
            assert_eq!(prev.len(), frame.len(), "frame length mismatch");
            for i in 0..frame.len() {
                self.accumulate_net(c, i, prev.get(i), frame.get(i));
            }
            let mut prev = prev;
            prev.clone_from(frame);
            self.prev = Some(prev);
        } else {
            self.prev = Some(frame.clone());
        }
    }

    /// [`BatchPowerAccumulator::push`] with a caller-provided list of
    /// candidate changed nets — **ascending, duplicate-free, and a
    /// superset of every net whose value differs from the previous
    /// frame** (e.g. the engine's sorted change log). Only those nets are
    /// visited, so a settled cycle costs O(changed) instead of O(design);
    /// because the list is ascending, the f64 accumulation order is
    /// exactly the full scan's and the traces stay bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if the frame's lane count disagrees with the accumulator.
    pub fn push_changed(&mut self, frame: &BatchFrame, changed: &[u32]) {
        assert_eq!(frame.lanes(), self.lanes, "frame lane count mismatch");
        let c = self.begin_cycle();
        if let Some(prev) = self.prev.take() {
            assert_eq!(prev.len(), frame.len(), "frame length mismatch");
            for &i in changed {
                let i = i as usize;
                self.accumulate_net(c, i, prev.get(i), frame.get(i));
            }
            let mut prev = prev;
            for &i in changed {
                let i = i as usize;
                prev.set(i, frame.get(i));
            }
            self.prev = Some(prev);
        } else {
            self.prev = Some(frame.clone());
        }
    }

    /// One cycle of 1-lane accumulation driven by a *scalar* frame pair:
    /// only the word-wise diff of `(prev, cur)` reaches the shared
    /// transition kernel, so the scalar [`PowerAnalyzer::analyze`] wrapper
    /// keeps the packed-frame diffing speed while sharing every
    /// accumulation op with the batched path. Does not touch the stored
    /// batched `prev` frame.
    ///
    /// # Panics
    ///
    /// Panics unless the accumulator has exactly one lane.
    fn push_scalar_pair(&mut self, prev: Option<&Frame>, cur: &Frame) {
        assert_eq!(self.lanes, 1, "scalar accumulation is 1-lane");
        let c = self.begin_cycle();
        if let Some(prev) = prev {
            prev.for_each_diff(cur, |i| {
                self.accumulate_net(
                    c,
                    i,
                    LaneVal::splat(prev.get(i), 1),
                    LaneVal::splat(cur.get(i), 1),
                );
            });
        }
    }

    /// Finishes into one [`PowerTrace`] per lane. `lane_cycles`
    /// optionally truncates each lane's trace to its first
    /// `lane_cycles[l]` cycles (see [`PowerAnalyzer::analyze_batch`]).
    ///
    /// Delegates to [`BatchPowerAccumulator::finish_energy`] +
    /// [`EnergyTrace::to_power_trace`], so the milliwatt trace and an
    /// energy trace converted later at the same clock cannot diverge.
    ///
    /// # Panics
    ///
    /// Panics if `lane_cycles` has the wrong arity or exceeds the number
    /// of pushed cycles.
    pub fn finish(self, lane_cycles: Option<&[usize]>) -> Vec<PowerTrace> {
        let analyzer = self.analyzer;
        self.finish_energy(lane_cycles)
            .into_iter()
            .map(|e| e.to_power_trace(analyzer))
            .collect()
    }

    /// Finishes into one clock-independent [`EnergyTrace`] per lane (the
    /// femtojoule stage of [`BatchPowerAccumulator::finish`]); convert
    /// with [`EnergyTrace::to_power_trace`] once per clock of interest.
    ///
    /// # Panics
    ///
    /// Panics if `lane_cycles` has the wrong arity or exceeds the number
    /// of pushed cycles.
    pub fn finish_energy(self, lane_cycles: Option<&[usize]>) -> Vec<EnergyTrace> {
        let pushed = self.cycles();
        let full = vec![pushed; self.lanes];
        let lane_cycles = lane_cycles.unwrap_or(&full);
        assert_eq!(lane_cycles.len(), self.lanes, "one cycle count per lane");
        for &n in lane_cycles {
            assert!(n <= pushed, "lane cycle count exceeds pushed cycles");
        }
        self.per_cycle_fj
            .into_iter()
            .zip(self.per_module_fj)
            .zip(lane_cycles)
            .map(|((mut pc, mut pm), &n)| {
                pc.truncate(n);
                for m in pm.iter_mut() {
                    m.truncate(n);
                }
                EnergyTrace {
                    per_cycle_fj: pc,
                    per_module_fj: pm,
                }
            })
            .collect()
    }
}

/// Expected power from per-gate toggle rates (toggles per cycle),
/// milliwatts. Used by probabilistic (design-tool) analyses.
pub fn power_from_rates(nl: &Netlist, lib: &CellLibrary, clock_hz: f64, rates: &[f64]) -> f64 {
    assert_eq!(rates.len(), nl.gate_count(), "one rate per gate");
    let mut fj = 0.0;
    for (g, &rate) in nl.gates().iter().zip(rates) {
        let p = lib.power(g.kind());
        // A toggle is rise or fall with equal likelihood.
        fj += rate * 0.5 * (p.energy_rise_fj + p.energy_fall_fj);
    }
    let leak_mw: f64 = nl
        .gates()
        .iter()
        .map(|g| lib.power(g.kind()).leakage_nw)
        .sum::<f64>()
        * 1e-6;
    let clock_mw: f64 = nl
        .gates()
        .iter()
        .map(|g| lib.power(g.kind()).clock_pin_fj)
        .sum::<f64>()
        * CLOCK_TREE_FACTOR
        * clock_hz
        * 1e-12;
    fj * clock_hz * 1e-12 + leak_mw + clock_mw
}

/// Returns `true` if kind `k` never toggles (tie cells).
pub fn is_static_cell(k: CellKind) -> bool {
    matches!(k, CellKind::Tie0 | CellKind::Tie1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbound_logic::Lv;
    use xbound_netlist::rtl::Rtl;
    use xbound_sim::Simulator;

    fn counter_frames(n: usize) -> (Netlist, Vec<Frame>) {
        let mut r = Rtl::new("cnt");
        r.set_module("datapath");
        let (h, q) = r.reg("c", 8);
        let one = r.one();
        let (nx, _) = r.inc(&q, one);
        r.reg_next(h, &nx);
        r.output("q", &q);
        let nl = r.finish().unwrap();
        let mut sim = Simulator::new(&nl);
        sim.reset(1);
        let mut frames = Vec::new();
        for _ in 0..n {
            frames.push(sim.eval().unwrap().clone());
            sim.commit();
        }
        (nl, frames)
    }

    #[test]
    fn nonzero_dynamic_power_for_counting() {
        let (nl, frames) = counter_frames(64);
        let lib = CellLibrary::ulp65();
        let a = PowerAnalyzer::new(&nl, &lib, 100.0e6);
        let t = a.analyze(&frames);
        assert_eq!(t.cycles(), 64);
        assert!(t.peak_mw() > t.leakage_mw());
        assert!(t.avg_mw() > t.leakage_mw());
        assert!(t.peak_mw() <= a.rated_peak_mw(), "rated power is a bound");
        assert!(t.total_energy_j() > 0.0);
    }

    #[test]
    fn first_cycle_is_floor_only() {
        let (nl, frames) = counter_frames(8);
        let lib = CellLibrary::ulp65();
        let a = PowerAnalyzer::new(&nl, &lib, 100.0e6);
        let t = a.analyze(&frames);
        assert!((t.per_cycle_mw()[0] - a.floor_mw()).abs() < 1e-12);
        assert!(a.clock_mw() > 0.0, "sequential design has clock power");
    }

    #[test]
    fn lsb_toggles_most() {
        let (nl, frames) = counter_frames(64);
        let lib = CellLibrary::ulp65();
        let a = PowerAnalyzer::new(&nl, &lib, 100.0e6);
        let counts = a.toggle_counts(&frames);
        // The LSB flop toggles every cycle; find its gate.
        let lsb_net = nl.find_net("datapath/c_q[0]").unwrap();
        let msb_net = nl.find_net("datapath/c_q[7]").unwrap();
        let lsb_gate = nl.driver_of(lsb_net).unwrap();
        let msb_gate = nl.driver_of(msb_net).unwrap();
        assert!(counts[lsb_gate.index()] > 10 * counts[msb_gate.index()].max(1));
    }

    #[test]
    fn per_module_sums_to_total() {
        let (nl, frames) = counter_frames(32);
        let lib = CellLibrary::ulp65();
        let a = PowerAnalyzer::new(&nl, &lib, 100.0e6);
        let t = a.analyze(&frames);
        for c in 0..t.cycles() {
            let module_sum: f64 = t.per_module_mw().iter().map(|m| m[c]).sum();
            let dynamic = t.per_cycle_mw()[c] - a.floor_mw();
            assert!(
                (module_sum - dynamic).abs() < 1e-9,
                "cycle {c}: {module_sum} vs {dynamic}"
            );
        }
    }

    #[test]
    fn higher_clock_higher_power_same_energy() {
        let (nl, frames) = counter_frames(32);
        let lib = CellLibrary::ulp65();
        let slow_a = PowerAnalyzer::new(&nl, &lib, 8.0e6);
        let fast_a = PowerAnalyzer::new(&nl, &lib, 100.0e6);
        let slow = slow_a.analyze(&frames);
        let fast = fast_a.analyze(&frames);
        assert!(fast.peak_mw() > slow.peak_mw());
        // Switching + clock energy is frequency-independent.
        let se = slow.total_energy_j() - slow_a.leakage_mw() * 1e-3 / 8.0e6 * 32.0;
        let fe = fast.total_energy_j() - fast_a.leakage_mw() * 1e-3 / 100.0e6 * 32.0;
        assert!((se - fe).abs() / se < 1e-9);
    }

    #[test]
    fn x_transitions_charged_max_energy() {
        use xbound_logic::Lv;
        let mut r = Rtl::new("t");
        let a_in = r.input_bit("a");
        let y = r.not(a_in);
        r.output_bit("y", y);
        let nl = r.finish().unwrap();
        let lib = CellLibrary::ulp65();
        let an = PowerAnalyzer::new(&nl, &lib, 1.0e6);
        let mut f0 = Frame::new(nl.net_count());
        let mut f1 = Frame::new(nl.net_count());
        f0.set(y.index(), Lv::Zero);
        f1.set(y.index(), Lv::X);
        let t = an.analyze(&[f0, f1]);
        let dyn_mw = t.per_cycle_mw()[1] - an.floor_mw();
        let exp = lib.max_transition_energy_fj(CellKind::Inv) * 1.0e6 * 1e-12;
        assert!((dyn_mw - exp).abs() < 1e-12);
    }

    #[test]
    fn module_breakdown_sorted() {
        let (nl, frames) = counter_frames(16);
        let lib = CellLibrary::ulp65();
        let t = PowerAnalyzer::new(&nl, &lib, 100.0e6).analyze(&frames);
        let b = t.module_breakdown_at(5);
        for w in b.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn analyze_batch_is_bit_identical_to_scalar_per_lane() {
        use xbound_logic::BatchFrame;
        // Two different stimuli on the same design, packed into two lanes.
        let mut r = Rtl::new("cnt");
        r.set_module("datapath");
        let en = r.input_bit("en");
        let (h, q) = r.reg("c", 8);
        let one = r.one();
        let (nx, _) = r.inc(&q, one);
        let gated: Vec<_> = q.iter().zip(&nx).map(|(&q, &n)| r.mux(en, q, n)).collect();
        r.reg_next(h, &gated);
        r.output("q", &q);
        let nl = r.finish().unwrap();
        let en_net = nl.find_net("en").unwrap();
        let mut lane_frames: Vec<Vec<Frame>> = Vec::new();
        for drive in [Lv::One, Lv::X] {
            let mut sim = Simulator::new(&nl);
            sim.drive_input(en_net, drive);
            sim.reset(1);
            let mut frames = Vec::new();
            for _ in 0..40 {
                frames.push(sim.eval().unwrap().clone());
                sim.commit();
            }
            lane_frames.push(frames);
        }
        let mut batch = Vec::new();
        for c in 0..40 {
            let mut bf = BatchFrame::new(nl.net_count(), 2);
            for (l, frames) in lane_frames.iter().enumerate() {
                for i in 0..nl.net_count() {
                    bf.set_lane(i, l, frames[c].get(i));
                }
            }
            batch.push(bf);
        }
        let lib = CellLibrary::ulp65();
        let a = PowerAnalyzer::new(&nl, &lib, 100.0e6);
        // Full length, and with lane 1 truncated (early halt shape).
        let cuts = [40usize, 23];
        let traces = a.analyze_batch(&batch, Some(&cuts));
        for (l, t) in traces.iter().enumerate() {
            let scalar = a.analyze(&lane_frames[l][..cuts[l]]);
            assert_eq!(t, &scalar, "lane {l} trace differs from scalar");
        }
        let full = a.analyze_batch(&batch, None);
        assert_eq!(full[0], a.analyze(&lane_frames[0]));
    }

    #[test]
    fn power_from_rates_scales_linearly() {
        let (nl, _) = counter_frames(2);
        let lib = CellLibrary::ulp65();
        let low = power_from_rates(&nl, &lib, 100.0e6, &vec![0.1; nl.gate_count()]);
        let high = power_from_rates(&nl, &lib, 100.0e6, &vec![0.2; nl.gate_count()]);
        let floor = PowerAnalyzer::new(&nl, &lib, 100.0e6).floor_mw();
        assert!((2.0 * (low - floor) - (high - floor)).abs() < 1e-12);
    }
}
