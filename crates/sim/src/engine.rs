//! The lane-generic event-driven engine core.
//!
//! There is exactly **one** simulation engine in `xbound`: [`Engine`],
//! generic over a [`Lanes`] marker. All machinery — the event-driven
//! fanout/cone dirty propagation over level buckets, the levelized oracle,
//! the external-bus settle loop, per-lane memories, forces, flip-flop
//! commit rules, and machine-state snapshot/restore — is written once over
//! word-wise [`LaneVal`] kernels and instantiated twice:
//!
//! * [`crate::Simulator`]` = Engine<Scalar>` — the 1-lane instantiation.
//!   Its public API speaks scalar [`Lv`] values and packed [`Frame`]s,
//!   exactly like the historical scalar simulator, but every cycle is
//!   settled by the same generic core (a 1-bit lane mask in a `u64` plane
//!   pair).
//! * [`crate::BatchSimulator`]` = Engine<Wide>` — up to
//!   [`xbound_logic::MAX_LANES`] independent runs per gate pass. Lane `l`
//!   of every frame is bit-identical to a 1-lane run under the same
//!   stimulus (asserted by `crates/sim/tests/batch_differential.rs`).
//!
//! Lanes never interact: every kernel is lane-wise, each lane owns its
//! external-bus memories and drives, and forces carry a lane mask
//! ([`Engine::force_lane`]) so the symbolic explorer can constrain a fork
//! net in one lane while sibling lanes keep simulating their own branches.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::marker::PhantomData;
use xbound_logic::{BatchFrame, Frame, LaneVal, Lv, XWord, MAX_LANES};
use xbound_netlist::compile::CompileStats;
use xbound_netlist::{CellKind, GateId, NetId, Netlist};

use crate::compiled::CompiledExec;
use crate::{
    read_regions, read_regions_with, write_regions, write_regions_with, BusSpec, EvalMode,
    MachineState, MemRead, MemRegion, MemWrite, SimError,
};

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::Scalar {}
    impl Sealed for super::Wide {}
}

/// Marker trait selecting an [`Engine`] instantiation (sealed: the only
/// implementors are [`Scalar`] and [`Wide`]).
pub trait Lanes: sealed::Sealed + Copy + Send + Sync + fmt::Debug + 'static {
    /// Upper bound on the lane count of this instantiation.
    const MAX: usize;
}

/// The 1-lane instantiation marker: [`crate::Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scalar;

/// The wide instantiation marker (up to [`MAX_LANES`] lanes):
/// [`crate::BatchSimulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wide;

impl Lanes for Scalar {
    const MAX: usize = 1;
}

impl Lanes for Wide {
    const MAX: usize = MAX_LANES;
}

/// A lane-masked force: lanes in `mask` are overridden with the matching
/// lanes of `val`; lanes outside keep their natural value. `mask == 0`
/// means unforced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct LaneForce {
    mask: u64,
    val: LaneVal,
}

impl LaneForce {
    #[inline]
    pub(crate) fn apply(self, natural: LaneVal) -> LaneVal {
        if self.mask == 0 {
            return natural;
        }
        LaneVal::from_planes(
            (natural.val & !self.mask) | (self.val.val & self.mask),
            (natural.unk & !self.mask) | (self.val.unk & self.mask),
        )
    }

    #[inline]
    fn is_set(self) -> bool {
        self.mask != 0
    }
}

/// Snapshot of all architectural state of every lane of an
/// [`Engine<Wide>`] (flip-flops + per-lane memories).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchMachineState {
    lanes: usize,
    ffs: Vec<LaneVal>,
    /// `[lane][region][word]`.
    mems: Vec<Vec<Vec<XWord>>>,
    cycle: u64,
}

impl BatchMachineState {
    /// Simulation cycle at which the snapshot was taken.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of lanes in the snapshot.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Extracts one lane as a scalar [`MachineState`] — shape-compatible
    /// with [`Engine::lane_machine_state`] for differential checks.
    ///
    /// # Panics
    ///
    /// Panics if `l >= lanes()`.
    pub fn lane_state(&self, l: usize) -> MachineState {
        assert!(l < self.lanes, "lane {l} out of range {}", self.lanes);
        MachineState {
            ffs: self.ffs.iter().map(|v| v.get(l)).collect(),
            // Empty when no bus/memories are attached.
            mems: self.mems.get(l).cloned().unwrap_or_default(),
            cycle: self.cycle,
        }
    }
}

/// The lane-generic event-driven cycle simulator over a finalized netlist.
///
/// See the [module documentation](self) for the design; use the
/// [`crate::Simulator`] / [`crate::BatchSimulator`] aliases.
#[derive(Debug, Clone)]
pub struct Engine<'n, L: Lanes> {
    nl: &'n Netlist,
    lanes: usize,
    frame: BatchFrame,
    forces: Vec<LaneForce>,
    drives: HashMap<NetId, LaneVal>,
    bus: Option<BusSpec>,
    /// Per-lane region sets: `mems[lane][region]`.
    mems: Vec<Vec<MemRegion>>,
    cycle: u64,
    evaled: bool,
    rstn_net: Option<NetId>,
    reset_remaining: u32,
    mode: EvalMode,
    // Event-driven engine state: per-gate dirty flags and a bucket queue
    // indexed by combinational level. `full_dirty` forces one complete
    // evaluation (power-on, or after an engine switch).
    dirty: Vec<bool>,
    buckets: Vec<Vec<GateId>>,
    is_rdata: Vec<bool>,
    full_dirty: bool,
    // Compiled-backend state: the program + slot array, built lazily at the
    // first compiled settle and rebuilt when a new force cut appears.
    compiled: Option<CompiledExec>,
    /// Sticky set of combinationally driven nets that have ever been
    /// forced — the compiled program's cut set (cut slots are never
    /// structurally shared; see `xbound_netlist::compile`). Releases keep
    /// the cut, so repeated force/release of the same net (the explorer's
    /// `branch_taken`) recompiles at most once.
    force_cuts: BTreeSet<NetId>,
    /// Lifetime count of gate evaluations: dirty-queue gates processed
    /// (event-driven), full topological sweeps (levelized), or compiled
    /// ops executed — the denominator of the ns/gate-pass throughput
    /// numbers in `BENCH_sim.json`.
    gate_evals: u64,
    /// Lane-0 view of the settled frame, refreshed by
    /// [`Engine::<Scalar>::eval`] (unused by the wide instantiation).
    scalar_frame: Frame,
    /// Net-level change log (see [`Engine::set_change_logging`]).
    change_log: Vec<u32>,
    log_changes: bool,
    /// Memory access logs (see [`Engine::set_mem_access_logging`]).
    mem_reads: Vec<MemRead>,
    mem_writes: Vec<MemWrite>,
    log_mem: bool,
    _mode: PhantomData<L>,
}

impl<'n, L: Lanes> Engine<'n, L> {
    fn new_inner(nl: &'n Netlist, lanes: usize) -> Engine<'n, L> {
        assert!(nl.is_finalized(), "netlist must be finalized");
        assert!(
            (1..=L::MAX).contains(&lanes),
            "lane count {lanes} outside 1..={}",
            L::MAX
        );
        let rstn_net = nl
            .inputs()
            .iter()
            .copied()
            .find(|&n| nl.net_name(n) == "rstn");
        Engine {
            nl,
            lanes,
            frame: BatchFrame::new(nl.net_count(), lanes),
            forces: vec![LaneForce::default(); nl.net_count()],
            drives: HashMap::new(),
            bus: None,
            mems: vec![Vec::new(); lanes],
            cycle: 0,
            evaled: false,
            rstn_net,
            reset_remaining: 0,
            mode: EvalMode::from_env(),
            dirty: vec![false; nl.gate_count()],
            buckets: vec![Vec::new(); nl.comb_level_count()],
            is_rdata: vec![false; nl.net_count()],
            full_dirty: true,
            compiled: None,
            force_cuts: BTreeSet::new(),
            gate_evals: 0,
            scalar_frame: Frame::new(nl.net_count()),
            change_log: Vec::new(),
            log_changes: false,
            mem_reads: Vec::new(),
            mem_writes: Vec::new(),
            log_mem: false,
            _mode: PhantomData,
        }
    }

    /// Enables (or disables) the net-level change log: every frame write
    /// that actually changes a net's value appends the net index to an
    /// internal log, which callers drain with [`Engine::swap_change_log`].
    ///
    /// Consumers that maintain per-lane views of the frame (the batched
    /// symbolic explorer, the batched concrete profiler) use this to pay
    /// O(changed nets) per cycle instead of re-scanning the whole frame.
    /// A net may appear more than once per cycle (e.g. bus settle
    /// iterations); reading its final frame value is idempotent.
    pub fn set_change_logging(&mut self, enabled: bool) {
        self.log_changes = enabled;
        self.change_log.clear();
    }

    /// Swaps the accumulated change log with `buf` (which is cleared of
    /// its previous contents by the caller, reused as the next log).
    pub fn swap_change_log(&mut self, buf: &mut Vec<u32>) {
        std::mem::swap(&mut self.change_log, buf);
        self.change_log.clear();
    }

    #[inline]
    fn log_change(&mut self, i: usize) {
        if self.log_changes {
            self.change_log.push(i as u32);
        }
    }

    /// Enables (or disables) the memory-access log: every memory word a
    /// lane *consults* while settling (bus reads; including the prior
    /// value of joined writes, whose result depends on it) appends a
    /// [`MemRead`], and every word stored at a commit appends a
    /// [`MemWrite`]. Callers drain them with [`Engine::swap_mem_reads`] /
    /// [`Engine::swap_mem_writes`].
    ///
    /// The symbolic explorer's subtree memo uses these to compute a
    /// path's read footprint — the exact set of `(region, offset)` words
    /// whose start-state values its outcome depends on. Reads whose
    /// result is independent of memory content (out-of-range addresses,
    /// or addresses with more than 4 X bits, which return all-X without
    /// consulting memory) emit nothing. A word may be reported more than
    /// once (bus settle iterations re-read); memories never change
    /// within a settle, so duplicates carry equal values.
    pub fn set_mem_access_logging(&mut self, enabled: bool) {
        self.log_mem = enabled;
        self.mem_reads.clear();
        self.mem_writes.clear();
    }

    /// Swaps the accumulated [`MemRead`] log with `buf` (cleared of its
    /// previous contents by the caller, reused as the next log).
    pub fn swap_mem_reads(&mut self, buf: &mut Vec<MemRead>) {
        std::mem::swap(&mut self.mem_reads, buf);
        self.mem_reads.clear();
    }

    /// Swaps the accumulated [`MemWrite`] log with `buf` (cleared of its
    /// previous contents by the caller, reused as the next log).
    pub fn swap_mem_writes(&mut self, buf: &mut Vec<MemWrite>) {
        std::mem::swap(&mut self.mem_writes, buf);
        self.mem_writes.clear();
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The netlist under simulation.
    pub fn netlist(&self) -> &'n Netlist {
        self.nl
    }

    /// Number of committed clock edges so far (shared by all lanes).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The evaluation engine in use.
    pub fn eval_mode(&self) -> EvalMode {
        self.mode
    }

    /// Switches the evaluation engine.
    ///
    /// Switching to [`EvalMode::EventDriven`] schedules one full
    /// re-evaluation so the incremental invariant (every clean gate's frame
    /// value equals its function of the current frame) is re-established.
    pub fn set_eval_mode(&mut self, mode: EvalMode) {
        if mode == self.mode {
            return;
        }
        self.mode = mode;
        self.full_dirty = true;
        self.evaled = false;
    }

    /// Attaches the external bus; every lane receives its own copy of the
    /// `mems` region set (diverge them through [`Engine::mem_mut_lane`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadBusSpec`] when bus widths are not 16 bits or
    /// `rdata` nets are not primary inputs.
    pub fn attach_bus(&mut self, bus: BusSpec, mems: Vec<MemRegion>) -> Result<(), SimError> {
        if bus.addr.len() != 16 || bus.rdata.len() != 16 || bus.wdata.len() != 16 {
            return Err(SimError::BadBusSpec {
                message: format!(
                    "expected 16-bit addr/rdata/wdata, got {}/{}/{}",
                    bus.addr.len(),
                    bus.rdata.len(),
                    bus.wdata.len()
                ),
            });
        }
        for &n in &bus.rdata {
            if !self.nl.inputs().contains(&n) {
                return Err(SimError::BadBusSpec {
                    message: format!("rdata net `{}` is not a primary input", self.nl.net_name(n)),
                });
            }
        }
        self.is_rdata = vec![false; self.nl.net_count()];
        for &n in &bus.rdata {
            self.is_rdata[n.index()] = true;
        }
        self.bus = Some(bus);
        self.mems = vec![mems; self.lanes];
        // The compiled program's read-data cone depends on the bus's rdata
        // set; rebuild lazily at the next compiled settle.
        self.compiled = None;
        self.evaled = false;
        Ok(())
    }

    /// One lane of a net in the current frame.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes()`.
    pub fn value_lane(&self, net: NetId, lane: usize) -> Lv {
        self.frame.get_lane(net.index(), lane)
    }

    /// Reads a bus (LSB-first net list) of one lane as an [`XWord`].
    ///
    /// # Panics
    ///
    /// Panics if `nets` is longer than 16 or `lane >= lanes()`.
    pub fn value_word_lane(&self, nets: &[NetId], lane: usize) -> XWord {
        assert!(nets.len() <= 16, "bus wider than 16 bits");
        let mut w = XWord::ZERO;
        for (i, &n) in nets.iter().enumerate() {
            w.set_bit(i, self.frame.get_lane(n.index(), lane));
        }
        w
    }

    /// The current batched value frame (all nets × all lanes).
    pub fn batch_frame(&self) -> &BatchFrame {
        &self.frame
    }

    /// Extracts one lane of the settled frame as a scalar [`Frame`].
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes()`.
    pub fn lane_frame(&self, lane: usize) -> Frame {
        self.frame.lane_frame(lane)
    }

    /// Drives a primary input with the same persistent value in every lane.
    pub fn drive_input(&mut self, net: NetId, v: Lv) {
        let mask = self.frame.lane_mask();
        self.drives.insert(net, LaneVal::splat(v, mask));
        self.evaled = false;
    }

    /// Drives a primary input in one lane only (other lanes keep their
    /// current drive, default `0`).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes()`.
    pub fn drive_input_lane(&mut self, net: NetId, lane: usize, v: Lv) {
        assert!(lane < self.lanes, "lane {lane} out of range {}", self.lanes);
        self.drives.entry(net).or_insert(LaneVal::ZERO).set(lane, v);
        self.evaled = false;
    }

    /// Forces (or releases, with `None`) a net to the same value in every
    /// lane, overriding its driver. Forces persist across cycles until
    /// released.
    pub fn force(&mut self, net: NetId, v: Option<Lv>) {
        let mask = self.frame.lane_mask();
        self.forces[net.index()] = match v {
            Some(f) => LaneForce {
                mask,
                val: LaneVal::splat(f, mask),
            },
            None => LaneForce::default(),
        };
        self.force_mark_dirty(net);
    }

    /// Forces (or releases, with `None`) a net in **one lane only**; other
    /// lanes keep their natural value (or their own lane force).
    ///
    /// The symbolic explorer uses this to constrain the `branch_taken` net
    /// of the branch it is re-simulating in lane `lane` while sibling
    /// branches in other lanes keep running unforced.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes()`.
    pub fn force_lane(&mut self, net: NetId, lane: usize, v: Option<Lv>) {
        assert!(lane < self.lanes, "lane {lane} out of range {}", self.lanes);
        let bit = 1u64 << lane;
        let f = &mut self.forces[net.index()];
        match v {
            Some(value) => {
                f.mask |= bit;
                f.val.set(lane, value);
            }
            None => {
                f.mask &= !bit;
                f.val.set(lane, Lv::Zero);
            }
        }
        self.force_mark_dirty(net);
    }

    /// After a force change, the driving gate must re-evaluate (apply the
    /// force, or recompute the natural value on release). Forced inputs
    /// and flip-flop outputs are re-applied by every eval anyway.
    fn force_mark_dirty(&mut self, net: NetId) {
        let comb_driven = self
            .nl
            .driver_of(net)
            .is_some_and(|g| !self.nl.gate(g).kind().is_sequential());
        if self.mode == EvalMode::EventDriven && comb_driven {
            if let Some(g) = self.nl.driver_of(net) {
                self.mark_gate_dirty(g);
            }
        }
        // A force on a combinationally driven net breaks the compiled
        // program's structural sharing for that net: it becomes a *cut*
        // (unshared slot + per-level force fixup), which requires a
        // recompile. The cut set is sticky across releases and tracked in
        // every mode, so a program built after a mode switch sees every
        // net that was ever forced.
        if comb_driven && self.force_cuts.insert(net) {
            self.compiled = None;
        }
        self.evaled = false;
    }

    /// Schedules `cycles` of reset for all lanes: `rstn` is held 0 for
    /// that many upcoming cycles, then released to 1.
    pub fn reset(&mut self, cycles: u32) {
        self.reset_remaining = cycles;
        self.evaled = false;
    }

    /// Memory regions of one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes()`.
    pub fn mems_lane(&self, lane: usize) -> &[MemRegion] {
        &self.mems[lane]
    }

    /// Looks a region of one lane up by name.
    pub fn mem_lane(&self, name: &str, lane: usize) -> Option<&MemRegion> {
        self.mems[lane].iter().find(|m| m.name() == name)
    }

    /// Mutable access to a region of one lane by name.
    pub fn mem_mut_lane(&mut self, name: &str, lane: usize) -> Option<&mut MemRegion> {
        self.evaled = false;
        self.mems[lane].iter_mut().find(|m| m.name() == name)
    }

    /// Evaluates one combinational cell over all lanes at once.
    fn eval_cell(&self, kind: CellKind, ins: &[NetId]) -> LaneVal {
        let v = |i: usize| self.frame.get(ins[i].index());
        let mask = self.frame.lane_mask();
        match kind {
            CellKind::Tie0 => LaneVal::ZERO,
            CellKind::Tie1 => LaneVal::splat(Lv::One, mask),
            CellKind::Buf => v(0),
            CellKind::Inv => v(0).not(mask),
            CellKind::And2 => v(0).and(v(1)),
            CellKind::Or2 => v(0).or(v(1)),
            CellKind::Nand2 => v(0).nand(v(1), mask),
            CellKind::Nor2 => v(0).nor(v(1), mask),
            CellKind::Xor2 => v(0).xor(v(1)),
            CellKind::Xnor2 => v(0).xnor(v(1), mask),
            CellKind::Mux2 => LaneVal::mux(v(2), v(0), v(1)),
            CellKind::Aoi21 => LaneVal::aoi21(v(0), v(1), v(2), mask),
            CellKind::Oai21 => LaneVal::oai21(v(0), v(1), v(2), mask),
            CellKind::Dff | CellKind::Dffe | CellKind::Dffr | CellKind::Dffre => {
                unreachable!("sequential gate in combinational evaluation")
            }
        }
    }

    // --- event-driven core ----------------------------------------------

    fn mark_gate_dirty(&mut self, g: GateId) {
        if !self.dirty[g.index()] {
            self.dirty[g.index()] = true;
            self.buckets[self.nl.comb_level(g) as usize].push(g);
        }
    }

    /// Keeps the lane-0 scalar frame view coherent with a write to the
    /// batched frame. Compiled out of the wide instantiation; the 1-lane
    /// instantiation pays O(1) per changed net instead of a full
    /// transpose per settled cycle.
    #[inline]
    fn mirror_scalar(&mut self, i: usize, v: LaneVal) {
        if L::MAX == 1 {
            self.scalar_frame.set(i, v.get(0));
        }
    }

    /// Writes `net` (batched + scalar mirror + change log) without dirty
    /// propagation — the levelized oracle's store.
    #[inline]
    fn store_net_levelized(&mut self, i: usize, v: LaneVal) {
        if self.frame.replace(i, v) {
            self.mirror_scalar(i, v);
            self.log_change(i);
        }
    }

    /// Writes `net` and, when any lane changed, marks its combinational
    /// readers dirty.
    fn set_net(&mut self, net: NetId, v: LaneVal) {
        if self.frame.replace(net.index(), v) {
            self.mirror_scalar(net.index(), v);
            self.log_change(net.index());
            let nl = self.nl;
            for &g in nl.fanout_comb_of(net) {
                self.mark_gate_dirty(g);
            }
        }
    }

    /// Drains the dirty set in level order. A processed gate whose output
    /// changes marks its readers dirty; readers are always at a strictly
    /// higher level, so one ascending sweep settles the whole changed cone
    /// — for every lane at once.
    fn process_dirty(&mut self) {
        let nl = self.nl;
        for lvl in 0..self.buckets.len() {
            let mut bucket = std::mem::take(&mut self.buckets[lvl]);
            self.gate_evals += bucket.len() as u64;
            for &g in &bucket {
                let gate = nl.gate(g);
                let out = gate.output();
                let v = self.forces[out.index()].apply(self.eval_cell(gate.kind(), gate.inputs()));
                self.dirty[g.index()] = false;
                if self.frame.replace(out.index(), v) {
                    self.mirror_scalar(out.index(), v);
                    self.log_change(out.index());
                    for &succ in nl.fanout_comb_of(out) {
                        self.mark_gate_dirty(succ);
                    }
                }
            }
            bucket.clear();
            // Put the buffer back to keep its capacity for the next sweep.
            self.buckets[lvl] = bucket;
        }
    }

    /// The input value of net `n` for this cycle: drive (or default 0),
    /// then the reset override, then any force.
    fn input_value(&self, n: NetId, rstn_v: Lv) -> LaneVal {
        let mask = self.frame.lane_mask();
        let mut v = self.drives.get(&n).copied().unwrap_or(LaneVal::ZERO);
        if Some(n) == self.rstn_net {
            v = LaneVal::splat(rstn_v, mask);
        }
        self.forces[n.index()].apply(v)
    }

    fn rstn_value(&self) -> Lv {
        if self.reset_remaining > 0 {
            Lv::Zero
        } else {
            Lv::One
        }
    }

    fn apply_inputs_event(&mut self) {
        let rstn_v = self.rstn_value();
        let has_bus = self.bus.is_some();
        for &n in self.nl.inputs() {
            // Bus read-data inputs are owned by the settle loop: writing
            // the default drive here would only inject a spurious 0 that
            // the memory lookup overwrites a moment later, dirtying the
            // (large) instruction-fetch cone twice per cycle.
            if has_bus && self.is_rdata[n.index()] {
                continue;
            }
            let v = self.input_value(n, rstn_v);
            self.set_net(n, v);
        }
    }

    /// Per-lane bus addresses of the current frame.
    fn lane_addrs(&self, bus: &BusSpec) -> Vec<XWord> {
        (0..self.lanes)
            .map(|l| self.value_word_lane(&bus.addr, l))
            .collect()
    }

    /// One rdata forcing pass: per-lane memory lookups merged into one
    /// batched write per rdata net (respecting forces).
    fn write_rdata(&mut self, bus: &BusSpec, addrs: &[XWord], levelized: bool) {
        let rdatas: Vec<XWord> = if self.log_mem {
            let (mems, log) = (&self.mems, &mut self.mem_reads);
            (0..self.lanes)
                .map(|l| {
                    read_regions_with(&mems[l], addrs[l], &mut |region, offset, value| {
                        log.push(MemRead {
                            lane: l as u8,
                            region,
                            offset,
                            value,
                        })
                    })
                })
                .collect()
        } else {
            (0..self.lanes)
                .map(|l| read_regions(&self.mems[l], addrs[l]))
                .collect()
        };
        for (i, &n) in bus.rdata.iter().enumerate() {
            let mut lv = LaneVal::ZERO;
            for (l, r) in rdatas.iter().enumerate() {
                lv.set(l, r.bit(i));
            }
            let v = self.forces[n.index()].apply(lv);
            if levelized {
                self.store_net_levelized(n.index(), v);
            } else {
                self.set_net(n, v);
            }
        }
    }

    fn settle_bus(&mut self, bus: &BusSpec) -> Result<(), SimError> {
        // The full-evaluation engines store read data directly (no dirty
        // propagation — the next pass re-evaluates everything anyway).
        let direct = self.mode != EvalMode::EventDriven;
        let mut last_addrs = self.lane_addrs(bus);
        for _ in 0..4 {
            self.write_rdata(bus, &last_addrs, direct);
            match self.mode {
                EvalMode::EventDriven => self.process_dirty(),
                EvalMode::Levelized => self.eval_comb_once(),
                EvalMode::Compiled => self.run_compiled_rdata_cone(),
            }
            let addrs_now = self.lane_addrs(bus);
            if addrs_now == last_addrs {
                return Ok(());
            }
            last_addrs = addrs_now;
        }
        Err(SimError::BusNotSettled)
    }

    fn eval_event(&mut self) -> Result<(), SimError> {
        if self.full_dirty {
            let nl = self.nl;
            for &g in nl.topo_order() {
                self.mark_gate_dirty(g);
            }
            self.full_dirty = false;
        }
        self.apply_inputs_event();
        for &g in self.nl.sequential_gates() {
            let out = self.nl.gate(g).output();
            let f = self.forces[out.index()];
            if f.is_set() {
                let v = f.apply(self.frame.get(out.index()));
                self.set_net(out, v);
            }
        }
        self.process_dirty();
        if let Some(bus) = self.bus.take() {
            let r = self.settle_bus(&bus);
            self.bus = Some(bus);
            r?;
        }
        Ok(())
    }

    // --- levelized oracle ------------------------------------------------

    fn apply_inputs_levelized(&mut self) {
        let rstn_v = self.rstn_value();
        for &n in self.nl.inputs() {
            let v = self.input_value(n, rstn_v);
            self.store_net_levelized(n.index(), v);
        }
    }

    fn eval_comb_once(&mut self) {
        self.gate_evals += self.nl.topo_order().len() as u64;
        for &g in self.nl.topo_order() {
            let gate = self.nl.gate(g);
            let out = gate.output();
            let v = self.forces[out.index()].apply(self.eval_cell(gate.kind(), gate.inputs()));
            self.store_net_levelized(out.index(), v);
        }
    }

    fn eval_levelized(&mut self) -> Result<(), SimError> {
        self.apply_inputs_levelized();
        // Forces on flip-flop outputs take effect immediately (commit also
        // honors them, keeping the forced value across edges).
        for &g in self.nl.sequential_gates() {
            let out = self.nl.gate(g).output();
            let f = self.forces[out.index()];
            if f.is_set() {
                let v = f.apply(self.frame.get(out.index()));
                self.store_net_levelized(out.index(), v);
            }
        }
        self.eval_comb_once();
        if let Some(bus) = self.bus.take() {
            let r = self.settle_bus(&bus);
            self.bus = Some(bus);
            r?;
        }
        Ok(())
    }

    // --- compiled backend -------------------------------------------------

    /// One full pass of the compiled program: (re)build if needed, gather
    /// leaf slots from the frame, execute the op runs, scatter every
    /// combinationally driven net back through the levelized store.
    fn run_compiled(&mut self) {
        if self.compiled.is_none() {
            let rdata: Vec<NetId> = self
                .is_rdata
                .iter()
                .enumerate()
                .filter(|&(_, &r)| r)
                .map(|(i, _)| NetId(i as u32))
                .collect();
            self.compiled = Some(CompiledExec::new(self.nl, &self.force_cuts, &rdata));
        }
        // Take the executor out so its borrows don't alias `self`.
        let mut exec = self.compiled.take().expect("just built");
        exec.gather(&self.frame);
        exec.execute(self.frame.lane_mask(), &self.forces);
        self.gate_evals += exec.op_count();
        for &(net, slot) in exec.scatter() {
            self.store_net_levelized(net.index(), exec.slot(slot));
        }
        self.compiled = Some(exec);
    }

    /// Re-settles only the read-data cone: a bus settle iteration rewrote
    /// the read-data nets, which is the only frame change since the last
    /// full compiled pass, so every slot outside the cone is still valid.
    fn run_compiled_rdata_cone(&mut self) {
        if self.compiled.is_none() {
            // Unreachable in practice (bus settling follows a full pass),
            // but a full pass is always a sound fallback.
            self.run_compiled();
            return;
        }
        let mut exec = self.compiled.take().expect("checked above");
        exec.execute_rdata_cone(&self.frame, self.frame.lane_mask(), &self.forces);
        self.gate_evals += exec.cone_op_count();
        for &(net, slot) in exec.cone_scatter() {
            self.store_net_levelized(net.index(), exec.slot(slot));
        }
        self.compiled = Some(exec);
    }

    fn eval_compiled(&mut self) -> Result<(), SimError> {
        // Identical seeding to the levelized oracle: all inputs (including
        // bus read data) restart from their drives, and forces on
        // flip-flop outputs take effect immediately. Leaf forces therefore
        // flow in through the frame gather.
        self.apply_inputs_levelized();
        for &g in self.nl.sequential_gates() {
            let out = self.nl.gate(g).output();
            let f = self.forces[out.index()];
            if f.is_set() {
                let v = f.apply(self.frame.get(out.index()));
                self.store_net_levelized(out.index(), v);
            }
        }
        self.run_compiled();
        if let Some(bus) = self.bus.take() {
            let r = self.settle_bus(&bus);
            self.bus = Some(bus);
            r?;
        }
        Ok(())
    }

    /// Compile statistics of the compiled backend's program, if one has
    /// been built (i.e. after the first settle in [`EvalMode::Compiled`]).
    pub fn compiled_stats(&self) -> Option<CompileStats> {
        self.compiled.as_ref().map(|c| c.stats())
    }

    /// Lifetime count of gate evaluations performed by this engine: gates
    /// popped off the dirty queue (event-driven), gates of full
    /// topological sweeps (levelized), or compiled ops executed — the
    /// denominator of ns/gate-pass throughput comparisons.
    pub fn gate_evals(&self) -> u64 {
        self.gate_evals
    }

    /// Settles the combinational logic of every lane for the current
    /// cycle. Idempotent until state changes. The typed
    /// `eval` wrappers ([`Engine::<Scalar>::eval`], [`Engine::<Wide>::eval`])
    /// add the instantiation-specific frame view on top.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BusNotSettled`] if any lane's address keeps
    /// changing after read-data forcing (combinational bus loop).
    pub fn settle(&mut self) -> Result<(), SimError> {
        if self.evaled {
            return Ok(());
        }
        match self.mode {
            EvalMode::EventDriven => self.eval_event()?,
            EvalMode::Levelized => self.eval_levelized()?,
            EvalMode::Compiled => self.eval_compiled()?,
        }
        self.evaled = true;
        Ok(())
    }

    // --- flip-flop commit -------------------------------------------------

    /// Computes the next value of every flip-flop (all lanes) from the
    /// settled frame.
    ///
    /// Exposed so the symbolic explorer can inspect next-state (e.g. the
    /// PC register) *before* committing the clock edge.
    ///
    /// # Panics
    ///
    /// Panics unless the current cycle settled successfully.
    pub fn ff_next_lanes(&self) -> Vec<LaneVal> {
        assert!(self.evaled, "eval() before inspecting flip-flop inputs");
        self.nl
            .sequential_gates()
            .iter()
            .map(|&g| {
                let gate = self.nl.gate(g);
                let ins = gate.inputs();
                let q = self.frame.get(gate.output().index());
                let v = |i: usize| self.frame.get(ins[i].index());
                match gate.kind() {
                    CellKind::Dff => v(0),
                    CellKind::Dffe => {
                        let d = v(0);
                        LaneVal::select(v(1), q, d, d.join(q))
                    }
                    CellKind::Dffr => {
                        let d = v(0);
                        LaneVal::select(v(1), LaneVal::ZERO, d, d.join(LaneVal::ZERO))
                    }
                    CellKind::Dffre => {
                        let d = v(0);
                        let after_en = LaneVal::select(v(1), q, d, d.join(q));
                        LaneVal::select(v(2), LaneVal::ZERO, after_en, after_en.join(LaneVal::ZERO))
                    }
                    _ => unreachable!("combinational gate in sequential list"),
                }
            })
            .collect()
    }

    fn commit_memory_writes(&mut self, active: u64) {
        let Some(bus) = self.bus.take() else {
            return;
        };
        if let Some(wen_net) = bus.wen {
            for l in 0..self.lanes {
                if (active >> l) & 1 == 0 {
                    continue; // frozen lane: no clock edge, no write
                }
                let wen = self.frame.get_lane(wen_net.index(), l);
                if wen == Lv::Zero {
                    continue; // skip the addr/wdata sweeps on write-free cycles
                }
                let addr = self.value_word_lane(&bus.addr, l);
                let wdata = self.value_word_lane(&bus.wdata, l);
                if self.log_mem {
                    let (mems, reads, writes) =
                        (&mut self.mems, &mut self.mem_reads, &mut self.mem_writes);
                    write_regions_with(
                        &mut mems[l],
                        wen,
                        addr,
                        wdata,
                        &mut |region, offset, value| {
                            reads.push(MemRead {
                                lane: l as u8,
                                region,
                                offset,
                                value,
                            })
                        },
                        &mut |region, offset| {
                            writes.push(MemWrite {
                                lane: l as u8,
                                region,
                                offset,
                            })
                        },
                    );
                } else {
                    write_regions(&mut self.mems[l], wen, addr, wdata);
                }
            }
        }
        self.bus = Some(bus);
    }

    /// [`Engine::commit_with_next_lanes`] restricted to the lanes of
    /// `active`: lanes outside the mask receive **no clock edge** — their
    /// flip-flops hold, their memories see no write, and (in the
    /// event-driven engine) they therefore contribute no dirty work to
    /// subsequent passes.
    ///
    /// The batched symbolic explorer freezes lanes whose branch already
    /// finished this way while the rest of the batch keeps stepping; a
    /// frozen lane's architectural state stays exactly where it ended.
    /// The global cycle counter still advances once per call.
    ///
    /// # Panics
    ///
    /// Panics if called before a successful eval, or if `next` does not
    /// have one value per sequential gate.
    pub fn commit_with_next_masked(&mut self, next: &[LaneVal], active: u64) {
        assert!(self.evaled, "eval() must succeed before commit()");
        assert_eq!(
            next.len(),
            self.nl.sequential_gates().len(),
            "one next-value per flip-flop"
        );
        let active = active & self.frame.lane_mask();
        self.commit_memory_writes(active);
        let event = self.mode == EvalMode::EventDriven;
        for (&g, &v) in self.nl.sequential_gates().iter().zip(next) {
            let out = self.nl.gate(g).output();
            let v = self.forces[out.index()].apply(v);
            let q = self.frame.get(out.index());
            let v = LaneVal::from_planes(
                (q.val & !active) | (v.val & active),
                (q.unk & !active) | (v.unk & active),
            );
            if event {
                self.set_net(out, v);
            } else {
                // The levelized store keeps the scalar frame view coherent
                // across the edge (the historical scalar engine committed
                // straight into it); the event path does via `set_net`.
                self.store_net_levelized(out.index(), v);
            }
        }
        if self.reset_remaining > 0 {
            self.reset_remaining -= 1;
        }
        self.cycle += 1;
        self.evaled = false;
    }

    /// Applies the clock edge to every lane with the flip-flop next-values
    /// computed by an earlier [`Engine::ff_next_lanes`] call on the same
    /// settled frame: memory writes, flip-flop updates, cycle++.
    ///
    /// Callers that already inspected the next state (the symbolic
    /// explorer checks the PC for X every cycle) pass it back in rather
    /// than paying for the full flip-flop sweep twice.
    ///
    /// # Panics
    ///
    /// Panics if called before a successful eval, or if `next` does not
    /// have one value per sequential gate.
    pub fn commit_with_next_lanes(&mut self, next: &[LaneVal]) {
        self.commit_with_next_masked(next, self.frame.lane_mask());
    }

    /// Applies the clock edge to every lane: memory writes, flip-flop
    /// updates, cycle++.
    ///
    /// # Panics
    ///
    /// Panics if called before a successful eval.
    pub fn commit(&mut self) {
        let next = self.ff_next_lanes();
        self.commit_with_next_lanes(&next);
    }

    /// `eval()` + `commit()` in one call.
    ///
    /// # Panics
    ///
    /// Panics on bus settle failure (use `eval`/`commit` to handle errors).
    pub fn step(&mut self) {
        self.settle().expect("bus settles");
        self.commit();
    }

    // --- machine state ----------------------------------------------------

    /// One lane's architectural state as a scalar [`MachineState`],
    /// stamped with an explicit cycle.
    ///
    /// The engine's [`Engine::cycle`] counter is global (one commit
    /// advances every lane), so callers running logically-independent
    /// per-lane timelines — the batched symbolic explorer — track each
    /// lane's own cycle and stamp snapshots with it.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes()`.
    pub fn lane_machine_state_at(&self, lane: usize, cycle: u64) -> MachineState {
        assert!(lane < self.lanes, "lane {lane} out of range {}", self.lanes);
        MachineState {
            ffs: self
                .nl
                .sequential_gates()
                .iter()
                .map(|&g| self.frame.get_lane(self.nl.gate(g).output().index(), lane))
                .collect(),
            mems: self
                .mems
                .get(lane) // empty when no bus/memories are attached
                .map(|regions| regions.iter().map(|m| m.data().to_vec()).collect())
                .unwrap_or_default(),
            cycle,
        }
    }

    /// One lane's architectural state as a scalar [`MachineState`],
    /// stamped with the engine's global cycle.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes()`.
    pub fn lane_machine_state(&self, lane: usize) -> MachineState {
        self.lane_machine_state_at(lane, self.cycle)
    }

    /// Restores a scalar [`MachineState`] into **one lane**: the lane's
    /// flip-flop bits and memories are overwritten; other lanes are
    /// untouched. The engine's global cycle counter is left alone (see
    /// [`Engine::lane_machine_state_at`]).
    ///
    /// Flip-flops are diffed against the current frame: only flip-flops
    /// whose value actually differs mark their fanout cones dirty, so
    /// restoring a nearby state (the common case in depth-first
    /// exploration, where siblings share most state) costs work
    /// proportional to the difference, not to the design.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes()` or the snapshot shape does not match
    /// this machine.
    pub fn set_lane_machine_state(&mut self, lane: usize, s: &MachineState) {
        assert!(lane < self.lanes, "lane {lane} out of range {}", self.lanes);
        assert_eq!(
            s.ffs.len(),
            self.nl.sequential_gates().len(),
            "machine shape mismatch"
        );
        let event = self.mode == EvalMode::EventDriven;
        for (&g, v) in self.nl.sequential_gates().iter().zip(&s.ffs) {
            let out = self.nl.gate(g).output();
            let mut lv = self.frame.get(out.index());
            lv.set(lane, *v);
            if event {
                self.set_net(out, lv);
            } else {
                self.store_net_levelized(out.index(), lv);
            }
        }
        let lane_mems = &mut self.mems[lane];
        assert_eq!(lane_mems.len(), s.mems.len(), "memory count mismatch");
        for (m, data) in lane_mems.iter_mut().zip(&s.mems) {
            m.data_mut().copy_from_slice(data);
        }
        self.evaled = false;
    }
}

// --- the 1-lane (scalar) instantiation ---------------------------------

impl<'n> Engine<'n, Scalar> {
    /// Creates a 1-lane simulator with no attached memories.
    ///
    /// Primary inputs default to `0`, except an input named `rstn`, which
    /// the simulator drives low during [`Engine::reset`] cycles and high
    /// otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the netlist is not finalized.
    pub fn new(nl: &'n Netlist) -> Engine<'n, Scalar> {
        Engine::new_inner(nl, 1)
    }

    /// Reads the value of a net in the current frame.
    ///
    /// Meaningful for combinational nets only after [`Engine::<Scalar>::eval`].
    pub fn value(&self, net: NetId) -> Lv {
        self.frame.get_lane(net.index(), 0)
    }

    /// Reads a bus (LSB-first net list) as an [`XWord`].
    ///
    /// # Panics
    ///
    /// Panics if `nets` is longer than 16.
    pub fn value_word(&self, nets: &[NetId]) -> XWord {
        self.value_word_lane(nets, 0)
    }

    /// The current value frame (all nets), refreshed by the last
    /// successful [`Engine::<Scalar>::eval`].
    pub fn frame(&self) -> &Frame {
        &self.scalar_frame
    }

    /// Settles the combinational logic for the current cycle and returns
    /// the scalar frame view.
    ///
    /// Idempotent until state changes. With an attached bus, read data is
    /// iterated to a fixpoint (address → read data → address must be
    /// stable).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BusNotSettled`] if the address keeps changing
    /// after read-data forcing (combinational bus loop).
    pub fn eval(&mut self) -> Result<&Frame, SimError> {
        self.settle()?;
        Ok(&self.scalar_frame)
    }

    /// Computes the next value of every flip-flop from the settled frame.
    ///
    /// # Panics
    ///
    /// Panics unless [`Engine::<Scalar>::eval`] succeeded for this cycle.
    pub fn ff_next_values(&self) -> Vec<Lv> {
        self.ff_next_lanes().iter().map(|v| v.get(0)).collect()
    }

    /// [`Engine::commit`] with the flip-flop next-values computed by an
    /// earlier [`Engine::<Scalar>::ff_next_values`] call on the same
    /// settled frame.
    ///
    /// # Panics
    ///
    /// Panics if called before a successful eval, or if `next` does not
    /// have one value per sequential gate.
    pub fn commit_with_next(&mut self, next: &[Lv]) {
        let next: Vec<LaneVal> = next.iter().map(|&v| LaneVal::splat(v, 1)).collect();
        self.commit_with_next_lanes(&next);
    }

    /// Memory regions.
    pub fn mems(&self) -> &[MemRegion] {
        self.mems.first().map(Vec::as_slice).unwrap_or(&[])
    }

    /// Looks a region up by name.
    pub fn mem(&self, name: &str) -> Option<&MemRegion> {
        self.mem_lane(name, 0)
    }

    /// Mutable access to a region by name.
    pub fn mem_mut(&mut self, name: &str) -> Option<&mut MemRegion> {
        self.mem_mut_lane(name, 0)
    }

    /// Snapshot of flip-flops + memories + cycle.
    pub fn machine_state(&self) -> MachineState {
        self.lane_machine_state_at(0, self.cycle)
    }

    /// Restores a snapshot taken by [`Engine::<Scalar>::machine_state`]
    /// (including its cycle counter).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot shape does not match this machine.
    pub fn set_machine_state(&mut self, s: &MachineState) {
        self.set_lane_machine_state(0, s);
        self.cycle = s.cycle;
    }
}

// --- the wide instantiation --------------------------------------------

impl<'n> Engine<'n, Wide> {
    /// Creates a batched simulator with `lanes` lanes and no attached
    /// memories. Primary inputs default to `0` in every lane, except an
    /// input named `rstn` (driven by [`Engine::reset`]).
    ///
    /// # Panics
    ///
    /// Panics if the netlist is not finalized or `lanes` is outside
    /// `1..=`[`MAX_LANES`].
    pub fn new(nl: &'n Netlist, lanes: usize) -> Engine<'n, Wide> {
        Engine::new_inner(nl, lanes)
    }

    /// All lanes of a net in the current frame.
    pub fn value(&self, net: NetId) -> LaneVal {
        self.frame.get(net.index())
    }

    /// The current batched value frame (all nets × all lanes).
    pub fn frame(&self) -> &BatchFrame {
        &self.frame
    }

    /// Settles the combinational logic of every lane for the current
    /// cycle and returns the batched frame. Idempotent until state
    /// changes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BusNotSettled`] if any lane's address keeps
    /// changing after read-data forcing (combinational bus loop).
    pub fn eval(&mut self) -> Result<&BatchFrame, SimError> {
        self.settle()?;
        Ok(&self.frame)
    }

    /// Computes the next value of every flip-flop (all lanes) from the
    /// settled frame.
    ///
    /// # Panics
    ///
    /// Panics unless [`Engine::<Wide>::eval`] succeeded for this cycle.
    pub fn ff_next_values(&self) -> Vec<LaneVal> {
        self.ff_next_lanes()
    }

    /// [`Engine::commit`] with precomputed flip-flop next-values (see
    /// [`Engine::commit_with_next_lanes`]).
    ///
    /// # Panics
    ///
    /// Panics if called before a successful eval, or if `next` does not
    /// have one value per sequential gate.
    pub fn commit_with_next(&mut self, next: &[LaneVal]) {
        self.commit_with_next_lanes(next);
    }

    /// Snapshot of flip-flops + per-lane memories + cycle.
    pub fn machine_state(&self) -> BatchMachineState {
        BatchMachineState {
            lanes: self.lanes,
            ffs: self
                .nl
                .sequential_gates()
                .iter()
                .map(|&g| self.frame.get(self.nl.gate(g).output().index()))
                .collect(),
            mems: self
                .mems
                .iter()
                .map(|lane| lane.iter().map(|m| m.data().to_vec()).collect())
                .collect(),
            cycle: self.cycle,
        }
    }

    /// Restores a snapshot taken by [`Engine::<Wide>::machine_state`].
    ///
    /// Like the 1-lane instantiation, flip-flops are diffed against the
    /// current frame: only flip-flops where any lane differs mark their
    /// fanout cones dirty.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot shape (flip-flops, lanes, memories) does
    /// not match this machine.
    pub fn set_machine_state(&mut self, s: &BatchMachineState) {
        assert_eq!(
            s.ffs.len(),
            self.nl.sequential_gates().len(),
            "machine shape mismatch"
        );
        assert_eq!(s.lanes, self.lanes, "lane count mismatch");
        assert_eq!(s.mems.len(), self.mems.len(), "memory lane mismatch");
        let event = self.mode == EvalMode::EventDriven;
        for (&g, v) in self.nl.sequential_gates().iter().zip(&s.ffs) {
            let out = self.nl.gate(g).output();
            if event {
                self.set_net(out, *v);
            } else {
                self.store_net_levelized(out.index(), *v);
            }
        }
        for (lane, snap) in self.mems.iter_mut().zip(&s.mems) {
            assert_eq!(lane.len(), snap.len(), "memory count mismatch");
            for (m, data) in lane.iter_mut().zip(snap) {
                m.data_mut().copy_from_slice(data);
            }
        }
        self.cycle = s.cycle;
        self.evaled = false;
    }
}

#[cfg(test)]
mod tests {
    use crate::{BatchSimulator, BusSpec, MemRegion, RegionKind, Simulator};
    use xbound_logic::Lv;
    use xbound_netlist::rtl::Rtl;
    use xbound_netlist::{NetId, Netlist};

    fn counter() -> Netlist {
        let mut r = Rtl::new("cnt");
        let en = r.input_bit("en");
        let (h, q) = r.reg("c", 4);
        let one = r.one();
        let (nx, _) = r.inc(&q, one);
        let gated: Vec<_> = q.iter().zip(&nx).map(|(&q, &n)| r.mux(en, q, n)).collect();
        r.reg_next(h, &gated);
        r.output("q", &q);
        r.finish().unwrap()
    }

    #[test]
    fn lanes_evolve_independently() {
        let nl = counter();
        let mut sim = BatchSimulator::new(&nl, 4);
        let en = nl.find_net("en").unwrap();
        for l in 0..4 {
            sim.drive_input_lane(en, l, if l % 2 == 0 { Lv::One } else { Lv::Zero });
        }
        sim.reset(1);
        sim.step();
        for _ in 0..6 {
            sim.step();
        }
        sim.eval().unwrap();
        let q: Vec<NetId> = (0..4)
            .map(|i| nl.find_net(&format!("top/c_q[{i}]")).unwrap())
            .collect();
        assert_eq!(sim.value_word_lane(&q, 0).to_u16(), Some(6));
        assert_eq!(sim.value_word_lane(&q, 1).to_u16(), Some(0));
        assert_eq!(sim.value_word_lane(&q, 2).to_u16(), Some(6));
    }

    #[test]
    fn matches_scalar_simulator_per_lane() {
        let nl = counter();
        let en = nl.find_net("en").unwrap();
        let mut batch = BatchSimulator::new(&nl, 2);
        batch.drive_input_lane(en, 0, Lv::One);
        batch.drive_input_lane(en, 1, Lv::X);
        let mut scalars: Vec<Simulator<'_>> = (0..2).map(|_| Simulator::new(&nl)).collect();
        scalars[0].drive_input(en, Lv::One);
        scalars[1].drive_input(en, Lv::X);
        batch.reset(2);
        for s in scalars.iter_mut() {
            s.reset(2);
        }
        for _ in 0..8 {
            let bf = batch.eval().unwrap().clone();
            for (l, s) in scalars.iter_mut().enumerate() {
                let sf = s.eval().unwrap();
                assert_eq!(&bf.lane_frame(l), sf, "lane {l} diverged");
            }
            batch.commit();
            for s in scalars.iter_mut() {
                s.commit();
            }
        }
    }

    #[test]
    fn per_lane_memories_feed_per_lane_rdata() {
        // Accumulator device fetching ROM[pc] (same shape as the scalar
        // simulator's bus test), with different per-lane ROM contents.
        let mut r = Rtl::new("busdev");
        let rdata = r.input("rdata", 16);
        let (hp, pc) = r.reg("pc", 16);
        let (ha, acc) = r.reg("acc", 16);
        let two = r.lit(2, 16);
        let (pcn, _) = r.add(&pc, &two, None);
        r.reg_next(hp, &pcn);
        let (sum, _) = r.add(&acc, &rdata, None);
        r.reg_next(ha, &sum);
        let hi = r.lit(0xF000, 16);
        let addr = r.or_bus(&hi, &pc);
        r.output("addr", &addr);
        r.output("acc", &acc);
        let nl = r.finish().unwrap();
        let addr_nets: Vec<NetId> = (0..16)
            .map(|i| {
                nl.outputs()
                    .iter()
                    .find(|(n, _)| n == &format!("addr[{i}]"))
                    .map(|(_, net)| *net)
                    .unwrap()
            })
            .collect();
        let rdata_nets: Vec<NetId> = (0..16)
            .map(|i| nl.find_net(&format!("rdata[{i}]")).unwrap())
            .collect();
        let bus = BusSpec {
            addr: addr_nets,
            wdata: rdata_nets.clone(),
            rdata: rdata_nets,
            wen: None,
        };
        let rom = MemRegion::new("pmem", RegionKind::Rom, 0xF000, 8);
        let mut sim = BatchSimulator::new(&nl, 2);
        sim.attach_bus(bus, vec![rom]).unwrap();
        sim.mem_mut_lane("pmem", 0)
            .unwrap()
            .load(0xF000, &[1, 2, 3, 4]);
        sim.mem_mut_lane("pmem", 1)
            .unwrap()
            .load(0xF000, &[10, 20, 30, 40]);
        sim.reset(1);
        sim.step();
        for _ in 0..4 {
            sim.step();
        }
        sim.eval().unwrap();
        let acc_nets: Vec<NetId> = (0..16)
            .map(|i| {
                nl.outputs()
                    .iter()
                    .find(|(n, _)| n == &format!("acc[{i}]"))
                    .map(|(_, net)| *net)
                    .unwrap()
            })
            .collect();
        assert_eq!(sim.value_word_lane(&acc_nets, 0).to_u16(), Some(10));
        assert_eq!(sim.value_word_lane(&acc_nets, 1).to_u16(), Some(100));
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let nl = counter();
        let en = nl.find_net("en").unwrap();
        let mut sim = BatchSimulator::new(&nl, 3);
        sim.drive_input(en, Lv::One);
        sim.reset(1);
        for _ in 0..5 {
            sim.step();
        }
        let snap = sim.machine_state();
        for _ in 0..7 {
            sim.step();
        }
        assert_ne!(sim.machine_state(), snap);
        sim.set_machine_state(&snap);
        assert_eq!(sim.machine_state(), snap);
        assert_eq!(sim.cycle(), snap.cycle());
        // Per-lane extraction matches the batch snapshot shape.
        let l0 = snap.lane_state(0);
        assert_eq!(l0.cycle(), snap.cycle());
        assert_eq!(l0.ffs().len(), nl.sequential_gates().len());
    }
}
