//! Bit-parallel batched concrete simulation: one gate pass, many runs.
//!
//! [`BatchSimulator`] simulates up to [`xbound_logic::MAX_LANES`] *independent* concrete
//! runs of the same netlist simultaneously. Net values are stored as
//! [`BatchFrame`]s (one bit per lane in a `u64` plane pair) and every gate
//! evaluates word-wise through the [`LaneVal`] kernels, so the cost of a
//! settled cycle is shared by all lanes. The engine is event-driven like
//! the scalar [`crate::Simulator`]'s default mode and reuses the same netlist
//! fanout/cone index; a gate is dirty when **any** lane of one of its
//! inputs changed.
//!
//! Each lane owns its external-bus memories (program ROM, data RAM, input
//! port), its input drives, and its flip-flop state — lanes never interact,
//! so lane `l` of every frame is bit-identical to an independent scalar
//! [`crate::Simulator`] run under the same stimulus (asserted by
//! `crates/sim/tests/batch_differential.rs`). Forces are broadcast: a
//! forced net takes the same value in every lane (forces belong to the
//! symbolic explorer; batched runs are the concrete side of the flow).
//!
//! # Example
//!
//! ```
//! use xbound_netlist::rtl::Rtl;
//! use xbound_sim::BatchSimulator;
//! use xbound_logic::Lv;
//!
//! // A 4-bit counter; lanes only differ through their stimulus.
//! let mut r = Rtl::new("cnt");
//! let en = r.input_bit("en");
//! let (h, q) = r.reg("c", 4);
//! let one = r.one();
//! let (nx, _) = r.inc(&q, one);
//! let gated: Vec<_> = q.iter().zip(&nx).map(|(&q, &n)| r.mux(en, q, n)).collect();
//! r.reg_next(h, &gated);
//! r.output("q", &q);
//! let nl = r.finish().unwrap();
//!
//! let mut sim = BatchSimulator::new(&nl, 2);
//! let en = nl.find_net("en").unwrap();
//! sim.drive_input_lane(en, 0, Lv::Zero); // lane 0 holds
//! sim.drive_input_lane(en, 1, Lv::One);  // lane 1 counts
//! for _ in 0..5 {
//!     sim.step();
//! }
//! sim.eval().unwrap();
//! let q0 = nl.find_net("top/c_q[0]").unwrap();
//! assert_eq!(sim.value_lane(q0, 0), Lv::Zero);
//! assert_eq!(sim.value_lane(q0, 1), Lv::One); // 5 = 0b0101
//! ```

use std::collections::HashMap;
use xbound_logic::{BatchFrame, Frame, LaneVal, Lv, XWord};
use xbound_netlist::{CellKind, GateId, NetId, Netlist};

use crate::{read_regions, write_regions, BusSpec, MachineState, MemRegion, SimError};

/// Snapshot of all architectural state of every lane of a
/// [`BatchSimulator`] (flip-flops + per-lane memories).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchMachineState {
    lanes: usize,
    ffs: Vec<LaneVal>,
    /// `[lane][region][word]`.
    mems: Vec<Vec<Vec<XWord>>>,
    cycle: u64,
}

impl BatchMachineState {
    /// Simulation cycle at which the snapshot was taken.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of lanes in the snapshot.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Extracts one lane as a scalar [`MachineState`] — shape-compatible
    /// with [`crate::Simulator::machine_state`] for differential checks.
    ///
    /// # Panics
    ///
    /// Panics if `l >= lanes()`.
    pub fn lane_state(&self, l: usize) -> MachineState {
        assert!(l < self.lanes, "lane {l} out of range {}", self.lanes);
        MachineState {
            ffs: self.ffs.iter().map(|v| v.get(l)).collect(),
            // Empty when no bus/memories are attached.
            mems: self.mems.get(l).cloned().unwrap_or_default(),
            cycle: self.cycle,
        }
    }
}

/// Event-driven cycle simulator over a finalized netlist evaluating up to
/// [`xbound_logic::MAX_LANES`] independent concrete runs per gate pass.
#[derive(Debug, Clone)]
pub struct BatchSimulator<'n> {
    nl: &'n Netlist,
    lanes: usize,
    frame: BatchFrame,
    forces: Vec<Option<Lv>>,
    drives: HashMap<NetId, LaneVal>,
    bus: Option<BusSpec>,
    /// Per-lane region sets: `mems[lane][region]`.
    mems: Vec<Vec<MemRegion>>,
    cycle: u64,
    evaled: bool,
    rstn_net: Option<NetId>,
    reset_remaining: u32,
    dirty: Vec<bool>,
    buckets: Vec<Vec<GateId>>,
    is_rdata: Vec<bool>,
    full_dirty: bool,
}

impl<'n> BatchSimulator<'n> {
    /// Creates a batched simulator with `lanes` lanes and no attached
    /// memories. Primary inputs default to `0` in every lane, except an
    /// input named `rstn` (driven by [`BatchSimulator::reset`]).
    ///
    /// # Panics
    ///
    /// Panics if the netlist is not finalized or `lanes` is outside
    /// `1..=`[`xbound_logic::MAX_LANES`].
    pub fn new(nl: &'n Netlist, lanes: usize) -> BatchSimulator<'n> {
        assert!(nl.is_finalized(), "netlist must be finalized");
        let rstn_net = nl
            .inputs()
            .iter()
            .copied()
            .find(|&n| nl.net_name(n) == "rstn");
        BatchSimulator {
            nl,
            lanes,
            frame: BatchFrame::new(nl.net_count(), lanes),
            forces: vec![None; nl.net_count()],
            drives: HashMap::new(),
            bus: None,
            mems: Vec::new(),
            cycle: 0,
            evaled: false,
            rstn_net,
            reset_remaining: 0,
            dirty: vec![false; nl.gate_count()],
            buckets: vec![Vec::new(); nl.comb_level_count()],
            is_rdata: vec![false; nl.net_count()],
            full_dirty: true,
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The netlist under simulation.
    pub fn netlist(&self) -> &'n Netlist {
        self.nl
    }

    /// Number of committed clock edges so far (shared by all lanes).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Attaches the external bus; every lane receives its own copy of the
    /// `mems` region set (diverge them through
    /// [`BatchSimulator::mem_mut_lane`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadBusSpec`] when bus widths are not 16 bits or
    /// `rdata` nets are not primary inputs.
    pub fn attach_bus(&mut self, bus: BusSpec, mems: Vec<MemRegion>) -> Result<(), SimError> {
        if bus.addr.len() != 16 || bus.rdata.len() != 16 || bus.wdata.len() != 16 {
            return Err(SimError::BadBusSpec {
                message: format!(
                    "expected 16-bit addr/rdata/wdata, got {}/{}/{}",
                    bus.addr.len(),
                    bus.rdata.len(),
                    bus.wdata.len()
                ),
            });
        }
        for &n in &bus.rdata {
            if !self.nl.inputs().contains(&n) {
                return Err(SimError::BadBusSpec {
                    message: format!("rdata net `{}` is not a primary input", self.nl.net_name(n)),
                });
            }
        }
        self.is_rdata = vec![false; self.nl.net_count()];
        for &n in &bus.rdata {
            self.is_rdata[n.index()] = true;
        }
        self.bus = Some(bus);
        self.mems = vec![mems; self.lanes];
        self.evaled = false;
        Ok(())
    }

    /// All lanes of a net in the current frame.
    pub fn value(&self, net: NetId) -> LaneVal {
        self.frame.get(net.index())
    }

    /// One lane of a net in the current frame.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes()`.
    pub fn value_lane(&self, net: NetId, lane: usize) -> Lv {
        self.frame.get_lane(net.index(), lane)
    }

    /// Reads a bus (LSB-first net list) of one lane as an [`XWord`].
    ///
    /// # Panics
    ///
    /// Panics if `nets` is longer than 16 or `lane >= lanes()`.
    pub fn value_word_lane(&self, nets: &[NetId], lane: usize) -> XWord {
        assert!(nets.len() <= 16, "bus wider than 16 bits");
        let mut w = XWord::ZERO;
        for (i, &n) in nets.iter().enumerate() {
            w.set_bit(i, self.frame.get_lane(n.index(), lane));
        }
        w
    }

    /// The current batched value frame (all nets × all lanes).
    pub fn frame(&self) -> &BatchFrame {
        &self.frame
    }

    /// Drives a primary input with the same persistent value in every lane.
    pub fn drive_input(&mut self, net: NetId, v: Lv) {
        let mask = self.frame.lane_mask();
        self.drives.insert(net, LaneVal::splat(v, mask));
        self.evaled = false;
    }

    /// Drives a primary input in one lane only (other lanes keep their
    /// current drive, default `0`).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes()`.
    pub fn drive_input_lane(&mut self, net: NetId, lane: usize, v: Lv) {
        assert!(lane < self.lanes, "lane {lane} out of range {}", self.lanes);
        self.drives.entry(net).or_insert(LaneVal::ZERO).set(lane, v);
        self.evaled = false;
    }

    /// Forces (or releases, with `None`) a net to the same value in every
    /// lane, overriding its driver. Forces persist until released.
    pub fn force(&mut self, net: NetId, v: Option<Lv>) {
        self.forces[net.index()] = v;
        if let Some(g) = self.nl.driver_of(net) {
            if !self.nl.gate(g).kind().is_sequential() {
                self.mark_gate_dirty(g);
            }
        }
        self.evaled = false;
    }

    /// Schedules `cycles` of reset for all lanes: `rstn` is held 0 for
    /// that many upcoming cycles, then released to 1.
    pub fn reset(&mut self, cycles: u32) {
        self.reset_remaining = cycles;
        self.evaled = false;
    }

    /// Memory regions of one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes()`.
    pub fn mems_lane(&self, lane: usize) -> &[MemRegion] {
        &self.mems[lane]
    }

    /// Looks a region of one lane up by name.
    pub fn mem_lane(&self, name: &str, lane: usize) -> Option<&MemRegion> {
        self.mems[lane].iter().find(|m| m.name() == name)
    }

    /// Mutable access to a region of one lane by name.
    pub fn mem_mut_lane(&mut self, name: &str, lane: usize) -> Option<&mut MemRegion> {
        self.evaled = false;
        self.mems[lane].iter_mut().find(|m| m.name() == name)
    }

    fn eval_gate(&self, kind: CellKind, ins: &[NetId]) -> LaneVal {
        let v = |i: usize| self.frame.get(ins[i].index());
        let mask = self.frame.lane_mask();
        match kind {
            CellKind::Tie0 => LaneVal::ZERO,
            CellKind::Tie1 => LaneVal::splat(Lv::One, mask),
            CellKind::Buf => v(0),
            CellKind::Inv => v(0).not(mask),
            CellKind::And2 => v(0).and(v(1)),
            CellKind::Or2 => v(0).or(v(1)),
            CellKind::Nand2 => v(0).nand(v(1), mask),
            CellKind::Nor2 => v(0).nor(v(1), mask),
            CellKind::Xor2 => v(0).xor(v(1)),
            CellKind::Xnor2 => v(0).xnor(v(1), mask),
            CellKind::Mux2 => LaneVal::mux(v(2), v(0), v(1)),
            CellKind::Aoi21 => LaneVal::aoi21(v(0), v(1), v(2), mask),
            CellKind::Oai21 => LaneVal::oai21(v(0), v(1), v(2), mask),
            CellKind::Dff | CellKind::Dffe | CellKind::Dffr | CellKind::Dffre => {
                unreachable!("sequential gate in combinational evaluation")
            }
        }
    }

    fn mark_gate_dirty(&mut self, g: GateId) {
        if !self.dirty[g.index()] {
            self.dirty[g.index()] = true;
            self.buckets[self.nl.comb_level(g) as usize].push(g);
        }
    }

    /// Writes `net` and, when any lane changed, marks its combinational
    /// readers dirty.
    fn set_net(&mut self, net: NetId, v: LaneVal) {
        if self.frame.replace(net.index(), v) {
            let nl = self.nl;
            for &g in nl.fanout_comb_of(net) {
                self.mark_gate_dirty(g);
            }
        }
    }

    /// Drains the dirty set in level order, exactly like the scalar
    /// event-driven engine: readers are always at a strictly higher level,
    /// so one ascending sweep settles the whole changed cone — for every
    /// lane at once.
    fn process_dirty(&mut self) {
        let nl = self.nl;
        let mask = self.frame.lane_mask();
        for lvl in 0..self.buckets.len() {
            let mut bucket = std::mem::take(&mut self.buckets[lvl]);
            for &g in &bucket {
                let gate = nl.gate(g);
                let out = gate.output();
                let v = match self.forces[out.index()] {
                    Some(f) => LaneVal::splat(f, mask),
                    None => self.eval_gate(gate.kind(), gate.inputs()),
                };
                self.dirty[g.index()] = false;
                if self.frame.replace(out.index(), v) {
                    for &succ in nl.fanout_comb_of(out) {
                        self.mark_gate_dirty(succ);
                    }
                }
            }
            bucket.clear();
            self.buckets[lvl] = bucket;
        }
    }

    fn apply_inputs(&mut self) {
        let mask = self.frame.lane_mask();
        let rstn_v = if self.reset_remaining > 0 {
            Lv::Zero
        } else {
            Lv::One
        };
        let has_bus = self.bus.is_some();
        for &n in self.nl.inputs() {
            // Bus read-data inputs are owned by the settle loop (see the
            // scalar engine for the rationale).
            if has_bus && self.is_rdata[n.index()] {
                continue;
            }
            let mut v = self.drives.get(&n).copied().unwrap_or(LaneVal::ZERO);
            if Some(n) == self.rstn_net {
                v = LaneVal::splat(rstn_v, mask);
            }
            if let Some(f) = self.forces[n.index()] {
                v = LaneVal::splat(f, mask);
            }
            self.set_net(n, v);
        }
    }

    /// Per-lane bus addresses of the current frame.
    fn lane_addrs(&self, bus: &BusSpec) -> Vec<XWord> {
        (0..self.lanes)
            .map(|l| self.value_word_lane(&bus.addr, l))
            .collect()
    }

    fn settle_bus(&mut self, bus: &BusSpec) -> Result<(), SimError> {
        let mut last_addrs = self.lane_addrs(bus);
        for _ in 0..4 {
            // Per-lane memory lookups, then one batched rdata forcing.
            let rdatas: Vec<XWord> = (0..self.lanes)
                .map(|l| read_regions(&self.mems[l], last_addrs[l]))
                .collect();
            let mask = self.frame.lane_mask();
            for (i, &n) in bus.rdata.iter().enumerate() {
                let v = match self.forces[n.index()] {
                    Some(f) => LaneVal::splat(f, mask),
                    None => {
                        let mut lv = LaneVal::ZERO;
                        for (l, r) in rdatas.iter().enumerate() {
                            lv.set(l, r.bit(i));
                        }
                        lv
                    }
                };
                self.set_net(n, v);
            }
            self.process_dirty();
            let addrs_now = self.lane_addrs(bus);
            if addrs_now == last_addrs {
                return Ok(());
            }
            last_addrs = addrs_now;
        }
        Err(SimError::BusNotSettled)
    }

    /// Settles the combinational logic of every lane for the current
    /// cycle. Idempotent until state changes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BusNotSettled`] if any lane's address keeps
    /// changing after read-data forcing (combinational bus loop).
    pub fn eval(&mut self) -> Result<&BatchFrame, SimError> {
        if self.evaled {
            return Ok(&self.frame);
        }
        if self.full_dirty {
            let nl = self.nl;
            for &g in nl.topo_order() {
                self.mark_gate_dirty(g);
            }
            self.full_dirty = false;
        }
        self.apply_inputs();
        let mask = self.frame.lane_mask();
        for &g in self.nl.sequential_gates() {
            let out = self.nl.gate(g).output();
            if let Some(f) = self.forces[out.index()] {
                self.set_net(out, LaneVal::splat(f, mask));
            }
        }
        self.process_dirty();
        if let Some(bus) = self.bus.take() {
            let r = self.settle_bus(&bus);
            self.bus = Some(bus);
            r?;
        }
        self.evaled = true;
        Ok(&self.frame)
    }

    /// Selects lane-wise on a three-valued control: `ctrl == 0 → when0`,
    /// `ctrl == 1 → when1`, `ctrl == X → whenx` — the batched form of the
    /// per-lane `match` in the scalar flip-flop update rules.
    fn select(ctrl: LaneVal, when0: LaneVal, when1: LaneVal, whenx: LaneVal) -> LaneVal {
        let c0 = !ctrl.val & !ctrl.unk;
        let c1 = ctrl.val;
        let cx = ctrl.unk;
        LaneVal::from_planes(
            (c0 & when0.val) | (c1 & when1.val) | (cx & whenx.val),
            (c0 & when0.unk) | (c1 & when1.unk) | (cx & whenx.unk),
        )
    }

    /// Computes the next value of every flip-flop (all lanes) from the
    /// settled frame.
    ///
    /// # Panics
    ///
    /// Panics unless [`BatchSimulator::eval`] succeeded for this cycle.
    pub fn ff_next_values(&self) -> Vec<LaneVal> {
        assert!(self.evaled, "eval() before inspecting flip-flop inputs");
        self.nl
            .sequential_gates()
            .iter()
            .map(|&g| {
                let gate = self.nl.gate(g);
                let ins = gate.inputs();
                let q = self.frame.get(gate.output().index());
                let v = |i: usize| self.frame.get(ins[i].index());
                match gate.kind() {
                    CellKind::Dff => v(0),
                    CellKind::Dffe => {
                        let d = v(0);
                        Self::select(v(1), q, d, d.join(q))
                    }
                    CellKind::Dffr => {
                        let d = v(0);
                        Self::select(v(1), LaneVal::ZERO, d, d.join(LaneVal::ZERO))
                    }
                    CellKind::Dffre => {
                        let d = v(0);
                        let after_en = Self::select(v(1), q, d, d.join(q));
                        Self::select(v(2), LaneVal::ZERO, after_en, after_en.join(LaneVal::ZERO))
                    }
                    _ => unreachable!("combinational gate in sequential list"),
                }
            })
            .collect()
    }

    fn commit_memory_writes(&mut self) {
        let Some(bus) = self.bus.take() else {
            return;
        };
        if let Some(wen_net) = bus.wen {
            for l in 0..self.lanes {
                let wen = self.frame.get_lane(wen_net.index(), l);
                if wen == Lv::Zero {
                    continue;
                }
                let addr = self.value_word_lane(&bus.addr, l);
                let wdata = self.value_word_lane(&bus.wdata, l);
                write_regions(&mut self.mems[l], wen, addr, wdata);
            }
        }
        self.bus = Some(bus);
    }

    /// Applies the clock edge to every lane: memory writes, flip-flop
    /// updates, cycle++.
    ///
    /// # Panics
    ///
    /// Panics if called before a successful [`BatchSimulator::eval`].
    pub fn commit(&mut self) {
        assert!(self.evaled, "eval() must succeed before commit()");
        let next = self.ff_next_values();
        self.commit_memory_writes();
        let mask = self.frame.lane_mask();
        for (&g, &v) in self.nl.sequential_gates().iter().zip(&next) {
            let out = self.nl.gate(g).output();
            let v = match self.forces[out.index()] {
                Some(f) => LaneVal::splat(f, mask),
                None => v,
            };
            self.set_net(out, v);
        }
        if self.reset_remaining > 0 {
            self.reset_remaining -= 1;
        }
        self.cycle += 1;
        self.evaled = false;
    }

    /// `eval()` + `commit()` in one call.
    ///
    /// # Panics
    ///
    /// Panics on bus settle failure (use `eval`/`commit` to handle errors).
    pub fn step(&mut self) {
        self.eval().expect("bus settles");
        self.commit();
    }

    /// Snapshot of flip-flops + per-lane memories + cycle.
    pub fn machine_state(&self) -> BatchMachineState {
        BatchMachineState {
            lanes: self.lanes,
            ffs: self
                .nl
                .sequential_gates()
                .iter()
                .map(|&g| self.frame.get(self.nl.gate(g).output().index()))
                .collect(),
            mems: self
                .mems
                .iter()
                .map(|lane| lane.iter().map(|m| m.data().to_vec()).collect())
                .collect(),
            cycle: self.cycle,
        }
    }

    /// One lane's architectural state as a scalar [`MachineState`].
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes()`.
    pub fn lane_machine_state(&self, lane: usize) -> MachineState {
        assert!(lane < self.lanes, "lane {lane} out of range {}", self.lanes);
        MachineState {
            ffs: self
                .nl
                .sequential_gates()
                .iter()
                .map(|&g| self.frame.get_lane(self.nl.gate(g).output().index(), lane))
                .collect(),
            mems: self
                .mems
                .get(lane) // empty when no bus/memories are attached
                .map(|regions| regions.iter().map(|m| m.data().to_vec()).collect())
                .unwrap_or_default(),
            cycle: self.cycle,
        }
    }

    /// Restores a snapshot taken by [`BatchSimulator::machine_state`].
    ///
    /// Like the scalar engine, flip-flops are diffed against the current
    /// frame: only flip-flops where any lane differs mark their fanout
    /// cones dirty.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot shape (flip-flops, lanes, memories) does not
    /// match this machine.
    pub fn set_machine_state(&mut self, s: &BatchMachineState) {
        assert_eq!(
            s.ffs.len(),
            self.nl.sequential_gates().len(),
            "machine shape mismatch"
        );
        assert_eq!(s.lanes, self.lanes, "lane count mismatch");
        assert_eq!(s.mems.len(), self.mems.len(), "memory lane mismatch");
        for (&g, v) in self.nl.sequential_gates().iter().zip(&s.ffs) {
            let out = self.nl.gate(g).output();
            self.set_net(out, *v);
        }
        for (lane, snap) in self.mems.iter_mut().zip(&s.mems) {
            assert_eq!(lane.len(), snap.len(), "memory count mismatch");
            for (m, data) in lane.iter_mut().zip(snap) {
                m.data_mut().copy_from_slice(data);
            }
        }
        self.cycle = s.cycle;
        self.evaled = false;
    }

    /// Extracts one lane of the settled frame as a scalar [`Frame`]
    /// (shape-compatible with [`crate::Simulator::frame`]).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes()`.
    pub fn lane_frame(&self, lane: usize) -> Frame {
        self.frame.lane_frame(lane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RegionKind, Simulator};
    use xbound_netlist::rtl::Rtl;

    fn counter() -> Netlist {
        let mut r = Rtl::new("cnt");
        let en = r.input_bit("en");
        let (h, q) = r.reg("c", 4);
        let one = r.one();
        let (nx, _) = r.inc(&q, one);
        let gated: Vec<_> = q.iter().zip(&nx).map(|(&q, &n)| r.mux(en, q, n)).collect();
        r.reg_next(h, &gated);
        r.output("q", &q);
        r.finish().unwrap()
    }

    #[test]
    fn lanes_evolve_independently() {
        let nl = counter();
        let mut sim = BatchSimulator::new(&nl, 4);
        let en = nl.find_net("en").unwrap();
        for l in 0..4 {
            sim.drive_input_lane(en, l, if l % 2 == 0 { Lv::One } else { Lv::Zero });
        }
        sim.reset(1);
        sim.step();
        for _ in 0..6 {
            sim.step();
        }
        sim.eval().unwrap();
        let q: Vec<NetId> = (0..4)
            .map(|i| nl.find_net(&format!("top/c_q[{i}]")).unwrap())
            .collect();
        assert_eq!(sim.value_word_lane(&q, 0).to_u16(), Some(6));
        assert_eq!(sim.value_word_lane(&q, 1).to_u16(), Some(0));
        assert_eq!(sim.value_word_lane(&q, 2).to_u16(), Some(6));
    }

    #[test]
    fn matches_scalar_simulator_per_lane() {
        let nl = counter();
        let en = nl.find_net("en").unwrap();
        let mut batch = BatchSimulator::new(&nl, 2);
        batch.drive_input_lane(en, 0, Lv::One);
        batch.drive_input_lane(en, 1, Lv::X);
        let mut scalars: Vec<Simulator<'_>> = (0..2).map(|_| Simulator::new(&nl)).collect();
        scalars[0].drive_input(en, Lv::One);
        scalars[1].drive_input(en, Lv::X);
        batch.reset(2);
        for s in scalars.iter_mut() {
            s.reset(2);
        }
        for _ in 0..8 {
            let bf = batch.eval().unwrap().clone();
            for (l, s) in scalars.iter_mut().enumerate() {
                let sf = s.eval().unwrap();
                assert_eq!(&bf.lane_frame(l), sf, "lane {l} diverged");
            }
            batch.commit();
            for s in scalars.iter_mut() {
                s.commit();
            }
        }
    }

    #[test]
    fn per_lane_memories_feed_per_lane_rdata() {
        // Accumulator device fetching ROM[pc] (same shape as the scalar
        // simulator's bus test), with different per-lane ROM contents.
        let mut r = Rtl::new("busdev");
        let rdata = r.input("rdata", 16);
        let (hp, pc) = r.reg("pc", 16);
        let (ha, acc) = r.reg("acc", 16);
        let two = r.lit(2, 16);
        let (pcn, _) = r.add(&pc, &two, None);
        r.reg_next(hp, &pcn);
        let (sum, _) = r.add(&acc, &rdata, None);
        r.reg_next(ha, &sum);
        let hi = r.lit(0xF000, 16);
        let addr = r.or_bus(&hi, &pc);
        r.output("addr", &addr);
        r.output("acc", &acc);
        let nl = r.finish().unwrap();
        let addr_nets: Vec<NetId> = (0..16)
            .map(|i| {
                nl.outputs()
                    .iter()
                    .find(|(n, _)| n == &format!("addr[{i}]"))
                    .map(|(_, net)| *net)
                    .unwrap()
            })
            .collect();
        let rdata_nets: Vec<NetId> = (0..16)
            .map(|i| nl.find_net(&format!("rdata[{i}]")).unwrap())
            .collect();
        let bus = BusSpec {
            addr: addr_nets,
            wdata: rdata_nets.clone(),
            rdata: rdata_nets,
            wen: None,
        };
        let rom = MemRegion::new("pmem", RegionKind::Rom, 0xF000, 8);
        let mut sim = BatchSimulator::new(&nl, 2);
        sim.attach_bus(bus, vec![rom]).unwrap();
        sim.mem_mut_lane("pmem", 0)
            .unwrap()
            .load(0xF000, &[1, 2, 3, 4]);
        sim.mem_mut_lane("pmem", 1)
            .unwrap()
            .load(0xF000, &[10, 20, 30, 40]);
        sim.reset(1);
        sim.step();
        for _ in 0..4 {
            sim.step();
        }
        sim.eval().unwrap();
        let acc_nets: Vec<NetId> = (0..16)
            .map(|i| {
                nl.outputs()
                    .iter()
                    .find(|(n, _)| n == &format!("acc[{i}]"))
                    .map(|(_, net)| *net)
                    .unwrap()
            })
            .collect();
        assert_eq!(sim.value_word_lane(&acc_nets, 0).to_u16(), Some(10));
        assert_eq!(sim.value_word_lane(&acc_nets, 1).to_u16(), Some(100));
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let nl = counter();
        let en = nl.find_net("en").unwrap();
        let mut sim = BatchSimulator::new(&nl, 3);
        sim.drive_input(en, Lv::One);
        sim.reset(1);
        for _ in 0..5 {
            sim.step();
        }
        let snap = sim.machine_state();
        for _ in 0..7 {
            sim.step();
        }
        assert_ne!(sim.machine_state(), snap);
        sim.set_machine_state(&snap);
        assert_eq!(sim.machine_state(), snap);
        assert_eq!(sim.cycle(), snap.cycle());
        // Per-lane extraction matches the batch snapshot shape.
        let l0 = snap.lane_state(0);
        assert_eq!(l0.cycle(), snap.cycle());
        assert_eq!(l0.ffs().len(), nl.sequential_gates().len());
    }
}
