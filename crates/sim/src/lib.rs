//! Lane-generic three-valued cycle simulation.
//!
//! This crate is the `xbound` substitute for the commercial gate-level
//! simulator of the paper's flow. It simulates a finalized
//! [`xbound_netlist::Netlist`] cycle by cycle over the three-valued domain of
//! [`xbound_logic::Lv`], with:
//!
//! * **one engine core** ([`Engine`]): the event-driven machinery is
//!   written once over word-wise lane kernels; [`Simulator`] is its 1-lane
//!   instantiation and [`BatchSimulator`] the wide (up to 64-lane) one;
//! * **X-capable behavioral memories** ([`MemRegion`]) attached through a
//!   single external bus ([`BusSpec`]) — program ROM, data RAM, and the
//!   input-port region whose reads return `X` during symbolic analysis;
//! * **net forcing** ([`Engine::force`], per lane with
//!   [`Engine::force_lane`]) used by the symbolic explorer to constrain
//!   fork nets (e.g. `branch_taken`) when the next PC carries X;
//! * **state save/restore** ([`Engine::<Scalar>::machine_state`] /
//!   [`Engine::set_lane_machine_state`]) used for depth-first exploration
//!   of the execution tree;
//! * a split eval / [`Engine::commit`] cycle so callers can inspect
//!   flip-flop next-values *before* the clock edge.
//!
//! # Example
//!
//! ```
//! use xbound_netlist::rtl::Rtl;
//! use xbound_sim::Simulator;
//! use xbound_logic::Lv;
//!
//! // A 4-bit counter.
//! let mut r = Rtl::new("cnt");
//! let (h, q) = r.reg("c", 4);
//! let one = r.one();
//! let (nx, _) = r.inc(&q, one);
//! r.reg_next(h, &nx);
//! r.output("q", &q);
//! let nl = r.finish().unwrap();
//!
//! let mut sim = Simulator::new(&nl);
//! sim.reset(2);
//! for _ in 0..2 {
//!     sim.step(); // reset cycles
//! }
//! for _ in 0..5 {
//!     sim.step();
//! }
//! sim.eval().unwrap();
//! let q0 = nl.find_net("top/c_q[0]").unwrap();
//! assert_eq!(sim.value(q0), Lv::One); // 5 = 0b0101
//! ```

#![warn(missing_docs)]

mod compiled;
pub mod engine;

pub use engine::{BatchMachineState, Engine, Lanes, Scalar, Wide};

/// The 1-lane instantiation of [`Engine`] — the scalar cycle simulator.
pub type Simulator<'n> = Engine<'n, Scalar>;

/// The wide instantiation of [`Engine`] — up to
/// [`xbound_logic::MAX_LANES`] independent runs per gate pass.
pub type BatchSimulator<'n> = Engine<'n, Wide>;

use std::fmt;
use xbound_logic::{Lv, XWord};
use xbound_netlist::NetId;

/// Which evaluation engine [`Simulator::eval`] uses.
///
/// Both engines settle the combinational logic to the same unique fixpoint
/// (the netlist is validated acyclic, so gate values are a pure function of
/// flip-flop, input, and forced values) and therefore produce bit-identical
/// frames; they differ only in how much work a cycle costs. With an
/// attached bus this guarantee relies on the [`BusSpec`] contract that the
/// address must not combinationally depend on read data: the engines seed
/// the read-data settle loop differently (the levelized oracle restarts
/// `rdata` from the input drives each cycle, the event-driven engine keeps
/// the previous cycle's settled values), which converges to the same
/// unique fixpoint exactly when that contract holds. A contract-violating
/// design may settle differently or be detected as
/// [`SimError::BusNotSettled`] by only one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Event-driven incremental evaluation (the default): only the fanout
    /// cone of nets that actually changed since the last settled frame is
    /// re-evaluated, in level order via the netlist's
    /// [`xbound_netlist::Netlist::fanout_comb_of`] /
    /// [`xbound_netlist::Netlist::comb_level`] index.
    #[default]
    EventDriven,
    /// Full levelized re-evaluation of every combinational gate each cycle.
    /// Retained as the differential-testing oracle; select globally with
    /// `XBOUND_SIM_ENGINE=levelized`.
    Levelized,
    /// Compiled backend: the netlist is levelized once, structurally
    /// identical logic cones are hash-consed into shared value classes, and
    /// the result is a flat SoA bytecode program of word-wise
    /// [`xbound_logic::LaneVal`] ops executed by a tight per-kind run loop —
    /// no per-gate dispatch, no fanout-index chasing. Select globally with
    /// `XBOUND_SIM_ENGINE=compiled`.
    Compiled,
}

impl EvalMode {
    /// Every value `XBOUND_SIM_ENGINE` accepts, for error messages.
    pub const ACCEPTED: &'static str = "event, event-driven, levelized, oracle, compiled";

    /// Parses an `XBOUND_SIM_ENGINE` value (case-insensitive).
    ///
    /// # Errors
    ///
    /// Unknown values are a hard error listing the accepted spellings —
    /// a typo must never silently fall back to the default engine.
    pub fn parse(s: &str) -> Result<EvalMode, String> {
        if s.eq_ignore_ascii_case("event") || s.eq_ignore_ascii_case("event-driven") {
            Ok(EvalMode::EventDriven)
        } else if s.eq_ignore_ascii_case("levelized") || s.eq_ignore_ascii_case("oracle") {
            Ok(EvalMode::Levelized)
        } else if s.eq_ignore_ascii_case("compiled") {
            Ok(EvalMode::Compiled)
        } else {
            Err(format!(
                "unknown XBOUND_SIM_ENGINE value {s:?}; accepted values: {}",
                EvalMode::ACCEPTED
            ))
        }
    }

    /// The engine's human-readable name (as printed by drivers and the
    /// service's `stats`).
    pub fn name(self) -> &'static str {
        match self {
            EvalMode::EventDriven => "event-driven",
            EvalMode::Levelized => "levelized",
            EvalMode::Compiled => "compiled",
        }
    }

    /// The process-wide default: whatever the `XBOUND_SIM_ENGINE`
    /// environment variable selects ([`EvalMode::EventDriven`] when unset).
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value (see [`EvalMode::parse`]).
    pub fn from_env() -> EvalMode {
        match std::env::var("XBOUND_SIM_ENGINE") {
            Ok(v) => match EvalMode::parse(&v) {
                Ok(mode) => mode,
                Err(e) => panic!("{e}"),
            },
            Err(_) => EvalMode::EventDriven,
        }
    }
}

/// How a memory region behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// Read-only (program memory); writes are ignored.
    Rom,
    /// Read-write data memory.
    Ram,
    /// Input port: read-only from the processor's perspective; contents are
    /// set by the harness (concrete for profiling, all-X for symbolic runs).
    Port,
}

/// A word-addressed behavioral memory region on the external bus.
///
/// Addresses are byte addresses (MSP430 convention); each region holds
/// 16-bit words; even alignment is assumed.
#[derive(Debug, Clone, PartialEq)]
pub struct MemRegion {
    name: String,
    kind: RegionKind,
    base: u16,
    data: Vec<XWord>,
}

impl MemRegion {
    /// Creates a region of `words` 16-bit words starting at byte address
    /// `base`, initialized to all-X (uninitialized memory).
    pub fn new(name: impl Into<String>, kind: RegionKind, base: u16, words: usize) -> MemRegion {
        MemRegion {
            name: name.into(),
            kind,
            base,
            data: vec![XWord::ALL_X; words],
        }
    }

    /// Region name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Region kind.
    pub fn kind(&self) -> RegionKind {
        self.kind
    }

    /// First byte address.
    pub fn base(&self) -> u16 {
        self.base
    }

    /// Size in 16-bit words.
    pub fn words(&self) -> usize {
        self.data.len()
    }

    /// `true` if byte address `addr` falls inside the region.
    pub fn contains(&self, addr: u16) -> bool {
        addr >= self.base && ((addr - self.base) as usize) / 2 < self.data.len()
    }

    /// Reads the word at byte address `addr` (X when out of range).
    pub fn read(&self, addr: u16) -> XWord {
        if addr < self.base {
            return XWord::ALL_X;
        }
        let off = ((addr - self.base) as usize) / 2;
        self.data.get(off).copied().unwrap_or(XWord::ALL_X)
    }

    /// Writes the word at byte address `addr` (out-of-range writes ignored).
    pub fn write(&mut self, addr: u16, value: XWord) {
        if addr < self.base {
            return;
        }
        let off = ((addr - self.base) as usize) / 2;
        if let Some(slot) = self.data.get_mut(off) {
            *slot = value;
        }
    }

    /// Fills the whole region with one value.
    pub fn fill(&mut self, value: XWord) {
        self.data.fill(value);
    }

    /// Loads consecutive words starting at byte address `addr`.
    pub fn load(&mut self, addr: u16, words: &[u16]) {
        for (i, w) in words.iter().enumerate() {
            self.write(addr.wrapping_add((i * 2) as u16), XWord::from_u16(*w));
        }
    }

    /// Raw word storage.
    pub fn data(&self) -> &[XWord] {
        &self.data
    }

    /// Mutable raw word storage.
    pub fn data_mut(&mut self) -> &mut [XWord] {
        &mut self.data
    }
}

/// Net-level description of the external memory bus of a design.
///
/// `rdata` nets must be primary inputs of the netlist; the simulator forces
/// them each cycle from the memory regions. `addr`, `wdata` and `wen` are
/// driven by the netlist and must not combinationally depend on `rdata`.
#[derive(Debug, Clone, Default)]
pub struct BusSpec {
    /// Byte-address nets (LSB first, 16 nets).
    pub addr: Vec<NetId>,
    /// Write-data nets (LSB first, 16 nets).
    pub wdata: Vec<NetId>,
    /// Read-data nets — primary inputs forced by the simulator.
    pub rdata: Vec<NetId>,
    /// Write-enable net (no writes ever happen when `None`).
    pub wen: Option<NetId>,
}

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// `rdata` feedback failed to settle: the bus address combinationally
    /// depends on read data.
    BusNotSettled,
    /// A bus net list has the wrong width or wiring.
    BadBusSpec {
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BusNotSettled => {
                write!(f, "bus address depends combinationally on read data")
            }
            SimError::BadBusSpec { message } => write!(f, "bad bus spec: {message}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Snapshot of all architectural simulator state (flip-flops + memories).
///
/// Used by the symbolic explorer for DFS over the execution tree and for
/// memoization keys (see [`MachineState::content_hash`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineState {
    ffs: Vec<Lv>,
    mems: Vec<Vec<XWord>>,
    cycle: u64,
}

impl MachineState {
    /// Assembles a snapshot from parts — the inverse of
    /// [`MachineState::ffs`] / [`MachineState::mems`] / *cycle*, used by
    /// the symbolic explorer's subtree memo to reconstruct a recorded
    /// post-fork state from a start state plus a word-level delta.
    pub fn from_parts(ffs: Vec<Lv>, mems: Vec<Vec<XWord>>, cycle: u64) -> MachineState {
        MachineState { ffs, mems, cycle }
    }

    /// Simulation cycle at which the snapshot was taken.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Flip-flop values (ordered by the netlist's sequential gate list).
    pub fn ffs(&self) -> &[Lv] {
        &self.ffs
    }

    /// Memory contents, `[region][word]`, in the engine's region order.
    pub fn mems(&self) -> &[Vec<XWord>] {
        &self.mems
    }

    /// 64-bit content hash over flip-flops and memories (cycle excluded),
    /// usable as a memoization key.
    pub fn content_hash(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x100000001b3);
        };
        for v in &self.ffs {
            mix(v.code() as u64 + 1);
        }
        for m in &self.mems {
            for w in m {
                mix(((w.val_plane() as u64) << 16) | w.unk_plane() as u64 | 1 << 40);
            }
        }
        h
    }

    /// Lattice subsumption: `self` covers `other` when every flip-flop and
    /// memory word covers the counterpart (equal, or X where they differ).
    ///
    /// # Panics
    ///
    /// Panics if the two states come from differently-shaped machines.
    pub fn covers(&self, other: &MachineState) -> bool {
        assert_eq!(self.ffs.len(), other.ffs.len(), "machine shape mismatch");
        if !self.ffs.iter().zip(&other.ffs).all(|(a, b)| a.covers(*b)) {
            return false;
        }
        self.mems
            .iter()
            .zip(&other.mems)
            .all(|(ma, mb)| ma.len() == mb.len() && ma.iter().zip(mb).all(|(a, b)| a.covers(*b)))
    }

    /// Lattice join (in place): after the call, `self` covers both inputs.
    ///
    /// The widening heuristic of the symbolic explorer uses this to merge
    /// states at a hot fork PC — conservative per the paper's Chapter 6
    /// (more Xs only widen the activity superset).
    ///
    /// # Panics
    ///
    /// Panics if the two states come from differently-shaped machines.
    pub fn join_in_place(&mut self, other: &MachineState) {
        assert_eq!(self.ffs.len(), other.ffs.len(), "machine shape mismatch");
        for (a, b) in self.ffs.iter_mut().zip(&other.ffs) {
            *a = a.join(*b);
        }
        for (ma, mb) in self.mems.iter_mut().zip(&other.mems) {
            for (a, b) in ma.iter_mut().zip(mb) {
                *a = a.join(*b);
            }
        }
    }
}

/// One memory word a lane consulted while settling a cycle: the value of
/// `regions[region][offset]` at read time. Emitted by the engine when
/// [`Engine::set_mem_access_logging`] is on; the symbolic explorer's
/// subtree memo collects these into a path's *read footprint* (the exact
/// set of memory words its outcome depends on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRead {
    /// Lane that performed the read.
    pub lane: u8,
    /// Region index within the engine's (per-lane) region set.
    pub region: u16,
    /// Word offset within the region.
    pub offset: u32,
    /// The word value observed.
    pub value: XWord,
}

/// One memory word a lane stored to at a commit. Reads of a word the
/// same path already wrote are *self-satisfied* and excluded from its
/// footprint, so footprint consumers track these alongside [`MemRead`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemWrite {
    /// Lane that performed the write.
    pub lane: u8,
    /// Region index within the engine's (per-lane) region set.
    pub region: u16,
    /// Word offset within the region.
    pub offset: u32,
}

/// Reads `addr` from a region set, joining candidates when the address
/// carries a bounded number of X bits (all-X past the bound, or when no
/// region matches). Shared by the scalar and batched simulators.
///
/// `sink` observes `(region index, word offset, value)` for every word
/// actually consulted — reads whose result is independent of memory
/// content (out-of-range, or an address too unknown to enumerate) emit
/// nothing. The non-logging [`read_regions`] wrapper passes a no-op sink
/// that monomorphizes away.
pub(crate) fn read_regions_with<F: FnMut(u16, u32, XWord)>(
    mems: &[MemRegion],
    addr: XWord,
    sink: &mut F,
) -> XWord {
    match addr.to_u16() {
        Some(a) => {
            for (ri, m) in mems.iter().enumerate() {
                if m.contains(a) {
                    let v = m.read(a);
                    sink(ri as u16, ((a - m.base()) / 2) as u32, v);
                    return v;
                }
            }
            XWord::ALL_X
        }
        None if addr.x_count() <= 4 => {
            let mut acc: Option<XWord> = None;
            for cand in enumerate_addresses(addr) {
                let v = read_regions_with(mems, XWord::from_u16(cand), sink);
                acc = Some(match acc {
                    None => v,
                    Some(prev) => prev.join(v),
                });
            }
            acc.unwrap_or(XWord::ALL_X)
        }
        None => XWord::ALL_X,
    }
}

pub(crate) fn read_regions(mems: &[MemRegion], addr: XWord) -> XWord {
    read_regions_with(mems, addr, &mut |_, _, _| {})
}

/// Applies one bus write to a region set: definite for `wen == 1`, joined
/// ("maybe written") for `wen == X`, candidate-enumerated or smeared for
/// X addresses. Shared by the scalar and batched simulators.
///
/// `read_sink` / `write_sink` observe the words involved, for footprint
/// consumers. A *joined* write stores `old.join(wdata)` — its result
/// depends on the word's prior content, so the old value is reported as
/// a read before the write; a definite overwrite reports only the write.
pub(crate) fn write_regions_with<R, W>(
    mems: &mut [MemRegion],
    wen: Lv,
    addr: XWord,
    wdata: XWord,
    read_sink: &mut R,
    write_sink: &mut W,
) where
    R: FnMut(u16, u32, XWord),
    W: FnMut(u16, u32),
{
    if wen == Lv::Zero {
        return;
    }
    let maybe = wen == Lv::X;
    match addr.to_u16() {
        Some(a) => {
            for (ri, m) in mems.iter_mut().enumerate() {
                if m.contains(a) && m.kind() == RegionKind::Ram {
                    let off = ((a - m.base()) / 2) as u32;
                    let new = if maybe {
                        let old = m.read(a);
                        read_sink(ri as u16, off, old);
                        old.join(wdata)
                    } else {
                        wdata
                    };
                    write_sink(ri as u16, off);
                    m.write(a, new);
                }
            }
        }
        None if addr.x_count() <= 4 => {
            // A bounded set of candidate addresses: each may be written.
            for cand in enumerate_addresses(addr) {
                for (ri, m) in mems.iter_mut().enumerate() {
                    if m.contains(cand) && m.kind() == RegionKind::Ram {
                        let off = ((cand - m.base()) / 2) as u32;
                        let old = m.read(cand);
                        read_sink(ri as u16, off, old);
                        write_sink(ri as u16, off);
                        m.write(cand, old.join(wdata));
                    }
                }
            }
        }
        None => {
            // Unknown address: conservatively smear all RAM regions.
            for (ri, m) in mems.iter_mut().enumerate() {
                if m.kind() == RegionKind::Ram {
                    for (off, w) in m.data_mut().iter_mut().enumerate() {
                        read_sink(ri as u16, off as u32, *w);
                        write_sink(ri as u16, off as u32);
                        *w = w.join(wdata);
                    }
                }
            }
        }
    }
}

pub(crate) fn write_regions(mems: &mut [MemRegion], wen: Lv, addr: XWord, wdata: XWord) {
    write_regions_with(mems, wen, addr, wdata, &mut |_, _, _| {}, &mut |_, _| {});
}

/// Enumerates all concrete addresses matching a partially-X address.
///
/// Intended for small X counts; callers bound `addr.x_count()`.
pub fn enumerate_addresses(addr: XWord) -> Vec<u16> {
    let x_bits: Vec<usize> = (0..16).filter(|&i| addr.bit(i) == Lv::X).collect();
    let base = addr.val_plane();
    (0..(1u32 << x_bits.len()))
        .map(|combo| {
            let mut a = base;
            for (j, &bit) in x_bits.iter().enumerate() {
                if (combo >> j) & 1 == 1 {
                    a |= 1 << bit;
                }
            }
            a
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbound_netlist::rtl::Rtl;
    use xbound_netlist::Netlist;

    fn counter() -> Netlist {
        let mut r = Rtl::new("cnt");
        let (h, q) = r.reg("c", 4);
        let one = r.one();
        let (nx, _) = r.inc(&q, one);
        r.reg_next(h, &nx);
        r.output("q", &q);
        r.finish().unwrap()
    }

    fn reg_word(sim: &Simulator<'_>, nl: &Netlist, prefix: &str, width: usize) -> XWord {
        let nets: Vec<NetId> = (0..width)
            .map(|i| nl.find_net(&format!("{prefix}[{i}]")).unwrap())
            .collect();
        sim.value_word(&nets)
    }

    #[test]
    fn eval_mode_parse_accepts_every_documented_spelling() {
        for (s, want) in [
            ("event", EvalMode::EventDriven),
            ("event-driven", EvalMode::EventDriven),
            ("EVENT-DRIVEN", EvalMode::EventDriven),
            ("levelized", EvalMode::Levelized),
            ("oracle", EvalMode::Levelized),
            ("Oracle", EvalMode::Levelized),
            ("compiled", EvalMode::Compiled),
            ("COMPILED", EvalMode::Compiled),
        ] {
            assert_eq!(EvalMode::parse(s), Ok(want), "spelling {s:?}");
        }
    }

    #[test]
    fn eval_mode_parse_rejects_unknown_values_listing_accepted() {
        for bad in ["", "compile", "evnt", "levelised", "fast", "0"] {
            let err = EvalMode::parse(bad).expect_err("must be a hard error");
            assert!(err.contains(&format!("{bad:?}")), "names the value: {err}");
            assert!(
                err.contains(EvalMode::ACCEPTED),
                "lists accepted values: {err}"
            );
        }
    }

    #[test]
    fn counter_counts() {
        let nl = counter();
        let mut sim = Simulator::new(&nl);
        sim.reset(2);
        sim.step();
        sim.step();
        for expect in 0u16..10 {
            sim.eval().unwrap();
            assert_eq!(
                reg_word(&sim, &nl, "top/c_q", 4).to_u16(),
                Some(expect & 0xF)
            );
            sim.commit();
        }
    }

    #[test]
    fn force_and_release() {
        let nl = counter();
        let mut sim = Simulator::new(&nl);
        let q0 = nl.find_net("top/c_q[0]").unwrap();
        // Forcing a flip-flop output takes effect at eval and persists in the
        // stored state after release (hardware force semantics).
        sim.force(q0, Some(Lv::X));
        sim.eval().unwrap();
        assert_eq!(sim.value(q0), Lv::X);
        sim.force(q0, None);
        sim.eval().unwrap();
        assert_eq!(sim.value(q0), Lv::X, "FF holds the forced value");

        // Forcing a combinational net overrides its driver and releases
        // cleanly: the increment carry chain recomputes from the FF values.
        let mut sim = Simulator::new(&nl);
        sim.reset(1);
        sim.step();
        sim.eval().unwrap();
        let inc0 = nl.gate(nl.topo_order()[0]).output();
        let natural = sim.value(inc0);
        sim.force(inc0, Some(natural.not()));
        sim.eval().unwrap();
        assert_eq!(sim.value(inc0), natural.not());
        sim.force(inc0, None);
        sim.eval().unwrap();
        assert_eq!(sim.value(inc0), natural);
    }

    #[test]
    fn x_propagates_through_logic() {
        let mut r = Rtl::new("t");
        let a = r.input_bit("a");
        let b = r.input_bit("b");
        let y = r.and(a, b);
        let z = r.or(a, b);
        r.output_bit("y", y);
        r.output_bit("z", z);
        let nl = r.finish().unwrap();
        let mut sim = Simulator::new(&nl);
        let (an, bn) = (nl.find_net("a").unwrap(), nl.find_net("b").unwrap());
        let (yn, zn) = (nl.outputs()[0].1, nl.outputs()[1].1);
        sim.drive_input(an, Lv::X);
        sim.drive_input(bn, Lv::Zero);
        sim.eval().unwrap();
        assert_eq!(sim.value(yn), Lv::Zero, "X AND 0 = 0");
        assert_eq!(sim.value(zn), Lv::X, "X OR 0 = X");
        sim.drive_input(bn, Lv::One);
        sim.eval().unwrap();
        assert_eq!(sim.value(yn), Lv::X, "X AND 1 = X");
        assert_eq!(sim.value(zn), Lv::One, "X OR 1 = 1");
    }

    /// A little bus device: fetches ROM[pc], accumulates, pc += 2.
    fn bus_device() -> (Netlist, Vec<String>) {
        let mut r = Rtl::new("busdev");
        let rdata = r.input("rdata", 16);
        let (hp, pc) = r.reg("pc", 16);
        let (ha, acc) = r.reg("acc", 16);
        let two = r.lit(2, 16);
        let (pcn, _) = r.add(&pc, &two, None);
        r.reg_next(hp, &pcn);
        let (sum, _) = r.add(&acc, &rdata, None);
        r.reg_next(ha, &sum);
        let hi = r.lit(0xF000, 16);
        let addr = r.or_bus(&hi, &pc);
        let zero = r.zero();
        r.output("addr", &addr);
        r.output("acc", &acc);
        r.output_bit("wen", zero);
        let nl = r.finish().unwrap();
        (nl, vec![])
    }

    fn output_bus(nl: &Netlist, name: &str, width: usize) -> Vec<NetId> {
        (0..width)
            .map(|i| {
                nl.outputs()
                    .iter()
                    .find(|(n, _)| n == &format!("{name}[{i}]"))
                    .map(|(_, net)| *net)
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn bus_read_accumulates_rom() {
        let (nl, _) = bus_device();
        let addr = output_bus(&nl, "addr", 16);
        let rdata: Vec<NetId> = (0..16)
            .map(|i| nl.find_net(&format!("rdata[{i}]")).unwrap())
            .collect();
        let bus = BusSpec {
            addr,
            wdata: rdata.clone(), // unused (wen None)
            rdata,
            wen: None,
        };
        let mut rom = MemRegion::new("pmem", RegionKind::Rom, 0xF000, 8);
        rom.load(0xF000, &[5, 7, 11, 13]);
        let mut sim = Simulator::new(&nl);
        sim.attach_bus(bus, vec![rom]).unwrap();
        sim.reset(1);
        sim.step();
        for _ in 0..4 {
            sim.step();
        }
        sim.eval().unwrap();
        let acc = sim.value_word(&output_bus(&nl, "acc", 16));
        assert_eq!(acc.to_u16(), Some(5 + 7 + 11 + 13));
    }

    #[test]
    fn port_region_returns_x_when_unset() {
        let (nl, _) = bus_device();
        let addr = output_bus(&nl, "addr", 16);
        let rdata: Vec<NetId> = (0..16)
            .map(|i| nl.find_net(&format!("rdata[{i}]")).unwrap())
            .collect();
        let bus = BusSpec {
            addr,
            wdata: rdata.clone(),
            rdata,
            wen: None,
        };
        let port = MemRegion::new("inport", RegionKind::Port, 0xF000, 8);
        let mut sim = Simulator::new(&nl);
        sim.attach_bus(bus, vec![port]).unwrap();
        sim.reset(1);
        sim.step();
        sim.step();
        sim.step();
        sim.eval().unwrap();
        let acc = sim.value_word(&output_bus(&nl, "acc", 16));
        assert!(acc.has_x(), "accumulating X port data yields X");
    }

    #[test]
    fn bad_bus_spec_rejected() {
        let (nl, _) = bus_device();
        let mut sim = Simulator::new(&nl);
        let err = sim.attach_bus(BusSpec::default(), vec![]).unwrap_err();
        assert!(matches!(err, SimError::BadBusSpec { .. }));
        // rdata not primary inputs:
        let addr = output_bus(&nl, "addr", 16);
        let err2 = sim
            .attach_bus(
                BusSpec {
                    addr: addr.clone(),
                    wdata: addr.clone(),
                    rdata: addr.clone(),
                    wen: None,
                },
                vec![],
            )
            .unwrap_err();
        assert!(matches!(err2, SimError::BadBusSpec { .. }));
    }

    #[test]
    fn machine_state_round_trip() {
        let nl = counter();
        let mut sim = Simulator::new(&nl);
        sim.reset(1);
        for _ in 0..5 {
            sim.step();
        }
        let snap = sim.machine_state();
        for _ in 0..7 {
            sim.step();
        }
        let later = sim.machine_state();
        assert_ne!(snap.content_hash(), later.content_hash());
        sim.set_machine_state(&snap);
        assert_eq!(sim.machine_state().content_hash(), snap.content_hash());
        assert_eq!(sim.cycle(), snap.cycle());
    }

    #[test]
    fn state_covers_and_join() {
        let nl = counter();
        let mut sim = Simulator::new(&nl);
        sim.reset(1);
        sim.step();
        sim.step();
        let a = sim.machine_state();
        sim.step();
        let b = sim.machine_state();
        assert!(!a.covers(&b));
        let mut j = a.clone();
        j.join_in_place(&b);
        assert!(j.covers(&a));
        assert!(j.covers(&b));
        assert!(a.covers(&a));
    }

    #[test]
    fn enumerate_addresses_expands_x_bits() {
        let mut a = XWord::from_u16(0x0200);
        a.set_bit(1, Lv::X);
        a.set_bit(2, Lv::X);
        let mut addrs = enumerate_addresses(a);
        addrs.sort_unstable();
        assert_eq!(addrs, vec![0x0200, 0x0202, 0x0204, 0x0206]);
    }

    #[test]
    fn mem_region_rw() {
        let mut m = MemRegion::new("dmem", RegionKind::Ram, 0x0200, 4);
        assert!(m.contains(0x0200));
        assert!(m.contains(0x0206));
        assert!(!m.contains(0x0208));
        assert!(!m.contains(0x01FE));
        m.write(0x0202, XWord::from_u16(42));
        assert_eq!(m.read(0x0202).to_u16(), Some(42));
        assert_eq!(m.read(0x0204).to_u16(), None); // uninitialized = X
        m.fill(XWord::from_u16(0));
        assert_eq!(m.read(0x0204).to_u16(), Some(0));
    }

    #[test]
    fn x_address_write_smears_ram() {
        // Build a device that writes wdata to an X address.
        let mut r = Rtl::new("wsmear");
        let rdata = r.input("rdata", 16);
        let wen_in = r.input_bit("wen_in");
        let addr_in = r.input("addr_in", 16);
        let data_in = r.input("data_in", 16);
        // Pass-throughs so the bus sees netlist-driven values.
        let addr: Vec<_> = addr_in.clone();
        let _ = rdata;
        r.output("addr", &addr);
        r.output("wdata", &data_in);
        r.output_bit("wen", wen_in);
        let nl = r.finish().unwrap();
        let bus = BusSpec {
            addr: (0..16)
                .map(|i| nl.find_net(&format!("addr_in[{i}]")).unwrap())
                .collect(),
            wdata: (0..16)
                .map(|i| nl.find_net(&format!("data_in[{i}]")).unwrap())
                .collect(),
            rdata: (0..16)
                .map(|i| nl.find_net(&format!("rdata[{i}]")).unwrap())
                .collect(),
            wen: nl.find_net("wen_in"),
        };
        let mut ram = MemRegion::new("dmem", RegionKind::Ram, 0x0200, 4);
        ram.fill(XWord::from_u16(0));
        let mut sim = Simulator::new(&nl);
        sim.attach_bus(bus, vec![ram]).unwrap();
        // Drive a write of 0xFFFF to a fully X address.
        for i in 0..16 {
            let n = nl.find_net(&format!("addr_in[{i}]")).unwrap();
            sim.drive_input(n, Lv::X);
            let d = nl.find_net(&format!("data_in[{i}]")).unwrap();
            sim.drive_input(d, Lv::One);
        }
        sim.drive_input(nl.find_net("wen_in").unwrap(), Lv::One);
        sim.step();
        let dmem = sim.mem("dmem").unwrap();
        for w in dmem.data() {
            assert!(w.has_x(), "smeared word must be X where it differed");
        }
    }
}
