//! The compiled backend's executor: a [`CompiledNetlist`] program (built
//! once per (netlist, cut set) by `xbound_netlist::compile`) plus the dense
//! [`LaneVal`] slot array it evaluates over.
//!
//! A settle in compiled mode is gather → execute → scatter:
//!
//! 1. **gather** copies every leaf slot (primary inputs, flip-flop outputs)
//!    out of the engine's frame — after the engine applied drives, reset,
//!    and forces to those nets, so leaf forces flow in for free;
//! 2. **execute** runs the program's kind-homogeneous op runs in level
//!    order through the word-wise run kernels in `xbound_logic::kernels`
//!    (one dispatch per run, no per-gate branching), applying force fixups
//!    to cut slots between levels;
//! 3. the engine **scatters** every combinationally driven net's slot back
//!    into the frame through its levelized store (change-logged,
//!    scalar-mirrored), which is what makes the result byte-identical to
//!    the interpreting engines.
//!
//! When the engine has a bus, the executor also carries the **read-data
//! cone** ([`CompiledNetlist::cone_from_leaves`] of the rdata nets): each
//! bus settle iteration rewrites only the read-data nets, so only their
//! cone re-runs over the same slot array — untouched slots still hold the
//! full pass's values.

use std::collections::BTreeSet;

use xbound_logic::{kernels, BatchFrame, LaneVal};
use xbound_netlist::compile::{compile, CompileStats, CompiledNetlist, Step};
use xbound_netlist::{CellKind, NetId, Netlist};

use crate::engine::LaneForce;

/// A compiled program and its slot state, owned by one engine.
#[derive(Debug, Clone)]
pub(crate) struct CompiledExec {
    program: CompiledNetlist,
    /// Sub-program re-run per bus settle iteration (empty leaf set — and
    /// therefore an empty program — when the engine has no bus).
    rdata_cone: CompiledNetlist,
    slots: Vec<LaneVal>,
}

impl CompiledExec {
    /// Compiles `nl` with the given force-cut set; `rdata` names the
    /// bus-owned read-data nets whose cone re-runs during bus settling.
    pub(crate) fn new(nl: &Netlist, cuts: &BTreeSet<NetId>, rdata: &[NetId]) -> CompiledExec {
        let program = compile(nl, cuts);
        let rdata_cone = program.cone_from_leaves(rdata);
        let slots = vec![LaneVal::ZERO; program.slot_count()];
        CompiledExec {
            program,
            rdata_cone,
            slots,
        }
    }

    pub(crate) fn stats(&self) -> CompileStats {
        self.program.stats()
    }

    /// `(net, slot)` pairs to write back after [`CompiledExec::execute`].
    pub(crate) fn scatter(&self) -> &[(NetId, u32)] {
        self.program.scatter()
    }

    /// `(net, slot)` pairs to write back after
    /// [`CompiledExec::execute_rdata_cone`].
    pub(crate) fn cone_scatter(&self) -> &[(NetId, u32)] {
        self.rdata_cone.scatter()
    }

    pub(crate) fn slot(&self, slot: u32) -> LaneVal {
        self.slots[slot as usize]
    }

    /// Ops evaluated by one full [`CompiledExec::execute`].
    pub(crate) fn op_count(&self) -> u64 {
        self.program.op_count() as u64
    }

    /// Ops evaluated by one [`CompiledExec::execute_rdata_cone`].
    pub(crate) fn cone_op_count(&self) -> u64 {
        self.rdata_cone.op_count() as u64
    }

    /// Loads every leaf slot from the frame.
    pub(crate) fn gather(&mut self, frame: &BatchFrame) {
        for &(net, slot) in self.program.gather() {
            self.slots[slot as usize] = frame.get(net.index());
        }
    }

    /// Evaluates the whole program (all lanes at once).
    pub(crate) fn execute(&mut self, mask: u64, forces: &[LaneForce]) {
        run_program(&self.program, &mut self.slots, mask, forces);
    }

    /// Re-loads the read-data leaf slots and re-evaluates their cone over
    /// the current slot state (valid since the last full
    /// [`CompiledExec::execute`]).
    pub(crate) fn execute_rdata_cone(
        &mut self,
        frame: &BatchFrame,
        mask: u64,
        forces: &[LaneForce],
    ) {
        for &(net, slot) in self.rdata_cone.gather() {
            self.slots[slot as usize] = frame.get(net.index());
        }
        run_program(&self.rdata_cone, &mut self.slots, mask, forces);
    }
}

fn run_program(program: &CompiledNetlist, slots: &mut [LaneVal], mask: u64, forces: &[LaneForce]) {
    let ops = program.ops();
    for step in program.steps() {
        match *step {
            Step::Run(r) => {
                let lo = r.start as usize;
                let hi = lo + r.len as usize;
                let out = &ops.out[lo..hi];
                let a = &ops.a[lo..hi];
                let b = &ops.b[lo..hi];
                let c = &ops.c[lo..hi];
                match r.kind {
                    CellKind::Tie0 => kernels::run_tie0(slots, out),
                    CellKind::Tie1 => kernels::run_tie1(slots, out, mask),
                    CellKind::Buf => kernels::run_buf(slots, out, a),
                    CellKind::Inv => kernels::run_inv(slots, out, a, mask),
                    CellKind::And2 => kernels::run_and2(slots, out, a, b),
                    CellKind::Or2 => kernels::run_or2(slots, out, a, b),
                    CellKind::Nand2 => kernels::run_nand2(slots, out, a, b, mask),
                    CellKind::Nor2 => kernels::run_nor2(slots, out, a, b, mask),
                    CellKind::Xor2 => kernels::run_xor2(slots, out, a, b),
                    CellKind::Xnor2 => kernels::run_xnor2(slots, out, a, b, mask),
                    CellKind::Mux2 => kernels::run_mux2(slots, out, a, b, c),
                    CellKind::Aoi21 => kernels::run_aoi21(slots, out, a, b, c, mask),
                    CellKind::Oai21 => kernels::run_oai21(slots, out, a, b, c, mask),
                    CellKind::Dff | CellKind::Dffe | CellKind::Dffr | CellKind::Dffre => {
                        unreachable!("sequential gate in compiled program")
                    }
                }
            }
            Step::ForceFixup { net, slot } => {
                let i = slot as usize;
                slots[i] = forces[net.index()].apply(slots[i]);
            }
        }
    }
}
