//! Differential test: the batched bit-parallel engine against independent
//! scalar simulators.
//!
//! Lanes of a [`BatchSimulator`] never interact, so lane `l` of every
//! settled frame must be bit-identical to a scalar [`Simulator`] run
//! under lane `l`'s stimulus — for random designs, random *per-lane*
//! input drives, broadcast forces/releases, and snapshot/restore
//! mid-sequence (the scalar differential test's op mix, widened by one
//! lane axis).

use proptest::prelude::*;
use xbound_logic::{Lv, XWord};
use xbound_netlist::rtl::Rtl;
use xbound_netlist::{CellKind, NetId, Netlist};
use xbound_sim::{
    BatchMachineState, BatchSimulator, BusSpec, MachineState, MemRegion, RegionKind, Simulator,
};

/// Builds a random DAG netlist (combinational + flip-flop mix) from a
/// seed — same generator as the scalar engine differential test.
fn random_netlist(n_gates: usize, seed: u64) -> Netlist {
    let mut nl = Netlist::new("rand");
    let mut rng = seed | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let a = nl.add_input("in_a");
    let b = nl.add_input("in_b");
    let c = nl.add_input("in_c");
    let mut nets = vec![a, b, c];
    let kinds = [
        CellKind::Buf,
        CellKind::Inv,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Mux2,
        CellKind::Aoi21,
        CellKind::Oai21,
        CellKind::Dff,
        CellKind::Dffe,
        CellKind::Dffr,
        CellKind::Dffre,
    ];
    for gi in 0..n_gates {
        let kind = kinds[(next() as usize) % kinds.len()];
        let ins: Vec<NetId> = (0..kind.input_count())
            .map(|_| nets[(next() as usize) % nets.len()])
            .collect();
        let y = nl.add_net(format!("n{gi}"));
        nl.add_gate(kind, format!("g{gi}"), &ins, y).expect("gate");
        nets.push(y);
    }
    nl.add_output("out", *nets.last().expect("nonempty"));
    nl.finalize().expect("random DAG is acyclic")
}

fn lv_of(x: u64) -> Lv {
    match x % 3 {
        0 => Lv::Zero,
        1 => Lv::One,
        _ => Lv::X,
    }
}

/// Asserts every lane of the settled batch frame and committed machine
/// state against its scalar twin.
fn assert_lanes_match(
    batch: &BatchSimulator<'_>,
    scalars: &[Simulator<'_>],
    step: usize,
) -> Result<(), TestCaseError> {
    for (l, s) in scalars.iter().enumerate() {
        let bf = batch.lane_frame(l);
        prop_assert_eq!(
            &bf,
            s.frame(),
            "lane {} diverges at step {} (diff nets: {:?})",
            l,
            step,
            bf.diff_indices(s.frame())
        );
        prop_assert_eq!(batch.lane_machine_state(l), s.machine_state());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random designs under random per-lane stimulus, broadcast
    /// forces/releases, and snapshot/restore: every batch lane is
    /// bit-identical to an independent scalar run, every cycle.
    #[test]
    fn batch_lanes_match_scalar_runs(
        n_gates in 4usize..60,
        seed in any::<u64>(),
        steps in 4usize..30,
        lanes in 1usize..=8,
    ) {
        let nl = random_netlist(n_gates, seed);
        let mut batch = BatchSimulator::new(&nl, lanes);
        let mut scalars: Vec<Simulator<'_>> =
            (0..lanes).map(|_| Simulator::new(&nl)).collect();

        let mut rng = seed ^ 0xD1B5_4A32_D192_ED03 | 1;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut snapshots: Vec<(BatchMachineState, Vec<MachineState>)> = Vec::new();
        for step in 0..steps {
            match next() % 10 {
                // Per-lane random drives on a random input — the batched
                // stimulus axis the scalar test cannot exercise.
                0..=3 => {
                    let inputs = nl.inputs();
                    let n = inputs[(next() as usize) % inputs.len()];
                    for (l, s) in scalars.iter_mut().enumerate() {
                        let v = lv_of(next());
                        batch.drive_input_lane(n, l, v);
                        s.drive_input(n, v);
                    }
                }
                // Broadcast force on a random net.
                4..=5 => {
                    let n = NetId((next() % nl.net_count() as u64) as u32);
                    let v = lv_of(next());
                    batch.force(n, Some(v));
                    for s in scalars.iter_mut() {
                        s.force(n, Some(v));
                    }
                }
                // Release a random net's force.
                6..=7 => {
                    let n = NetId((next() % nl.net_count() as u64) as u32);
                    batch.force(n, None);
                    for s in scalars.iter_mut() {
                        s.force(n, None);
                    }
                }
                // Snapshot all lanes + all scalar twins together.
                8 => snapshots.push((
                    batch.machine_state(),
                    scalars.iter().map(|s| s.machine_state()).collect(),
                )),
                // Restore a random earlier snapshot mid-sequence.
                _ => {
                    if !snapshots.is_empty() {
                        let (b, ss) = &snapshots[(next() as usize) % snapshots.len()];
                        batch.set_machine_state(b);
                        for (s, snap) in scalars.iter_mut().zip(ss) {
                            s.set_machine_state(snap);
                        }
                    }
                }
            }
            batch.eval().expect("no bus: settles");
            for s in scalars.iter_mut() {
                s.eval().expect("no bus: settles");
            }
            batch.commit();
            for s in scalars.iter_mut() {
                s.commit();
            }
            assert_lanes_match(&batch, &scalars, step)?;
        }
    }

    /// Per-lane forces, per-lane machine-state restores, and masked
    /// commits (the batched symbolic explorer's op mix): every batch lane
    /// stays bit-identical to an independent scalar run that mirrors that
    /// lane's forces/restores — and a commit-masked (frozen) lane matches
    /// a scalar twin that simply skipped the clock edge.
    #[test]
    fn per_lane_forces_and_restores_match_scalar_runs(
        n_gates in 4usize..60,
        seed in any::<u64>(),
        steps in 4usize..30,
        lanes in 2usize..=8,
    ) {
        let nl = random_netlist(n_gates, seed);
        let mut batch = BatchSimulator::new(&nl, lanes);
        let mut scalars: Vec<Simulator<'_>> =
            (0..lanes).map(|_| Simulator::new(&nl)).collect();

        let mut rng = seed ^ 0x9E37_79B9_7F4A_7C15 | 1;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut snapshots: Vec<Vec<MachineState>> = Vec::new();
        for step in 0..steps {
            match next() % 10 {
                // Force a random net in ONE lane only; the scalar twin of
                // that lane mirrors it, the others are untouched.
                0..=2 => {
                    let n = NetId((next() % nl.net_count() as u64) as u32);
                    let l = (next() as usize) % lanes;
                    let v = lv_of(next());
                    batch.force_lane(n, l, Some(v));
                    scalars[l].force(n, Some(v));
                }
                // Release one lane's force.
                3..=4 => {
                    let n = NetId((next() % nl.net_count() as u64) as u32);
                    let l = (next() as usize) % lanes;
                    batch.force_lane(n, l, None);
                    scalars[l].force(n, None);
                }
                // Per-lane drive churn keeps lanes diverging.
                5..=6 => {
                    let inputs = nl.inputs();
                    let n = inputs[(next() as usize) % inputs.len()];
                    for (l, s) in scalars.iter_mut().enumerate() {
                        let v = lv_of(next());
                        batch.drive_input_lane(n, l, v);
                        s.drive_input(n, v);
                    }
                }
                // Snapshot every lane as scalar machine states.
                7 => snapshots.push(
                    (0..lanes).map(|l| batch.lane_machine_state(l)).collect(),
                ),
                // Restore an earlier snapshot into ONE lane only.
                _ => {
                    if !snapshots.is_empty() {
                        let snap = &snapshots[(next() as usize) % snapshots.len()];
                        let l = (next() as usize) % lanes;
                        batch.set_lane_machine_state(l, &snap[l]);
                        scalars[l].set_machine_state(&snap[l]);
                    }
                }
            }
            // One lane is frozen this pass (no clock edge); its scalar
            // twin skips commit. The rest step normally.
            let frozen = (next() as usize) % lanes;
            let mask = batch.frame().lane_mask() & !(1u64 << frozen);
            batch.eval().expect("no bus: settles");
            let batch_next = batch.ff_next_values();
            batch.commit_with_next_masked(&batch_next, mask);
            for (l, s) in scalars.iter_mut().enumerate() {
                s.eval().expect("no bus: settles");
                if l != frozen {
                    s.commit();
                }
            }
            for (l, s) in scalars.iter_mut().enumerate() {
                // Settle both sides before comparing (the frozen scalar
                // twin never committed, so its frame is already settled).
                s.eval().expect("settles");
                batch.eval().expect("settles");
                let bf = batch.lane_frame(l);
                prop_assert_eq!(
                    &bf,
                    s.frame(),
                    "lane {} diverges at step {} (frozen {}, diff nets: {:?})",
                    l,
                    step,
                    frozen,
                    bf.diff_indices(s.frame())
                );
            }
        }
    }

    /// Same agreement over a bus device with per-lane memories (ROM +
    /// RAM + port), X-valued addresses, and write smears.
    #[test]
    fn batch_lanes_match_scalar_runs_on_bus_device(
        seed in any::<u64>(),
        steps in 4usize..24,
        lanes in 2usize..=6,
    ) {
        let mut r = Rtl::new("busdev");
        let rdata = r.input("rdata", 16);
        let wen_in = r.input_bit("wen_in");
        let addr_in = r.input("addr_in", 16);
        let data_in = r.input("data_in", 16);
        let (ha, acc) = r.reg("acc", 16);
        let (sum, _) = r.add(&acc, &rdata, None);
        r.reg_next(ha, &sum);
        r.output("addr", &addr_in);
        r.output("wdata", &data_in);
        r.output_bit("wen", wen_in);
        r.output("acc", &acc);
        let nl = r.finish().expect("builds");
        let bus = || BusSpec {
            addr: (0..16)
                .map(|i| nl.find_net(&format!("addr_in[{i}]")).expect("net"))
                .collect(),
            wdata: (0..16)
                .map(|i| nl.find_net(&format!("data_in[{i}]")).expect("net"))
                .collect(),
            rdata: (0..16)
                .map(|i| nl.find_net(&format!("rdata[{i}]")).expect("net"))
                .collect(),
            wen: nl.find_net("wen_in"),
        };
        // Per-lane ROM contents diverge below; RAM/port start identical.
        let mems = |lane: usize| {
            let mut rom = MemRegion::new("rom", RegionKind::Rom, 0xF000, 8);
            let base = (lane as u16 + 1) * 3;
            rom.load(0xF000, &[base, base + 1, base + 2, base + 3]);
            let mut ram = MemRegion::new("ram", RegionKind::Ram, 0x0200, 8);
            ram.fill(XWord::from_u16(0));
            let port = MemRegion::new("port", RegionKind::Port, 0x0020, 4);
            vec![rom, ram, port]
        };
        let mut batch = BatchSimulator::new(&nl, lanes);
        batch.attach_bus(bus(), mems(0)).expect("bus ok");
        let mut scalars: Vec<Simulator<'_>> = (0..lanes)
            .map(|l| {
                let mut s = Simulator::new(&nl);
                s.attach_bus(bus(), mems(l)).expect("bus ok");
                s
            })
            .collect();
        for l in 0..lanes {
            // Diverge the batch lanes' ROMs to match their scalar twins.
            *batch.mem_mut_lane("rom", l).expect("rom") = mems(l)[0].clone();
        }

        let mut rng = seed | 1;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut snapshots: Vec<(BatchMachineState, Vec<MachineState>)> = Vec::new();
        for step in 0..steps {
            // Per-lane: point the address at one of the regions (or
            // nowhere) with a chance of X bits; random write data/enable.
            for (l, s) in scalars.iter_mut().enumerate() {
                let base = [0xF000u16, 0x0200, 0x0020, 0x4000][(next() % 4) as usize];
                let addr = base + ((next() % 8) as u16) * 2;
                for i in 0..16 {
                    let n = nl.find_net(&format!("addr_in[{i}]")).expect("net");
                    let v = if next() % 8 == 0 {
                        Lv::X
                    } else {
                        Lv::from_bool((addr >> i) & 1 == 1)
                    };
                    batch.drive_input_lane(n, l, v);
                    s.drive_input(n, v);
                    let d = nl.find_net(&format!("data_in[{i}]")).expect("net");
                    let dv = lv_of(next());
                    batch.drive_input_lane(d, l, dv);
                    s.drive_input(d, dv);
                }
                let wen = lv_of(next());
                let wn = nl.find_net("wen_in").expect("net");
                batch.drive_input_lane(wn, l, wen);
                s.drive_input(wn, wen);
            }
            if next() % 5 == 0 {
                snapshots.push((
                    batch.machine_state(),
                    scalars.iter().map(|s| s.machine_state()).collect(),
                ));
            }
            if next() % 5 == 0 && !snapshots.is_empty() {
                let (b, ss) = &snapshots[(next() as usize) % snapshots.len()];
                batch.set_machine_state(b);
                for (s, snap) in scalars.iter_mut().zip(ss) {
                    s.set_machine_state(snap);
                }
            }
            batch.eval().expect("bus settles");
            for s in scalars.iter_mut() {
                s.eval().expect("bus settles");
            }
            batch.commit();
            for s in scalars.iter_mut() {
                s.commit();
            }
            assert_lanes_match(&batch, &scalars, step)?;
        }
    }
}
