//! Property tests: the RTL-built datapaths compute correct arithmetic, and
//! simulation is monotone under X-refinement — the foundation of the
//! paper's soundness argument (an X-valued run covers every concrete run).

use proptest::prelude::*;
use xbound_logic::{Lv, XWord};
use xbound_netlist::rtl::Rtl;
use xbound_netlist::{NetId, Netlist};
use xbound_sim::Simulator;

/// Builds a combinational device computing several datapath results.
type NamedBuses = Vec<(String, Vec<NetId>)>;

fn datapath() -> (Netlist, Vec<NetId>, Vec<NetId>, NamedBuses) {
    let mut r = Rtl::new("dp");
    let a = r.input("a", 16);
    let b = r.input("b", 16);
    let (sum, carry) = r.add(&a, &b, None);
    let (diff, borrow) = r.sub(&a, &b);
    let prod = r.mul(&a, &b);
    let eq = r.eq(&a, &b);
    let zero = r.is_zero(&a);
    r.output("sum", &sum);
    r.output_bit("carry", carry);
    r.output("diff", &diff);
    r.output_bit("borrow", borrow);
    r.output("prod", &prod);
    r.output_bit("eq", eq);
    r.output_bit("zero", zero);
    let outs = vec![
        ("sum".to_string(), sum),
        ("diff".to_string(), diff),
        ("prod_lo".to_string(), prod[0..16].to_vec()),
        ("prod_hi".to_string(), prod[16..32].to_vec()),
        ("carry".to_string(), vec![carry]),
        ("borrow".to_string(), vec![borrow]),
        ("eq".to_string(), vec![eq]),
        ("zero".to_string(), vec![zero]),
    ];
    let nl = r.finish().expect("builds");
    (nl, a, b, outs)
}

fn drive_word(sim: &mut Simulator<'_>, nets: &[NetId], w: XWord) {
    for (i, &n) in nets.iter().enumerate() {
        sim.drive_input(n, w.bit(i));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Adders, subtractors, the multiplier, and comparators built by the
    /// RTL lowering agree with machine arithmetic for all inputs.
    #[test]
    fn datapath_matches_machine_arithmetic(a in any::<u16>(), b in any::<u16>()) {
        let (nl, an, bn, outs) = datapath();
        let mut sim = Simulator::new(&nl);
        drive_word(&mut sim, &an, XWord::from_u16(a));
        drive_word(&mut sim, &bn, XWord::from_u16(b));
        sim.eval().expect("settles");
        let read = |name: &str| -> XWord {
            let nets = &outs.iter().find(|(n, _)| n == name).expect("output").1;
            sim.value_word(nets)
        };
        let sum = a as u32 + b as u32;
        prop_assert_eq!(read("sum").to_u16(), Some(sum as u16));
        prop_assert_eq!(read("carry").to_u16(), Some((sum > 0xFFFF) as u16));
        let diff = (a as u32).wrapping_add((!b) as u32).wrapping_add(1);
        prop_assert_eq!(read("diff").to_u16(), Some(diff as u16));
        prop_assert_eq!(read("borrow").to_u16(), Some((diff > 0xFFFF) as u16));
        let prod = a as u32 * b as u32;
        prop_assert_eq!(read("prod_lo").to_u16(), Some(prod as u16));
        prop_assert_eq!(read("prod_hi").to_u16(), Some((prod >> 16) as u16));
        prop_assert_eq!(read("eq").to_u16(), Some((a == b) as u16));
        prop_assert_eq!(read("zero").to_u16(), Some((a == 0) as u16));
    }

    /// X-refinement monotonicity: masking random input bits to X produces
    /// outputs that COVER the fully-concrete outputs — the property that
    /// makes the symbolic activity analysis a sound superset.
    #[test]
    fn simulation_monotone_under_x_refinement(
        a in any::<u16>(),
        b in any::<u16>(),
        mask_a in any::<u16>(),
        mask_b in any::<u16>(),
    ) {
        let (nl, an, bn, outs) = datapath();
        // Concrete run.
        let mut conc = Simulator::new(&nl);
        drive_word(&mut conc, &an, XWord::from_u16(a));
        drive_word(&mut conc, &bn, XWord::from_u16(b));
        conc.eval().expect("settles");
        // Symbolic run with some bits X.
        let mut sym = Simulator::new(&nl);
        drive_word(&mut sym, &an, XWord::from_planes(a, mask_a));
        drive_word(&mut sym, &bn, XWord::from_planes(b, mask_b));
        sym.eval().expect("settles");
        for (name, nets) in &outs {
            let s = sym.value_word(nets);
            let c = conc.value_word(nets);
            prop_assert!(
                s.covers(c),
                "{name}: symbolic {s} does not cover concrete {c}"
            );
        }
    }

    /// Sequential monotonicity: a counter loaded from a partially-X seed
    /// covers the concrete counter at every later cycle.
    #[test]
    fn sequential_state_monotone(seed in any::<u8>(), mask in any::<u8>(), steps in 1usize..12) {
        let build = || {
            let mut r = Rtl::new("cnt");
            let d = r.input("seed", 8);
            let ld = r.input_bit("ld");
            let (h, q) = r.reg("c", 8);
            let one = r.one();
            let (inc, _) = r.inc(&q, one);
            let next = r.mux_bus(ld, &inc, &d);
            r.reg_next(h, &next);
            r.output("q", &q);
            r.finish().expect("builds")
        };
        let nl = build();
        let seed_nets: Vec<NetId> = (0..8)
            .map(|i| nl.find_net(&format!("seed[{i}]")).expect("net"))
            .collect();
        let ld = nl.find_net("ld").expect("net");
        let q_nets: Vec<NetId> = (0..8)
            .map(|i| nl.find_net(&format!("top/c_q[{i}]")).expect("net"))
            .collect();
        let run = |seed_w: XWord, steps: usize, nl: &Netlist| -> XWord {
            let mut sim = Simulator::new(nl);
            for (i, &n) in seed_nets.iter().enumerate() {
                sim.drive_input(n, seed_w.bit(i));
            }
            sim.drive_input(ld, Lv::One);
            sim.step(); // load
            sim.drive_input(ld, Lv::Zero);
            for _ in 0..steps {
                sim.step();
            }
            sim.eval().expect("settles");
            sim.value_word(&q_nets)
        };
        let conc = run(XWord::from_u16(seed as u16), steps, &nl);
        let symb = run(XWord::from_planes(seed as u16, (mask as u16) & 0xFF), steps, &nl);
        prop_assert!(symb.covers(conc), "symbolic {symb} vs concrete {conc}");
    }
}
