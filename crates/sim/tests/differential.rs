//! Differential test: the event-driven incremental engine against the
//! full-levelized oracle and the compiled (levelize + cone-dedup
//! bytecode) backend.
//!
//! All engines must settle every cycle to the *same* frame: combinational
//! values are a pure function of flip-flop, input, and forced values on an
//! acyclic netlist, so the engines may only differ in how much work they
//! do. Random designs are driven with random sequences of input drives,
//! forces/releases (on inputs, internal nets, and flip-flop outputs), state
//! snapshots and restores — every operation the symbolic explorer performs
//! — and the frames are compared after every eval, both on the scalar
//! engine and on the batched engine at lane widths 1, 8, and 64.
//!
//! Case counts honour the `PROPTEST_CASES` environment variable as a
//! ceiling, so CI can bound the fuzz budget without editing the tests.

use proptest::prelude::*;
use xbound_logic::{Lv, XWord};
use xbound_netlist::rtl::Rtl;
use xbound_netlist::{CellKind, NetId, Netlist};
use xbound_sim::{
    BatchSimulator, BusSpec, EvalMode, MachineState, MemRegion, RegionKind, Simulator,
};

/// Proptest case budget: the source default, clamped down (never up) by
/// `PROPTEST_CASES` so CI invocations stay bounded.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .map(|env| env.min(default))
        .unwrap_or(default)
}

/// Builds a random DAG netlist (combinational + flip-flop mix) from a seed.
fn random_netlist(n_gates: usize, seed: u64) -> Netlist {
    let mut nl = Netlist::new("rand");
    let mut rng = seed | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let a = nl.add_input("in_a");
    let b = nl.add_input("in_b");
    let c = nl.add_input("in_c");
    let mut nets = vec![a, b, c];
    let kinds = [
        CellKind::Buf,
        CellKind::Inv,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Mux2,
        CellKind::Aoi21,
        CellKind::Oai21,
        CellKind::Dff,
        CellKind::Dffe,
        CellKind::Dffr,
        CellKind::Dffre,
    ];
    for gi in 0..n_gates {
        let kind = kinds[(next() as usize) % kinds.len()];
        let ins: Vec<NetId> = (0..kind.input_count())
            .map(|_| nets[(next() as usize) % nets.len()])
            .collect();
        let y = nl.add_net(format!("n{gi}"));
        nl.add_gate(kind, format!("g{gi}"), &ins, y).expect("gate");
        nets.push(y);
    }
    nl.add_output("out", *nets.last().expect("nonempty"));
    nl.finalize().expect("random DAG is acyclic")
}

fn lv_of(x: u64) -> Lv {
    match x % 3 {
        0 => Lv::Zero,
        1 => Lv::One,
        _ => Lv::X,
    }
}

/// One random stimulus step applied identically to every simulator.
fn apply_op<F: FnMut() -> u64>(
    next: &mut F,
    nl: &Netlist,
    sims: &mut [&mut Simulator<'_>],
    snapshots: &mut Vec<MachineState>,
) {
    let nets = nl.net_count() as u64;
    match next() % 10 {
        // Drive a random primary input (possibly X).
        0..=3 => {
            let inputs = nl.inputs();
            let n = inputs[(next() as usize) % inputs.len()];
            let v = lv_of(next());
            for sim in sims.iter_mut() {
                sim.drive_input(n, v);
            }
        }
        // Force a random net.
        4..=5 => {
            let n = NetId((next() % nets) as u32);
            let v = lv_of(next());
            for sim in sims.iter_mut() {
                sim.force(n, Some(v));
            }
        }
        // Release a random net's force.
        6..=7 => {
            let n = NetId((next() % nets) as u32);
            for sim in sims.iter_mut() {
                sim.force(n, None);
            }
        }
        // Snapshot.
        8 => snapshots.push(sims[0].machine_state()),
        // Restore a random earlier snapshot (exercises the diffing path).
        _ => {
            if !snapshots.is_empty() {
                let s = &snapshots[(next() as usize) % snapshots.len()];
                for sim in sims.iter_mut() {
                    sim.set_machine_state(s);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(48)))]

    /// Event-driven, levelized, and compiled evaluation produce identical
    /// frames at every cycle of a random drive/force/restore sequence.
    #[test]
    fn engines_agree_on_random_designs(
        n_gates in 4usize..80,
        seed in any::<u64>(),
        steps in 4usize..40,
    ) {
        let nl = random_netlist(n_gates, seed);
        let mut event = Simulator::new(&nl);
        event.set_eval_mode(EvalMode::EventDriven);
        let mut oracle = Simulator::new(&nl);
        oracle.set_eval_mode(EvalMode::Levelized);
        prop_assert_eq!(oracle.eval_mode(), EvalMode::Levelized);
        let mut compiled = Simulator::new(&nl);
        compiled.set_eval_mode(EvalMode::Compiled);

        let mut rng = seed ^ 0x9E3779B97F4A7C15 | 1;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut snapshots = Vec::new();
        for step in 0..steps {
            {
                let mut sims = [&mut event, &mut oracle, &mut compiled];
                apply_op(&mut next, &nl, &mut sims, &mut snapshots);
            }
            let fe = event.eval().expect("no bus: settles").clone();
            let fo = oracle.eval().expect("no bus: settles").clone();
            let fc = compiled.eval().expect("no bus: settles").clone();
            prop_assert_eq!(
                &fe, &fo,
                "event vs levelized diverge at step {} (diff nets: {:?})",
                step, fe.diff_indices(&fo)
            );
            prop_assert_eq!(
                &fe, &fc,
                "event vs compiled diverge at step {} (diff nets: {:?})",
                step, fe.diff_indices(&fc)
            );
            event.commit();
            oracle.commit();
            compiled.commit();
            prop_assert_eq!(event.machine_state(), oracle.machine_state());
            prop_assert_eq!(event.machine_state(), compiled.machine_state());
        }
    }

    /// Same agreement over a design with an external bus (ROM + RAM +
    /// port), including X-valued addresses and write smears.
    #[test]
    fn engines_agree_on_bus_device(
        seed in any::<u64>(),
        steps in 4usize..32,
    ) {
        // A device that exposes the bus directly to the test's inputs.
        let mut r = Rtl::new("busdev");
        let rdata = r.input("rdata", 16);
        let wen_in = r.input_bit("wen_in");
        let addr_in = r.input("addr_in", 16);
        let data_in = r.input("data_in", 16);
        let (ha, acc) = r.reg("acc", 16);
        let (sum, _) = r.add(&acc, &rdata, None);
        r.reg_next(ha, &sum);
        r.output("addr", &addr_in);
        r.output("wdata", &data_in);
        r.output_bit("wen", wen_in);
        r.output("acc", &acc);
        let nl = r.finish().expect("builds");
        let bus = || BusSpec {
            addr: (0..16)
                .map(|i| nl.find_net(&format!("addr_in[{i}]")).expect("net"))
                .collect(),
            wdata: (0..16)
                .map(|i| nl.find_net(&format!("data_in[{i}]")).expect("net"))
                .collect(),
            rdata: (0..16)
                .map(|i| nl.find_net(&format!("rdata[{i}]")).expect("net"))
                .collect(),
            wen: nl.find_net("wen_in"),
        };
        let mems = || {
            let mut rom = MemRegion::new("rom", RegionKind::Rom, 0xF000, 8);
            rom.load(0xF000, &[1, 2, 3, 4, 5, 6, 7, 8]);
            let mut ram = MemRegion::new("ram", RegionKind::Ram, 0x0200, 8);
            ram.fill(XWord::from_u16(0));
            let port = MemRegion::new("port", RegionKind::Port, 0x0020, 4);
            vec![rom, ram, port]
        };
        let mut event = Simulator::new(&nl);
        event.set_eval_mode(EvalMode::EventDriven);
        event.attach_bus(bus(), mems()).expect("bus ok");
        let mut oracle = Simulator::new(&nl);
        oracle.set_eval_mode(EvalMode::Levelized);
        oracle.attach_bus(bus(), mems()).expect("bus ok");
        let mut compiled = Simulator::new(&nl);
        compiled.set_eval_mode(EvalMode::Compiled);
        compiled.attach_bus(bus(), mems()).expect("bus ok");

        let mut rng = seed | 1;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut snapshots = Vec::new();
        for step in 0..steps {
            // Point the address at one of the regions (or nowhere), with a
            // chance of X bits; drive write data and write-enable randomly.
            let base = [0xF000u16, 0x0200, 0x0020, 0x4000][(next() % 4) as usize];
            let addr = base + ((next() % 8) as u16) * 2;
            for i in 0..16 {
                let n = nl.find_net(&format!("addr_in[{i}]")).expect("net");
                let v = if next() % 8 == 0 {
                    Lv::X
                } else {
                    Lv::from_bool((addr >> i) & 1 == 1)
                };
                event.drive_input(n, v);
                oracle.drive_input(n, v);
                compiled.drive_input(n, v);
                let d = nl.find_net(&format!("data_in[{i}]")).expect("net");
                let dv = lv_of(next());
                event.drive_input(d, dv);
                oracle.drive_input(d, dv);
                compiled.drive_input(d, dv);
            }
            let wen = lv_of(next());
            let wn = nl.find_net("wen_in").expect("net");
            event.drive_input(wn, wen);
            oracle.drive_input(wn, wen);
            compiled.drive_input(wn, wen);
            if next() % 5 == 0 {
                snapshots.push(event.machine_state());
            }
            if next() % 5 == 0 && !snapshots.is_empty() {
                let s = &snapshots[(next() as usize) % snapshots.len()];
                event.set_machine_state(s);
                oracle.set_machine_state(s);
                compiled.set_machine_state(s);
            }
            let fe = event.eval().expect("bus settles").clone();
            let fo = oracle.eval().expect("bus settles").clone();
            let fc = compiled.eval().expect("bus settles").clone();
            prop_assert_eq!(
                &fe, &fo,
                "event vs levelized diverge at step {} (diff nets: {:?})",
                step, fe.diff_indices(&fo)
            );
            prop_assert_eq!(
                &fe, &fc,
                "event vs compiled diverge at step {} (diff nets: {:?})",
                step, fe.diff_indices(&fc)
            );
            event.commit();
            oracle.commit();
            compiled.commit();
            prop_assert_eq!(event.machine_state(), oracle.machine_state());
            prop_assert_eq!(event.machine_state(), compiled.machine_state());
        }
    }
}

/// One random batched stimulus step applied identically to every batched
/// simulator: whole-vector and per-lane drives, whole-vector and per-lane
/// forces/releases, and per-lane snapshot restores.
fn apply_batch_op<F: FnMut() -> u64>(
    next: &mut F,
    nl: &Netlist,
    lanes: usize,
    sims: &mut [&mut BatchSimulator<'_>],
    snapshots: &mut Vec<MachineState>,
) {
    let nets = nl.net_count() as u64;
    match next() % 12 {
        // Drive a random primary input across every lane.
        0..=2 => {
            let inputs = nl.inputs();
            let n = inputs[(next() as usize) % inputs.len()];
            let v = lv_of(next());
            for sim in sims.iter_mut() {
                sim.drive_input(n, v);
            }
        }
        // Drive one lane of a random primary input (possibly X).
        3..=5 => {
            let inputs = nl.inputs();
            let n = inputs[(next() as usize) % inputs.len()];
            let lane = (next() as usize) % lanes;
            let v = lv_of(next());
            for sim in sims.iter_mut() {
                sim.drive_input_lane(n, lane, v);
            }
        }
        // Force a random net in every lane.
        6 => {
            let n = NetId((next() % nets) as u32);
            let v = lv_of(next());
            for sim in sims.iter_mut() {
                sim.force(n, Some(v));
            }
        }
        // Force one lane of a random net (partial-lane force masks).
        7..=8 => {
            let n = NetId((next() % nets) as u32);
            let lane = (next() as usize) % lanes;
            let v = lv_of(next());
            for sim in sims.iter_mut() {
                sim.force_lane(n, lane, Some(v));
            }
        }
        // Release a random net's force in one lane.
        9 => {
            let n = NetId((next() % nets) as u32);
            let lane = (next() as usize) % lanes;
            for sim in sims.iter_mut() {
                sim.force_lane(n, lane, None);
            }
        }
        // Snapshot a random lane.
        10 => {
            let lane = (next() as usize) % lanes;
            snapshots.push(sims[0].lane_machine_state(lane));
        }
        // Restore an earlier snapshot into a random lane.
        _ => {
            if !snapshots.is_empty() {
                let s = &snapshots[(next() as usize) % snapshots.len()];
                let lane = (next() as usize) % lanes;
                for sim in sims.iter_mut() {
                    sim.set_lane_machine_state(lane, s);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(24)))]

    /// The three engines also agree on the batched (wide) instantiation at
    /// lane widths 1, 8, and 64, under per-lane drives, partial-lane
    /// forces, and cross-lane snapshot restores.
    #[test]
    fn engines_agree_batched_at_lane_widths(
        n_gates in 4usize..60,
        seed in any::<u64>(),
        steps in 4usize..24,
    ) {
        let nl = random_netlist(n_gates, seed);
        for &lanes in &[1usize, 8, 64] {
            let mut event = BatchSimulator::new(&nl, lanes);
            event.set_eval_mode(EvalMode::EventDriven);
            let mut oracle = BatchSimulator::new(&nl, lanes);
            oracle.set_eval_mode(EvalMode::Levelized);
            let mut compiled = BatchSimulator::new(&nl, lanes);
            compiled.set_eval_mode(EvalMode::Compiled);

            let mut rng = seed ^ 0xD1B54A32D192ED03 | 1;
            let mut next = move || {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            };
            let mut snapshots = Vec::new();
            for step in 0..steps {
                {
                    let mut sims = [&mut event, &mut oracle, &mut compiled];
                    apply_batch_op(&mut next, &nl, lanes, &mut sims, &mut snapshots);
                }
                let fe = event.eval().expect("no bus: settles").clone();
                let fo = oracle.eval().expect("no bus: settles").clone();
                let fc = compiled.eval().expect("no bus: settles").clone();
                prop_assert_eq!(
                    &fe, &fo,
                    "event vs levelized diverge at step {} ({} lanes)",
                    step, lanes
                );
                prop_assert_eq!(
                    &fe, &fc,
                    "event vs compiled diverge at step {} ({} lanes)",
                    step, lanes
                );
                event.commit();
                oracle.commit();
                compiled.commit();
                for lane in 0..lanes {
                    prop_assert_eq!(
                        event.lane_machine_state(lane),
                        compiled.lane_machine_state(lane),
                        "machine state diverges in lane {} at step {}",
                        lane, step
                    );
                }
            }
        }
    }
}
