; autoCorr — autocorrelation of the eight input samples at lags 0, 1, 2
; with signed multiplies (MPYS). Low product words accumulate; r[k] is
; stored at 0x0200 + 2k.

main:
        mov #0, r10             ; lag k
lag:
        mov #0x0020, r6         ; x[i]
        mov r6, r7
        add r10, r7
        add r10, r7             ; x[i + k] (byte offset 2k)
        mov #8, r8
        sub r10, r8             ; 8 - k terms
        mov #0, r9              ; accumulator
term:
        mov @r6+, &0x0132       ; signed op1 = x[i]
        mov @r7+, &0x0138       ; op2 = x[i+k], triggers
        add &0x013A, r9
        dec r8
        jnz term
        mov r10, r4
        add r4, r4
        add #0x0200, r4
        mov r9, 0(r4)           ; r[k]
        inc r10
        cmp #3, r10
        jnz lag
        jmp $
