; rle — run-length encodes the eight input samples. When a run ends at
; input position p, its [value, length] pair is written to the two-word
; slot at 0x0300 + 4*p, so output placement is position-indexed (the
; store addresses depend on input *values*, stressing the analysis).
        .equ SLOTS, 0x0300

main:
        mov #0x0020, r6         ; input pointer
        mov @r6+, r4            ; current run value
        mov #1, r5              ; current run length
        mov #1, r7              ; next input position
scan:
        cmp #8, r7
        jz flush                ; all samples consumed
        mov @r6+, r8
        cmp r4, r8              ; next - current
        jz extend
        ; run ended at position r7 - 1: slot = SLOTS + 4 * (r7 - 1)
        mov r7, r9
        dec r9
        add r9, r9
        add r9, r9
        add #SLOTS, r9
        mov r4, 0(r9)
        mov r5, 2(r9)
        mov r8, r4              ; start new run
        mov #1, r5
        jmp advance
extend:
        inc r5
advance:
        inc r7
        jmp scan
flush:
        ; final run ends at position 7
        mov #7, r9
        add r9, r9
        add r9, r9
        add #SLOTS, r9
        mov r4, 0(r9)
        mov r5, 2(r9)
        jmp $
