; ConvEn — rate-1/2, constraint-length-3 convolutional encoder over the
; low eight bits of the input word (G0 = 111, G1 = 101). The parity of
; each generator tap set is computed branch-free with shift/xor chains;
; each input bit emits one output word holding the two coded bits.

main:
        mov &0x0020, r4         ; input bits (LSB first)
        mov #0, r5              ; encoder state
        mov #8, r7              ; bits
        mov #0x0200, r13        ; output pointer
encbit:
        mov r4, r6
        and #1, r6              ; next input bit
        rra r4
        add r5, r5
        bis r6, r5
        and #7, r5              ; state = (state << 1 | bit) & 7
        ; g0 = parity(state & 111b), branch-free
        mov r5, r8
        mov r5, r9
        rra r9
        xor r9, r8
        rra r9
        xor r9, r8
        and #1, r8
        ; g1 = parity(state & 101b), branch-free
        mov r5, r10
        and #5, r10
        mov r10, r9
        rra r9
        xor r9, r10
        rra r9
        xor r9, r10
        and #1, r10
        add r8, r8
        bis r10, r8             ; coded pair = g0 << 1 | g1
        mov r8, 0(r13)
        incd r13
        dec r7
        jnz encbit
        jmp $
