; PI — proportional-integral controller: input 0 is the setpoint, inputs
; 1..3 are successive plant measurements. Each step runs two signed
; multiplies (Kp * error, Ki * integral) and emits the control output.
        .equ KP, 7
        .equ KI, 3

main:
        mov &0x0020, r4         ; setpoint
        mov #0x0022, r6         ; measurement pointer
        mov #3, r7              ; control steps
        mov #0, r8              ; integrator
        mov #0x0200, r13        ; output pointer
step:
        mov r4, r5
        sub @r6+, r5            ; error = setpoint - measurement
        add r5, r8              ; integrator += error
        mov #KP, &0x0132        ; Kp * error (signed)
        mov r5, &0x0138
        mov &0x013A, r9
        mov #KI, &0x0132        ; Ki * integrator (signed)
        mov r8, &0x0138
        add &0x013A, r9
        mov r9, 0(r13)          ; u = Kp*e + Ki*integral
        incd r13
        dec r7
        jnz step
        jmp $
