; intAVG — arithmetic mean of eight input samples (samples are at most
; 0x0FFF, so the sum stays positive and the arithmetic shifts divide
; exactly by 8).

main:
        mov #0x0020, r6         ; input pointer
        mov #8, r7
        mov #0, r4              ; sum
accum:
        add @r6+, r4
        dec r7
        jnz accum
        rra r4
        rra r4
        rra r4                  ; sum / 8
        mov r4, &0x0200
        jmp $
