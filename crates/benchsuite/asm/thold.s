; tHold — counts how many of the eight input samples meet or exceed the
; detection threshold; the count is the classic input-dependent-control
; benchmark of the paper (each sample forks the symbolic execution tree).
        .equ THRESH, 100

main:
        mov #0x0020, r6         ; input pointer
        mov #8, r7              ; samples
        mov #0, r8              ; count
sample:
        mov @r6+, r4
        cmp #THRESH, r4         ; sample - threshold
        jl below                ; sample < threshold
        inc r8
below:
        dec r7
        jnz sample
        mov r8, &0x0200
        jmp $
