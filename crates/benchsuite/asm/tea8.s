; tea8 — eight rounds of a TEA-style mixing cipher over the two input
; words, using only shifts, xors, and adds (no multiplier).
        .equ DELTA, 0x9E37

main:
        mov &0x0020, r4         ; v0
        mov &0x0022, r5         ; v1
        mov #0, r6              ; sum
        mov #8, r7              ; rounds
round:
        add #DELTA, r6
        ; v0 += (v1 << 4) ^ (v1 >> 5) + sum
        mov r5, r8
        add r8, r8
        add r8, r8
        add r8, r8
        add r8, r8              ; v1 << 4
        mov r5, r9
        rra r9
        rra r9
        rra r9
        rra r9
        rra r9                  ; v1 >> 5 (arithmetic)
        xor r9, r8
        add r6, r8
        add r8, r4
        ; v1 += (v0 << 4) ^ (v0 >> 5) + sum
        mov r4, r8
        add r8, r8
        add r8, r8
        add r8, r8
        add r8, r8
        mov r4, r9
        rra r9
        rra r9
        rra r9
        rra r9
        rra r9
        xor r9, r8
        add r6, r8
        add r8, r5
        dec r7
        jnz round
        mov r4, &0x0200
        mov r5, &0x0202
        jmp $
