; Viterbi — add-compare-select over a two-state trellis. Each of the
; eight input words is a branch metric b in 0..15; the complementary
; branch costs 15 - b. The surviving path metric is stored at 0x0200.

main:
        mov #0x0020, r6         ; metric pointer
        mov #8, r7              ; trellis steps
        mov #0, r4              ; path metric, state 0
        mov #0, r5              ; path metric, state 1
acs:
        mov @r6+, r8            ; b
        mov #15, r9
        sub r8, r9              ; 15 - b
        ; new m0 = min(m0 + b, m1 + (15 - b))
        mov r4, r10
        add r8, r10
        mov r5, r11
        add r9, r11
        cmp r10, r11            ; (m1 + 15-b) - (m0 + b)
        jc keep0                ; no borrow: first candidate wins
        mov r11, r10
keep0:
        ; new m1 = min(m0 + (15 - b), m1 + b)
        mov r4, r12
        add r9, r12
        mov r5, r13
        add r8, r13
        cmp r12, r13
        jc keep1
        mov r13, r12
keep1:
        mov r10, r4
        mov r12, r5
        dec r7
        jnz acs
        cmp r4, r5              ; m1 - m0
        jc survivor             ; m1 >= m0: keep m0
        mov r5, r4
survivor:
        mov r4, &0x0200
        jmp $
