; mult — multiply-accumulate over four input pairs using the hardware
; multiplier. 32-bit accumulator in r9:r8; result stored to data RAM.
        .equ INPORT, 0x0020
        .equ MPY,    0x0130     ; unsigned multiply operand 1
        .equ OP2,    0x0138     ; operand 2 (write triggers multiply)
        .equ RESLO,  0x013A
        .equ RESHI,  0x013C
        .equ OUT,    0x0200

main:
        mov #INPORT, r6         ; input pointer
        mov #4, r7              ; four (a, b) pairs
        mov #0, r8              ; accumulator low
        mov #0, r9              ; accumulator high
pair:
        mov @r6+, &0x0130       ; op1 = a
        mov @r6+, &0x0138       ; op2 = b, triggers a*b
        add &0x013A, r8         ; acc += product (32-bit)
        addc &0x013C, r9
        dec r7
        jnz pair
        mov r8, &OUT
        mov r9, &0x0202
        jmp $
