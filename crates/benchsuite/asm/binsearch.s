; binSearch — binary search for the input key in a sorted 16-entry ROM
; table. Stores the matching index at 0x0200, or 0xFFFF when absent.
        .equ OUT, 0x0200

main:
        mov &0x0020, r4         ; key
        mov #0, r5              ; lo
        mov #15, r6             ; hi
        mov #0xFFFF, r9         ; result = not found
search:
        cmp r5, r6              ; hi - lo
        jl store                ; hi < lo: exhausted
        mov r6, r7
        add r5, r7
        rra r7                  ; mid = (lo + hi) / 2
        mov #tbl, r10
        mov r7, r8
        add r8, r8              ; word index -> byte offset
        add r8, r10
        mov @r10, r10           ; tbl[mid]
        cmp r4, r10             ; tbl[mid] - key
        jz found
        jl go_right             ; tbl[mid] < key
        mov r7, r6              ; hi = mid - 1
        dec r6
        jmp search
go_right:
        mov r7, r5              ; lo = mid + 1
        inc r5
        jmp search
found:
        mov r7, r9
store:
        mov r9, &OUT
        jmp $

tbl:    .word 2, 5, 9, 14, 21, 28, 33, 41
        .word 47, 52, 60, 68, 75, 81, 90, 97
