; inSort — copies six input values into data RAM at 0x0300 and sorts them
; in place, ascending (exchange sort with an early-exit swapped flag).
        .equ ARR, 0x0300

main:
        mov #0x0020, r6         ; input pointer
        mov #ARR, r7
        mov #6, r8
copy:
        mov @r6+, 0(r7)
        incd r7
        dec r8
        jnz copy
pass:
        mov #0, r11             ; swapped = 0
        mov #ARR, r6
        mov #5, r8              ; adjacent pairs
cmppair:
        mov @r6, r4
        mov 2(r6), r5
        cmp r4, r5              ; arr[i+1] - arr[i]
        jc ordered              ; no borrow: arr[i+1] >= arr[i]
        mov r5, 0(r6)
        mov r4, 2(r6)
        mov #1, r11
ordered:
        incd r6
        dec r8
        jnz cmppair
        tst r11
        jnz pass
        jmp $
