; FFT — one 4-point decimation-in-time butterfly network over the four
; input samples, with a Q15 twiddle multiply (cos(pi/4) = 0x5A82) on the
; odd path through the signed hardware multiplier.

main:
        mov &0x0020, r4         ; x0
        mov &0x0022, r5         ; x1
        mov &0x0024, r6         ; x2
        mov &0x0026, r7         ; x3
        ; stage 1 butterflies
        mov r4, r8
        add r6, r8              ; a = x0 + x2
        mov r4, r9
        sub r6, r9              ; b = x0 - x2
        mov r5, r10
        add r7, r10             ; c = x1 + x3
        mov r5, r11
        sub r7, r11             ; d = x1 - x3
        ; t = (0x5A82 * d) >> 15  (Q15 twiddle)
        mov #0x5A82, &0x0132    ; signed op1
        mov r11, &0x0138        ; op2 triggers
        mov &0x013C, r12        ; high product word
        add r12, r12            ; (hi << 1) ~= product >> 15
        ; stage 2 outputs
        mov r8, r13
        add r10, r13
        mov r13, &0x0200        ; X0 = a + c
        mov r9, r13
        add r12, r13
        mov r13, &0x0202        ; X1 = b + t
        mov r8, r13
        sub r10, r13
        mov r13, &0x0204        ; X2 = a - c
        mov r9, r13
        sub r12, r13
        mov r13, &0x0206        ; X3 = b - t
        jmp $
