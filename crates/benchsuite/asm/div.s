; div — 16-bit restoring division (software divide; the MSP430 has no
; divide unit). inputs: [dividend, divisor]; divisor is never zero.
; Stores quotient at 0x0200 and remainder at 0x0202.

main:
        mov &0x0020, r4         ; dividend (becomes shifted-out bits)
        mov &0x0022, r5         ; divisor
        mov #0, r6              ; remainder
        mov #0, r7              ; quotient
        mov #16, r8             ; bit counter
divbit:
        add r4, r4              ; shift dividend left, C = old MSB
        addc r6, r6             ; remainder = remainder << 1 | MSB
        add r7, r7              ; quotient <<= 1
        cmp r5, r6              ; remainder - divisor
        jnc restore             ; borrow: remainder < divisor
        sub r5, r6
        bis #1, r7              ; set quotient bit
restore:
        dec r8
        jnz divbit
        mov r7, &0x0200
        mov r6, &0x0202
        jmp $
