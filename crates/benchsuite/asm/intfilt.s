; intFilt — 4-tap integer FIR filter ([1, 3, 3, 1]) slid over the eight
; input samples; the five window outputs go to 0x0200... Uses the
; hardware multiplier for the tap products.
        .equ OUT, 0x0200

main:
        mov #5, r11             ; 8 samples - 4 taps + 1 windows
        mov #0x0020, r12        ; window base
        mov #OUT, r13           ; output pointer
window:
        mov r12, r6
        mov #0, r9              ; accumulator
        mov @r6+, &0x0130       ; tap 0, coefficient 1
        mov #1, &0x0138
        add &0x013A, r9
        mov @r6+, &0x0130       ; tap 1, coefficient 3
        mov #3, &0x0138
        add &0x013A, r9
        mov @r6+, &0x0130       ; tap 2, coefficient 3
        mov #3, &0x0138
        add &0x013A, r9
        mov @r6+, &0x0130       ; tap 3, coefficient 1
        mov #1, &0x0138
        add &0x013A, r9
        mov r9, 0(r13)
        incd r13
        incd r12                ; slide window one sample
        dec r11
        jnz window
        jmp $
