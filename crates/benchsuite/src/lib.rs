//! The benchmark suite of the paper's Table 3 / Table 4.1.
//!
//! Fourteen ULP applications in MSP430 assembly:
//!
//! * **Embedded Sensor Benchmarks**: `mult`, `binSearch`, `tea8`,
//!   `intFilt`, `tHold`, `div`, `inSort`, `rle`, `intAVG`;
//! * **EEMBC-style embedded kernels**: `autoCorr`, `FFT`, `ConvEn`,
//!   `Viterbi`;
//! * **Control systems**: `PI` (proportional-integral controller).
//!
//! Each [`Benchmark`] carries its source, an input generator producing the
//! values the harness writes into the input-port region, and the
//! value-iteration budget that acts as the loop-iteration bound for peak
//! energy (paper §3.3).
//!
//! # Example
//!
//! ```
//! use xbound_benchsuite::{all, by_name};
//!
//! assert_eq!(all().len(), 14);
//! let mult = by_name("mult").expect("mult exists");
//! let program = mult.program()?;
//! assert!(!program.is_empty());
//! # Ok::<(), xbound_msp430::AsmError>(())
//! ```

use rand::RngExt;
use xbound_msp430::{assemble, AsmError, Program};

/// Benchmark category (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Embedded sensor benchmarks.
    Sensor,
    /// EEMBC-style embedded kernels.
    Eembc,
    /// Control systems.
    Control,
}

/// How inputs are generated for profiling runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InputKind {
    /// Uniform words in `[lo, hi]`.
    Uniform { n: usize, lo: u16, hi: u16 },
    /// Values clustered around a threshold (for `tHold`).
    Threshold { n: usize, center: u16, spread: u16 },
    /// Run-length-friendly data: repeats the previous value half the time.
    Runs { n: usize, lo: u16, hi: u16 },
    /// Dividend/divisor pair (divisor non-zero).
    DivPair,
}

/// One benchmark application.
#[derive(Debug, Clone)]
pub struct Benchmark {
    name: &'static str,
    description: &'static str,
    category: Category,
    source: &'static str,
    inputs: InputKind,
    energy_rounds: u64,
    max_concrete_cycles: u64,
    uses_multiplier: bool,
    widen_threshold: u32,
}

impl Benchmark {
    /// Benchmark name as the paper spells it.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description.
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// Suite category.
    pub fn category(&self) -> Category {
        self.category
    }

    /// The assembly source.
    pub fn source(&self) -> &'static str {
        self.source
    }

    /// `true` if the kernel exercises the hardware multiplier.
    pub fn uses_multiplier(&self) -> bool {
        self.uses_multiplier
    }

    /// Value-iteration budget for the peak-energy computation — stands in
    /// for the loop-iteration bound of paper §3.3.
    pub fn energy_rounds(&self) -> u64 {
        self.energy_rounds
    }

    /// Cycle budget for concrete profiling runs.
    pub fn max_concrete_cycles(&self) -> u64 {
        self.max_concrete_cycles
    }

    /// Widening threshold tuned for this benchmark's control structure
    /// (higher = more exact exploration before the Ch. 6 heuristic merges
    /// states; tightens the bound for fork-heavy kernels).
    pub fn widen_threshold(&self) -> u32 {
        self.widen_threshold
    }

    /// Deterministic extremal input sets included in profiling campaigns
    /// (profiling is free to choose adversarial inputs; these exercise the
    /// datapath corners random sampling misses).
    pub fn stress_inputs(&self) -> Vec<Vec<u16>> {
        match self.inputs {
            InputKind::Uniform { n, lo, hi } => vec![
                vec![hi; n],
                vec![lo; n],
                (0..n).map(|i| if i % 2 == 0 { hi } else { lo }).collect(),
                // Pair-alternating: flips both operands of pair-consuming
                // kernels (e.g. the multiplier operands of `mult`).
                (0..n)
                    .map(|i| if (i / 2) % 2 == 0 { hi } else { lo })
                    .collect(),
            ],
            InputKind::Threshold { n, center, spread } => vec![
                vec![center + spread; n],
                vec![center.saturating_sub(spread); n],
                (0..n)
                    .map(|i| {
                        if i % 2 == 0 {
                            center + spread
                        } else {
                            center.saturating_sub(spread)
                        }
                    })
                    .collect(),
            ],
            InputKind::Runs { n, lo, hi } => vec![
                vec![hi; n],
                (0..n).map(|i| if i % 2 == 0 { hi } else { lo }).collect(),
            ],
            InputKind::DivPair => vec![vec![0xFFFF, 1], vec![0xFFFF, 3], vec![0x8000, 0x7FFF]],
        }
    }

    /// Assembles the benchmark.
    ///
    /// # Errors
    ///
    /// Propagates assembler errors (the embedded sources are tested, so an
    /// error indicates local modification).
    pub fn program(&self) -> Result<Program, AsmError> {
        assemble(self.source)
    }

    /// Generates one input set for profiling.
    pub fn gen_inputs<R: RngExt>(&self, rng: &mut R) -> Vec<u16> {
        match self.inputs {
            InputKind::Uniform { n, lo, hi } => (0..n).map(|_| rng.random_range(lo..=hi)).collect(),
            InputKind::Threshold { n, center, spread } => (0..n)
                .map(|_| {
                    let lo = center.saturating_sub(spread);
                    rng.random_range(lo..=center + spread)
                })
                .collect(),
            InputKind::Runs { n, lo, hi } => {
                let mut out: Vec<u16> = Vec::with_capacity(n);
                for i in 0..n {
                    if i > 0 && rng.random_range(0..2) == 0 {
                        out.push(out[i - 1]);
                    } else {
                        out.push(rng.random_range(lo..=hi));
                    }
                }
                out
            }
            InputKind::DivPair => {
                vec![rng.random_range(0..=u16::MAX), rng.random_range(1..=999)]
            }
        }
    }
}

/// All 14 benchmarks, in the paper's Fig 15/16 order.
pub fn all() -> &'static [Benchmark] {
    &SUITE
}

/// Looks a benchmark up by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<&'static Benchmark> {
    SUITE.iter().find(|b| b.name.eq_ignore_ascii_case(name))
}

static SUITE: [Benchmark; 14] = [
    Benchmark {
        name: "autoCorr",
        description: "autocorrelation at lags 0..2 with signed multiplies",
        category: Category::Eembc,
        source: include_str!("../asm/autocorr.s"),
        inputs: InputKind::Uniform {
            n: 8,
            lo: 0,
            hi: 0x03FF,
        },
        energy_rounds: 2_000,
        max_concrete_cycles: 50_000,
        uses_multiplier: true,
        widen_threshold: 4,
    },
    Benchmark {
        name: "binSearch",
        description: "binary search for an input key in a sorted ROM table",
        category: Category::Sensor,
        source: include_str!("../asm/binsearch.s"),
        inputs: InputKind::Uniform {
            n: 1,
            lo: 0,
            hi: 99,
        },
        energy_rounds: 2_000,
        max_concrete_cycles: 50_000,
        uses_multiplier: false,
        widen_threshold: 16,
    },
    Benchmark {
        name: "FFT",
        description: "4-point DIT butterfly network with a Q15 twiddle multiply",
        category: Category::Eembc,
        source: include_str!("../asm/fft.s"),
        inputs: InputKind::Uniform {
            n: 4,
            lo: 0,
            hi: 0x0FFF,
        },
        energy_rounds: 2_000,
        max_concrete_cycles: 50_000,
        uses_multiplier: true,
        widen_threshold: 4,
    },
    Benchmark {
        name: "intFilt",
        description: "4-tap integer FIR filter over a sliding window",
        category: Category::Sensor,
        source: include_str!("../asm/intfilt.s"),
        inputs: InputKind::Uniform {
            n: 8,
            lo: 0,
            hi: 0x03FF,
        },
        energy_rounds: 2_000,
        max_concrete_cycles: 50_000,
        uses_multiplier: true,
        widen_threshold: 4,
    },
    Benchmark {
        name: "mult",
        description: "multiply-accumulate over input pairs (HW multiplier)",
        category: Category::Sensor,
        source: include_str!("../asm/mult.s"),
        inputs: InputKind::Uniform {
            n: 8,
            lo: 0,
            hi: u16::MAX,
        },
        energy_rounds: 2_000,
        max_concrete_cycles: 50_000,
        uses_multiplier: true,
        widen_threshold: 4,
    },
    Benchmark {
        name: "PI",
        description: "proportional-integral controller (2 multiplies/step)",
        category: Category::Control,
        source: include_str!("../asm/pi.s"),
        inputs: InputKind::Uniform {
            n: 4,
            lo: 0,
            hi: 0x03FF,
        },
        energy_rounds: 2_000,
        max_concrete_cycles: 50_000,
        uses_multiplier: true,
        widen_threshold: 4,
    },
    Benchmark {
        name: "tea8",
        description: "eight rounds of a TEA-style cipher (shift/xor/add only)",
        category: Category::Sensor,
        source: include_str!("../asm/tea8.s"),
        inputs: InputKind::Uniform {
            n: 2,
            lo: 0,
            hi: u16::MAX,
        },
        energy_rounds: 2_000,
        max_concrete_cycles: 50_000,
        uses_multiplier: false,
        widen_threshold: 4,
    },
    Benchmark {
        name: "tHold",
        description: "threshold detection over eight samples",
        category: Category::Sensor,
        source: include_str!("../asm/thold.s"),
        inputs: InputKind::Threshold {
            n: 8,
            center: 100,
            spread: 80,
        },
        energy_rounds: 3_000,
        max_concrete_cycles: 50_000,
        uses_multiplier: false,
        widen_threshold: 64,
    },
    Benchmark {
        name: "div",
        description: "16-bit restoring division (software divide)",
        category: Category::Sensor,
        source: include_str!("../asm/div.s"),
        inputs: InputKind::DivPair,
        energy_rounds: 4_000,
        max_concrete_cycles: 50_000,
        uses_multiplier: false,
        widen_threshold: 16,
    },
    Benchmark {
        name: "inSort",
        description: "in-place sort of six input values in data RAM",
        category: Category::Sensor,
        source: include_str!("../asm/insort.s"),
        inputs: InputKind::Uniform {
            n: 6,
            lo: 0,
            hi: 0x7FFF,
        },
        energy_rounds: 6_000,
        max_concrete_cycles: 100_000,
        uses_multiplier: false,
        widen_threshold: 8,
    },
    Benchmark {
        name: "rle",
        description: "run-length encoding with position-indexed output slots",
        category: Category::Sensor,
        source: include_str!("../asm/rle.s"),
        inputs: InputKind::Runs { n: 8, lo: 0, hi: 3 },
        energy_rounds: 3_000,
        max_concrete_cycles: 50_000,
        uses_multiplier: false,
        widen_threshold: 8,
    },
    Benchmark {
        name: "intAVG",
        description: "average of eight input samples",
        category: Category::Sensor,
        source: include_str!("../asm/intavg.s"),
        inputs: InputKind::Uniform {
            n: 8,
            lo: 0,
            hi: 0x0FFF,
        },
        energy_rounds: 2_000,
        max_concrete_cycles: 50_000,
        uses_multiplier: false,
        widen_threshold: 4,
    },
    Benchmark {
        name: "ConvEn",
        description: "rate-1/2 K=3 convolutional encoder, branch-free parity",
        category: Category::Eembc,
        source: include_str!("../asm/conven.s"),
        inputs: InputKind::Uniform {
            n: 1,
            lo: 0,
            hi: 0x00FF,
        },
        energy_rounds: 2_000,
        max_concrete_cycles: 50_000,
        uses_multiplier: false,
        widen_threshold: 4,
    },
    Benchmark {
        name: "Viterbi",
        description: "add-compare-select over a 2-state trellis",
        category: Category::Eembc,
        source: include_str!("../asm/viterbi.s"),
        inputs: InputKind::Uniform {
            n: 8,
            lo: 0,
            hi: 15,
        },
        energy_rounds: 3_000,
        max_concrete_cycles: 50_000,
        uses_multiplier: false,
        widen_threshold: 64,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xbound_msp430::iss::Iss;

    #[test]
    fn fourteen_benchmarks_with_unique_names() {
        assert_eq!(all().len(), 14);
        let mut names: Vec<&str> = all().iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert!(by_name("MULT").is_some());
        assert!(by_name("viterbi").is_some());
        assert!(by_name("nonesuch").is_none());
    }

    #[test]
    fn paper_table_counts_per_category() {
        let sensors = all()
            .iter()
            .filter(|b| b.category() == Category::Sensor)
            .count();
        let eembc = all()
            .iter()
            .filter(|b| b.category() == Category::Eembc)
            .count();
        let control = all()
            .iter()
            .filter(|b| b.category() == Category::Control)
            .count();
        assert_eq!((sensors, eembc, control), (9, 4, 1));
    }

    #[test]
    fn all_sources_assemble() {
        for b in all() {
            b.program()
                .unwrap_or_else(|e| panic!("{} fails to assemble: {e}", b.name()));
        }
    }

    #[test]
    fn all_benchmarks_halt_on_iss_across_inputs() {
        let mut rng = StdRng::seed_from_u64(7);
        for b in all() {
            let program = b.program().unwrap();
            for trial in 0..5 {
                let inputs = b.gen_inputs(&mut rng);
                let mut iss = Iss::new(&program);
                iss.set_inputs(&inputs);
                let out = iss
                    .run(500_000)
                    .unwrap_or_else(|e| panic!("{} trial {trial}: {e}", b.name()));
                assert!(out.halted, "{} trial {trial} did not halt", b.name());
                assert!(out.cycles > 10, "{} suspiciously short", b.name());
            }
        }
    }

    #[test]
    fn input_generators_respect_sizes() {
        let mut rng = StdRng::seed_from_u64(3);
        for b in all() {
            let inputs = b.gen_inputs(&mut rng);
            assert!(!inputs.is_empty());
            assert!(inputs.len() <= xbound_msp430::memmap::INPORT_WORDS);
        }
    }

    #[test]
    fn div_inputs_have_nonzero_divisor() {
        let mut rng = StdRng::seed_from_u64(11);
        let b = by_name("div").unwrap();
        for _ in 0..50 {
            let inputs = b.gen_inputs(&mut rng);
            assert_eq!(inputs.len(), 2);
            assert_ne!(inputs[1], 0);
        }
    }

    #[test]
    fn multiplier_flag_matches_source() {
        for b in all() {
            let touches = b.source().contains("&0x0130") || b.source().contains("&0x0132");
            assert_eq!(
                touches,
                b.uses_multiplier(),
                "{} multiplier flag inconsistent",
                b.name()
            );
        }
    }

    #[test]
    fn iss_results_deterministic_per_input() {
        let b = by_name("div").unwrap();
        let program = b.program().unwrap();
        let mut iss1 = Iss::new(&program);
        iss1.set_inputs(&[1000, 7]);
        iss1.run(100_000).unwrap();
        assert_eq!(iss1.dmem()[0], 1000 / 7, "quotient");
        assert_eq!(iss1.dmem()[1], 1000 % 7, "remainder");
    }

    #[test]
    fn insort_sorts_on_iss() {
        let b = by_name("inSort").unwrap();
        let program = b.program().unwrap();
        let mut iss = Iss::new(&program);
        iss.set_inputs(&[30, 10, 50, 20, 40, 5]);
        iss.run(500_000).unwrap();
        // Array lives at 0x0300 = dmem word 128.
        let sorted: Vec<u16> = iss.dmem()[128..134].to_vec();
        assert_eq!(sorted, vec![5, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn rle_encodes_on_iss() {
        let b = by_name("rle").unwrap();
        let program = b.program().unwrap();
        let mut iss = Iss::new(&program);
        iss.set_inputs(&[3, 3, 3, 1, 1, 2, 2, 2]);
        iss.run(500_000).unwrap();
        // Runs end at input positions 2 (3,3), 4 (1,2), and 7 (2,3);
        // each position's slot is 2 words wide at 0x0300 = dmem word 128.
        let out = &iss.dmem()[128..128 + 16];
        assert_eq!(&out[2 * 2..2 * 2 + 2], &[3, 3]);
        assert_eq!(&out[4 * 2..4 * 2 + 2], &[1, 2]);
        assert_eq!(&out[7 * 2..7 * 2 + 2], &[2, 3]);
    }

    #[test]
    fn thold_counts_on_iss() {
        let b = by_name("tHold").unwrap();
        let program = b.program().unwrap();
        let mut iss = Iss::new(&program);
        iss.set_inputs(&[50, 150, 99, 100, 101, 20, 180, 100]);
        iss.run(500_000).unwrap();
        // >= 100: 150, 100, 101, 180, 100 -> 5.
        assert_eq!(iss.dmem()[0], 5);
    }
}
