//! Observability substrate for the workspace: where time goes, without
//! touching what the analyses compute.
//!
//! The co-analysis pipeline is a multi-stage concurrent system — a
//! work-stealing symbolic explorer, memoized re-analysis, an
//! operating-point sweep engine, and a TCP daemon — whose byte-identity
//! contract forbids any timing-dependent output in result artifacts.
//! This crate is the layer *outside* that contract:
//!
//! * [`metrics`] — a global registry of named atomic counters, gauges,
//!   and fixed-bucket histograms, snapshotted to canonical [`jsonout`]
//!   JSON or Prometheus text;
//! * [`trace`] — a low-overhead span tracer (per-thread event buffers
//!   behind one relaxed-atomic enabled check) exported as Chrome
//!   trace-event JSON, loadable in Perfetto / `chrome://tracing`;
//! * [`log`] — the `XBOUND_LOG` leveled key=value stderr logger behind
//!   the workspace's progress and warning output.
//!
//! It is also the new home of the canonical JSON layer ([`jsonout`] /
//! [`jsonin`]), moved down from `xbound_core` so every crate — including
//! the ones `xbound_core` itself depends on — can serialize metrics and
//! traces with the same writer that produces the byte-stable result
//! documents. `xbound_core` re-exports both modules under their
//! historical paths.
//!
//! Everything is std-only and disabled-by-default: with no `XBOUND_TRACE`
//! and no trace flag, each instrumentation site costs one relaxed atomic
//! load and an untaken branch.

#![warn(missing_docs)]

pub mod jsonin;
pub mod jsonout;
pub mod log;
pub mod metrics;
pub mod trace;
