//! Global metrics registry: named atomic counters, gauges, and
//! fixed-bucket histograms.
//!
//! The workspace grew its telemetry ad hoc — explorer scheduling counters
//! in `ExploreStats::batch`, memo hit/miss atomics, the service `stats`
//! response, one-off `sweep:` lines. This module gives them one place to
//! land: instruments are registered by name, updated with relaxed atomic
//! operations (an update never takes a lock), and snapshotted on demand
//! to canonical [`crate::jsonout`] JSON or Prometheus text exposition
//! format.
//!
//! Registration takes a process-wide mutex; callers therefore register
//! once (typically in a `OnceLock` or at subsystem construction) and
//! update the returned handle, which is a clone-cheap `Arc` around the
//! atomic cell. Names use the Prometheus convention
//! (`snake_case`, subsystem prefix, e.g. `xbound_explore_steals_total`).
//!
//! Nothing here feeds back into analysis results: the registry is
//! observability-only and sits outside the byte-identity contract.
//!
//! ```
//! use xbound_obs::metrics;
//! let c = metrics::counter("xbound_doc_example_total");
//! c.inc();
//! c.add(2);
//! assert_eq!(c.get(), 3);
//! assert!(metrics::snapshot_json().contains("xbound_doc_example_total"));
//! ```

use crate::jsonout::JsonWriter;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// An instantaneous value (queue depth, in-flight jobs, cache entries).
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the current value.
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Upper bounds (inclusive) of the fixed duration buckets, in
/// microseconds: 100µs, 1ms, 10ms, 100ms, 1s, 10s, +Inf. Coarse
/// power-of-ten buckets keep `observe` to one comparison chain and cover
/// everything from a memo lookup to a full-suite sweep.
pub const DURATION_BUCKETS_US: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

struct HistogramInner {
    /// One slot per bound in [`DURATION_BUCKETS_US`] plus the +Inf slot.
    buckets: [AtomicU64; DURATION_BUCKETS_US.len() + 1],
    count: AtomicU64,
    sum_us: AtomicU64,
}

/// A fixed-bucket histogram of microsecond durations.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// Records one observation of `us` microseconds.
    pub fn observe_us(&self, us: u64) {
        let idx = DURATION_BUCKETS_US
            .iter()
            .position(|b| us <= *b)
            .unwrap_or(DURATION_BUCKETS_US.len());
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.inner.sum_us.load(Ordering::Relaxed)
    }

    fn bucket_counts(&self) -> Vec<u64> {
        self.inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Name-keyed instrument table. `BTreeMap` so every export walks the
/// instruments in one stable order (part of keeping snapshots diffable).
static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, Instrument>>> = OnceLock::new();

fn registry() -> &'static Mutex<BTreeMap<&'static str, Instrument>> {
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Registers (or fetches) the counter `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a different instrument kind.
pub fn counter(name: &'static str) -> Counter {
    let mut reg = registry().lock().expect("metrics registry");
    match reg.entry(name).or_insert_with(|| {
        Instrument::Counter(Counter {
            cell: Arc::new(AtomicU64::new(0)),
        })
    }) {
        Instrument::Counter(c) => c.clone(),
        _ => panic!("metric `{name}` already registered with a different kind"),
    }
}

/// Registers (or fetches) the gauge `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a different instrument kind.
pub fn gauge(name: &'static str) -> Gauge {
    let mut reg = registry().lock().expect("metrics registry");
    match reg.entry(name).or_insert_with(|| {
        Instrument::Gauge(Gauge {
            cell: Arc::new(AtomicU64::new(0)),
        })
    }) {
        Instrument::Gauge(g) => g.clone(),
        _ => panic!("metric `{name}` already registered with a different kind"),
    }
}

/// Registers (or fetches) the duration histogram `name` (fixed
/// [`DURATION_BUCKETS_US`] buckets).
///
/// # Panics
///
/// Panics if `name` is already registered as a different instrument kind.
pub fn histogram(name: &'static str) -> Histogram {
    let mut reg = registry().lock().expect("metrics registry");
    match reg.entry(name).or_insert_with(|| {
        Instrument::Histogram(Histogram {
            inner: Arc::new(HistogramInner {
                buckets: Default::default(),
                count: AtomicU64::new(0),
                sum_us: AtomicU64::new(0),
            }),
        })
    }) {
        Instrument::Histogram(h) => h.clone(),
        _ => panic!("metric `{name}` already registered with a different kind"),
    }
}

/// Writes the full registry as one JSON object into `w` (counters and
/// gauges as integer fields; histograms as
/// `{"buckets_us": [...], "counts": [...], "count": n, "sum_us": n}`),
/// in stable name order.
pub fn write_snapshot(w: &mut JsonWriter) {
    let reg = registry().lock().expect("metrics registry");
    w.begin_object();
    for (name, inst) in reg.iter() {
        match inst {
            Instrument::Counter(c) => w.field_u64(name, c.get()),
            Instrument::Gauge(g) => w.field_u64(name, g.get()),
            Instrument::Histogram(h) => {
                w.key(name);
                w.begin_object();
                w.key("buckets_us");
                w.begin_array();
                for b in DURATION_BUCKETS_US {
                    w.u64_val(b);
                }
                w.end_array();
                w.key("counts");
                w.begin_array();
                for c in h.bucket_counts() {
                    w.u64_val(c);
                }
                w.end_array();
                w.field_u64("count", h.count());
                w.field_u64("sum_us", h.sum_us());
                w.end_object();
            }
        }
    }
    w.end_object();
}

/// The registry as a compact canonical JSON document.
pub fn snapshot_json() -> String {
    let mut w = JsonWriter::compact();
    write_snapshot(&mut w);
    w.finish()
}

/// The registry in Prometheus text exposition format (`# TYPE` comments,
/// cumulative `_bucket{le="..."}` series for histograms).
pub fn snapshot_prometheus() -> String {
    let reg = registry().lock().expect("metrics registry");
    let mut out = String::new();
    for (name, inst) in reg.iter() {
        match inst {
            Instrument::Counter(c) => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
            }
            Instrument::Gauge(g) => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.get()));
            }
            Instrument::Histogram(h) => {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                let counts = h.bucket_counts();
                let mut cumulative = 0u64;
                for (i, bound) in DURATION_BUCKETS_US.iter().enumerate() {
                    cumulative += counts[i];
                    out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
                }
                cumulative += counts[DURATION_BUCKETS_US.len()];
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
                out.push_str(&format!("{name}_sum {}\n", h.sum_us()));
                out.push_str(&format!("{name}_count {}\n", h.count()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonin::Json;

    #[test]
    fn counter_and_gauge_round_trip() {
        let c = counter("xbound_test_counter_total");
        let before = c.get();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), before + 5);
        // Same name returns the same underlying cell.
        assert_eq!(counter("xbound_test_counter_total").get(), before + 5);

        let g = gauge("xbound_test_gauge");
        g.set(17);
        assert_eq!(gauge("xbound_test_gauge").get(), 17);
    }

    #[test]
    fn histogram_buckets_by_magnitude() {
        let h = histogram("xbound_test_hist_us");
        h.observe_us(50); // <= 100µs
        h.observe_us(500_000); // <= 1s
        h.observe_us(99_000_000); // +Inf
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_us(), 50 + 500_000 + 99_000_000);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[4], 1);
        assert_eq!(counts[DURATION_BUCKETS_US.len()], 1);
    }

    #[test]
    fn snapshot_is_valid_canonical_json() {
        counter("xbound_test_snapshot_total").add(2);
        gauge("xbound_test_snapshot_gauge").set(9);
        histogram("xbound_test_snapshot_us").observe_us(1);
        let doc = snapshot_json();
        let json = Json::parse(&doc).expect("snapshot parses");
        assert_eq!(
            json.get("xbound_test_snapshot_total")
                .and_then(Json::as_u64),
            Some(2)
        );
        let hist = json.get("xbound_test_snapshot_us").expect("hist present");
        assert_eq!(hist.get("count").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn prometheus_exposition_shape() {
        counter("xbound_test_prom_total").inc();
        histogram("xbound_test_prom_us").observe_us(3);
        let text = snapshot_prometheus();
        assert!(text.contains("# TYPE xbound_test_prom_total counter"));
        assert!(text.contains("xbound_test_prom_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("xbound_test_prom_us_count 1"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<u64>().is_ok(), "bad sample line: {line}");
        }
    }
}
