//! Validates a Chrome trace-event JSON file produced by
//! [`xbound_obs::trace`] — the CI smoke gate for `suite_summary --trace`
//! and `XBOUND_TRACE`.
//!
//! ```text
//! cargo run -p xbound_obs --bin trace_check -- TRACE.json [--min-tids N] [--expect NAME]...
//! ```
//!
//! Checks, exiting non-zero on the first violation:
//!
//! * the document parses as strict JSON with a `traceEvents` array;
//! * every event carries the Chrome-required fields for its phase
//!   (`ph`/`name`/`pid`/`tid`/`ts`, plus `dur` for `X` spans), with
//!   finite non-negative timestamps;
//! * per tid, complete spans are properly nested (no partial overlap) —
//!   the RAII guards guarantee this by construction, so a violation
//!   means clock or buffer corruption;
//! * at least `--min-tids` distinct event-carrying tids appear (the
//!   "tids cover all workers" suite-trace check);
//! * every `--expect NAME` occurs as some event's name.
//!
//! On success prints one summary line: event/span/instant/tid counts and
//! the dropped-event total.

use xbound_obs::jsonin::Json;

fn fail(msg: &str) -> ! {
    eprintln!("trace_check: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut path: Option<String> = None;
    let mut min_tids = 1usize;
    let mut expect: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--min-tids" => {
                min_tids = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--min-tids N"));
            }
            "--expect" => expect.push(args.next().unwrap_or_else(|| fail("--expect NAME"))),
            other if path.is_none() => path = Some(other.to_string()),
            other => fail(&format!("unexpected argument `{other}`")),
        }
    }
    let path = path
        .unwrap_or_else(|| fail("usage: trace_check TRACE.json [--min-tids N] [--expect NAME]..."));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let doc = Json::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: not valid JSON: {e}")));
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| fail("missing traceEvents array"));

    let req_str = |e: &Json, k: &str, i: usize| -> String {
        e.get(k)
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(&format!("event {i}: missing string `{k}`")))
            .to_string()
    };
    let req_num = |e: &Json, k: &str, i: usize| -> f64 {
        let v = e
            .get(k)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| fail(&format!("event {i}: missing number `{k}`")));
        if !v.is_finite() || v < 0.0 {
            fail(&format!("event {i}: `{k}` = {v} out of range"));
        }
        v
    };

    // (start_us, end_us, name) per tid, for the nesting check.
    let mut spans_by_tid: std::collections::BTreeMap<u64, Vec<(f64, f64, String)>> =
        std::collections::BTreeMap::new();
    let mut event_tids: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    let mut names: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut span_count = 0usize;
    let mut instant_count = 0usize;

    for (i, e) in events.iter().enumerate() {
        let ph = req_str(e, "ph", i);
        let name = req_str(e, "name", i);
        req_num(e, "pid", i);
        let tid = req_num(e, "tid", i) as u64;
        match ph.as_str() {
            "M" => {
                // Metadata: must name the thread.
                if name != "thread_name" {
                    fail(&format!("event {i}: unexpected metadata `{name}`"));
                }
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| fail(&format!("event {i}: thread_name without args.name")));
            }
            "X" => {
                let ts = req_num(e, "ts", i);
                let dur = req_num(e, "dur", i);
                spans_by_tid
                    .entry(tid)
                    .or_default()
                    .push((ts, ts + dur, name.clone()));
                event_tids.insert(tid);
                names.insert(name);
                span_count += 1;
            }
            "i" => {
                req_num(e, "ts", i);
                event_tids.insert(tid);
                names.insert(name);
                instant_count += 1;
            }
            other => fail(&format!("event {i}: unknown phase `{other}`")),
        }
    }

    // Proper nesting per tid: walking spans ordered by (start, -end),
    // every span must fit entirely inside the enclosing open span.
    for (tid, spans) in &mut spans_by_tid {
        spans.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap()
                .then(b.1.partial_cmp(&a.1).unwrap())
        });
        let mut stack: Vec<(f64, f64, &str)> = Vec::new();
        for (start, end, name) in spans.iter() {
            while let Some(top) = stack.last() {
                if *start >= top.1 {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(top) = stack.last() {
                if *end > top.1 + 1e-3 {
                    fail(&format!(
                        "tid {tid}: span `{name}` [{start}, {end}] partially overlaps `{}` [{}, {}]",
                        top.2, top.0, top.1
                    ));
                }
            }
            stack.push((*start, *end, name));
        }
    }

    if event_tids.len() < min_tids {
        fail(&format!(
            "only {} event-carrying tids, expected at least {min_tids}",
            event_tids.len()
        ));
    }
    for want in &expect {
        if !names.contains(want) {
            fail(&format!("expected event name `{want}` not found"));
        }
    }
    let dropped = doc
        .get("dropped_events")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    println!(
        "trace_check: ok — {} events ({span_count} spans, {instant_count} instants) on {} tids, {dropped} dropped",
        span_count + instant_count,
        event_tids.len(),
    );
}
