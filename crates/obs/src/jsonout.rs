//! A small shared JSON writer (std-only): escaping, objects/arrays,
//! stable field order, exact float round-trips.
//!
//! Every machine-readable artifact the workspace emits goes through this
//! module — `suite_summary --json`, the `experiments` run manifest, the
//! co-analysis service protocol, and the service's on-disk bound cache —
//! so they all share one escaping routine and one number format instead
//! of hand-rolled `format!` JSON.
//!
//! Field order is exactly the call order, which makes output byte-stable:
//! two writers fed the same values produce identical bytes. Floats are
//! written with Rust's `Display` (the shortest decimal form that parses
//! back to the same `f64`), so serialize → parse → serialize is the
//! identity on bytes — the property the service's cache relies on to keep
//! daemon answers byte-identical to the direct analysis path.

use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(s, &mut out);
    out
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Writes a JSON number for `v` in the exact-round-trip format shared by
/// every emitter (shortest `Display` form).
///
/// # Panics
///
/// Panics on non-finite values. JSON has no representation for NaN or
/// ±inf, and silently substituting `null` would let a corrupted bound
/// (`0.0 / 0.0` upstream) serialize as a syntactically valid document
/// that every reader then misparses as "absent" — a hard error at the
/// writer keeps the corruption visible at its source.
pub fn number(v: f64) -> String {
    assert!(
        v.is_finite(),
        "jsonout::number: non-finite f64 ({v}) cannot be represented in JSON"
    );
    format!("{v}")
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Frame {
    Object { first: bool },
    Array { first: bool },
}

/// A streaming JSON writer with explicit object/array structure.
///
/// The writer appends to an internal buffer; [`JsonWriter::finish`]
/// returns it once every opened container has been closed. `pretty`
/// writers indent with two spaces (the `BENCH_*.json` house style);
/// compact writers emit a single line (the protocol / cache style).
///
/// ```
/// use xbound_obs::jsonout::JsonWriter;
/// let mut w = JsonWriter::compact();
/// w.begin_object();
/// w.field_str("name", "mult");
/// w.field_f64("peak_mw", 1.25);
/// w.key("tags");
/// w.begin_array();
/// w.str_val("a");
/// w.str_val("b");
/// w.end_array();
/// w.end_object();
/// assert_eq!(
///     w.finish(),
///     r#"{"name": "mult", "peak_mw": 1.25, "tags": ["a", "b"]}"#
/// );
/// ```
#[derive(Debug)]
pub struct JsonWriter {
    out: String,
    stack: Vec<Frame>,
    pretty: bool,
    /// Set between [`JsonWriter::key`] and the value it introduces.
    pending_key: bool,
}

impl JsonWriter {
    /// A single-line writer (`", "` separators, no newlines).
    pub fn compact() -> JsonWriter {
        JsonWriter {
            out: String::new(),
            stack: Vec::new(),
            pretty: false,
            pending_key: false,
        }
    }

    /// A pretty writer (two-space indent, one entry per line).
    pub fn pretty() -> JsonWriter {
        JsonWriter {
            out: String::new(),
            stack: Vec::new(),
            pretty: true,
            pending_key: false,
        }
    }

    fn indent(&mut self) {
        for _ in 0..self.stack.len() {
            self.out.push_str("  ");
        }
    }

    /// Separates entries and positions the cursor for the next value.
    fn prepare_value(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        let Some(top) = self.stack.last_mut() else {
            return;
        };
        let first = match top {
            Frame::Object { first } | Frame::Array { first } => {
                let was = *first;
                *first = false;
                was
            }
        };
        if !first {
            self.out.push(',');
        }
        if self.pretty {
            self.out.push('\n');
            self.indent();
        } else if !first {
            self.out.push(' ');
        }
    }

    /// Opens an object (as a value or a field's value).
    pub fn begin_object(&mut self) {
        self.prepare_value();
        self.out.push('{');
        self.stack.push(Frame::Object { first: true });
    }

    /// Closes the innermost object.
    ///
    /// # Panics
    ///
    /// Panics when the innermost open container is not an object.
    pub fn end_object(&mut self) {
        let frame = self.stack.pop().expect("end_object: nothing open");
        let Frame::Object { first } = frame else {
            panic!("end_object inside an array")
        };
        if self.pretty && !first {
            self.out.push('\n');
            self.indent();
        }
        self.out.push('}');
    }

    /// Opens an array (as a value or a field's value).
    pub fn begin_array(&mut self) {
        self.prepare_value();
        self.out.push('[');
        self.stack.push(Frame::Array { first: true });
    }

    /// Closes the innermost array.
    ///
    /// # Panics
    ///
    /// Panics when the innermost open container is not an array.
    pub fn end_array(&mut self) {
        let frame = self.stack.pop().expect("end_array: nothing open");
        let Frame::Array { first } = frame else {
            panic!("end_array inside an object")
        };
        if self.pretty && !first {
            self.out.push('\n');
            self.indent();
        }
        self.out.push(']');
    }

    /// Writes an object key; the next value call provides its value.
    ///
    /// # Panics
    ///
    /// Panics outside an object or with a key already pending.
    pub fn key(&mut self, k: &str) {
        assert!(
            matches!(self.stack.last(), Some(Frame::Object { .. })),
            "key outside an object"
        );
        assert!(!self.pending_key, "two keys in a row");
        self.prepare_value();
        self.out.push('"');
        escape_into(k, &mut self.out);
        self.out.push_str("\": ");
        self.pending_key = true;
    }

    /// Writes a string value.
    pub fn str_val(&mut self, v: &str) {
        self.prepare_value();
        self.out.push('"');
        escape_into(v, &mut self.out);
        self.out.push('"');
    }

    /// Writes an `f64` value in the exact-round-trip format ([`number`]).
    pub fn f64_val(&mut self, v: f64) {
        let n = number(v);
        self.prepare_value();
        self.out.push_str(&n);
    }

    /// Writes an unsigned integer value.
    pub fn u64_val(&mut self, v: u64) {
        self.prepare_value();
        let _ = write!(self.out, "{v}");
    }

    /// Writes a boolean value.
    pub fn bool_val(&mut self, v: bool) {
        self.prepare_value();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Writes a preformatted JSON fragment as a value — for callers that
    /// need a fixed decimal format (e.g. `{:.4}` telemetry ratios) or
    /// splice an already-serialized object. The caller guarantees `raw`
    /// is valid JSON.
    pub fn raw_val(&mut self, raw: &str) {
        self.prepare_value();
        self.out.push_str(raw);
    }

    /// `key` + [`JsonWriter::str_val`].
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.str_val(v);
    }

    /// `key` + [`JsonWriter::f64_val`].
    pub fn field_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.f64_val(v);
    }

    /// `key` + [`JsonWriter::u64_val`].
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.u64_val(v);
    }

    /// `key` + [`JsonWriter::bool_val`].
    pub fn field_bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.bool_val(v);
    }

    /// `key` + [`JsonWriter::raw_val`].
    pub fn field_raw(&mut self, k: &str, raw: &str) {
        self.key(k);
        self.raw_val(raw);
    }

    /// Returns the serialized document.
    ///
    /// # Panics
    ///
    /// Panics if a container is still open or a key has no value.
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "unclosed container");
        assert!(!self.pending_key, "key without a value");
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn compact_object_and_array() {
        let mut w = JsonWriter::compact();
        w.begin_object();
        w.field_str("s", "x\"y");
        w.field_u64("n", 7);
        w.field_bool("b", true);
        w.key("a");
        w.begin_array();
        w.u64_val(1);
        w.u64_val(2);
        w.end_array();
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"s": "x\"y", "n": 7, "b": true, "a": [1, 2]}"#
        );
    }

    #[test]
    fn pretty_indents_two_spaces() {
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.field_u64("n", 1);
        w.key("a");
        w.begin_array();
        w.u64_val(2);
        w.end_array();
        w.end_object();
        assert_eq!(w.finish(), "{\n  \"n\": 1,\n  \"a\": [\n    2\n  ]\n}");
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonWriter::compact();
        w.begin_object();
        w.key("a");
        w.begin_array();
        w.end_array();
        w.key("o");
        w.begin_object();
        w.end_object();
        w.end_object();
        assert_eq!(w.finish(), r#"{"a": [], "o": {}}"#);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.1, 1.0 / 3.0, 1.25e-13, f64::MAX, 5e-324, -0.0] {
            let s = number(v);
            let back: f64 = s.parse().expect("parses");
            assert_eq!(back.to_bits(), v.to_bits(), "{s}");
            assert_eq!(number(back), s);
        }
    }

    #[test]
    fn non_finite_is_a_hard_error() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let r = std::panic::catch_unwind(|| number(v));
            assert!(r.is_err(), "number({v}) must panic");
        }
        let r = std::panic::catch_unwind(|| {
            let mut w = JsonWriter::compact();
            w.begin_object();
            w.field_f64("x", f64::NAN);
            w.end_object();
            w.finish()
        });
        assert!(r.is_err(), "f64_val(NaN) must panic");
    }

    #[test]
    fn raw_preserves_fixed_format() {
        let mut w = JsonWriter::compact();
        w.begin_object();
        w.field_raw("occ", &format!("{:.4}", 0.5));
        w.end_object();
        assert_eq!(w.finish(), r#"{"occ": 0.5000}"#);
    }
}
