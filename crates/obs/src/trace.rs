//! Low-overhead span tracer with Chrome trace-event export.
//!
//! Instrumented code records *spans* (`(name, tid, start_ns, end_ns,
//! args)` via the RAII [`span`] guard) and point-in-time *instants*
//! ([`instant`]) into per-thread buffers. The whole machinery sits behind
//! a single process-global `AtomicBool`: when tracing is disabled
//! (the default), every site costs one relaxed load and an untaken
//! branch — no clock read, no allocation, no lock.
//!
//! When enabled ([`enable`], or `XBOUND_TRACE=out.json` through
//! [`init_from_env`]), each thread lazily registers a bounded event
//! buffer (a ring: the newest [`THREAD_BUFFER_CAP`] events win, with a
//! drop counter) tagged with a small integer `tid` and a label — either
//! set explicitly with [`set_thread_label`] (the explorer names its
//! pool workers) or taken from the OS thread name. [`write_chrome_trace`]
//! drains every buffer into Chrome trace-event JSON (`X` complete events
//! with microsecond timestamps, `i` instants, `M` thread-name metadata),
//! loadable in Perfetto or `chrome://tracing`.
//!
//! Tracing never feeds back into analysis results; enabling it must not
//! change any canonical artifact (asserted by the suite-level determinism
//! guard test in `crates/bench/tests/`).

use crate::jsonout::JsonWriter;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Maximum events retained per thread buffer; older events are dropped
/// (and counted) once a thread exceeds it. 64Ki events ≈ 4 MiB per
/// long-running daemon worker — bounded, and far more than any suite run
/// produces.
pub const THREAD_BUFFER_CAP: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True when tracing is on. One relaxed load — this is the only cost an
/// instrumentation site pays when tracing is disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the tracer on. Events recorded before `enable` are impossible
/// (the guard constructors check [`enabled`] first).
pub fn enable() {
    epoch(); // pin t=0 before the first event
    ENABLED.store(true, Ordering::Relaxed);
}

/// Reads `XBOUND_TRACE`; if set and non-empty, enables tracing and
/// returns the configured output path (the caller decides when to
/// [`write_chrome_trace`] — typically at process exit).
pub fn init_from_env() -> Option<String> {
    let path = std::env::var("XBOUND_TRACE").ok()?;
    if path.is_empty() || path == "0" {
        return None;
    }
    enable();
    Some(path)
}

/// The process trace epoch: all timestamps are nanoseconds since the
/// first call (pinned by [`enable`]).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

#[derive(Clone)]
enum Phase {
    /// Complete span: `dur_ns = end - start`.
    Span { dur_ns: u64 },
    /// Point event.
    Instant,
}

#[derive(Clone)]
struct Event {
    name: &'static str,
    start_ns: u64,
    phase: Phase,
    /// Pre-rendered compact JSON object text (`{"k": v}`) or empty.
    args: String,
}

struct ThreadBuf {
    tid: u32,
    label: String,
    events: Vec<Event>,
    /// Ring cursor: once `events` is full, the next event overwrites
    /// `events[head]`.
    head: usize,
    dropped: u64,
}

impl ThreadBuf {
    fn push(&mut self, ev: Event) {
        if self.events.len() < THREAD_BUFFER_CAP {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % THREAD_BUFFER_CAP;
            self.dropped += 1;
        }
    }
}

/// Every thread buffer ever registered (kept alive past thread exit so
/// scoped explorer workers survive until export).
static ALL_BUFS: OnceLock<Mutex<Vec<Arc<Mutex<ThreadBuf>>>>> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn all_bufs() -> &'static Mutex<Vec<Arc<Mutex<ThreadBuf>>>> {
    ALL_BUFS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: RefCell<Option<Arc<Mutex<ThreadBuf>>>> = const { RefCell::new(None) };
}

fn with_local(f: impl FnOnce(&mut ThreadBuf)) {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let buf = slot.get_or_insert_with(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed) as u32;
            let label = std::thread::current()
                .name()
                .map(|n| n.to_string())
                .unwrap_or_else(|| format!("thread-{tid}"));
            let buf = Arc::new(Mutex::new(ThreadBuf {
                tid,
                label,
                events: Vec::new(),
                head: 0,
                dropped: 0,
            }));
            all_bufs().lock().expect("trace registry").push(buf.clone());
            buf
        });
        f(&mut buf.lock().expect("thread trace buffer"));
    });
}

/// Names the current thread's trace track (overrides the OS thread name
/// in the exported `thread_name` metadata). The explorer labels its pool
/// workers (`explore-worker-3`) and the driver (`explore-driver`) so
/// Perfetto timelines are readable.
pub fn set_thread_label(label: &str) {
    if !enabled() {
        return;
    }
    let owned = label.to_string();
    with_local(|b| b.label = owned);
}

/// An RAII span: records one complete (`X`) event from construction to
/// drop. Construct through [`span`] / [`span_args`].
pub struct SpanGuard {
    /// `None` when tracing was disabled at construction — drop is a
    /// no-op branch.
    live: Option<(&'static str, u64, String)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, start_ns, args)) = self.live.take() {
            let dur_ns = now_ns().saturating_sub(start_ns);
            with_local(|b| {
                b.push(Event {
                    name,
                    start_ns,
                    phase: Phase::Span { dur_ns },
                    args,
                });
            });
        }
    }
}

/// Opens a span named `name` ending when the returned guard drops.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { live: None };
    }
    SpanGuard {
        live: Some((name, now_ns(), String::new())),
    }
}

/// [`span`] with arguments: `make_args` runs only when tracing is
/// enabled and returns `(key, value)` pairs rendered into the event's
/// `args` object.
#[inline]
pub fn span_args(
    name: &'static str,
    make_args: impl FnOnce() -> Vec<(String, String)>,
) -> SpanGuard {
    if !enabled() {
        return SpanGuard { live: None };
    }
    SpanGuard {
        live: Some((name, now_ns(), render_args(make_args()))),
    }
}

/// Records a point-in-time (`i`) event (steal, commit, wakeup).
#[inline]
pub fn instant(name: &'static str) {
    if !enabled() {
        return;
    }
    let ev = Event {
        name,
        start_ns: now_ns(),
        phase: Phase::Instant,
        args: String::new(),
    };
    with_local(|b| b.push(ev));
}

/// [`instant`] with lazily built `(key, value)` arguments.
#[inline]
pub fn instant_args(name: &'static str, make_args: impl FnOnce() -> Vec<(String, String)>) {
    if !enabled() {
        return;
    }
    let ev = Event {
        name,
        start_ns: now_ns(),
        phase: Phase::Instant,
        args: render_args(make_args()),
    };
    with_local(|b| b.push(ev));
}

fn render_args(pairs: Vec<(String, String)>) -> String {
    if pairs.is_empty() {
        return String::new();
    }
    let mut w = JsonWriter::compact();
    w.begin_object();
    for (k, v) in &pairs {
        w.key(k);
        w.str_val(v);
    }
    w.end_object();
    w.finish()
}

/// Renders every recorded event as a Chrome trace-event JSON document
/// (`{"traceEvents": [...]}`): one `M`/`thread_name` metadata record per
/// thread, then its events in recorded order. Timestamps are in
/// microseconds (3 fractional digits) since the trace epoch; all events
/// share `pid` 1.
pub fn chrome_trace_json() -> String {
    let bufs = all_bufs().lock().expect("trace registry");
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.key("traceEvents");
    w.begin_array();
    let mut total_dropped = 0u64;
    for buf in bufs.iter() {
        let b = buf.lock().expect("thread trace buffer");
        total_dropped += b.dropped;
        w.begin_object();
        w.field_str("ph", "M");
        w.field_str("name", "thread_name");
        w.field_u64("pid", 1);
        w.field_u64("tid", b.tid as u64);
        w.key("args");
        w.begin_object();
        w.field_str("name", &b.label);
        w.end_object();
        w.end_object();
        // Ring order: oldest surviving event first.
        let n = b.events.len();
        for i in 0..n {
            let ev = &b.events[(b.head + i) % n.max(1)];
            w.begin_object();
            match ev.phase {
                Phase::Span { dur_ns } => {
                    w.field_str("ph", "X");
                    w.field_str("name", ev.name);
                    w.field_u64("pid", 1);
                    w.field_u64("tid", b.tid as u64);
                    w.field_raw("ts", &format_us(ev.start_ns));
                    w.field_raw("dur", &format_us(dur_ns));
                }
                Phase::Instant => {
                    w.field_str("ph", "i");
                    w.field_str("name", ev.name);
                    w.field_u64("pid", 1);
                    w.field_u64("tid", b.tid as u64);
                    w.field_raw("ts", &format_us(ev.start_ns));
                    w.field_str("s", "t");
                }
            }
            if !ev.args.is_empty() {
                w.field_raw("args", &ev.args);
            }
            w.end_object();
        }
    }
    w.end_array();
    w.field_u64("dropped_events", total_dropped);
    w.end_object();
    w.finish()
}

/// Microseconds with fixed 3-digit nanosecond fraction (Chrome traces
/// use µs; the fraction keeps short spans distinguishable).
fn format_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Writes [`chrome_trace_json`] (plus a trailing newline) to `path`.
pub fn write_chrome_trace(path: &str) -> std::io::Result<()> {
    let mut doc = chrome_trace_json();
    doc.push('\n');
    std::fs::write(path, doc)
}

/// Number of events currently buffered across all threads (test/debug
/// aid).
pub fn event_count() -> usize {
    let bufs = all_bufs().lock().expect("trace registry");
    bufs.iter()
        .map(|b| b.lock().expect("thread trace buffer").events.len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonin::Json;

    // Tracing state is process-global, so the unit tests share one
    // enabled tracer and assert on their own uniquely named events.

    #[test]
    fn disabled_guard_is_inert() {
        // Runs before `enable` in this thread only if the other test has
        // not flipped the global yet — either way the guard must not
        // panic and must not require a buffer.
        let g = span("unit_disabled_span");
        drop(g);
    }

    #[test]
    fn spans_and_instants_round_trip_through_chrome_json() {
        enable();
        set_thread_label("unit-test-thread");
        {
            let _outer = span("unit_outer");
            let _inner = span_args("unit_inner", || {
                vec![("corner".to_string(), "ulp65@100MHz".to_string())]
            });
            instant("unit_instant");
        }
        let doc = chrome_trace_json();
        let json = Json::parse(&doc).expect("chrome trace parses");
        let events = json
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert!(names.contains(&"unit_outer"));
        assert!(names.contains(&"unit_inner"));
        assert!(names.contains(&"unit_instant"));
        assert!(names.contains(&"thread_name"));
        // The inner span closed before the outer and carries its args.
        let inner = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("unit_inner"))
            .unwrap();
        assert_eq!(
            inner
                .get("args")
                .and_then(|a| a.get("corner"))
                .and_then(Json::as_str),
            Some("ulp65@100MHz")
        );
        let outer = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("unit_outer"))
            .unwrap();
        let ts = |e: &Json, k: &str| e.get(k).and_then(Json::as_f64).unwrap();
        assert!(ts(inner, "ts") >= ts(outer, "ts"));
        assert!(ts(inner, "ts") + ts(inner, "dur") <= ts(outer, "ts") + ts(outer, "dur") + 1e-3);
    }

    #[test]
    fn ring_buffer_drops_oldest_beyond_cap() {
        let mut b = ThreadBuf {
            tid: 99,
            label: "ring".into(),
            events: Vec::new(),
            head: 0,
            dropped: 0,
        };
        for _ in 0..THREAD_BUFFER_CAP + 5 {
            b.push(Event {
                name: "e",
                start_ns: 0,
                phase: Phase::Instant,
                args: String::new(),
            });
        }
        assert_eq!(b.events.len(), THREAD_BUFFER_CAP);
        assert_eq!(b.dropped, 5);
        assert_eq!(b.head, 5);
    }
}
