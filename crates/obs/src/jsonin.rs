//! A minimal JSON value parser (std-only) — the read half of
//! [`jsonout`](crate::jsonout).
//!
//! One strict recursive-descent parser into a small [`Json`] value tree,
//! shared by the service protocol, the on-disk bound cache, and the
//! subtree memo table. Numbers parse through [`str::parse::<f64>`], which
//! recovers the exact `f64` from the shortest-representation form
//! `jsonout` emits, so parse → re-serialize is the identity on bytes for
//! every document the workspace produces (the service's byte-identity
//! contract). Non-finite results (`1e999` overflows to `+inf`) are
//! rejected — JSON cannot represent them and
//! [`jsonout::number`](crate::jsonout::number) refuses to write them, so accepting one on
//! the way in would break the round-trip contract silently.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (exact for integers up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is irrelevant to readers, so a map is fine.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a position-annotated message on malformed input.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Nesting cap: every document the workspace produces is ≤ 4 levels
/// deep, and the daemon parses untrusted request lines — unbounded
/// recursion would let one malicious line overflow the connection
/// thread's stack and abort the whole process.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(k, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| "unsupported \\u codepoint".to_string())?;
                            out.push(c);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are UTF-8");
        let n: f64 = text
            .parse()
            .map_err(|_| format!("bad number `{text}` at byte {start}"))?;
        // `parse::<f64>` accepts over-range exponents (`1e999` → +inf) and
        // the words `inf`/`NaN` never tokenize here, but the overflow path
        // would otherwise smuggle a non-finite value past the writer's
        // hard error. Reject at the boundary.
        if !n.is_finite() {
            return Err(format!("non-finite number `{text}` at byte {start}"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonout::JsonWriter;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e3").unwrap(), Json::Num(-2500.0));
        assert_eq!(
            Json::parse(r#""a\nb\u0041""#).unwrap(),
            Json::Str("a\nbA".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": "x"}], "c": false}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_bool), Some(false));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"\\q\""] {
            assert!(Json::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn rejects_non_finite_numbers() {
        for bad in ["1e999", "-1e999", "1e309", "[1, 2e999]", "{\"x\": 1e999}"] {
            let err = Json::parse(bad).expect_err(bad);
            assert!(err.contains("non-finite"), "{bad}: {err}");
        }
        // The literal words are malformed JSON already.
        for bad in ["inf", "-inf", "NaN", "Infinity"] {
            assert!(Json::parse(bad).is_err(), "{bad}");
        }
        // Near the boundary, finite values still parse exactly.
        let v = Json::parse("1.7976931348623157e308").unwrap();
        assert_eq!(v.as_f64(), Some(f64::MAX));
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        let deep = "[".repeat(500_000);
        let err = Json::parse(&deep).expect_err("must be rejected");
        assert!(err.contains("nesting"), "{err}");
        // Exactly at the cap still parses.
        let ok = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(Json::parse(&ok).is_ok());
        let over = format!("{}1{}", "[".repeat(65), "]".repeat(65));
        assert!(Json::parse(&over).is_err());
    }

    #[test]
    fn round_trips_writer_output() {
        let mut w = JsonWriter::compact();
        w.begin_object();
        w.field_str("s", "quote \" slash \\ nl \n");
        w.field_f64("x", 1.0 / 3.0);
        w.field_u64("n", 1 << 53);
        w.end_object();
        let text = w.finish();
        let v = Json::parse(&text).unwrap();
        assert_eq!(
            v.get("s").and_then(Json::as_str),
            Some("quote \" slash \\ nl \n")
        );
        assert_eq!(
            v.get("x").and_then(Json::as_f64).map(f64::to_bits),
            Some((1.0f64 / 3.0).to_bits())
        );
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(1 << 53));
    }
}
